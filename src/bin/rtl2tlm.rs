//! `rtl2tlm` — command-line front-end for the RTL-to-TLM property
//! abstraction flow.
//!
//! ```text
//! rtl2tlm abstract <file> [--clock-period NS] [--abstract-signal NAME]...
//! rtl2tlm demo [--design des56|colorconv] [--level rtl|tlm-ca|tlm-at]
//!              [--requests N] [--seed N] [--vcd PATH]
//! rtl2tlm campaign [--design D] [--level L] [--runs N] [--workers N]
//!                  [--size N] [--seed N] [--checkers with|without|both|N]
//!                  [--deterministic] [--trace PATH]
//! rtl2tlm trace [--design D] [--level L] [--requests N] [--seed N]
//!               --out PATH
//! rtl2tlm mutate [--design D] [--level rtl|tlm-ca|tlm-at] [--size N]
//!                [--seed N] [--workers N] [--json] [--trace PATH]
//! ```
//!
//! Property files contain one `name: property` per line; `#` starts a
//! comment. See `cargo run --bin rtl2tlm -- abstract --help`.

use std::process::ExitCode;

use rtl2tlm_abv::cli::{self, CampaignParams, CliError, DemoParams, MutateParams, TraceParams};

const USAGE: &str = "\
rtl2tlm — RTL-to-TLM property abstraction (DATE 2015 reproduction)

USAGE:
    rtl2tlm abstract <file> [--clock-period NS] [--abstract-signal NAME]...
    rtl2tlm demo [--design des56|colorconv] [--level rtl|tlm-ca|tlm-at]
                 [--requests N] [--seed N] [--vcd PATH]
    rtl2tlm campaign [--design des56|colorconv|fir]
                     [--level rtl|tlm-ca|tlm-at|tlm-at-bulk]
                     [--runs N] [--workers N] [--size N] [--seed N]
                     [--checkers with|without|both|N] [--deterministic]
                     [--trace PATH]
    rtl2tlm trace [--design des56|colorconv|fir]
                  [--level rtl|tlm-ca|tlm-at|tlm-at-bulk]
                  [--requests N] [--seed N] --out PATH
    rtl2tlm mutate [--design des56|colorconv|fir]
                   [--level rtl|tlm-ca|tlm-at] [--size N] [--seed N]
                   [--workers N] [--json] [--trace PATH]

COMMANDS:
    abstract   Abstract the RTL properties in <file> (one `name: property`
               per line, `#` comments) into TLM properties.
    demo       Build one of the evaluation IPs, run its checker suite and
               report the verdicts; --vcd dumps an RTL waveform.
    campaign   Run a seeded multi-run verification campaign sharded across
               worker threads and print the merged report; the part above
               `timing:` is identical for any --workers value
               (--deterministic prints only that part). --trace writes
               the merged per-run trace as Chrome trace-event JSON.
    trace      Run one traced simulation with the full checker suite and
               write the checker-lifecycle spans, kernel counters and
               transaction instants as Chrome trace-event JSON (load the
               file in ui.perfetto.dev or chrome://tracing).
    mutate     Run the fault catalogue through the campaign engine and
               print the kill matrix: per-mutant verdicts at each level,
               per-level mutation scores and the cross-level detection
               differential. --json emits the schema-stable report
               (byte-identical for any --workers value); --trace writes
               per-mutant run spans plus the mutation kill-counter track.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("abstract") => run_abstract(&args[1..]),
        Some("demo") => run_demo(&args[1..]),
        Some("campaign") => run_campaign(&args[1..]),
        Some("trace") => run_trace(&args[1..]),
        Some("mutate") => run_mutate(&args[1..]),
        Some("--help" | "-h") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn run_abstract(args: &[String]) -> Result<String, CliError> {
    let mut file = None;
    let mut clock_period = 10u64;
    let mut signals: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clock-period" => {
                clock_period = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| CliError::Usage("--clock-period expects ns".to_owned()))?;
            }
            "--abstract-signal" => signals.push(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let file = file.ok_or_else(|| CliError::Usage("abstract requires a property file".into()))?;
    let text = std::fs::read_to_string(&file)
        .map_err(|e| CliError::Usage(format!("cannot read `{file}`: {e}")))?;
    let properties = cli::parse_property_file(&text)?;
    cli::run_abstract(&properties, clock_period, &signals)
}

fn run_demo(args: &[String]) -> Result<String, CliError> {
    let mut params = DemoParams::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => params.design = next_value(&mut it, arg)?,
            "--level" => params.level = next_value(&mut it, arg)?,
            "--requests" => {
                params.requests = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| CliError::Usage("--requests expects a count".to_owned()))?;
            }
            "--seed" => {
                params.seed = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed expects an integer".to_owned()))?;
            }
            "--vcd" => params.vcd = Some(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    cli::run_demo(&params)
}

fn run_campaign(args: &[String]) -> Result<String, CliError> {
    let mut params = CampaignParams::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => params.design = next_value(&mut it, arg)?,
            "--level" => params.level = next_value(&mut it, arg)?,
            "--runs" => params.runs = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--workers" => params.workers = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--size" => params.size = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--seed" => params.seed = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--checkers" => params.checkers = next_value(&mut it, arg)?,
            "--deterministic" => params.deterministic = true,
            "--trace" => params.trace = Some(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    cli::run_campaign(&params)
}

fn run_trace(args: &[String]) -> Result<String, CliError> {
    let mut params = TraceParams::default();
    let mut out = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => params.design = next_value(&mut it, arg)?,
            "--level" => params.level = next_value(&mut it, arg)?,
            "--requests" => params.requests = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--seed" => params.seed = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--out" => out = Some(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    params.out = out.ok_or_else(|| CliError::Usage("trace requires --out PATH".into()))?;
    cli::run_trace(&params)
}

fn run_mutate(args: &[String]) -> Result<String, CliError> {
    let mut params = MutateParams::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => params.design = Some(next_value(&mut it, arg)?),
            "--level" => params.level = Some(next_value(&mut it, arg)?),
            "--size" => params.size = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--seed" => params.seed = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--workers" => params.workers = parse_num(&next_value(&mut it, arg)?, arg)?,
            "--json" => params.json = true,
            "--trace" => params.trace = Some(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    cli::run_mutate(&params)
}

fn parse_num<T: std::str::FromStr>(value: &str, flag: &str) -> Result<T, CliError> {
    value
        .parse()
        .map_err(|_| CliError::Usage(format!("{flag} expects a number")))
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} expects a value")))
}
