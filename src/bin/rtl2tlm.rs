//! `rtl2tlm` — command-line front-end for the RTL-to-TLM property
//! abstraction flow.
//!
//! ```text
//! rtl2tlm abstract <file> [--clock-period NS] [--abstract-signal NAME]...
//! rtl2tlm demo [--design des56|colorconv] [--level rtl|tlm-ca|tlm-at]
//!              [--requests N] [--seed N] [--vcd PATH]
//! ```
//!
//! Property files contain one `name: property` per line; `#` starts a
//! comment. See `cargo run --bin rtl2tlm -- abstract --help`.

use std::process::ExitCode;

use rtl2tlm_abv::cli::{self, CliError, DemoParams};

const USAGE: &str = "\
rtl2tlm — RTL-to-TLM property abstraction (DATE 2015 reproduction)

USAGE:
    rtl2tlm abstract <file> [--clock-period NS] [--abstract-signal NAME]...
    rtl2tlm demo [--design des56|colorconv] [--level rtl|tlm-ca|tlm-at]
                 [--requests N] [--seed N] [--vcd PATH]

COMMANDS:
    abstract   Abstract the RTL properties in <file> (one `name: property`
               per line, `#` comments) into TLM properties.
    demo       Build one of the evaluation IPs, run its checker suite and
               report the verdicts; --vcd dumps an RTL waveform.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(output) => {
            print!("{output}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<String, CliError> {
    match args.first().map(String::as_str) {
        Some("abstract") => run_abstract(&args[1..]),
        Some("demo") => run_demo(&args[1..]),
        Some("--help" | "-h") | None => Ok(USAGE.to_owned()),
        Some(other) => Err(CliError::Usage(format!("unknown command `{other}`"))),
    }
}

fn run_abstract(args: &[String]) -> Result<String, CliError> {
    let mut file = None;
    let mut clock_period = 10u64;
    let mut signals: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--clock-period" => {
                clock_period = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| CliError::Usage("--clock-period expects ns".to_owned()))?;
            }
            "--abstract-signal" => signals.push(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    let file = file.ok_or_else(|| CliError::Usage("abstract requires a property file".into()))?;
    let text = std::fs::read_to_string(&file)
        .map_err(|e| CliError::Usage(format!("cannot read `{file}`: {e}")))?;
    let properties = cli::parse_property_file(&text)?;
    cli::run_abstract(&properties, clock_period, &signals)
}

fn run_demo(args: &[String]) -> Result<String, CliError> {
    let mut params = DemoParams::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--design" => params.design = next_value(&mut it, arg)?,
            "--level" => params.level = next_value(&mut it, arg)?,
            "--requests" => {
                params.requests = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| CliError::Usage("--requests expects a count".to_owned()))?;
            }
            "--seed" => {
                params.seed = next_value(&mut it, arg)?
                    .parse()
                    .map_err(|_| CliError::Usage("--seed expects an integer".to_owned()))?;
            }
            "--vcd" => params.vcd = Some(next_value(&mut it, arg)?),
            "--help" | "-h" => return Ok(USAGE.to_owned()),
            other => return Err(CliError::Usage(format!("unexpected argument `{other}`"))),
        }
    }
    cli::run_demo(&params)
}

fn next_value<'a>(
    it: &mut impl Iterator<Item = &'a String>,
    flag: &str,
) -> Result<String, CliError> {
    it.next()
        .cloned()
        .ok_or_else(|| CliError::Usage(format!("{flag} expects a value")))
}
