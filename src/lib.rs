//! # rtl2tlm-abv
//!
//! Reproduction of *"RTL property abstraction for TLM assertion-based
//! verification"* (Bombieri, Filippozzi, Pravadelli, Stefanni — DATE 2015).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! - [`psl`] — the PSL/LTL property language (AST, parser, normal forms,
//!   finite-trace semantics);
//! - [`abv_core`] — the paper's contribution: RTL-to-TLM property
//!   abstraction (Methodology III.1, Algorithm III.1, Def. III.2 context
//!   mapping, Fig. 4 signal-abstraction rules);
//! - [`abv_checker`] — checker synthesis and the Section IV TLM wrapper;
//! - [`desim`] — the discrete-event simulation kernel (SystemC substitute);
//! - [`rtlkit`] / [`tlmkit`] — RTL and TLM modelling layers;
//! - [`designs`] — the paper's two test cases (DES56, ColorConv) at RTL,
//!   TLM-CA and TLM-AT, with their PSL property suites.
//!
//! # Quickstart
//!
//! Abstract an RTL property into a TLM property (Fig. 3 of the paper):
//!
//! ```
//! use rtl2tlm_abv::abv_core::{abstract_property, AbstractionConfig};
//! use rtl2tlm_abv::psl::ClockedProperty;
//!
//! let p1: ClockedProperty =
//!     "always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos".parse()?;
//! let cfg = AbstractionConfig::new(10); // RTL clock period: 10 ns
//! let q1 = abstract_property(&p1, &cfg)?.into_property().expect("kept");
//! assert_eq!(
//!     q1.to_string(),
//!     "always (((!ds) || (indata != 0)) || (next_et[1, 170] (out != 0))) @T_b"
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod cli;

pub use abv_campaign;
pub use abv_checker;
pub use abv_core;
pub use designs;
pub use desim;
pub use psl;
pub use rtlkit;
pub use tlmkit;
