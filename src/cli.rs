//! Implementation of the `rtl2tlm` command-line tool.
//!
//! Two commands:
//!
//! - `abstract`: read named RTL properties from a file and print their TLM
//!   abstractions (the batch version of the paper's Fig. 3);
//! - `demo`: build one of the two evaluation IPs at a chosen abstraction
//!   level, run it under its checker suite and report the verdicts,
//!   optionally dumping a VCD waveform;
//! - `campaign`: expand a design/level/checker grid into a seeded
//!   multi-run verification campaign, shard it across worker threads and
//!   print the merged report (optionally with a merged trace via
//!   `--trace`);
//! - `trace`: run one traced simulation and export the checker-lifecycle
//!   spans, kernel counters and transaction instants as Chrome
//!   trace-event JSON for `ui.perfetto.dev` / `chrome://tracing`;
//! - `mutate`: run the fault catalogue of one or all IPs through the
//!   campaign engine at every shared abstraction level and print the kill
//!   matrix — per-mutant verdicts, per-level mutation scores and the
//!   cross-level detection differential (`--json` for the schema-stable
//!   machine-readable report).
//!
//! The parsing/reporting logic lives here (unit-tested); the binary in
//! `src/bin/rtl2tlm.rs` is a thin wrapper.

use std::fmt::Write as _;

use abv_campaign::{CampaignPlan, CheckerMode, TraceSettings};
use abv_checker::{Binding, CheckReport, Checker};
use abv_core::{abstract_property, AbstractionConfig};
use abv_obs::{chrome_trace_json, TraceEvent, Tracer};
use designs::{colorconv, des56, SuiteEntry, CLOCK_PERIOD_NS};
use psl::{ClockEdge, ClockedProperty};
use rtlkit::WaveRecorder;
use tlmkit::CodingStyle;

/// A parsed `name: property` line from a property file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedProperty {
    /// The name before the first `:`.
    pub name: String,
    /// The parsed property.
    pub property: ClockedProperty,
}

/// Errors surfaced to the CLI user.
#[derive(Debug, PartialEq, Eq)]
pub enum CliError {
    /// A property file line could not be parsed.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// Explanation.
        message: String,
    },
    /// Invalid command-line usage.
    Usage(String),
}

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CliError::BadLine { line, message } => write!(f, "line {line}: {message}"),
            CliError::Usage(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {}

/// Parses a property file: one `name: property` per line, `#` comments and
/// blank lines ignored.
///
/// # Errors
///
/// Returns [`CliError::BadLine`] with the offending line number.
///
/// ```
/// let props = rtl2tlm_abv::cli::parse_property_file(
///     "# DES56\np4: always (!ds || next[17] rdy) @clk_pos\n",
/// )?;
/// assert_eq!(props.len(), 1);
/// assert_eq!(props[0].name, "p4");
/// # Ok::<(), rtl2tlm_abv::cli::CliError>(())
/// ```
pub fn parse_property_file(text: &str) -> Result<Vec<NamedProperty>, CliError> {
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let Some((name, rest)) = trimmed.split_once(':') else {
            return Err(CliError::BadLine {
                line,
                message: "expected `name: property`".to_owned(),
            });
        };
        let property: ClockedProperty =
            rest.trim()
                .parse()
                .map_err(|e: psl::ParseError| CliError::BadLine {
                    line,
                    message: e.to_string(),
                })?;
        out.push(NamedProperty {
            name: name.trim().to_owned(),
            property,
        });
    }
    Ok(out)
}

/// Runs the `abstract` command over already-parsed inputs, returning the
/// rendered report.
///
/// # Errors
///
/// Returns [`CliError::Usage`] when a property cannot be abstracted
/// (already TLM, already contains `next_ε^τ`, …).
pub fn run_abstract(
    properties: &[NamedProperty],
    clock_period_ns: u64,
    abstracted_signals: &[String],
) -> Result<String, CliError> {
    let cfg = AbstractionConfig::new(clock_period_ns)
        .abstract_signals(abstracted_signals.iter().cloned());
    let mut out = String::new();
    for np in properties {
        let a = abstract_property(&np.property, &cfg)
            .map_err(|e| CliError::Usage(format!("{}: {e}", np.name)))?;
        let _ = writeln!(out, "{} (RTL): {}", np.name, np.property);
        match a.result() {
            Some(q) => {
                let _ = writeln!(out, "{} (TLM): {}", np.name, q);
            }
            None => {
                let _ = writeln!(out, "{} (TLM): (deleted)", np.name);
            }
        }
        let _ = writeln!(out, "        [{}]", a.consequence());
        if !a.removed_atoms().is_empty() {
            let removed: Vec<String> = a.removed_atoms().iter().map(ToString::to_string).collect();
            let _ = writeln!(out, "        removed: {}", removed.join(", "));
        }
    }
    Ok(out)
}

/// Parameters of the `demo` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DemoParams {
    /// `des56` or `colorconv`.
    pub design: String,
    /// `rtl`, `tlm-ca` or `tlm-at`.
    pub level: String,
    /// Number of workload requests.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Optional VCD output path (RTL level only).
    pub vcd: Option<String>,
}

impl Default for DemoParams {
    fn default() -> DemoParams {
        DemoParams {
            design: "des56".to_owned(),
            level: "rtl".to_owned(),
            requests: 16,
            seed: 2015,
            vcd: None,
        }
    }
}

/// Runs the `demo` command and returns the rendered report.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown designs/levels or VCD requests
/// at TLM levels, and I/O failures as usage errors with context.
pub fn run_demo(params: &DemoParams) -> Result<String, CliError> {
    let (suite, abstracted): (Vec<SuiteEntry>, Vec<&str>) = match params.design.as_str() {
        "des56" => (des56::suite(), des56::ABSTRACTED_SIGNALS.to_vec()),
        "colorconv" => (colorconv::suite(), colorconv::ABSTRACTED_SIGNALS.to_vec()),
        other => {
            return Err(CliError::Usage(format!(
                "unknown design `{other}` (expected des56 or colorconv)"
            )))
        }
    };
    if params.vcd.is_some() && params.level != "rtl" {
        return Err(CliError::Usage(
            "--vcd is only available at the rtl level".to_owned(),
        ));
    }

    let rtl_props: Vec<(String, ClockedProperty)> = suite.iter().map(SuiteEntry::named).collect();
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS).abstract_signals(abstracted.iter().copied());
    // At TLM-AT, install only the AT-compatible abstractions: CA-only
    // properties reference instants the loose AT model never produces and
    // review-flagged ones need manual refinement (DESIGN.md §5b).
    let tlm_props: Vec<(String, ClockedProperty)> = suite
        .iter()
        .filter(|e| e.class == designs::PropertyClass::AtCompatible)
        .filter_map(|e| {
            abstract_property(&e.rtl, &cfg)
                .ok()
                .and_then(|a| a.into_property())
                .map(|q| (e.name.to_owned(), q))
        })
        .collect();

    let (report, header) = match (params.design.as_str(), params.level.as_str()) {
        ("des56", "rtl") => {
            let w = des56::DesWorkload::mixed(params.requests, params.seed);
            let mut built = des56::build_rtl(&w, des56::DesMutation::None);
            let rec = params.vcd.as_ref().map(|_| {
                WaveRecorder::install(
                    &mut built.sim,
                    built.clk.signal,
                    ClockEdge::Pos,
                    des56::RTL_SIGNALS,
                )
            });
            let checkers =
                Checker::attach_all(&mut built.sim, &rtl_props, Binding::clock(built.clk.signal))
                    .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
            built.run();
            if let (Some(path), Some(rec)) = (&params.vcd, rec) {
                dump_vcd(&built.sim, rec, path, "des56", des56::RTL_SIGNALS)?;
            }
            let end = built.end_ns;
            (
                Checker::collect(&mut built.sim, &checkers, end),
                "DES56 @ RTL",
            )
        }
        ("colorconv", "rtl") => {
            let w = colorconv::ConvWorkload::mixed(params.requests, params.seed);
            let mut built = colorconv::build_rtl(&w, colorconv::ConvMutation::None);
            let rec = params.vcd.as_ref().map(|_| {
                WaveRecorder::install(
                    &mut built.sim,
                    built.clk.signal,
                    ClockEdge::Pos,
                    colorconv::RTL_SIGNALS,
                )
            });
            let checkers =
                Checker::attach_all(&mut built.sim, &rtl_props, Binding::clock(built.clk.signal))
                    .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
            built.run();
            if let (Some(path), Some(rec)) = (&params.vcd, rec) {
                dump_vcd(&built.sim, rec, path, "colorconv", colorconv::RTL_SIGNALS)?;
            }
            let end = built.end_ns;
            (
                Checker::collect(&mut built.sim, &checkers, end),
                "ColorConv @ RTL",
            )
        }
        ("des56", "tlm-ca") => {
            let w = des56::DesWorkload::mixed(params.requests, params.seed);
            let mut built = des56::build_tlm_ca(&w, des56::DesMutation::None);
            let props: Vec<(String, ClockedProperty)> = suite
                .iter()
                .map(|e| {
                    (
                        e.name.to_owned(),
                        abv_core::reuse_at_cycle_accurate(&e.rtl).expect("clock"),
                    )
                })
                .collect();
            let checkers = Checker::attach_all(&mut built.sim, &props, Binding::bus(&built.bus))
                .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
            built.run();
            let end = built.end_ns;
            (
                Checker::collect(&mut built.sim, &checkers, end),
                "DES56 @ TLM-CA (reused checkers)",
            )
        }
        ("colorconv", "tlm-ca") => {
            let w = colorconv::ConvWorkload::mixed(params.requests, params.seed);
            let mut built = colorconv::build_tlm_ca(&w, colorconv::ConvMutation::None);
            let props: Vec<(String, ClockedProperty)> = suite
                .iter()
                .map(|e| {
                    (
                        e.name.to_owned(),
                        abv_core::reuse_at_cycle_accurate(&e.rtl).expect("clock"),
                    )
                })
                .collect();
            let checkers = Checker::attach_all(&mut built.sim, &props, Binding::bus(&built.bus))
                .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
            built.run();
            let end = built.end_ns;
            (
                Checker::collect(&mut built.sim, &checkers, end),
                "ColorConv @ TLM-CA (reused checkers)",
            )
        }
        ("des56", "tlm-at") => {
            let w = des56::DesWorkload::mixed(params.requests, params.seed);
            let mut built = des56::build_tlm_at(
                &w,
                des56::DesMutation::None,
                CodingStyle::ApproximatelyTimedLoose,
            );
            let checkers =
                Checker::attach_all(&mut built.sim, &tlm_props, Binding::bus(&built.bus))
                    .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
            built.run();
            let end = built.end_ns;
            (
                Checker::collect(&mut built.sim, &checkers, end),
                "DES56 @ TLM-AT (abstracted checkers)",
            )
        }
        ("colorconv", "tlm-at") => {
            let w = colorconv::ConvWorkload::mixed(params.requests, params.seed);
            let mut built = colorconv::build_tlm_at(
                &w,
                colorconv::ConvMutation::None,
                CodingStyle::ApproximatelyTimedLoose,
            );
            let checkers =
                Checker::attach_all(&mut built.sim, &tlm_props, Binding::bus(&built.bus))
                    .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
            built.run();
            let end = built.end_ns;
            (
                Checker::collect(&mut built.sim, &checkers, end),
                "ColorConv @ TLM-AT (abstracted checkers)",
            )
        }
        (_, other) => {
            return Err(CliError::Usage(format!(
                "unknown level `{other}` (expected rtl, tlm-ca or tlm-at)"
            )))
        }
    };

    Ok(render_report(header, &report))
}

/// Parameters of the `campaign` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignParams {
    /// `des56`, `colorconv` or `fir`.
    pub design: String,
    /// `rtl`, `tlm-ca`, `tlm-at` or `tlm-at-bulk`.
    pub level: String,
    /// Repetitions per cell.
    pub runs: usize,
    /// Worker threads.
    pub workers: usize,
    /// Workload size per run.
    pub size: usize,
    /// Base seed the per-run seeds are forked from.
    pub seed: u64,
    /// `with`, `without`, `both` or a checker count.
    pub checkers: String,
    /// Print only the scheduling-independent summary (for diffing the
    /// merged result across `--workers` values).
    pub deterministic: bool,
    /// Optional Chrome trace-event JSON output path for the merged
    /// campaign trace (one trace process per run). With
    /// `deterministic`, wall-clock annotations are omitted so the file
    /// is byte-identical across `--workers` values.
    pub trace: Option<String>,
}

impl Default for CampaignParams {
    fn default() -> CampaignParams {
        CampaignParams {
            design: "colorconv".to_owned(),
            level: "tlm-at".to_owned(),
            runs: 20,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            size: 100,
            seed: 2015,
            checkers: "with".to_owned(),
            deterministic: false,
            trace: None,
        }
    }
}

/// Runs the `campaign` command: builds the plan, shards it across the
/// requested workers and renders the merged report.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown designs/levels/checker modes
/// and for plans the engine rejects (e.g. zero runs).
pub fn run_campaign(params: &CampaignParams) -> Result<String, CliError> {
    let design = designs::DesignKind::parse(&params.design).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown design `{}` (expected des56, colorconv or fir)",
            params.design
        ))
    })?;
    let level = designs::AbsLevel::parse(&params.level).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown level `{}` (expected rtl, tlm-ca, tlm-at or tlm-at-bulk)",
            params.level
        ))
    })?;
    let modes: Vec<CheckerMode> = match params.checkers.as_str() {
        "both" => vec![CheckerMode::All, CheckerMode::None],
        other => vec![CheckerMode::parse(other).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown checker mode `{other}` (expected with, without, both or a count)"
            ))
        })?],
    };
    let mut plan = CampaignPlan::new(format!("{} @ {}", design.label(), level.label()))
        .runs(params.runs)
        .size(params.size)
        .seed(params.seed);
    for mode in modes {
        plan = plan.cell(design, level, mode);
    }
    let settings = match (&params.trace, params.deterministic) {
        (None, _) => TraceSettings::off(),
        (Some(_), true) => TraceSettings::deterministic(),
        (Some(_), false) => TraceSettings::on(),
    };
    let report = abv_campaign::run_campaign_with(&plan, params.workers, settings)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    if let Some(path) = &params.trace {
        std::fs::write(path, chrome_trace_json(&report.trace))
            .map_err(|e| CliError::Usage(format!("cannot write `{path}`: {e}")))?;
    }
    if params.deterministic {
        Ok(report.deterministic_summary())
    } else {
        Ok(report.to_string())
    }
}

/// Parameters of the `mutate` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutateParams {
    /// Restrict to one design (`des56`, `colorconv`, `fir`); `None` runs
    /// all three.
    pub design: Option<String>,
    /// Restrict to one level (`rtl`, `tlm-ca`, `tlm-at`); `None` runs all
    /// shared levels.
    pub level: Option<String>,
    /// Workload size per run.
    pub size: usize,
    /// Base seed (workloads and seeded bit-flip positions).
    pub seed: u64,
    /// Worker threads.
    pub workers: usize,
    /// Emit the schema-stable JSON report instead of the table.
    pub json: bool,
    /// Optional Chrome trace-event JSON output path (per-mutant run spans
    /// plus the `mutation:` kill-counter track; deterministic, so the
    /// file is byte-identical across `--workers` values).
    pub trace: Option<String>,
}

impl Default for MutateParams {
    fn default() -> MutateParams {
        MutateParams {
            design: None,
            level: None,
            size: 8,
            seed: 2015,
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            json: false,
            trace: None,
        }
    }
}

/// Runs the `mutate` command: expands the mutation plan, executes the
/// kill-matrix campaign and renders the matrix (table or JSON).
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown designs/levels, plans the
/// engine rejects and trace files that cannot be written.
pub fn run_mutate(params: &MutateParams) -> Result<String, CliError> {
    let mut plan = abv_mutate::MutationPlan::new()
        .size(params.size)
        .seed(params.seed);
    if let Some(design) = &params.design {
        let design = designs::DesignKind::parse(design).ok_or_else(|| {
            CliError::Usage(format!(
                "unknown design `{design}` (expected des56, colorconv or fir)"
            ))
        })?;
        plan = plan.design(design);
    }
    if let Some(level) = &params.level {
        let level = designs::AbsLevel::parse(level)
            .filter(|l| designs::AbsLevel::ALL.contains(l))
            .ok_or_else(|| {
                CliError::Usage(format!(
                    "unknown level `{level}` (expected rtl, tlm-ca or tlm-at)"
                ))
            })?;
        plan = plan.level(level);
    }
    let settings = if params.trace.is_some() {
        TraceSettings::deterministic()
    } else {
        TraceSettings::off()
    };
    let outcome = abv_mutate::run_mutation(&plan, params.workers, settings)
        .map_err(|e| CliError::Usage(e.to_string()))?;
    if let Some(path) = &params.trace {
        std::fs::write(path, chrome_trace_json(&outcome.campaign.trace))
            .map_err(|e| CliError::Usage(format!("cannot write `{path}`: {e}")))?;
    }
    if params.json {
        let mut json = outcome.matrix.to_json();
        json.push('\n');
        Ok(json)
    } else {
        Ok(outcome.matrix.to_string())
    }
}

/// Parameters of the `trace` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParams {
    /// `des56`, `colorconv` or `fir`.
    pub design: String,
    /// `rtl`, `tlm-ca`, `tlm-at` or `tlm-at-bulk`.
    pub level: String,
    /// Number of workload requests.
    pub requests: usize,
    /// Workload seed.
    pub seed: u64,
    /// Chrome trace-event JSON output path.
    pub out: String,
}

impl Default for TraceParams {
    fn default() -> TraceParams {
        TraceParams {
            design: "des56".to_owned(),
            level: "tlm-at".to_owned(),
            requests: 16,
            seed: 2015,
            out: "trace.json".to_owned(),
        }
    }
}

/// Runs the `trace` command: one fault-free simulation of the chosen
/// design/level with its full checker suite attached and a memory tracer
/// recording every span, instant and counter sample. The stream is
/// written as Chrome trace-event JSON and the checker report is returned
/// alongside a pointer to the file.
///
/// # Errors
///
/// Returns [`CliError::Usage`] for unknown designs/levels, suites that
/// do not attach, and output files that cannot be written.
pub fn run_trace(params: &TraceParams) -> Result<String, CliError> {
    let design = designs::DesignKind::parse(&params.design).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown design `{}` (expected des56, colorconv or fir)",
            params.design
        ))
    })?;
    let level = designs::AbsLevel::parse(&params.level).ok_or_else(|| {
        CliError::Usage(format!(
            "unknown level `{}` (expected rtl, tlm-ca, tlm-at or tlm-at-bulk)",
            params.level
        ))
    })?;
    let props = designs::properties_at(design, level);
    let mut built = designs::build(
        design,
        level,
        params.requests,
        params.seed,
        designs::Fault::None,
    )
    .map_err(|e| CliError::Usage(e.to_string()))?;
    // Tracer first, so checker track metadata lands in the stream.
    let (tracer, sink) = Tracer::memory();
    built.set_tracer(tracer);
    let binding = built.binding();
    let checkers = Checker::attach_all(&mut built.sim, &props, binding)
        .map_err(|(i, e)| CliError::Usage(format!("property {i}: {e}")))?;
    built.run();
    let end = built.end_ns;
    let report = Checker::collect(&mut built.sim, &checkers, end);
    let label = format!("{} @ {}", design.label(), level.label());
    let mut events = vec![TraceEvent::process_name(0, &label)];
    events.extend(sink.borrow_mut().take_events());
    std::fs::write(&params.out, chrome_trace_json(&events))
        .map_err(|e| CliError::Usage(format!("cannot write `{}`: {e}", params.out)))?;
    let mut out = format!(
        "wrote {} trace events to {} (load in ui.perfetto.dev or chrome://tracing)\n",
        events.len(),
        params.out
    );
    let _ = write!(out, "{}", render_report(&label, &report));
    Ok(out)
}

fn dump_vcd<S: AsRef<str>>(
    sim: &desim::Simulation,
    rec: rtlkit::RecorderHandle,
    path: &str,
    module: &str,
    signals: impl IntoIterator<Item = S>,
) -> Result<(), CliError> {
    let trace = WaveRecorder::take_trace(sim, rec);
    let options = rtlkit::vcd::VcdOptions {
        module: module.to_owned(),
        comment: "rtl2tlm demo".to_owned(),
    };
    let text = rtlkit::vcd::to_vcd_string(&trace, signals, &options)
        .map_err(|e| CliError::Usage(format!("vcd export failed: {e}")))?;
    std::fs::write(path, text).map_err(|e| CliError::Usage(format!("cannot write `{path}`: {e}")))
}

fn render_report(header: &str, report: &CheckReport) -> String {
    let mut out = format!("== {header} ==\n");
    let _ = write!(out, "{report}");
    let nodes: usize = report.properties.iter().map(|p| p.arena_nodes).sum();
    let hits: u64 = report.properties.iter().map(|p| p.memo_hits).sum();
    let misses: u64 = report.properties.iter().map(|p| p.memo_misses).sum();
    let lookups = hits + misses;
    if nodes > 0 {
        let pct = (hits * 100).checked_div(lookups).unwrap_or(0);
        let _ = writeln!(
            out,
            "arena: {nodes} nodes, memo hit rate {pct}% ({hits}/{lookups} lookups)"
        );
    }
    let verdict = if report.all_pass() {
        "ALL PASS"
    } else {
        "FAILURES PRESENT"
    };
    let _ = writeln!(out, "=> {verdict}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_runs_and_reports() {
        let params = CampaignParams {
            design: "colorconv".to_owned(),
            level: "tlm-ca".to_owned(),
            runs: 3,
            workers: 2,
            size: 5,
            seed: 7,
            checkers: "with".to_owned(),
            deterministic: false,
            trace: None,
        };
        let out = run_campaign(&params).unwrap();
        assert!(out.contains("campaign ColorConv @ TLM-CA"), "{out}");
        assert!(out.contains("verdict: PASS"), "{out}");
        assert!(out.contains("timing:"), "{out}");
    }

    #[test]
    fn campaign_deterministic_summary_is_worker_independent() {
        let mut params = CampaignParams {
            design: "des56".to_owned(),
            level: "tlm-at".to_owned(),
            runs: 4,
            workers: 1,
            size: 5,
            seed: 11,
            checkers: "both".to_owned(),
            deterministic: true,
            trace: None,
        };
        let solo = run_campaign(&params).unwrap();
        params.workers = 4;
        let pooled = run_campaign(&params).unwrap();
        assert_eq!(solo, pooled);
        assert!(!solo.contains("timing:"), "{solo}");
    }

    #[test]
    fn campaign_rejects_unknown_inputs() {
        let bad = [
            CampaignParams {
                design: "z80".to_owned(),
                ..CampaignParams::default()
            },
            CampaignParams {
                level: "gate".to_owned(),
                ..CampaignParams::default()
            },
            CampaignParams {
                checkers: "maybe".to_owned(),
                ..CampaignParams::default()
            },
            CampaignParams {
                design: "des56".to_owned(),
                level: "tlm-at-bulk".to_owned(),
                ..CampaignParams::default()
            },
        ];
        for params in bad {
            assert!(
                matches!(run_campaign(&params).unwrap_err(), CliError::Usage(_)),
                "{params:?} should be rejected"
            );
        }
    }

    #[test]
    fn mutate_renders_the_kill_matrix_table() {
        let params = MutateParams {
            design: Some("fir".to_owned()),
            level: Some("rtl".to_owned()),
            size: 3,
            seed: 7,
            workers: 2,
            json: false,
            trace: None,
        };
        let out = run_mutate(&params).unwrap();
        assert!(out.contains("kill matrix"), "{out}");
        assert!(out.contains("mutation score"), "{out}");
        assert!(out.contains("5/5"), "{out}");
        assert!(out.contains("clean"), "{out}");
        assert!(out.contains("no detection regressions"), "{out}");
    }

    #[test]
    fn mutate_json_is_worker_independent() {
        let mut params = MutateParams {
            design: Some("fir".to_owned()),
            level: None,
            size: 3,
            seed: 7,
            workers: 1,
            json: true,
            trace: None,
        };
        let solo = run_mutate(&params).unwrap();
        params.workers = 8;
        let pooled = run_mutate(&params).unwrap();
        assert_eq!(solo, pooled);
        assert!(
            solo.starts_with("{\"schema\":\"rtl2tlm-kill-matrix-v1\""),
            "{solo}"
        );
        assert!(solo.ends_with("\n"), "trailing newline");
    }

    #[test]
    fn mutate_rejects_unknown_inputs() {
        let bad = [
            MutateParams {
                design: Some("z80".to_owned()),
                ..MutateParams::default()
            },
            MutateParams {
                level: Some("gate".to_owned()),
                ..MutateParams::default()
            },
            MutateParams {
                level: Some("tlm-at-bulk".to_owned()),
                ..MutateParams::default()
            },
        ];
        for params in bad {
            assert!(
                matches!(run_mutate(&params).unwrap_err(), CliError::Usage(_)),
                "{params:?} should be rejected"
            );
        }
    }

    #[test]
    fn mutate_trace_carries_the_kill_counter_track() {
        let dir = std::env::temp_dir().join("rtl2tlm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mutate_trace.json");
        let params = MutateParams {
            design: Some("fir".to_owned()),
            level: Some("rtl".to_owned()),
            size: 3,
            seed: 7,
            workers: 2,
            json: true,
            trace: Some(path.to_string_lossy().into_owned()),
        };
        run_mutate(&params).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"name\":\"run\""), "{json}");
        assert!(json.contains("mutation:FIR:RTL"), "{json}");
        assert!(!json.contains("wall_us"), "deterministic trace: {json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn property_file_parsing() {
        let text = "# suite\n\n p4 : always (!ds || next[17] rdy) @clk_pos\nq: rdy @T_b\n";
        let props = parse_property_file(text).unwrap();
        assert_eq!(props.len(), 2);
        assert_eq!(props[0].name, "p4");
        assert!(props[1].property.context.is_transaction());
    }

    #[test]
    fn property_file_errors_carry_line_numbers() {
        let err = parse_property_file("ok: rdy @clk_pos\nbroken line\n").unwrap_err();
        assert_eq!(
            err,
            CliError::BadLine {
                line: 2,
                message: "expected `name: property`".to_owned()
            }
        );
        let err = parse_property_file("\n\nx: next[0] rdy\n").unwrap_err();
        assert!(matches!(err, CliError::BadLine { line: 3, .. }));
    }

    #[test]
    fn abstract_command_renders_fig3() {
        let props = parse_property_file(
            "p3: always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) \
             && next[17](rdy))) @clk_pos\n",
        )
        .unwrap();
        let out = run_abstract(
            &props,
            10,
            &[
                "rdy_next_cycle".to_owned(),
                "rdy_next_next_cycle".to_owned(),
            ],
        )
        .unwrap();
        assert!(
            out.contains("p3 (TLM): always ((!ds) || (next_et[1, 170] rdy)) @T_b"),
            "{out}"
        );
        assert!(out.contains("weakened"), "{out}");
        assert!(
            out.contains("removed: rdy_next_next_cycle, rdy_next_cycle"),
            "{out}"
        );
    }

    #[test]
    fn abstract_command_rejects_tlm_input() {
        let props = parse_property_file("q: rdy @T_b\n").unwrap();
        let err = run_abstract(&props, 10, &[]).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
    }

    #[test]
    fn demo_rtl_des56_passes() {
        let params = DemoParams {
            requests: 4,
            ..DemoParams::default()
        };
        let out = run_demo(&params).unwrap();
        assert!(out.contains("DES56 @ RTL"), "{out}");
        assert!(out.contains("ALL PASS"), "{out}");
    }

    #[test]
    fn demo_tlm_at_colorconv_reports_expected_failures() {
        // c9 and c10 are expected to fail at loose TLM-AT (classification),
        // so the overall verdict mentions failures — still a correct run.
        let params = DemoParams {
            design: "colorconv".to_owned(),
            level: "tlm-at".to_owned(),
            requests: 4,
            ..DemoParams::default()
        };
        let out = run_demo(&params).unwrap();
        assert!(out.contains("ColorConv @ TLM-AT"), "{out}");
        assert!(out.contains("c1: PASS"), "{out}");
    }

    #[test]
    fn demo_rejects_unknown_inputs() {
        let params = DemoParams {
            design: "nope".to_owned(),
            ..DemoParams::default()
        };
        assert!(matches!(run_demo(&params), Err(CliError::Usage(_))));
        let params = DemoParams {
            level: "nope".to_owned(),
            ..DemoParams::default()
        };
        assert!(matches!(run_demo(&params), Err(CliError::Usage(_))));
        let params = DemoParams {
            level: "tlm-at".to_owned(),
            vcd: Some("x.vcd".to_owned()),
            ..DemoParams::default()
        };
        assert!(matches!(run_demo(&params), Err(CliError::Usage(_))));
    }

    #[test]
    fn trace_command_writes_chrome_trace_json() {
        let dir = std::env::temp_dir().join("rtl2tlm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        let params = TraceParams {
            requests: 4,
            out: path.to_string_lossy().into_owned(),
            ..TraceParams::default()
        };
        let out = run_trace(&params).unwrap();
        assert!(out.contains("trace events"), "{out}");
        assert!(out.contains("DES56 @ TLM-AT"), "{out}");
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.starts_with("[\n") && json.ends_with("\n]\n"), "{json}");
        // Every checker-instance span that opened also closed.
        let begins = json.matches("\"ph\":\"B\"").count();
        assert!(begins > 0, "{json}");
        assert_eq!(begins, json.matches("\"ph\":\"E\"").count(), "{json}");
        // Kernel counter track and process/track labels are present.
        assert!(json.contains("\"ph\":\"C\""), "{json}");
        assert!(json.contains("\"process_name\""), "{json}");
        assert!(json.contains("\"thread_name\""), "{json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn campaign_trace_gets_one_process_per_run() {
        let dir = std::env::temp_dir().join("rtl2tlm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("campaign_trace.json");
        let params = CampaignParams {
            design: "des56".to_owned(),
            level: "tlm-at".to_owned(),
            runs: 2,
            workers: 2,
            size: 4,
            seed: 3,
            checkers: "with".to_owned(),
            deterministic: true,
            trace: Some(path.to_string_lossy().into_owned()),
        };
        run_campaign(&params).unwrap();
        let json = std::fs::read_to_string(&path).unwrap();
        assert!(json.contains("\"name\":\"run\""), "{json}");
        assert!(json.contains("\"pid\":0"), "{json}");
        assert!(json.contains("\"pid\":1"), "{json}");
        assert!(!json.contains("wall_us"), "deterministic trace: {json}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn trace_rejects_unknown_inputs() {
        let params = TraceParams {
            design: "nope".to_owned(),
            ..TraceParams::default()
        };
        assert!(matches!(run_trace(&params), Err(CliError::Usage(_))));
        let params = TraceParams {
            level: "gate".to_owned(),
            ..TraceParams::default()
        };
        assert!(matches!(run_trace(&params), Err(CliError::Usage(_))));
    }

    #[test]
    fn demo_writes_vcd() {
        let dir = std::env::temp_dir().join("rtl2tlm_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.vcd");
        let params = DemoParams {
            requests: 2,
            vcd: Some(path.to_string_lossy().into_owned()),
            ..DemoParams::default()
        };
        let out = run_demo(&params).unwrap();
        assert!(out.contains("ALL PASS"), "{out}");
        let vcd = std::fs::read_to_string(&path).unwrap();
        assert!(vcd.contains("$var wire 64"), "{vcd}");
        std::fs::remove_file(&path).ok();
    }
}
