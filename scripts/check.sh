#!/usr/bin/env sh
# Full local gate: formatting, lints (warnings are errors), build, tests.
# Usage: scripts/check.sh
set -eu

cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test -q --test trace_determinism"
cargo test -q --test trace_determinism

echo "==> cargo test -q -p abv-checker --test differential"
cargo test -q -p abv-checker --test differential

echo "==> cargo test -q -p desim --test sched_differential"
cargo test -q -p desim --test sched_differential

echo "==> cargo test -q -p abv-mutate --test rtl_vs_tlm_verdicts"
cargo test -q -p abv-mutate --test rtl_vs_tlm_verdicts

echo "==> rtl2tlm mutate --json (smoke)"
cargo run --release --bin rtl2tlm -- mutate --size 4 --workers 2 --json > /dev/null

echo "==> cargo bench -p abv-bench --bench checker_overhead (smoke)"
ABV_BENCH_BUDGET_MS=100 ABV_BENCH_SIZE=20 cargo bench -p abv-bench --bench checker_overhead

echo "==> cargo bench -p abv-bench --bench kernel_throughput (smoke)"
ABV_BENCH_BUDGET_MS=100 ABV_BENCH_SIZE=20 ABV_BENCH_STRESS=500 \
    cargo bench -p abv-bench --bench kernel_throughput

echo "==> cargo doc --no-deps -p abv-obs (warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps -p abv-obs

echo "All checks passed."
