#!/usr/bin/env sh
# Scheduler + checker benchmark smokes with machine-readable output.
#
# Runs the kernel_throughput comparison (two-tier scheduler vs reference
# heap) and writes BENCH_kernel.json to the repo root, then the
# mutation_throughput campaign scaling run (mutants/s at 1/2/8 workers,
# BENCH_mutation.json), then a checker_overhead smoke. Knobs (defaults
# chosen for a minutes-scale run):
#
#   ABV_BENCH_BUDGET_MS  per-cell time budget      (default 1000)
#   ABV_BENCH_SIZE       RTL workload size         (default 400)
#   ABV_BENCH_STRESS     stress-mix component count (default 10000)
#
# Usage: scripts/bench.sh
set -eu

cd "$(dirname "$0")/.."

: "${ABV_BENCH_BUDGET_MS:=1000}"
: "${ABV_BENCH_SIZE:=400}"
: "${ABV_BENCH_STRESS:=10000}"
export ABV_BENCH_BUDGET_MS ABV_BENCH_SIZE ABV_BENCH_STRESS

echo "==> cargo bench -p abv-bench --bench kernel_throughput -> BENCH_kernel.json"
ABV_BENCH_JSON="$(pwd)/BENCH_kernel.json" \
    cargo bench -p abv-bench --bench kernel_throughput

echo "==> cargo bench -p abv-bench --bench mutation_throughput -> BENCH_mutation.json"
ABV_BENCH_JSON="$(pwd)/BENCH_mutation.json" ABV_BENCH_SIZE=8 \
    cargo bench -p abv-bench --bench mutation_throughput

echo "==> cargo bench -p abv-bench --bench checker_overhead (smoke)"
ABV_BENCH_BUDGET_MS=100 ABV_BENCH_SIZE=20 \
    cargo bench -p abv-bench --bench checker_overhead

echo "Wrote BENCH_kernel.json and BENCH_mutation.json."
