//! Full DES56 flow: verify the RTL model with the RTL suite, abstract the
//! suite, verify the TLM-AT model with the abstracted suite, then inject a
//! latency bug into the TLM model and watch the abstracted checkers catch
//! it.
//!
//! ```text
//! cargo run --example des56_verification
//! ```

use abv_checker::{Binding, Checker};
use abv_core::{abstract_suite, AbstractionConfig};
use designs::des56::{self, DesMutation, DesWorkload};
use designs::CLOCK_PERIOD_NS;
use psl::ClockedProperty;
use tlmkit::CodingStyle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = DesWorkload::mixed(16, 2026);
    let suite = des56::suite();

    // 1. Dynamic ABV of the RTL model with the original properties.
    println!("== RTL verification (9 properties) ==");
    let mut rtl = des56::build_rtl(&workload, DesMutation::None);
    let named: Vec<(String, ClockedProperty)> =
        suite.iter().map(designs::SuiteEntry::named).collect();
    let checkers = Checker::attach_all(&mut rtl.sim, &named, Binding::clock(rtl.clk.signal))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    rtl.run();
    let report = Checker::collect(&mut rtl.sim, &checkers, rtl.end_ns);
    print!("{report}");

    // 2. Abstract the suite for the TLM-AT model.
    println!("\n== Property abstraction ==");
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(des56::ABSTRACTED_SIGNALS.iter().copied());
    let rtl_props: Vec<ClockedProperty> = suite.iter().map(|e| e.rtl.clone()).collect();
    let abstractions =
        abstract_suite(&rtl_props, &cfg).map_err(|(i, e)| format!("property {i}: {e}"))?;
    let mut tlm_props: Vec<(String, ClockedProperty)> = Vec::new();
    for (entry, abstraction) in suite.iter().zip(&abstractions) {
        println!("{}: {abstraction}", entry.name);
        if let Some(q) = abstraction.result() {
            // Skip properties whose abstraction references instants the
            // loose AT model never produces (see DESIGN.md §5b).
            if entry.class != designs::PropertyClass::CaOnly {
                tlm_props.push((entry.name.to_owned(), q.clone()));
            }
        }
    }

    // 3. Dynamic ABV of the correct TLM-AT model.
    println!("\n== TLM-AT verification (abstracted properties) ==");
    let mut tlm = des56::build_tlm_at(
        &workload,
        DesMutation::None,
        CodingStyle::ApproximatelyTimedLoose,
    );
    let checkers = Checker::attach_all(&mut tlm.sim, &tlm_props, Binding::bus(&tlm.bus))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    tlm.run();
    let report = Checker::collect(&mut tlm.sim, &checkers, tlm.end_ns);
    print!("{report}");
    assert!(report.all_pass(), "the correct TLM model must pass");

    // 4. Inject a bug: the TLM model completes one cycle late.
    println!("\n== TLM-AT verification of a buggy abstraction (latency 18) ==");
    let mut buggy = des56::build_tlm_at(
        &workload,
        DesMutation::LatencyLong,
        CodingStyle::ApproximatelyTimedLoose,
    );
    let checkers = Checker::attach_all(&mut buggy.sim, &tlm_props, Binding::bus(&buggy.bus))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    buggy.run();
    let report = Checker::collect(&mut buggy.sim, &checkers, buggy.end_ns);
    print!("{report}");
    let failing: Vec<&str> = report
        .properties
        .iter()
        .filter(|p| p.failure_count > 0)
        .map(|p| p.name.as_str())
        .collect();
    println!("\ncaught by: {}", failing.join(", "));
    assert!(!failing.is_empty(), "the latency bug must be caught");
    Ok(())
}
