//! Bring-your-own-IP walkthrough: wire a custom design into the
//! verification flow from scratch.
//!
//! The IP is a tiny accumulator: a `load` strobe latches `value`; two
//! cycles later `sum` (a running total) is updated and `ack` pulses. We
//! model it at RTL, write two PSL properties, check them at RTL, abstract
//! them, and check the abstraction on a hand-written TLM model of the same
//! IP — the complete paper flow on a design this repository has never seen.
//!
//! ```text
//! cargo run --example custom_ip
//! ```

use abv_checker::{Binding, Checker};
use abv_core::{abstract_property, AbstractionConfig};
use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use psl::ClockedProperty;
use rtlkit::{Clock, EdgeDetector};
use tlmkit::{Transaction, TransactionBus};

/// The accumulator at RTL: latency 2, `ack` is a one-cycle pulse.
struct AccumulatorRtl {
    clk: SignalId,
    det: EdgeDetector,
    load: SignalId,
    value: SignalId,
    sum: SignalId,
    ack: SignalId,
    total: u64,
    countdown: u32,
    staged: u64,
}

impl Component for AccumulatorRtl {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        if !self.det.is_rising(ctx.read(self.clk)) {
            return;
        }
        ctx.write(self.ack, 0);
        if self.countdown > 0 {
            self.countdown -= 1;
            if self.countdown == 0 {
                self.total = self.total.wrapping_add(self.staged);
                ctx.write(self.sum, self.total);
                ctx.write(self.ack, 1);
            }
        }
        if self.countdown == 0 && ctx.read(self.load) != 0 {
            self.staged = ctx.read(self.value);
            self.countdown = 2;
        }
    }
}

/// Drives `load` pulses every 5 cycles.
struct Stimulus {
    clk: SignalId,
    det: EdgeDetector,
    load: SignalId,
    value: SignalId,
    inputs: Vec<u64>,
    cycle: u64,
}

impl Component for Stimulus {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        if !self.det.is_falling(ctx.read(self.clk)) {
            return;
        }
        self.cycle += 1;
        if self.cycle % 5 == 1 {
            if let Some(v) = self.inputs.pop() {
                ctx.write(self.load, 1);
                ctx.write(self.value, v);
                return;
            }
        }
        ctx.write(self.load, 0);
    }
}

/// The same IP at TLM-AT: one write per load, one read at `t + 2 cycles`.
struct AccumulatorTlm {
    bus: TransactionBus,
    load: SignalId,
    value: SignalId,
    sum: SignalId,
    ack: SignalId,
    total: u64,
    pending: u64,
}

impl Component for AccumulatorTlm {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        if ev.kind & 1 == 0 {
            // Write: submit the addend.
            self.pending = ev.kind >> 1;
            ctx.write(self.load, 1);
            ctx.write(self.value, self.pending);
            ctx.write(self.ack, 0);
            self.bus
                .publish(ctx, Transaction::write(0, self.pending, ev.time));
            ctx.schedule_self(20, 1); // read 2 cycles (20 ns) later
        } else {
            // Read: fetch the updated sum.
            self.total = self.total.wrapping_add(self.pending);
            ctx.write(self.load, 0);
            ctx.write(self.sum, self.total);
            ctx.write(self.ack, 1);
            self.bus
                .publish(ctx, Transaction::read(0, self.total, ev.time));
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The RTL properties: completion in 2 cycles, ack never sticks.
    let properties: Vec<(String, ClockedProperty)> = vec![
        (
            "a1".to_owned(),
            "always (!load || next[2] ack) @clk_pos".parse()?,
        ),
        (
            "a2".to_owned(),
            "always (!load || next[2] (sum != 0)) @clk_pos".parse()?,
        ),
    ];

    // 2. RTL verification.
    let mut sim = Simulation::new();
    let clk = Clock::install(&mut sim, "clk", 10);
    let load = sim.add_signal("load", 0);
    let value = sim.add_signal("value", 0);
    let sum = sim.add_signal("sum", 0);
    let ack = sim.add_signal("ack", 0);
    let dut = sim.add_component(AccumulatorRtl {
        clk: clk.signal,
        det: EdgeDetector::new(),
        load,
        value,
        sum,
        ack,
        total: 0,
        countdown: 0,
        staged: 0,
    });
    sim.subscribe(clk.signal, dut, 0);
    let stim = sim.add_component(Stimulus {
        clk: clk.signal,
        det: EdgeDetector::new(),
        load,
        value,
        inputs: vec![7, 11, 13, 42],
        cycle: 0,
    });
    sim.subscribe(clk.signal, stim, 0);
    let checkers = Checker::attach_all(&mut sim, &properties, Binding::clock(clk.signal))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    sim.run_until(SimTime::from_ns(400));
    let report = Checker::collect(&mut sim, &checkers, 400);
    println!("== accumulator @ RTL ==");
    print!("{report}");
    assert!(report.all_pass());

    // 3. Abstraction (10 ns clock, nothing to delete for this IP).
    let cfg = AbstractionConfig::new(10);
    let tlm_properties: Vec<(String, ClockedProperty)> = properties
        .iter()
        .map(|(n, p)| {
            let q = abstract_property(p, &cfg)?.into_property().expect("kept");
            Ok::<_, abv_core::AbstractError>((n.clone(), q))
        })
        .collect::<Result<_, _>>()?;
    println!("\n== abstracted properties ==");
    for (n, q) in &tlm_properties {
        println!("{n}: {q}");
    }

    // 4. TLM-AT verification of the same stimulus.
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let load = sim.add_signal("load", 0);
    let value = sim.add_signal("value", 0);
    let sum = sim.add_signal("sum", 0);
    let ack = sim.add_signal("ack", 0);
    let model = sim.add_component(AccumulatorTlm {
        bus: bus.clone(),
        load,
        value,
        sum,
        ack,
        total: 0,
        pending: 0,
    });
    for (i, v) in [42u64, 13, 11, 7].iter().enumerate() {
        // Loads at the same instants the RTL model samples them.
        sim.schedule(SimTime::from_ns(20 + 50 * i as u64), model, v << 1);
    }
    let checkers = Checker::attach_all(&mut sim, &tlm_properties, Binding::bus(&bus))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    sim.run_to_completion();
    let end = sim.now().as_ns();
    let report = Checker::collect(&mut sim, &checkers, end);
    println!("\n== accumulator @ TLM-AT ==");
    print!("{report}");
    assert!(report.all_pass());
    println!("\nThe same two properties verified both models without rewriting them by hand.");
    Ok(())
}
