//! ColorConv flow: stream pixels through the 8-stage RTL pipeline and the
//! TLM-AT model, checking the studio-range and latency properties at both
//! levels, and show the signal-abstraction classifications.
//!
//! ```text
//! cargo run --example colorconv_pipeline
//! ```

use abv_checker::{Binding, Checker};
use abv_core::{abstract_property, AbstractionConfig};
use designs::colorconv::{self, ConvMutation, ConvWorkload};
use designs::{PropertyClass, CLOCK_PERIOD_NS};
use psl::ClockedProperty;
use tlmkit::CodingStyle;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = ConvWorkload::mixed(24, 601);
    let suite = colorconv::suite();

    println!("== RTL verification (12 properties) ==");
    let mut rtl = colorconv::build_rtl(&workload, ConvMutation::None);
    let named: Vec<(String, ClockedProperty)> =
        suite.iter().map(designs::SuiteEntry::named).collect();
    let checkers = Checker::attach_all(&mut rtl.sim, &named, Binding::clock(rtl.clk.signal))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    rtl.run();
    let report = Checker::collect(&mut rtl.sim, &checkers, rtl.end_ns);
    print!("{report}");
    assert!(report.all_pass());

    println!("\n== Abstraction classifications ==");
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(colorconv::ABSTRACTED_SIGNALS.iter().copied());
    let mut at_props: Vec<(String, ClockedProperty)> = Vec::new();
    for entry in &suite {
        let a = abstract_property(&entry.rtl, &cfg)?;
        println!(
            "{:>3}: {:<28} {}",
            entry.name,
            format!("[{:?}]", entry.class),
            a.result()
                .map_or("(deleted)".to_owned(), ToString::to_string)
        );
        if let (Some(q), PropertyClass::AtCompatible) = (a.result(), entry.class) {
            at_props.push((entry.name.to_owned(), q.clone()));
        }
    }

    println!(
        "\n== TLM-AT verification ({} AT-compatible properties) ==",
        at_props.len()
    );
    let mut tlm = colorconv::build_tlm_at(
        &workload,
        ConvMutation::None,
        CodingStyle::ApproximatelyTimedLoose,
    );
    let checkers = Checker::attach_all(&mut tlm.sim, &at_props, Binding::bus(&tlm.bus))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    tlm.run();
    let report = Checker::collect(&mut tlm.sim, &checkers, tlm.end_ns);
    print!("{report}");
    assert!(report.all_pass());

    println!("\n== TLM-AT with corrupted luma (injected bug) ==");
    let mut buggy = colorconv::build_tlm_at(
        &workload,
        ConvMutation::CorruptLuma,
        CodingStyle::ApproximatelyTimedLoose,
    );
    let checkers = Checker::attach_all(&mut buggy.sim, &at_props, Binding::bus(&buggy.bus))
        .map_err(|(i, e)| format!("property {i}: {e}"))?;
    buggy.run();
    let report = Checker::collect(&mut buggy.sim, &checkers, buggy.end_ns);
    let failing: Vec<&str> = report
        .properties
        .iter()
        .filter(|p| p.failure_count > 0)
        .map(|p| p.name.as_str())
        .collect();
    println!("caught by: {}", failing.join(", "));
    assert!(!failing.is_empty());
    Ok(())
}
