//! Quickstart: abstract the paper's Fig. 3 properties from RTL to TLM.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use abv_core::{abstract_property, AbstractionConfig};
use psl::ClockedProperty;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The RTL DES56 properties of Fig. 3 (clock period: 10 ns).
    let rtl_properties = [
        (
            "p1",
            "always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos",
        ),
        (
            "p2",
            "always (!ds || (next ((!ds) until next rdy))) @clk_pos",
        ),
        (
            "p3",
            "always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) \
             && next[17](rdy))) @clk_pos",
        ),
    ];

    // The TLM model abstracted the ready-prediction outputs away.
    let cfg = AbstractionConfig::new(10)
        .abstract_signal("rdy_next_cycle")
        .abstract_signal("rdy_next_next_cycle");

    println!("RTL-to-TLM property abstraction (paper Fig. 3)\n");
    for (name, src) in rtl_properties {
        let p: ClockedProperty = src.parse()?;
        let abstraction = abstract_property(&p, &cfg)?;
        println!("{name} (RTL): {p}");
        match abstraction.result() {
            Some(q) => println!("{name} (TLM): {q}"),
            None => println!("{name} (TLM): deleted — meaningless after protocol abstraction"),
        }
        println!("  relationship: {}", abstraction.consequence());
        if !abstraction.removed_atoms().is_empty() {
            let removed: Vec<String> = abstraction
                .removed_atoms()
                .iter()
                .map(ToString::to_string)
                .collect();
            println!("  removed subformulas over: {}", removed.join(", "));
        }
        println!();
    }
    Ok(())
}
