//! Section III-A ablation as a runnable demo: naive `next[n] → next[m]`
//! transaction-count rescaling versus the paper's `next_ε^τ` operator,
//! side by side on the loose and strict TLM-AT models.
//!
//! ```text
//! cargo run --example naive_vs_next_et
//! ```

use abv_checker::{Binding, Checker};
use abv_core::{abstract_property, naive::naive_scale, AbstractionConfig};
use designs::des56::{self, DesMutation, DesWorkload};
use designs::CLOCK_PERIOD_NS;
use psl::{ClockedProperty, EvalContext};
use tlmkit::CodingStyle;

fn check(name: &str, property: &ClockedProperty, style: CodingStyle) -> String {
    let workload = DesWorkload::mixed(10, 77);
    let mut built = des56::build_tlm_at(&workload, DesMutation::None, style);
    let checkers = Checker::attach_all(
        &mut built.sim,
        &[(name.to_owned(), property.clone())],
        Binding::bus(&built.bus),
    )
    .expect("installs");
    built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    let p = &report.properties[0];
    if p.failure_count == 0 {
        format!("PASS ({} completions)", p.completions)
    } else {
        format!(
            "FAIL ({} failures, first: {})",
            p.failure_count, p.failures[0]
        )
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let suite = des56::suite();
    let p4 = &suite.iter().find(|e| e.name == "p4").expect("p4").rtl;
    println!("RTL property p4: {p4}\n");

    // Naive: "one transaction covers the 17 cycles".
    let pushed = psl::push_ahead::push_ahead(&psl::nnf::to_nnf(&p4.property))?;
    let naive = ClockedProperty::new(naive_scale(&pushed, 17)?, EvalContext::tb());
    println!("naive rescaling : {naive}");

    // The methodology's abstraction.
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS);
    let q4 = abstract_property(p4, &cfg)?.into_property().expect("kept");
    println!("next_et         : {q4}\n");

    for style in [
        CodingStyle::ApproximatelyTimedLoose,
        CodingStyle::ApproximatelyTimedStrict,
    ] {
        println!(
            "{style} (transactions per block: {}):",
            if style == CodingStyle::ApproximatelyTimedLoose {
                2
            } else {
                4
            }
        );
        println!("  naive   : {}", check("naive", &naive, style));
        println!("  next_et : {}", check("q4", &q4, style));
        println!();
    }
    println!(
        "The extra strobe-release transaction of the strict model becomes an\n\
         unexpected evaluation point: `next[1]` now lands 10ns after the\n\
         write instead of at the read — the inopportune failure the paper\n\
         uses to motivate next_e^t (Section III-A)."
    );
    Ok(())
}
