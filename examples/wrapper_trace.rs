//! Fig. 5 walk-through: the evolution of the TLM wrapper for property
//! `q3 = always (!ds || next_et[1,170] rdy) @T_b`, printed transaction by
//! transaction — activations, table registrations, completions, and the
//! failure raised when a transaction arrives past an unconsumed
//! evaluation point.
//!
//! ```text
//! cargo run --example wrapper_trace
//! ```

use abv_checker::{Binding, Checker};
use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use psl::ClockedProperty;
use tlmkit::{Transaction, TransactionBus};

/// Replays a scripted `(time, ds, rdy)` transaction stream.
struct ScriptedModel {
    bus: TransactionBus,
    ds: SignalId,
    rdy: SignalId,
    script: Vec<(u64, u64, u64)>,
    next: usize,
}

impl Component for ScriptedModel {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let (_, ds, rdy) = self.script[self.next];
        ctx.write(self.ds, ds);
        ctx.write(self.rdy, rdy);
        self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
        self.next += 1;
        if let Some(&(t, _, _)) = self.script.get(self.next) {
            ctx.schedule_self(t - ev.time.as_ns(), 0);
        }
    }
}

/// Prints the wrapper state after each transaction.
struct Narrator {
    bus: TransactionBus,
    host: desim::ComponentId,
    ds: SignalId,
    rdy: SignalId,
}

impl Component for Narrator {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let _ = &self.bus;
        let _ = self.host;
        println!(
            "  tx @{:>4}ns  ds={} rdy={}",
            ev.time.as_ns(),
            ctx.read(self.ds),
            ctx.read(self.rdy)
        );
    }
}

fn main() {
    println!("Wrapper evolution for q3 = always (!ds || next_et[1,170] rdy) @T_b");
    println!("(compare with the paper's Fig. 5)\n");

    // ds fires at 170ns; transactions every 10ns up to 330ns; the instant
    // 340ns (= 170 + 170) has NO transaction; the next one is at 350ns.
    let mut script: Vec<(u64, u64, u64)> = Vec::new();
    for t in (170..=330).step_by(10) {
        script.push((t, u64::from(t == 170), 0));
    }
    script.push((350, 0, 1));

    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let ds = sim.add_signal("ds", 0);
    let rdy = sim.add_signal("rdy", 0);
    let first = script[0].0;
    let model = sim.add_component(ScriptedModel {
        bus: bus.clone(),
        ds,
        rdy,
        script,
        next: 0,
    });
    sim.schedule(SimTime::from_ns(first), model, 0);

    let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b"
        .parse()
        .expect("parses");
    let checker = Checker::attach(&mut sim, "q3", &q3, Binding::bus(&bus)).expect("attaches");

    let narrator = sim.add_component(Narrator {
        bus: bus.clone(),
        host: checker.component_id(),
        ds,
        rdy,
    });
    bus.subscribe(narrator, 9);

    sim.run_to_completion();
    let end = sim.now().as_ns();
    let report = checker.finalize(&mut sim, end);

    println!("\n{report}");
    println!("\nfirst failure: {}", report.failures[0]);
    println!(
        "\nThe firing at 170ns registered evaluation point 340ns in the\n\
         wrapper's table; the next transaction only arrived at 350ns, so the\n\
         wrapper raised the failure — exactly the C[3] case of Fig. 5."
    );
}
