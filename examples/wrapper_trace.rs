//! End-to-end tour of the structured tracing layer on DES56 @ TLM-AT:
//! attach the abstracted suite, record every span/instant/counter into a
//! memory sink, and replay the checker-instance lifecycle — activation,
//! `next_ε^τ` obligation registration, evaluation, pass — from the
//! recorded events. A second run injects a latency fault so the same
//! tracks show the wrapper's timeout-fail (missed evaluation instant)
//! case. This is the dynamic version of the paper's Fig. 5 wrapper
//! walk-through; `rtl2tlm trace` exports the same stream as Chrome
//! trace-event JSON for ui.perfetto.dev.
//!
//! ```text
//! cargo run --example wrapper_trace
//! ```

use std::collections::HashMap;

use abv_checker::{CheckReport, Checker};
use abv_obs::{chrome_trace_json, ArgValue, Phase, TraceEvent, Tracer};
use designs::{AbsLevel, DesignKind, Fault};

/// Builds DES56 at TLM-AT, runs it traced under the full abstracted
/// suite, and returns the recorded events plus the checker report.
fn traced_run(fault: Fault) -> (Vec<TraceEvent>, CheckReport) {
    let props = designs::properties_at(DesignKind::Des56, AbsLevel::TlmAt);
    let mut built =
        designs::build(DesignKind::Des56, AbsLevel::TlmAt, 6, 2015, fault).expect("builds");
    // Tracer first, so checker track metadata lands in the stream.
    let (tracer, sink) = Tracer::memory();
    built.set_tracer(tracer);
    let binding = built.binding();
    let checkers = Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
    built.run();
    let end = built.end_ns;
    let report = Checker::collect(&mut built.sim, &checkers, end);
    let events = sink.borrow_mut().take_events();
    (events, report)
}

/// Track labels recorded as `thread_name` metadata, keyed by tid.
fn track_names(events: &[TraceEvent]) -> HashMap<u64, String> {
    events
        .iter()
        .filter(|e| e.phase == Phase::Meta && e.name == "thread_name")
        .filter_map(|e| match e.args.first() {
            Some((_, ArgValue::Str(name))) => Some((e.tid, name.clone())),
            _ => None,
        })
        .collect()
}

/// Prints the lifecycle events of every track whose label starts with
/// `property` (the base track plus its per-instance tracks).
fn render_property(events: &[TraceEvent], names: &HashMap<u64, String>, property: &str) {
    let mut open: HashMap<u64, u64> = HashMap::new();
    for ev in events {
        let Some(track) = names.get(&ev.tid) else {
            continue;
        };
        if !track.starts_with(property) {
            continue;
        }
        let args: Vec<String> = ev
            .args
            .iter()
            .map(|(k, v)| match v {
                ArgValue::U64(n) => format!("{k}={n}"),
                ArgValue::Str(s) => format!("{k}={s}"),
            })
            .collect();
        match ev.phase {
            Phase::Begin => {
                open.insert(ev.tid, ev.ts_ns);
                println!(
                    "  @{:>5}ns  {track:<6} activate [{}]",
                    ev.ts_ns,
                    args.join(", ")
                );
            }
            Phase::End => {
                let lived = open
                    .remove(&ev.tid)
                    .map_or_else(String::new, |t0| format!(" (lived {}ns)", ev.ts_ns - t0));
                println!("  @{:>5}ns  {track:<6} retire{lived}", ev.ts_ns);
            }
            Phase::Instant => {
                println!(
                    "  @{:>5}ns  {track:<6} {} [{}]",
                    ev.ts_ns,
                    ev.name,
                    args.join(", ")
                );
            }
            Phase::Counter | Phase::Meta => {}
        }
    }
}

fn print_metrics(report: &CheckReport) {
    for p in &report.properties {
        println!(
            "  {:<4} activations={:<3} peak-live={:<2} timeout-fails={:<2} latency[{}]",
            p.name, p.activations, p.max_live_instances, p.timeout_fails, p.latency
        );
    }
}

fn main() {
    println!("Checker-lifecycle tracing on DES56 @ TLM-AT (cf. paper Fig. 5)");
    println!("==============================================================\n");

    let (events, report) = traced_run(Fault::None);
    let names = track_names(&events);

    println!("fault-free run, property p4 = always (!ds || next_et[1,170] rdy) @T_b:");
    println!("(span begin = instance allocated from the pool, span end = slot freed)\n");
    render_property(&events, &names, "p4");

    println!("\nper-property metrics (fault-free):");
    print_metrics(&report);

    let (fault_events, fault_report) = traced_run(Fault::LatencyShort);
    let fault_names = track_names(&fault_events);
    println!("\nsame run with Fault::LatencyShort injected — p4's obligations now");
    println!("miss their registered evaluation instants (Fig. 5's C[3] case):\n");
    render_property(&fault_events, &fault_names, "p4");

    println!("\nper-property metrics (faulty):");
    print_metrics(&fault_report);

    let json = chrome_trace_json(&fault_events);
    let preview: Vec<&str> = json.lines().take(4).collect();
    println!(
        "\nThe same stream exports as Chrome trace-event JSON ({} events;\n\
         see `rtl2tlm trace --design des56 --level tlm-at --out trace.json`):\n",
        fault_events.len()
    );
    for line in preview {
        println!("  {line}");
    }
    println!("  ...");
}
