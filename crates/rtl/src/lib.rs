//! `rtlkit` — RTL modelling layer on top of the [`desim`] kernel.
//!
//! Provides the pieces an RTL (cycle-accurate) model needs beyond the raw
//! kernel:
//!
//! - [`Clock`]: a free-running clock component with rising edges at
//!   `period, 2·period, …`;
//! - [`EdgeDetector`]: classifies a clock-change wake-up as rising/falling;
//! - [`WaveRecorder`]: samples a set of signals at clock edges into a
//!   [`psl::Trace`], the oracle format for property evaluation;
//! - [`vcd`]: Value Change Dump export of recorded traces for waveform
//!   viewers;
//! - [`SignalMapEnv`]: adapter evaluating property atoms against kernel
//!   signals.
//!
//! # Sampling discipline
//!
//! Values are sampled *postponed*: a recorder woken by a clock edge
//! re-schedules itself one delta later, so it observes the values committed
//! by the design's clocked processes at that same edge. Under this
//! discipline "the output is valid `n` cycles after the strobe" means the
//! output is visible at the `n`-th edge sample after the one sampling the
//! strobe, which is the convention all property suites in `designs` use.

mod clock;
mod env;
mod recorder;
pub mod vcd;

pub use clock::{Clock, ClockHandle, EdgeDetector};
pub use env::SignalMapEnv;
pub use recorder::{RecorderHandle, WaveRecorder};
