//! Evaluating property atoms against kernel signals.

use std::collections::HashMap;

use desim::{SignalId, SimCtx, Simulation};
use psl::SignalEnv;

/// A name → [`SignalId`] map plus a signal reader, usable as a
/// [`psl::SignalEnv`] for atom and guard evaluation.
///
/// Resolve the map once at install time with [`SignalMapEnv::resolve`];
/// during simulation, wrap the current [`SimCtx`] with
/// [`SignalMapEnv::with_ctx`].
///
/// ```
/// use desim::Simulation;
/// use psl::{Atom, SignalEnv};
/// use rtlkit::SignalMapEnv;
///
/// let mut sim = Simulation::new();
/// let rdy = sim.add_signal("rdy", 1);
/// let map = SignalMapEnv::resolve(&sim, ["rdy"]).expect("rdy exists");
/// let env = map.with_sim(&sim);
/// assert_eq!(env.signal("rdy"), Some(1));
/// assert!(Atom::bool("rdy").eval(&env).unwrap());
/// # let _ = rdy;
/// ```
#[derive(Debug, Clone, Default)]
pub struct SignalMapEnv {
    map: HashMap<String, SignalId>,
}

impl SignalMapEnv {
    /// Resolves each name against the simulation's signal registry.
    ///
    /// # Errors
    ///
    /// Returns the first name that does not exist.
    pub fn resolve<S: AsRef<str>>(
        sim: &Simulation,
        names: impl IntoIterator<Item = S>,
    ) -> Result<SignalMapEnv, String> {
        let mut map = HashMap::new();
        for name in names {
            let name = name.as_ref();
            match sim.signal_id(name) {
                Some(id) => {
                    map.insert(name.to_owned(), id);
                }
                None => return Err(name.to_owned()),
            }
        }
        Ok(SignalMapEnv { map })
    }

    /// The resolved id for `name`, if present.
    #[must_use]
    pub fn id(&self, name: &str) -> Option<SignalId> {
        self.map.get(name).copied()
    }

    /// Number of resolved signals.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no signals were resolved.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Pairs the map with a live event context for atom evaluation.
    #[must_use]
    pub fn with_ctx<'a>(&'a self, ctx: &'a SimCtx<'a>) -> CtxEnv<'a> {
        CtxEnv { map: self, ctx }
    }

    /// Pairs the map with a whole simulation (outside event handling).
    #[must_use]
    pub fn with_sim<'a>(&'a self, sim: &'a Simulation) -> SimEnv<'a> {
        SimEnv { map: self, sim }
    }

    /// Iterates the resolved `(name, id)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, SignalId)> {
        self.map.iter().map(|(n, id)| (n.as_str(), *id))
    }
}

/// [`SignalEnv`] view over a live [`SimCtx`].
pub struct CtxEnv<'a> {
    map: &'a SignalMapEnv,
    ctx: &'a SimCtx<'a>,
}

impl SignalEnv for CtxEnv<'_> {
    fn signal(&self, name: &str) -> Option<u64> {
        self.map.id(name).map(|id| self.ctx.read(id))
    }
}

/// [`SignalEnv`] view over a [`Simulation`] (for pre/post-run checks).
pub struct SimEnv<'a> {
    map: &'a SignalMapEnv,
    sim: &'a Simulation,
}

impl SignalEnv for SimEnv<'_> {
    fn signal(&self, name: &str) -> Option<u64> {
        self.map.id(name).map(|id| self.sim.signal(id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_reports_missing_name() {
        let mut sim = Simulation::new();
        sim.add_signal("a", 0);
        let err = SignalMapEnv::resolve(&sim, ["a", "b"]).unwrap_err();
        assert_eq!(err, "b");
    }

    #[test]
    fn sim_env_reads_current_values() {
        let mut sim = Simulation::new();
        let a = sim.add_signal("a", 3);
        let map = SignalMapEnv::resolve(&sim, ["a"]).unwrap();
        assert_eq!(map.with_sim(&sim).signal("a"), Some(3));
        assert_eq!(map.with_sim(&sim).signal("zzz"), None);
        assert_eq!(map.id("a"), Some(a));
        assert_eq!(map.len(), 1);
        assert!(!map.is_empty());
    }
}
