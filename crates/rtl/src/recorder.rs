//! Waveform capture into [`psl::Trace`].

use desim::{Component, ComponentId, Event, SignalId, SimCtx, Simulation};
use psl::trace::{Step, Trace};
use psl::ClockEdge;

use crate::clock::EdgeDetector;

const KIND_CLK: u64 = 0;
const KIND_SAMPLE: u64 = 1;

/// Samples a set of signals at clock edges, building a [`psl::Trace`].
///
/// The recorder implements the *postponed* sampling discipline (see the
/// [crate docs](crate)): woken by a clock change, it re-schedules itself one
/// delta later so the sampled values include everything the design's
/// clocked processes committed at that edge.
///
/// Install with [`WaveRecorder::install`]; after the run, extract the trace
/// through the returned [`RecorderHandle`].
pub struct WaveRecorder {
    clk: SignalId,
    edge: ClockEdge,
    det: EdgeDetector,
    watch: Vec<(String, SignalId)>,
    trace: Trace,
}

/// Handle to a [`WaveRecorder`] component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderHandle {
    /// The recorder component.
    pub component: ComponentId,
}

impl WaveRecorder {
    /// Registers a recorder sampling `signals` (by name) at the given edges
    /// of `clk`.
    ///
    /// # Panics
    ///
    /// Panics if a watched signal name does not exist.
    pub fn install<S: AsRef<str>>(
        sim: &mut Simulation,
        clk: SignalId,
        edge: ClockEdge,
        signals: impl IntoIterator<Item = S>,
    ) -> RecorderHandle {
        let watch: Vec<(String, SignalId)> = signals
            .into_iter()
            .map(|n| {
                let n = n.as_ref();
                let id = sim
                    .signal_id(n)
                    .unwrap_or_else(|| panic!("watched signal `{n}` does not exist"));
                (n.to_owned(), id)
            })
            .collect();
        let rec = WaveRecorder {
            clk,
            edge,
            det: EdgeDetector::new(),
            watch,
            trace: Trace::new(),
        };
        let component = sim.add_component(rec);
        sim.subscribe(clk, component, KIND_CLK);
        RecorderHandle { component }
    }

    /// The trace captured so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Consumes the recorder, returning the captured trace.
    #[must_use]
    pub fn into_trace(self) -> Trace {
        self.trace
    }

    /// Extracts a clone of the captured trace from a finished simulation.
    ///
    /// # Panics
    ///
    /// Panics if `handle` does not refer to a `WaveRecorder` of `sim`.
    #[must_use]
    pub fn take_trace(sim: &Simulation, handle: RecorderHandle) -> Trace {
        sim.component::<WaveRecorder>(handle.component)
            .expect("handle must refer to a WaveRecorder")
            .trace()
            .clone()
    }
}

impl Component for WaveRecorder {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        match ev.kind {
            KIND_CLK => {
                let v = ctx.read(self.clk);
                let matched = match self.edge {
                    ClockEdge::Pos => self.det.is_rising(v),
                    ClockEdge::Neg => self.det.is_falling(v),
                    // Base context and `@clk`: sample on every clock event.
                    ClockEdge::Any | ClockEdge::True => {
                        // Keep the detector coherent even when unused.
                        self.det.is_rising(v);
                        true
                    }
                };
                if matched {
                    ctx.schedule_self(0, KIND_SAMPLE);
                }
            }
            KIND_SAMPLE => {
                let mut step = Step::new(ev.time.as_ns(), std::iter::empty::<(String, u64)>());
                for (name, id) in &self.watch {
                    step.set(name.clone(), ctx.read(*id));
                }
                self.trace
                    .push(step)
                    .expect("clock edges have strictly increasing times");
            }
            other => unreachable!("unknown recorder event kind {other}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::Clock;
    use desim::SimTime;

    /// A counter incrementing a signal at each rising edge.
    struct Counter {
        clk: SignalId,
        out: SignalId,
        det: EdgeDetector,
        value: u64,
    }

    impl Component for Counter {
        fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
            let v = ctx.read(self.clk);
            if self.det.is_rising(v) {
                self.value += 1;
                ctx.write(self.out, self.value);
            }
        }
    }

    fn counted_sim() -> (Simulation, RecorderHandle) {
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let out = sim.add_signal("count", 0);
        let counter = sim.add_component(Counter {
            clk: clk.signal,
            out,
            det: EdgeDetector::new(),
            value: 0,
        });
        sim.subscribe(clk.signal, counter, 0);
        let rec = WaveRecorder::install(&mut sim, clk.signal, ClockEdge::Pos, ["count"]);
        (sim, rec)
    }

    #[test]
    fn postponed_sampling_sees_same_edge_updates() {
        let (mut sim, rec) = counted_sim();
        sim.run_until(SimTime::from_ns(40));
        let trace = WaveRecorder::take_trace(&sim, rec);
        assert_eq!(trace.len(), 4);
        // At edge k (time 10k) the counter writes k; postponed sampling
        // observes the freshly committed value.
        let values: Vec<u64> = trace
            .steps()
            .iter()
            .map(|s| psl::SignalEnv::signal(s, "count").unwrap())
            .collect();
        assert_eq!(values, vec![1, 2, 3, 4]);
        let times: Vec<u64> = trace.steps().iter().map(|s| s.time_ns).collect();
        assert_eq!(times, vec![10, 20, 30, 40]);
    }

    #[test]
    fn neg_edge_sampling() {
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let rec = WaveRecorder::install(&mut sim, clk.signal, ClockEdge::Neg, ["clk"]);
        sim.run_until(SimTime::from_ns(40));
        let trace = WaveRecorder::take_trace(&sim, rec);
        let times: Vec<u64> = trace.steps().iter().map(|s| s.time_ns).collect();
        assert_eq!(times, vec![15, 25, 35]);
    }

    #[test]
    fn any_edge_sampling_takes_both() {
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let rec = WaveRecorder::install(&mut sim, clk.signal, ClockEdge::Any, ["clk"]);
        sim.run_until(SimTime::from_ns(30));
        let trace = WaveRecorder::take_trace(&sim, rec);
        let times: Vec<u64> = trace.steps().iter().map(|s| s.time_ns).collect();
        assert_eq!(times, vec![10, 15, 20, 25, 30]);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn unknown_watch_signal_panics() {
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let _ = WaveRecorder::install(&mut sim, clk.signal, ClockEdge::Pos, ["ghost"]);
    }
}
