//! Value Change Dump (VCD, IEEE 1364) export of recorded traces.
//!
//! Converts a [`psl::Trace`] — as produced by
//! [`WaveRecorder`](crate::WaveRecorder) or `tlmkit`'s transaction
//! recorder — into a VCD document loadable by GTKWave and other waveform
//! viewers, with one 64-bit wire per recorded signal.

use std::io::{self, Write};

use psl::trace::Trace;
use psl::SignalEnv;

/// Width, in bits, of every exported wire (signals are `u64` kernel-wide).
const WIDTH: u32 = 64;

/// Options for a VCD export.
#[derive(Debug, Clone)]
pub struct VcdOptions {
    /// `$scope module <name>` wrapping the signals.
    pub module: String,
    /// Free-text `$comment` embedded in the header.
    pub comment: String,
}

impl Default for VcdOptions {
    fn default() -> VcdOptions {
        VcdOptions {
            module: "dut".to_owned(),
            comment: "exported by rtlkit::vcd".to_owned(),
        }
    }
}

/// Generates the short printable VCD identifier for signal index `i`.
fn ident(mut i: usize) -> String {
    // Printable ASCII 33..=126, base-94, like commercial dumpers.
    let mut out = String::new();
    loop {
        out.push((33 + (i % 94)) as u8 as char);
        i /= 94;
        if i == 0 {
            break;
        }
    }
    out
}

/// Formats a value as a VCD binary vector token (`b1010 <id>`).
fn binary(value: u64) -> String {
    if value == 0 {
        "b0".to_owned()
    } else {
        format!("b{value:b}")
    }
}

/// Writes `trace` as a VCD document to `out`.
///
/// `signals` fixes the declaration order; every name must be present in
/// every step of the trace. A `&mut` reference can be passed as the
/// writer.
///
/// # Errors
///
/// Returns any I/O error from `out`, or [`io::ErrorKind::InvalidInput`]
/// if a signal is missing from some step.
///
/// ```
/// use psl::trace::{Step, Trace};
/// use rtlkit::vcd::{write_vcd, VcdOptions};
///
/// let trace: Trace = [
///     Step::new(10, [("clk", 1u64), ("rdy", 0)]),
///     Step::new(20, [("clk", 0), ("rdy", 1)]),
/// ].into_iter().collect();
/// let mut out = Vec::new();
/// write_vcd(&mut out, &trace, ["clk", "rdy"], &VcdOptions::default())?;
/// let text = String::from_utf8(out).expect("ascii");
/// assert!(text.contains("$timescale 1ns $end"));
/// assert!(text.contains("#10"));
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn write_vcd<W: Write, S: AsRef<str>>(
    mut out: W,
    trace: &Trace,
    signals: impl IntoIterator<Item = S>,
    options: &VcdOptions,
) -> io::Result<()> {
    let names: Vec<String> = signals.into_iter().map(|s| s.as_ref().to_owned()).collect();

    writeln!(out, "$comment {} $end", options.comment)?;
    writeln!(out, "$timescale 1ns $end")?;
    writeln!(out, "$scope module {} $end", options.module)?;
    for (i, name) in names.iter().enumerate() {
        writeln!(out, "$var wire {WIDTH} {} {name} $end", ident(i))?;
    }
    writeln!(out, "$upscope $end")?;
    writeln!(out, "$enddefinitions $end")?;

    let missing = |name: &str| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("signal `{name}` missing from a trace step"),
        )
    };

    let mut last: Vec<Option<u64>> = vec![None; names.len()];
    for (k, step) in trace.steps().iter().enumerate() {
        let mut changes = Vec::new();
        for (i, name) in names.iter().enumerate() {
            let v = step.signal(name).ok_or_else(|| missing(name))?;
            if last[i] != Some(v) {
                changes.push((i, v));
                last[i] = Some(v);
            }
        }
        if k == 0 {
            writeln!(out, "#{}", step.time_ns)?;
            writeln!(out, "$dumpvars")?;
            for (i, v) in &changes {
                writeln!(out, "{} {}", binary(*v), ident(*i))?;
            }
            writeln!(out, "$end")?;
        } else if !changes.is_empty() {
            writeln!(out, "#{}", step.time_ns)?;
            for (i, v) in &changes {
                writeln!(out, "{} {}", binary(*v), ident(*i))?;
            }
        }
    }
    Ok(())
}

/// Renders `trace` as a VCD string (convenience over [`write_vcd`]).
///
/// # Errors
///
/// Same conditions as [`write_vcd`].
pub fn to_vcd_string<S: AsRef<str>>(
    trace: &Trace,
    signals: impl IntoIterator<Item = S>,
    options: &VcdOptions,
) -> io::Result<String> {
    let mut out = Vec::new();
    write_vcd(&mut out, trace, signals, options)?;
    Ok(String::from_utf8(out).expect("vcd output is ascii"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use psl::trace::Step;

    fn demo_trace() -> Trace {
        [
            Step::new(10, [("clk", 1u64), ("data", 0xAB)]),
            Step::new(20, [("clk", 0), ("data", 0xAB)]),
            Step::new(30, [("clk", 1), ("data", 0xCD)]),
        ]
        .into_iter()
        .collect()
    }

    #[test]
    fn header_declares_all_signals() {
        let text = to_vcd_string(&demo_trace(), ["clk", "data"], &VcdOptions::default()).unwrap();
        assert!(text.contains("$var wire 64 ! clk $end"), "{text}");
        assert!(text.contains("$var wire 64 \" data $end"), "{text}");
        assert!(text.contains("$scope module dut $end"));
        assert!(text.contains("$enddefinitions $end"));
    }

    #[test]
    fn initial_dump_and_changes_only() {
        let text = to_vcd_string(&demo_trace(), ["clk", "data"], &VcdOptions::default()).unwrap();
        // Initial dump at #10 with both values.
        assert!(
            text.contains("#10\n$dumpvars\nb1 !\nb10101011 \"\n$end\n"),
            "{text}"
        );
        // At #20 only clk changed.
        let after_20 = text.split("#20\n").nth(1).unwrap();
        let block_20: Vec<&str> = after_20
            .lines()
            .take_while(|l| !l.starts_with('#'))
            .collect();
        assert_eq!(block_20, vec!["b0 !"]);
        // At #30 both changed.
        assert!(text.contains("#30\nb1 !\nb11001101 \"\n"), "{text}");
    }

    #[test]
    fn unchanged_steps_emit_no_timestamp() {
        let trace: Trace = [
            Step::new(10, [("s", 5u64)]),
            Step::new(20, [("s", 5)]),
            Step::new(30, [("s", 5)]),
        ]
        .into_iter()
        .collect();
        let text = to_vcd_string(&trace, ["s"], &VcdOptions::default()).unwrap();
        assert!(text.contains("#10"));
        assert!(!text.contains("#20"));
        assert!(!text.contains("#30"));
    }

    #[test]
    fn missing_signal_is_invalid_input() {
        let err = to_vcd_string(&demo_trace(), ["ghost"], &VcdOptions::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn idents_are_printable_and_unique() {
        let ids: Vec<String> = (0..200).map(ident).collect();
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id}");
        }
        let unique: std::collections::HashSet<_> = ids.iter().collect();
        assert_eq!(unique.len(), ids.len());
    }

    #[test]
    fn zero_renders_as_b0() {
        assert_eq!(binary(0), "b0");
        assert_eq!(binary(5), "b101");
    }

    #[test]
    fn custom_module_and_comment() {
        let options = VcdOptions {
            module: "des56".into(),
            comment: "run 1".into(),
        };
        let text = to_vcd_string(&demo_trace(), ["clk"], &options).unwrap();
        assert!(text.contains("$scope module des56 $end"));
        assert!(text.contains("$comment run 1 $end"));
    }
}
