//! Free-running clock generation and edge classification.

use desim::{Component, ComponentId, Event, SignalId, SimCtx, SimTime, Simulation};

/// A free-running clock driving a boolean signal.
///
/// The signal starts low; rising edges occur at `period, 2·period, …` and
/// falling edges at the half-period midpoints, so a simulation of
/// `n · period` nanoseconds contains exactly `n` rising edges.
///
/// Install with [`Clock::install`], which registers the signal, the
/// component and the first toggle:
///
/// ```
/// use desim::{SimTime, Simulation};
/// use rtlkit::Clock;
///
/// let mut sim = Simulation::new();
/// let clk = Clock::install(&mut sim, "clk", 10);
/// sim.run_until(SimTime::from_ns(25));
/// assert_eq!(sim.signal(clk.signal), 0, "t=25 is past the falling edge at 15");
/// assert_eq!(clk.period_ns, 10);
/// ```
pub struct Clock {
    signal: SignalId,
    half_period_ns: u64,
    /// The level the next toggle writes — tracked internally so the
    /// generator's hot path is a single signal write plus a half-period
    /// self-schedule (which the kernel's time wheel absorbs in O(1))
    /// without re-reading the committed clock value every edge.
    next_level: u64,
}

/// Handle returned by [`Clock::install`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockHandle {
    /// The clock signal.
    pub signal: SignalId,
    /// The generator component.
    pub component: ComponentId,
    /// The full clock period in nanoseconds.
    pub period_ns: u64,
}

impl Clock {
    /// Creates the clock signal named `name`, registers the generator and
    /// schedules the first rising edge at `period_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `period_ns` is zero or odd (the half-period must be an
    /// integer number of nanoseconds), or if the signal name is taken.
    pub fn install(sim: &mut Simulation, name: &str, period_ns: u64) -> ClockHandle {
        assert!(
            period_ns >= 2 && period_ns.is_multiple_of(2),
            "clock period must be even and positive"
        );
        let signal = sim.add_signal(name, 0);
        let component = sim.add_component(Clock {
            signal,
            half_period_ns: period_ns / 2,
            next_level: 1,
        });
        // First rising edge at one full period.
        sim.schedule(SimTime::from_ns(period_ns), component, 0);
        ClockHandle {
            signal,
            component,
            period_ns,
        }
    }
}

impl Component for Clock {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        ctx.write(self.signal, self.next_level);
        self.next_level ^= 1;
        ctx.schedule_self(self.half_period_ns, 0);
    }
}

/// Classifies clock-change wake-ups into rising/falling edges.
///
/// Components sensitive to a clock signal wake on *both* edges; an
/// `EdgeDetector` reads the post-commit clock value to tell them apart.
///
/// ```
/// use rtlkit::EdgeDetector;
///
/// let mut det = EdgeDetector::new();
/// assert!(det.is_rising(1));
/// assert!(!det.is_rising(1)); // no change
/// assert!(!det.is_rising(0)); // falling
/// assert!(det.is_rising(1));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EdgeDetector {
    last: u64,
}

impl EdgeDetector {
    /// A detector assuming the clock starts low.
    #[must_use]
    pub fn new() -> EdgeDetector {
        EdgeDetector::default()
    }

    /// Feeds the current clock value; true exactly on a 0→1 transition.
    pub fn is_rising(&mut self, clk_value: u64) -> bool {
        let rising = self.last == 0 && clk_value != 0;
        self.last = clk_value;
        rising
    }

    /// Feeds the current clock value; true exactly on a 1→0 transition.
    pub fn is_falling(&mut self, clk_value: u64) -> bool {
        let falling = self.last != 0 && clk_value == 0;
        self.last = clk_value;
        falling
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::{Component, Event, SimCtx, Simulation};

    /// Records times of rising edges it observes via sensitivity.
    struct EdgeLogger {
        clk: SignalId,
        rise_det: EdgeDetector,
        fall_det: EdgeDetector,
        rising_at: Vec<u64>,
        falling_at: Vec<u64>,
    }

    impl Component for EdgeLogger {
        fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
            let v = ctx.read(self.clk);
            if self.rise_det.is_rising(v) {
                self.rising_at.push(ev.time.as_ns());
            }
            if self.fall_det.is_falling(v) {
                self.falling_at.push(ev.time.as_ns());
            }
        }
    }

    #[test]
    fn edges_at_expected_times() {
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let logger = sim.add_component(EdgeLogger {
            clk: clk.signal,
            rise_det: EdgeDetector::new(),
            fall_det: EdgeDetector::new(),
            rising_at: Vec::new(),
            falling_at: Vec::new(),
        });
        sim.subscribe(clk.signal, logger, 0);
        sim.run_until(SimTime::from_ns(45));
        let l: &EdgeLogger = sim.component(logger).unwrap();
        assert_eq!(l.rising_at, vec![10, 20, 30, 40]);
        assert_eq!(l.falling_at, vec![15, 25, 35, 45]);
    }

    #[test]
    #[should_panic(expected = "even and positive")]
    fn odd_period_rejected() {
        let mut sim = Simulation::new();
        let _ = Clock::install(&mut sim, "clk", 7);
    }

    #[test]
    fn detector_sequences() {
        let mut d = EdgeDetector::new();
        assert!(!d.is_rising(0));
        assert!(d.is_rising(1));
        assert!(!d.is_falling(1));
        assert!(d.is_falling(0));
    }
}
