//! Randomized tests of the kernel's scheduling discipline: events are
//! delivered in time order with FIFO tie-breaking, and signal updates
//! follow the evaluate/update delta protocol regardless of schedule shape.
//!
//! Cases are generated from a seeded [`TinyRng`] loop (the offline
//! substitute for `proptest`): every run explores the same case set, and a
//! failure message carries the case seed for direct reproduction.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use tinyrng::TinyRng;

const CASES: u64 = 300;

/// Records every delivery as `(time, kind)`.
struct Recorder {
    seen: Vec<(u64, u64)>,
}

impl Component for Recorder {
    fn handle(&mut self, ev: Event, _ctx: &mut SimCtx<'_>) {
        self.seen.push((ev.time.as_ns(), ev.kind));
    }
}

/// Writes its kind to a signal on every delivery.
struct KindWriter {
    sig: SignalId,
}

impl Component for KindWriter {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        ctx.write(self.sig, ev.kind);
    }
}

/// Deliveries are sorted by time; among equal times, the original
/// scheduling order (FIFO) is preserved.
#[test]
fn time_order_with_fifo_ties() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x5EED_0001, case);
        let times: Vec<u64> = (0..rng.range_usize(1, 40))
            .map(|_| rng.range_u64(0, 50))
            .collect();

        let mut sim = Simulation::new();
        let rec = sim.add_component(Recorder { seen: Vec::new() });
        for (seq, &t) in times.iter().enumerate() {
            sim.schedule(SimTime::from_ns(t), rec, seq as u64);
        }
        sim.run_to_completion();
        let seen = &sim.component::<Recorder>(rec).expect("recorder").seen;
        assert_eq!(seen.len(), times.len(), "case {case}");
        for w in seen.windows(2) {
            assert!(
                w[0].0 <= w[1].0,
                "case {case}: time order violated: {seen:?}"
            );
            if w[0].0 == w[1].0 {
                assert!(
                    w[0].1 < w[1].1,
                    "case {case}: FIFO tie-break violated: {seen:?}"
                );
            }
        }
        assert_eq!(
            sim.stats().events_processed,
            times.len() as u64,
            "case {case}"
        );
    }
}

/// The last write in a timestamp wins, and sensitive components wake
/// exactly once per committed change.
#[test]
fn last_write_wins_across_random_schedules() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x5EED_0002, case);
        let writes: Vec<(u64, u64)> = (0..rng.range_usize(1, 30))
            .map(|_| (rng.range_u64(1, 20), rng.range_u64(0, 5)))
            .collect();

        let mut sim = Simulation::new();
        let sig = sim.add_signal("s", u64::MAX);
        let writer = sim.add_component(KindWriter { sig });
        let watcher = sim.add_component(Recorder { seen: Vec::new() });
        sim.subscribe(sig, watcher, 0);
        for &(t, v) in &writes {
            sim.schedule(SimTime::from_ns(t), writer, v);
        }
        sim.run_to_completion();

        // Reference: group writes by time; the chronologically (then FIFO)
        // last write of each timestamp is the committed value.
        let mut sorted: Vec<(usize, u64, u64)> = writes
            .iter()
            .enumerate()
            .map(|(i, &(t, v))| (i, t, v))
            .collect();
        sorted.sort_by_key(|&(i, t, _)| (t, i));
        let mut committed: Vec<u64> = Vec::new();
        let mut last_value = u64::MAX;
        let mut idx = 0;
        while idx < sorted.len() {
            let t = sorted[idx].1;
            let mut end = idx;
            while end < sorted.len() && sorted[end].1 == t {
                end += 1;
            }
            let v = sorted[end - 1].2;
            if v != last_value {
                committed.push(v);
                last_value = v;
            }
            idx = end;
        }

        let wakes = sim
            .component::<Recorder>(watcher)
            .expect("watcher")
            .seen
            .len();
        // One wake per committed change.
        assert_eq!(wakes, committed.len(), "case {case}: writes {writes:?}");
        // Final value matches the reference.
        assert_eq!(
            sim.signal(sig),
            last_value,
            "case {case}: writes {writes:?}"
        );
    }
}
