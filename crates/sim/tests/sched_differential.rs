//! Differential pinning of the two-tier scheduler against the retained
//! reference heap: over randomized kernel-realizable push/pop traces, the
//! two implementations must pop the **exact same sequence** of
//! `(time, delta, target, kind)` tuples.
//!
//! The generator deliberately covers the structurally interesting shapes:
//! same-key FIFO runs (several pushes at one `(time, delta)`), delta-wake
//! chains at the active timestamp, near-future schedules inside the wheel
//! window, window-rollover hops, and far-future pushes that spill into the
//! overflow heap and cascade back as time advances.
//!
//! Cases are seeded [`TinyRng`] streams (the offline `proptest`
//! substitute); a failure message names the case for direct replay.

use desim::testing::{SchedulerHarness, SchedulerKind};
use desim::{Component, Event, SimCtx, SimTime, Simulation};
use tinyrng::TinyRng;

const CASES: u64 = 600;

/// One push/pop trace driven against both schedulers in lockstep.
fn run_case(case: u64) {
    let mut rng = TinyRng::fork(0x5C4E_D001, case);
    let mut two_tier = SchedulerHarness::new(SchedulerKind::TwoTier);
    let mut reference = SchedulerHarness::new(SchedulerKind::Reference);

    // The last popped key: pushes must stay kernel-realizable — at the
    // active timestamp only strictly-later deltas, otherwise later times.
    let mut now = (0u64, 0u32);
    let mut mid_timestamp = false;
    let mut next_kind = 0u64;
    let ops = rng.range_usize(30, 150);

    for op in 0..ops {
        let push = rng.range_u64(0, 100) < 60 || (two_tier.is_empty() && op + 1 < ops);
        if push {
            // Occasionally a FIFO burst at one key, otherwise one event.
            let burst = if rng.range_u64(0, 100) < 20 {
                rng.range_usize(2, 6)
            } else {
                1
            };
            let (t, d) = match rng.range_u64(0, 100) {
                // Delta wake at the active timestamp (only meaningful
                // mid-drain; otherwise fall through to a near push).
                0..=29 if mid_timestamp => (now.0, now.1 + rng.range_u32(1, 4)),
                // Near future: inside the 256-tick wheel window.
                0..=54 => (now.0 + rng.range_u64(1, 200), rng.range_u32(0, 3)),
                // Window rollover: straddles the wheel horizon.
                55..=79 => (now.0 + rng.range_u64(200, 400), rng.range_u32(0, 3)),
                // Far future: overflow-heap spill, cascades back later.
                _ => (now.0 + rng.range_u64(400, 6000), rng.range_u32(0, 3)),
            };
            for _ in 0..burst {
                let target = rng.range_usize(0, 8);
                two_tier.push(t, d, target, next_kind);
                reference.push(t, d, target, next_kind);
                next_kind += 1;
            }
        } else {
            let a = two_tier.pop();
            let b = reference.pop();
            assert_eq!(a, b, "case {case}: divergent pop after {op} ops");
            if let Some((t, d, _, _)) = a {
                now = (t, d);
                mid_timestamp = true;
            }
        }
        assert_eq!(two_tier.len(), reference.len(), "case {case}: length drift");
    }

    // Drain both completely; tails must agree event-for-event.
    loop {
        let a = two_tier.pop();
        let b = reference.pop();
        assert_eq!(a, b, "case {case}: divergent drain tail");
        if a.is_none() {
            break;
        }
    }
}

#[test]
fn two_tier_pops_exactly_the_reference_sequence() {
    for case in 0..CASES {
        run_case(case);
    }
}

/// Far-future pushes spill to the overflow heap, and same-key FIFO order
/// survives the cascade back into the wheel.
#[test]
fn overflow_spill_preserves_same_key_fifo() {
    let mut two_tier = SchedulerHarness::new(SchedulerKind::TwoTier);
    let mut reference = SchedulerHarness::new(SchedulerKind::Reference);
    for h in [&mut two_tier, &mut reference] {
        for k in 0..10u64 {
            h.push(5000, 0, k as usize % 3, k); // all outside the window
        }
        h.push(1, 0, 0, 100);
    }
    loop {
        let a = two_tier.pop();
        assert_eq!(a, reference.pop());
        if a.is_none() {
            break;
        }
    }
}

/// Exact window-boundary schedules: offsets 255/256/257 ticks ahead land
/// on either side of the wheel horizon.
#[test]
fn wheel_horizon_boundary_is_exact() {
    let mut two_tier = SchedulerHarness::new(SchedulerKind::TwoTier);
    let mut reference = SchedulerHarness::new(SchedulerKind::Reference);
    for h in [&mut two_tier, &mut reference] {
        for (i, off) in [255u64, 256, 257, 511, 512, 513].iter().enumerate() {
            h.push(*off, 0, i, *off);
        }
    }
    loop {
        let a = two_tier.pop();
        assert_eq!(a, reference.pop());
        if a.is_none() {
            break;
        }
    }
}

/// A component that randomly re-schedules itself and writes a signal —
/// exercising staging (zero-delay + commit wakes), wheel and overflow
/// paths through the real kernel.
struct Churn {
    rng: TinyRng,
    sig: desim::SignalId,
    log: Vec<(u64, u64)>,
    hops: u32,
}

impl Component for Churn {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        self.log.push((ev.time.as_ns(), ev.kind));
        ctx.write(self.sig, self.rng.range_u64(0, 3));
        if self.hops > 0 {
            self.hops -= 1;
            let delay = match self.rng.range_u64(0, 100) {
                0..=39 => 0,                           // next delta
                40..=79 => self.rng.range_u64(1, 200), // wheel window
                _ => self.rng.range_u64(200, 4000),    // overflow
            };
            ctx.schedule_self(delay, ev.kind + 1);
        }
    }
}

/// End-to-end kernel equivalence: the same randomized component network
/// produces identical delivery logs and identical [`desim::SimStats`]
/// under both schedulers.
#[test]
fn kernel_runs_identically_under_both_schedulers() {
    for case in 0..40 {
        let mut logs = Vec::new();
        let mut stats = Vec::new();
        for kind in [SchedulerKind::TwoTier, SchedulerKind::Reference] {
            let mut sim = Simulation::with_scheduler(kind);
            assert_eq!(sim.scheduler_kind(), kind);
            let sig = sim.add_signal("churn", 0);
            let c = sim.add_component(Churn {
                rng: TinyRng::fork(0xC0DE, case),
                sig,
                log: Vec::new(),
                hops: 60,
            });
            sim.subscribe(sig, c, 1_000_000);
            sim.schedule(SimTime::from_ns(1), c, 0);
            let s = sim.run_to_completion();
            stats.push(s);
            logs.push(sim.component::<Churn>(c).expect("churn").log.clone());
        }
        assert_eq!(logs[0], logs[1], "case {case}: delivery logs diverge");
        assert_eq!(stats[0], stats[1], "case {case}: kernel stats diverge");
    }
}
