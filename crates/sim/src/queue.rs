//! The kernel's event queue, in two interchangeable implementations behind
//! one epoch-drain facade:
//!
//! - [`TwoTierQueue`] — the production scheduler: a delta staging area
//!   ([`crate::staging`]) absorbing all same-timestamp work with O(1)
//!   pushes, backed by a bucketed time wheel ([`crate::wheel`]) for timed
//!   events. FIFO order among simultaneous events is per-bucket insertion
//!   order, so no global sequence number exists on the hot path.
//! - [`ReferenceQueue`] — the original global `BinaryHeap` ordered by
//!   `(time, delta, seq)`, retained verbatim as the executable
//!   specification. A randomized differential test
//!   (`tests/sched_differential.rs`) pins the two-tier scheduler to pop
//!   the exact sequence the reference does.
//!
//! The kernel drives either through the same three calls:
//! [`next_time`](EventQueue::next_time) →
//! [`begin_timestamp`](EventQueue::begin_timestamp) → repeated
//! [`next_round`](EventQueue::next_round), which replaced the per-event
//! `peek_key`/`pop_if_at` of the heap-only kernel.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU8, Ordering};

use crate::kernel::ComponentId;
use crate::staging::{DeltaStaging, Staged};
use crate::time::SimTime;
use crate::wheel::TimeWheel;

/// Which event-queue implementation a [`Simulation`](crate::Simulation)
/// schedules on.
///
/// Both deliver the exact same event sequence — that equivalence is pinned
/// by a randomized differential test and end-to-end by the campaign/trace
/// determinism suites — so the reference exists purely as the executable
/// specification and benchmark baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SchedulerKind {
    /// Delta staging + time wheel (the production default).
    #[default]
    TwoTier,
    /// The original global binary heap ordered by `(time, delta, seq)`.
    Reference,
}

/// The process-wide default consulted by `Simulation::new` (0 = two-tier,
/// 1 = reference).
static DEFAULT_SCHEDULER: AtomicU8 = AtomicU8::new(0);

/// Sets the scheduler used by subsequently constructed simulations —
/// including those built deep inside the design factory or campaign
/// workers, which is how the determinism suites and benches pit the
/// kernels against each other without plumbing a parameter through every
/// layer.
pub fn set_default_scheduler(kind: SchedulerKind) {
    DEFAULT_SCHEDULER.store(kind as u8, Ordering::SeqCst);
}

/// The current process-wide default scheduler.
#[must_use]
pub fn default_scheduler() -> SchedulerKind {
    match DEFAULT_SCHEDULER.load(Ordering::SeqCst) {
        0 => SchedulerKind::TwoTier,
        _ => SchedulerKind::Reference,
    }
}

/// One scheduled delivery of the reference queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    time: SimTime,
    delta: u32,
    seq: u64,
    target: ComponentId,
    kind: u64,
}

/// The original priority queue: a global heap with per-event sequence
/// numbers for FIFO tie-breaks.
#[derive(Debug, Default)]
pub(crate) struct ReferenceQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl ReferenceQueue {
    fn push(&mut self, time: SimTime, delta: u32, target: ComponentId, kind: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            delta,
            seq,
            target,
            kind,
        }));
    }

    fn next_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.time)
    }

    /// Pops every event at the earliest `(time, delta)` key — provided that
    /// time is `t` — into `out`, returning the key's delta.
    fn next_round(&mut self, t: SimTime, out: &mut Vec<Staged>) -> Option<u32> {
        let delta = match self.heap.peek() {
            Some(Reverse(e)) if e.time == t => e.delta,
            _ => return None,
        };
        while let Some(Reverse(e)) = self.heap.peek() {
            if e.time != t || e.delta != delta {
                break;
            }
            let Reverse(e) = self.heap.pop().expect("peeked entry");
            out.push(Staged {
                target: e.target,
                kind: e.kind,
            });
        }
        Some(delta)
    }
}

/// The production scheduler: staging for the active timestamp, wheel (plus
/// overflow heap) for everything timed.
#[derive(Debug, Default)]
pub(crate) struct TwoTierQueue {
    staging: DeltaStaging,
    wheel: TimeWheel,
}

/// Pending events of a simulation, behind the scheduler selection.
#[derive(Debug)]
pub(crate) enum EventQueue {
    TwoTier(TwoTierQueue),
    Reference(ReferenceQueue),
}

impl EventQueue {
    pub fn new(kind: SchedulerKind) -> EventQueue {
        match kind {
            SchedulerKind::TwoTier => EventQueue::TwoTier(TwoTierQueue::default()),
            SchedulerKind::Reference => EventQueue::Reference(ReferenceQueue::default()),
        }
    }

    pub fn kind(&self) -> SchedulerKind {
        match self {
            EventQueue::TwoTier(_) => SchedulerKind::TwoTier,
            EventQueue::Reference(_) => SchedulerKind::Reference,
        }
    }

    /// Schedules delivery of `kind` to `target` at `(time, delta)`.
    ///
    /// Two-tier routing: pushes at the open timestamp stage in O(1);
    /// everything else goes to the wheel (or its overflow heap).
    pub fn push(&mut self, time: SimTime, delta: u32, target: ComponentId, kind: u64) {
        match self {
            EventQueue::TwoTier(q) => {
                if q.staging.is_open_at(time) {
                    q.staging.push(delta, target, kind);
                } else {
                    q.wheel.push(time, delta, target, kind);
                }
            }
            EventQueue::Reference(q) => q.push(time, delta, target, kind),
        }
    }

    /// Schedules a wake at `(time, delta)` where `time` is known to be the
    /// open timestamp — the zero-delay/commit-wake fast path, which lands
    /// in delta staging without consulting the routing check.
    pub fn push_staged(&mut self, time: SimTime, delta: u32, target: ComponentId, kind: u64) {
        match self {
            EventQueue::TwoTier(q) => {
                debug_assert!(q.staging.is_open_at(time), "push_staged at a closed time");
                q.staging.push(delta, target, kind);
            }
            EventQueue::Reference(q) => q.push(time, delta, target, kind),
        }
    }

    /// The earliest pending timestamp.
    pub fn next_time(&self) -> Option<SimTime> {
        match self {
            EventQueue::TwoTier(q) => {
                // An open, non-empty staging area holds the earliest work
                // (pushes at the active timestamp route there; everything
                // later sits in the wheel). The kernel itself only calls
                // next_time with staging drained — the staged arm serves
                // the single-pop test harness.
                let staged = (q.staging.len() > 0)
                    .then(|| q.staging.open_time())
                    .flatten();
                match (staged, q.wheel.next_time()) {
                    (Some(a), Some(b)) => Some(a.min(b)),
                    (a, b) => a.or(b),
                }
            }
            EventQueue::Reference(q) => q.next_time(),
        }
    }

    /// Opens timestamp `t` (which must be [`next_time`](Self::next_time)):
    /// the two-tier scheduler resets its delta staging and drains the
    /// wheel bucket for `t` into it.
    pub fn begin_timestamp(&mut self, t: SimTime) {
        match self {
            EventQueue::TwoTier(q) => {
                q.staging.open(t);
                q.wheel.open_into(t, &mut q.staging);
            }
            EventQueue::Reference(_) => {}
        }
    }

    /// Drains the next delta round of the open timestamp `t` into `out`
    /// (round buffers are recycled through the swap), returning its delta.
    /// `None` closes the timestamp.
    pub fn next_round(&mut self, t: SimTime, out: &mut Vec<Staged>) -> Option<u32> {
        match self {
            EventQueue::TwoTier(q) => q.staging.next_round(out),
            EventQueue::Reference(q) => q.next_round(t, out),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn len(&self) -> usize {
        match self {
            EventQueue::TwoTier(q) => q.staging.len() + q.wheel.len(),
            EventQueue::Reference(q) => q.heap.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: usize) -> ComponentId {
        ComponentId(n)
    }

    /// Pops one full epoch-drain pass and flattens it to
    /// `(time, delta, target, kind)` tuples.
    fn drain_all(q: &mut EventQueue) -> Vec<(u64, u32, usize, u64)> {
        let mut out = Vec::new();
        let mut round = Vec::new();
        while let Some(t) = q.next_time() {
            q.begin_timestamp(t);
            while let Some(delta) = q.next_round(t, &mut round) {
                out.extend(
                    round
                        .drain(..)
                        .map(|e| (t.as_ns(), delta, e.target.index(), e.kind)),
                );
            }
        }
        out
    }

    #[test]
    fn both_schedulers_order_by_time_then_delta_then_fifo() {
        for kind in [SchedulerKind::TwoTier, SchedulerKind::Reference] {
            let mut q = EventQueue::new(kind);
            q.push(SimTime::from_ns(20), 0, cid(0), 0);
            q.push(SimTime::from_ns(10), 1, cid(1), 0);
            q.push(SimTime::from_ns(10), 0, cid(2), 0);
            q.push(SimTime::from_ns(10), 0, cid(3), 0);
            assert_eq!(q.len(), 4);
            assert_eq!(
                drain_all(&mut q),
                vec![(10, 0, 2, 0), (10, 0, 3, 0), (10, 1, 1, 0), (20, 0, 0, 0)],
                "{kind:?}"
            );
            assert!(q.is_empty(), "{kind:?}");
        }
    }

    #[test]
    fn mid_round_pushes_stage_at_the_next_delta() {
        let mut q = EventQueue::new(SchedulerKind::TwoTier);
        q.push(SimTime::from_ns(5), 0, cid(0), 7);
        let t = q.next_time().unwrap();
        q.begin_timestamp(t);
        let mut round = Vec::new();
        assert_eq!(q.next_round(t, &mut round), Some(0));
        // "While delivering" round 0: a zero-delay wake and a timed event.
        q.push(t, 1, cid(1), 8);
        q.push(SimTime::from_ns(6), 0, cid(2), 9);
        round.clear();
        assert_eq!(q.next_round(t, &mut round), Some(1));
        assert_eq!(round[0].kind, 8);
        round.clear();
        assert_eq!(q.next_round(t, &mut round), None);
        assert_eq!(q.next_time(), Some(SimTime::from_ns(6)));
    }

    #[test]
    fn default_scheduler_round_trips() {
        assert_eq!(default_scheduler(), SchedulerKind::TwoTier);
        set_default_scheduler(SchedulerKind::Reference);
        assert_eq!(default_scheduler(), SchedulerKind::Reference);
        set_default_scheduler(SchedulerKind::TwoTier);
        assert_eq!(default_scheduler(), SchedulerKind::TwoTier);
    }
}
