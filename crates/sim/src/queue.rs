//! The kernel's event queue: a priority queue ordered by
//! `(time, delta, sequence)` so that simultaneous events preserve FIFO
//! order and delta cycles at the same timestamp execute in rounds.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::kernel::ComponentId;
use crate::time::SimTime;

/// One scheduled delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Entry {
    pub time: SimTime,
    pub delta: u32,
    pub seq: u64,
    pub target: ComponentId,
    pub kind: u64,
}

/// Priority queue of pending events.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Entry>>,
    next_seq: u64,
}

impl EventQueue {
    /// Schedules delivery of `kind` to `target` at `(time, delta)`.
    pub fn push(&mut self, time: SimTime, delta: u32, target: ComponentId, kind: u64) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse(Entry {
            time,
            delta,
            seq,
            target,
            kind,
        }));
    }

    /// The `(time, delta)` of the earliest pending event.
    pub fn peek_key(&self) -> Option<(SimTime, u32)> {
        self.heap.peek().map(|Reverse(e)| (e.time, e.delta))
    }

    /// Pops the earliest event if its key equals `(time, delta)`.
    pub fn pop_if_at(&mut self, time: SimTime, delta: u32) -> Option<Entry> {
        match self.heap.peek() {
            Some(Reverse(e)) if e.time == time && e.delta == delta => {
                self.heap.pop().map(|Reverse(e)| e)
            }
            _ => None,
        }
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: usize) -> ComponentId {
        ComponentId(n)
    }

    #[test]
    fn orders_by_time_then_delta_then_seq() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_ns(20), 0, cid(0), 0);
        q.push(SimTime::from_ns(10), 1, cid(1), 0);
        q.push(SimTime::from_ns(10), 0, cid(2), 0);
        q.push(SimTime::from_ns(10), 0, cid(3), 0);

        assert_eq!(q.peek_key(), Some((SimTime::from_ns(10), 0)));
        let a = q.pop_if_at(SimTime::from_ns(10), 0).unwrap();
        let b = q.pop_if_at(SimTime::from_ns(10), 0).unwrap();
        assert_eq!((a.target, b.target), (cid(2), cid(3)), "FIFO among equals");
        assert!(q.pop_if_at(SimTime::from_ns(10), 0).is_none());
        assert_eq!(q.peek_key(), Some((SimTime::from_ns(10), 1)));
    }

    #[test]
    fn pop_if_at_respects_key() {
        let mut q = EventQueue::default();
        q.push(SimTime::from_ns(5), 0, cid(0), 7);
        assert!(q.pop_if_at(SimTime::from_ns(4), 0).is_none());
        assert!(q.pop_if_at(SimTime::from_ns(5), 1).is_none());
        let e = q.pop_if_at(SimTime::from_ns(5), 0).unwrap();
        assert_eq!(e.kind, 7);
        assert!(q.is_empty());
    }
}
