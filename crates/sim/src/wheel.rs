//! The timed tier of the two-tier scheduler: a bucketed time wheel over a
//! near-future window, with a comparison-based overflow heap for
//! far-future (or rewound) schedules.
//!
//! The wheel covers [`SLOTS`] one-nanosecond ticks ahead of its current
//! position — comfortably spanning the design clock periods (10 ns), so
//! the periodic self-schedules that dominate RTL workloads insert and
//! drain in O(1). Each slot is a plain `Vec`, so FIFO order among events
//! at the same timestamp is bucket insertion order and needs no sequence
//! number. Only schedules landing outside the window pay for the
//! `BinaryHeap`, whose entries keep a sequence number and **cascade** into
//! the wheel the moment the advancing window covers them — before any
//! direct push can target those slots, which is what keeps the merged
//! order FIFO-correct.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::kernel::ComponentId;
use crate::staging::DeltaStaging;
use crate::time::SimTime;

/// Wheel window size in 1 ns ticks (power of two for cheap wrapping).
pub(crate) const SLOTS: usize = 256;
const WORDS: usize = SLOTS / 64;

/// A timed event parked in a wheel slot; the timestamp is implied by the
/// slot, the delta rides along (non-zero only through the test harness —
/// kernel-timed schedules are always delta 0).
#[derive(Debug, Clone, Copy)]
struct TimedEvent {
    delta: u32,
    target: ComponentId,
    kind: u64,
}

/// An event outside the wheel window, ordered by `(time, delta, seq)` so
/// same-key entries cascade in FIFO order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct OverflowEntry {
    time: SimTime,
    delta: u32,
    seq: u64,
    target: ComponentId,
    kind: u64,
}

/// The time wheel plus its overflow heap.
#[derive(Debug)]
pub(crate) struct TimeWheel {
    /// `SLOTS` buckets; `slots[cursor]` holds time `start`.
    slots: Vec<Vec<TimedEvent>>,
    /// One bit per slot: non-empty buckets, for O(words) earliest-scan.
    occupied: [u64; WORDS],
    /// Absolute nanosecond of the slot at `cursor`; the window is
    /// `[start, start + SLOTS)`.
    start: u64,
    /// Slot index corresponding to `start`.
    cursor: usize,
    /// Far-future and rewound schedules.
    overflow: BinaryHeap<Reverse<OverflowEntry>>,
    /// FIFO tie-break for overflow entries only.
    overflow_seq: u64,
    /// Total events (slots + overflow).
    len: usize,
}

impl Default for TimeWheel {
    fn default() -> TimeWheel {
        TimeWheel {
            slots: vec![Vec::new(); SLOTS],
            occupied: [0; WORDS],
            start: 0,
            cursor: 0,
            overflow: BinaryHeap::new(),
            overflow_seq: 0,
            len: 0,
        }
    }
}

impl TimeWheel {
    /// Schedules `(target, kind)` at `(time, delta)` — O(1) inside the
    /// window, heap push outside it.
    pub fn push(&mut self, time: SimTime, delta: u32, target: ComponentId, kind: u64) {
        let t = time.as_ns();
        if t >= self.start && t - self.start < SLOTS as u64 {
            let slot = (self.cursor + (t - self.start) as usize) % SLOTS;
            self.slots[slot].push(TimedEvent {
                delta,
                target,
                kind,
            });
            self.occupied[slot / 64] |= 1 << (slot % 64);
        } else {
            self.overflow.push(Reverse(OverflowEntry {
                time,
                delta,
                seq: self.overflow_seq,
                target,
                kind,
            }));
            self.overflow_seq += 1;
        }
        self.len += 1;
    }

    /// The earliest pending timestamp across wheel and overflow.
    pub fn next_time(&self) -> Option<SimTime> {
        let slot = self
            .earliest_slot_offset()
            .map(|off| SimTime::from_ns(self.start + off as u64));
        let heap = self.overflow.peek().map(|Reverse(e)| e.time);
        match (slot, heap) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        }
    }

    /// Offset (in ticks ahead of the cursor) of the earliest occupied
    /// slot, via a circular scan of the occupancy bitmap.
    fn earliest_slot_offset(&self) -> Option<usize> {
        let cw = self.cursor / 64;
        let cb = self.cursor % 64;
        let offset_of = |slot: usize| (slot + SLOTS - self.cursor) % SLOTS;
        // Bits at and after the cursor within its word.
        let head = self.occupied[cw] & (!0u64 << cb);
        if head != 0 {
            return Some(offset_of(cw * 64 + head.trailing_zeros() as usize));
        }
        // The remaining words, in circular order.
        for i in 1..WORDS {
            let wi = (cw + i) % WORDS;
            let w = self.occupied[wi];
            if w != 0 {
                return Some(offset_of(wi * 64 + w.trailing_zeros() as usize));
            }
        }
        // Bits before the cursor within its word (the wrap-around tail).
        let tail = self.occupied[cw] & !(!0u64 << cb);
        if tail != 0 {
            return Some(offset_of(cw * 64 + tail.trailing_zeros() as usize));
        }
        None
    }

    /// Opens timestamp `t` — which must be [`next_time`](Self::next_time) —
    /// moving every event scheduled at `t` into `staging` in FIFO-per-delta
    /// order.
    pub fn open_into(&mut self, t: SimTime, staging: &mut DeltaStaging) {
        let tn = t.as_ns();
        if tn >= self.start {
            self.advance_to(tn);
            let slot = self.cursor;
            if self.occupied[slot / 64] & (1 << (slot % 64)) != 0 {
                self.occupied[slot / 64] &= !(1 << (slot % 64));
                self.len -= self.slots[slot].len();
                for ev in self.slots[slot].drain(..) {
                    staging.push(ev.delta, ev.target, ev.kind);
                }
            }
        }
        // Rewound schedules (`Simulation::schedule` at a past time between
        // runs) live in the overflow heap below `start`; drain the ones at
        // exactly `t`.
        while matches!(self.overflow.peek(), Some(Reverse(e)) if e.time == t) {
            let Reverse(e) = self.overflow.pop().expect("peeked entry");
            staging.push(e.delta, e.target, e.kind);
            self.len -= 1;
        }
    }

    /// Moves the window forward so `start == tn`, cascading overflow
    /// entries that the new window covers into their slots.
    ///
    /// `tn` is the earliest pending timestamp, so every slot the cursor
    /// skips over is necessarily empty and no event is ever passed by.
    fn advance_to(&mut self, tn: u64) {
        debug_assert!(tn >= self.start, "wheel cannot advance backwards");
        if tn == self.start {
            return;
        }
        let dist = tn - self.start;
        if dist >= SLOTS as u64 {
            debug_assert!(
                self.occupied == [0; WORDS],
                "jumping past the window with occupied slots"
            );
            self.cursor = 0;
        } else {
            self.cursor = (self.cursor + dist as usize) % SLOTS;
        }
        self.start = tn;
        let end = self.start + SLOTS as u64;
        while matches!(self.overflow.peek(), Some(Reverse(e)) if e.time.as_ns() < end) {
            let Reverse(e) = self.overflow.pop().expect("peeked entry");
            debug_assert!(e.time.as_ns() >= self.start, "cascade below window");
            let slot = (self.cursor + (e.time.as_ns() - self.start) as usize) % SLOTS;
            self.slots[slot].push(TimedEvent {
                delta: e.delta,
                target: e.target,
                kind: e.kind,
            });
            self.occupied[slot / 64] |= 1 << (slot % 64);
        }
    }

    /// Total pending timed events.
    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: usize) -> ComponentId {
        ComponentId(n)
    }

    fn drain_at(wheel: &mut TimeWheel, t: SimTime) -> Vec<(u32, usize, u64)> {
        let mut staging = DeltaStaging::default();
        staging.open(t);
        wheel.open_into(t, &mut staging);
        let mut out = Vec::new();
        let mut round = Vec::new();
        while let Some(d) = staging.next_round(&mut round) {
            out.extend(round.drain(..).map(|e| (d, e.target.index(), e.kind)));
        }
        out
    }

    #[test]
    fn in_window_events_come_back_in_time_then_fifo_order() {
        let mut w = TimeWheel::default();
        w.push(SimTime::from_ns(20), 0, cid(0), 1);
        w.push(SimTime::from_ns(10), 0, cid(1), 2);
        w.push(SimTime::from_ns(10), 0, cid(2), 3);
        assert_eq!(w.next_time(), Some(SimTime::from_ns(10)));
        assert_eq!(
            drain_at(&mut w, SimTime::from_ns(10)),
            vec![(0, 1, 2), (0, 2, 3)]
        );
        assert_eq!(w.next_time(), Some(SimTime::from_ns(20)));
        assert_eq!(drain_at(&mut w, SimTime::from_ns(20)), vec![(0, 0, 1)]);
        assert_eq!(w.len(), 0);
        assert_eq!(w.next_time(), None);
    }

    #[test]
    fn far_future_overflow_cascades_on_advance() {
        let mut w = TimeWheel::default();
        let far = SimTime::from_ns(10_000);
        w.push(far, 0, cid(0), 7); // outside [0, 256)
        assert_eq!(w.overflow.len(), 1);
        w.push(SimTime::from_ns(5), 0, cid(1), 8);
        assert_eq!(w.next_time(), Some(SimTime::from_ns(5)));
        assert_eq!(drain_at(&mut w, SimTime::from_ns(5)), vec![(0, 1, 8)]);
        // Advancing to the far time pulls it out of the heap.
        assert_eq!(w.next_time(), Some(far));
        assert_eq!(drain_at(&mut w, far), vec![(0, 0, 7)]);
        assert!(w.overflow.is_empty());
    }

    #[test]
    fn window_rollover_keeps_slot_mapping_consistent() {
        let mut w = TimeWheel::default();
        // Walk the window far past several rotations in small hops.
        let mut t = 0;
        let mut expect = Vec::new();
        for k in 0..1000u64 {
            t += 97; // co-prime with 256: every slot index gets exercised
            w.push(SimTime::from_ns(t), 0, cid(0), k);
            expect.push((t, k));
        }
        let mut got = Vec::new();
        while let Some(next) = w.next_time() {
            for (_, _, kind) in drain_at(&mut w, next) {
                got.push((next.as_ns(), kind));
            }
        }
        assert_eq!(got, expect);
    }

    #[test]
    fn same_timestamp_mixed_residency_preserves_push_order() {
        let mut w = TimeWheel::default();
        let t = SimTime::from_ns(300); // outside the initial window
        w.push(t, 0, cid(0), 0); // overflow
        w.push(SimTime::from_ns(1), 0, cid(9), 99);
        // Advance to 1 does not yet cover 300.
        assert_eq!(drain_at(&mut w, SimTime::from_ns(1)), vec![(0, 9, 99)]);
        // Advance to 290 covers 300: the overflow entry cascades now...
        w.push(SimTime::from_ns(290), 0, cid(9), 98);
        assert_eq!(drain_at(&mut w, SimTime::from_ns(290)), vec![(0, 9, 98)]);
        // ...so this later direct push lands behind it.
        w.push(t, 0, cid(1), 1);
        assert_eq!(drain_at(&mut w, t), vec![(0, 0, 0), (0, 1, 1)]);
    }

    #[test]
    fn rewound_schedule_is_served_from_overflow() {
        let mut w = TimeWheel::default();
        w.push(SimTime::from_ns(500), 0, cid(0), 1);
        assert_eq!(drain_at(&mut w, SimTime::from_ns(500)), vec![(0, 0, 1)]);
        // The window now starts at 500; a past push must still be served.
        w.push(SimTime::from_ns(3), 0, cid(1), 2);
        assert_eq!(w.next_time(), Some(SimTime::from_ns(3)));
        assert_eq!(drain_at(&mut w, SimTime::from_ns(3)), vec![(0, 1, 2)]);
        assert_eq!(w.len(), 0);
    }
}
