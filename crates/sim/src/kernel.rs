//! The simulation kernel: component registry, scheduler and run loop.

use std::any::Any;

use abv_obs::{TraceEvent, Tracer};

use crate::queue::{default_scheduler, EventQueue, SchedulerKind};
use crate::signal::{SignalId, SignalStore};
use crate::staging::Staged;
use crate::stats::SimStats;
use crate::time::SimTime;

/// Handle of a component within a [`Simulation`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ComponentId(pub(crate) usize);

impl ComponentId {
    /// The registration index of this component — stable for a given
    /// simulation build order, which makes it usable as a deterministic
    /// trace-track id.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

/// An event delivered to a [`Component`].
///
/// `kind` is a component-defined tag (signal-change subscriptions and
/// explicit schedules both carry one), letting a component distinguish its
/// wake-up reasons.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Component-defined tag.
    pub kind: u64,
    /// Simulation time of delivery.
    pub time: SimTime,
}

/// A simulation process: anything that reacts to events.
///
/// Components are registered with [`Simulation::add_component`] and woken
/// either by explicit schedules or by subscribed signal changes. The
/// supertrait [`Any`] enables post-run downcasting via
/// [`Simulation::component`] to extract results.
pub trait Component: Any {
    /// Reacts to an event. May read/write signals and schedule further
    /// events through `ctx`.
    fn handle(&mut self, event: Event, ctx: &mut SimCtx<'_>);
}

/// The mutable view of the simulation a component receives while handling
/// an event.
pub struct SimCtx<'a> {
    now: SimTime,
    delta: u32,
    self_id: ComponentId,
    signals: &'a mut SignalStore,
    queue: &'a mut EventQueue,
    tracer: &'a Tracer,
}

impl SimCtx<'_> {
    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The handling component's own id.
    #[must_use]
    pub fn self_id(&self) -> ComponentId {
        self.self_id
    }

    /// The simulation's tracer — disabled by default; components use it
    /// (via [`abv_obs::trace!`]) to emit structured events on the shared
    /// timeline.
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        self.tracer
    }

    /// Current value of a signal.
    #[must_use]
    pub fn read(&self, signal: SignalId) -> u64 {
        self.signals.read(signal)
    }

    /// Requests a signal write; the value commits at the end of the current
    /// delta cycle (SystemC `sc_signal` semantics). The last write in a
    /// delta wins.
    pub fn write(&mut self, signal: SignalId, value: u64) {
        self.signals.write(signal, value);
    }

    /// Schedules delivery of `kind` to `component` after `delay_ns`
    /// nanoseconds. A zero delay delivers in the next delta cycle of the
    /// current timestamp.
    pub fn schedule_in(&mut self, delay_ns: u64, component: ComponentId, kind: u64) {
        if delay_ns == 0 {
            // The handling timestamp is always open on the scheduler.
            self.queue
                .push_staged(self.now, self.delta + 1, component, kind);
        } else {
            self.queue.push(self.now + delay_ns, 0, component, kind);
        }
    }

    /// Schedules delivery of `kind` to the handling component itself after
    /// `delay_ns` nanoseconds (zero = next delta).
    pub fn schedule_self(&mut self, delay_ns: u64, kind: u64) {
        self.schedule_in(delay_ns, self.self_id, kind);
    }

    /// Wakes `component` with `kind` in the next delta cycle — the kernel's
    /// zero-time notification primitive (used e.g. to tell checkers that a
    /// transaction completed).
    pub fn notify(&mut self, component: ComponentId, kind: u64) {
        self.schedule_in(0, component, kind);
    }
}

/// A discrete-event simulation: signals, components, scheduler and clock.
///
/// See the [crate-level example](crate) for typical usage.
pub struct Simulation {
    components: Vec<Option<Box<dyn Component>>>,
    events_per_component: Vec<u64>,
    signals: SignalStore,
    queue: EventQueue,
    now: SimTime,
    last_timestamp: Option<SimTime>,
    stats: SimStats,
    tracer: Tracer,
    /// Recycled evaluate-round buffer (swapped with the scheduler's round
    /// buffers each delta, so the steady-state run loop allocates nothing).
    round_scratch: Vec<Staged>,
    /// Stats as of the last emitted kernel-counter sample, so the trailing
    /// sample is only emitted when something changed since.
    last_counter_sample: Option<SimStats>,
}

impl Default for Simulation {
    fn default() -> Simulation {
        Simulation::with_scheduler(default_scheduler())
    }
}

/// The kernel counter track: cumulative [`SimStats`] sampled at every
/// timestamp boundary, on `(pid 0, tid 0)`.
pub const KERNEL_COUNTER_TRACK: &str = "kernel";

impl Simulation {
    /// Creates an empty simulation at time zero, scheduling on the
    /// process-wide default (see [`set_default_scheduler`]).
    ///
    /// [`set_default_scheduler`]: crate::set_default_scheduler
    #[must_use]
    pub fn new() -> Simulation {
        Simulation::default()
    }

    /// Creates an empty simulation scheduling on an explicit queue
    /// implementation — [`SchedulerKind::Reference`] exists for
    /// differential tests and scheduler benchmarks.
    #[must_use]
    pub fn with_scheduler(kind: SchedulerKind) -> Simulation {
        Simulation {
            components: Vec::new(),
            events_per_component: Vec::new(),
            signals: SignalStore::default(),
            queue: EventQueue::new(kind),
            now: SimTime::ZERO,
            last_timestamp: None,
            stats: SimStats::new(),
            tracer: Tracer::disabled(),
            round_scratch: Vec::new(),
            last_counter_sample: None,
        }
    }

    /// The queue implementation this simulation schedules on.
    #[must_use]
    pub fn scheduler_kind(&self) -> SchedulerKind {
        self.queue.kind()
    }

    /// Pre-allocates room for `additional` more signals — worth calling
    /// once before the signal burst of a design build.
    pub fn reserve_signals(&mut self, additional: usize) {
        self.signals.reserve(additional);
    }

    /// Registers a named signal with an initial value and returns its
    /// handle.
    ///
    /// # Panics
    ///
    /// Panics if a signal named `name` already exists.
    pub fn add_signal(&mut self, name: &str, init: u64) -> SignalId {
        assert!(
            !self.signals.contains_name(name),
            "duplicate signal name `{name}`"
        );
        self.signals.add(name, init)
    }

    /// Registers a component and returns its handle.
    pub fn add_component(&mut self, component: impl Component) -> ComponentId {
        let id = ComponentId(self.components.len());
        self.components.push(Some(Box::new(component)));
        self.events_per_component.push(0);
        id
    }

    /// Number of events delivered to `component` so far — the kernel-side
    /// activity attribution used by the overhead analyses.
    #[must_use]
    pub fn events_for(&self, component: ComponentId) -> u64 {
        self.events_per_component
            .get(component.0)
            .copied()
            .unwrap_or(0)
    }

    /// Subscribes `component` to changes of `signal`: each committed change
    /// delivers an event with the given `kind` in the following delta.
    pub fn subscribe(&mut self, signal: SignalId, component: ComponentId, kind: u64) {
        self.signals.subscribe(signal, component, kind);
    }

    /// Schedules delivery of `kind` to `component` at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, component: ComponentId, kind: u64) {
        self.queue.push(at, 0, component, kind);
    }

    /// Looks up a signal by name.
    #[must_use]
    pub fn signal_id(&self, name: &str) -> Option<SignalId> {
        self.signals.lookup(name)
    }

    /// Current value of a signal.
    #[must_use]
    pub fn signal(&self, id: SignalId) -> u64 {
        self.signals.read(id)
    }

    /// The registered name of `id`.
    #[must_use]
    pub fn signal_name(&self, id: SignalId) -> &str {
        self.signals.name(id)
    }

    /// Immediately forces a signal value without waking subscribers.
    /// Intended for pre-run initialization.
    pub fn force_signal(&mut self, id: SignalId, value: u64) {
        self.signals.force(id, value);
    }

    /// Iterates `(name, value)` over all signals.
    pub fn signals(&self) -> impl Iterator<Item = (&str, u64)> {
        self.signals.iter()
    }

    /// Borrows a component back as its concrete type (e.g. to read results
    /// after a run). Returns `None` for a wrong type or a stale id.
    #[must_use]
    pub fn component<T: Component>(&self, id: ComponentId) -> Option<&T> {
        let boxed = self.components.get(id.0)?.as_deref()?;
        (boxed as &dyn Any).downcast_ref::<T>()
    }

    /// Mutably borrows a component back as its concrete type.
    #[must_use]
    pub fn component_mut<T: Component>(&mut self, id: ComponentId) -> Option<&mut T> {
        let boxed = self.components.get_mut(id.0)?.as_deref_mut()?;
        (boxed as &mut dyn Any).downcast_mut::<T>()
    }

    /// Current simulation time.
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Attaches a tracer; the kernel then emits its counter track and
    /// components see the tracer through [`SimCtx::tracer`]. The default is
    /// [`Tracer::disabled`], which costs one branch per timestamp.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The simulation's tracer (disabled by default).
    #[must_use]
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Emits one cumulative kernel-counter sample at `at`.
    fn trace_counters(&mut self, at: SimTime) {
        abv_obs::trace!(
            self.tracer,
            TraceEvent::counter(KERNEL_COUNTER_TRACK, 0, 0, at.as_ns())
                .with_arg("events", self.stats.events_processed)
                .with_arg("deltas", self.stats.delta_cycles)
                .with_arg("signal_changes", self.stats.signal_changes)
        );
        self.last_counter_sample = Some(self.stats);
    }

    /// Runs until the event queue drains or the next event lies beyond
    /// `end`, whichever comes first. Events exactly at `end` are processed.
    /// Returns the accumulated statistics.
    ///
    /// Each loop iteration opens one timestamp on the scheduler and drains
    /// it round by round: the evaluate phase delivers one staged delta
    /// round (whose zero-delay schedules stage into the next round), the
    /// update phase commits signal writes and stages the resulting wakes —
    /// SystemC's delta-cycle discipline, with every same-timestamp hop an
    /// O(1) staging push.
    ///
    /// # Panics
    ///
    /// Panics if a component handles an event while already being handled
    /// (the kernel is strictly sequential, so this indicates a stale
    /// [`ComponentId`]).
    pub fn run_until(&mut self, end: SimTime) -> SimStats {
        let mut round = std::mem::take(&mut self.round_scratch);
        while let Some(t) = self.queue.next_time() {
            if t > end {
                break;
            }
            if self.last_timestamp != Some(t) {
                self.last_timestamp = Some(t);
                self.stats.timestamps += 1;
                if self.tracer.is_enabled() {
                    self.trace_counters(t);
                }
            }
            if t > self.now {
                self.now = t;
            }

            self.queue.begin_timestamp(t);
            while let Some(delta) = self.queue.next_round(t, &mut round) {
                // Evaluate phase: deliver every event at (t, delta).
                for entry in round.drain(..) {
                    let mut component = self.components[entry.target.0]
                        .take()
                        .expect("component re-entered while being handled");
                    let mut ctx = SimCtx {
                        now: t,
                        delta,
                        self_id: entry.target,
                        signals: &mut self.signals,
                        queue: &mut self.queue,
                        tracer: &self.tracer,
                    };
                    component.handle(
                        Event {
                            kind: entry.kind,
                            time: t,
                        },
                        &mut ctx,
                    );
                    self.components[entry.target.0] = Some(component);
                    self.events_per_component[entry.target.0] += 1;
                    self.stats.events_processed += 1;
                }

                // Update phase: commit writes, wake sensitive components in
                // the next delta.
                if self.signals.has_pending() {
                    let queue = &mut self.queue;
                    let changes = self.signals.commit(|component, kind| {
                        queue.push_staged(t, delta + 1, component, kind);
                    });
                    self.stats.signal_changes += changes as u64;
                }
                self.stats.delta_cycles += 1;
            }
        }
        self.round_scratch = round;
        // Final sample so the counter track covers the whole run — skipped
        // when nothing changed since the last emission (otherwise a
        // run_until call that processes no events would append a duplicate
        // trailing counter row).
        if self.tracer.is_enabled() {
            if let Some(last) = self.last_timestamp {
                if self.last_counter_sample != Some(self.stats) {
                    self.trace_counters(last);
                }
            }
        }
        self.stats
    }

    /// Runs until the event queue is completely drained.
    pub fn run_to_completion(&mut self) -> SimStats {
        self.run_until(SimTime::MAX)
    }

    /// Number of pending events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// True if no events are pending.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Recorder {
        seen: Vec<(u64, u64)>, // (time, kind)
    }

    impl Component for Recorder {
        fn handle(&mut self, ev: Event, _ctx: &mut SimCtx<'_>) {
            self.seen.push((ev.time.as_ns(), ev.kind));
        }
    }

    struct Writer {
        sig: SignalId,
        value: u64,
    }

    impl Component for Writer {
        fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
            ctx.write(self.sig, self.value);
        }
    }

    #[test]
    fn events_delivered_in_time_order() {
        let mut sim = Simulation::new();
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.schedule(SimTime::from_ns(30), r, 3);
        sim.schedule(SimTime::from_ns(10), r, 1);
        sim.schedule(SimTime::from_ns(20), r, 2);
        sim.run_to_completion();
        let rec: &Recorder = sim.component(r).unwrap();
        assert_eq!(rec.seen, vec![(10, 1), (20, 2), (30, 3)]);
    }

    #[test]
    fn run_until_stops_at_boundary_inclusive() {
        let mut sim = Simulation::new();
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.schedule(SimTime::from_ns(10), r, 1);
        sim.schedule(SimTime::from_ns(20), r, 2);
        sim.schedule(SimTime::from_ns(21), r, 3);
        sim.run_until(SimTime::from_ns(20));
        let rec: &Recorder = sim.component(r).unwrap();
        assert_eq!(rec.seen, vec![(10, 1), (20, 2)]);
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn signal_change_wakes_subscriber_next_delta() {
        let mut sim = Simulation::new();
        let s = sim.add_signal("s", 0);
        let w = sim.add_component(Writer { sig: s, value: 7 });
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.subscribe(s, r, 42);
        sim.schedule(SimTime::from_ns(5), w, 0);
        sim.run_to_completion();
        let rec: &Recorder = sim.component(r).unwrap();
        assert_eq!(rec.seen, vec![(5, 42)], "woken at same time, later delta");
        assert_eq!(sim.signal(s), 7);
    }

    #[test]
    fn no_wake_when_value_unchanged() {
        let mut sim = Simulation::new();
        let s = sim.add_signal("s", 7);
        let w = sim.add_component(Writer { sig: s, value: 7 });
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.subscribe(s, r, 42);
        sim.schedule(SimTime::from_ns(5), w, 0);
        sim.run_to_completion();
        let rec: &Recorder = sim.component(r).unwrap();
        assert!(rec.seen.is_empty());
    }

    /// A component that cascades: on kind 0 it writes s1; a subscriber of
    /// s1 writes s2; a subscriber of s2 records. Verifies multi-delta
    /// propagation within one timestamp.
    #[test]
    fn delta_cycles_cascade_at_one_timestamp() {
        let mut sim = Simulation::new();
        let s1 = sim.add_signal("s1", 0);
        let s2 = sim.add_signal("s2", 0);
        let w1 = sim.add_component(Writer { sig: s1, value: 1 });
        let w2 = sim.add_component(Writer { sig: s2, value: 1 });
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.subscribe(s1, w2, 0);
        sim.subscribe(s2, r, 99);
        sim.schedule(SimTime::from_ns(10), w1, 0);
        let stats = sim.run_to_completion();
        let rec: &Recorder = sim.component(r).unwrap();
        assert_eq!(rec.seen, vec![(10, 99)]);
        assert!(stats.delta_cycles >= 3, "three evaluate/update rounds");
        assert_eq!(stats.signal_changes, 2);
    }

    #[test]
    fn schedule_self_and_zero_delay() {
        struct SelfScheduler {
            hops: u32,
        }
        impl Component for SelfScheduler {
            fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
                if ev.kind < 3 {
                    self.hops += 1;
                    ctx.schedule_self(0, ev.kind + 1);
                }
            }
        }
        let mut sim = Simulation::new();
        let c = sim.add_component(SelfScheduler { hops: 0 });
        sim.schedule(SimTime::from_ns(1), c, 0);
        sim.run_to_completion();
        assert_eq!(sim.component::<SelfScheduler>(c).unwrap().hops, 3);
        assert_eq!(
            sim.now(),
            SimTime::from_ns(1),
            "zero delays stay at one timestamp"
        );
    }

    #[test]
    fn component_downcast_wrong_type_is_none() {
        let mut sim = Simulation::new();
        let s = sim.add_signal("s", 0);
        let w = sim.add_component(Writer { sig: s, value: 1 });
        assert!(sim.component::<Recorder>(w).is_none());
        assert!(sim.component::<Writer>(w).is_some());
    }

    #[test]
    #[should_panic(expected = "duplicate signal name")]
    fn duplicate_signal_names_rejected() {
        let mut sim = Simulation::new();
        sim.add_signal("s", 0);
        sim.add_signal("s", 1);
    }

    #[test]
    fn per_component_event_attribution() {
        let mut sim = Simulation::new();
        let a = sim.add_component(Recorder { seen: Vec::new() });
        let b = sim.add_component(Recorder { seen: Vec::new() });
        for k in 0..3 {
            sim.schedule(SimTime::from_ns(10 + k), a, 0);
        }
        sim.schedule(SimTime::from_ns(20), b, 0);
        sim.run_to_completion();
        assert_eq!(sim.events_for(a), 3);
        assert_eq!(sim.events_for(b), 1);
        assert_eq!(sim.events_for(ComponentId(99)), 0, "stale ids read as zero");
    }

    /// The trailing kernel-counter sample is emitted once per change: a
    /// `run_until` that processes nothing must not append a duplicate row
    /// for the last timestamp.
    #[test]
    fn trailing_counter_sample_is_not_duplicated() {
        use abv_obs::Phase;

        let mut sim = Simulation::new();
        let (tracer, sink) = Tracer::memory();
        sim.set_tracer(tracer);
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.schedule(SimTime::from_ns(10), r, 1);
        sim.run_until(SimTime::from_ns(20));
        let after_first = sink
            .borrow()
            .events()
            .filter(|e| e.phase == Phase::Counter)
            .count();
        assert_eq!(after_first, 2, "entry sample + changed trailing sample");

        // Idle re-runs emit nothing new.
        sim.run_until(SimTime::from_ns(30));
        sim.run_until(SimTime::from_ns(40));
        let after_idle = sink
            .borrow()
            .events()
            .filter(|e| e.phase == Phase::Counter)
            .count();
        assert_eq!(after_idle, after_first, "idle runs duplicated the sample");

        // New activity resumes sampling.
        sim.schedule(SimTime::from_ns(50), r, 2);
        sim.run_until(SimTime::from_ns(60));
        let after_more = sink
            .borrow()
            .events()
            .filter(|e| e.phase == Phase::Counter)
            .count();
        assert_eq!(after_more, after_first + 2);
    }

    #[test]
    fn force_signal_initializes_without_wake() {
        let mut sim = Simulation::new();
        let s = sim.add_signal("s", 0);
        let r = sim.add_component(Recorder { seen: Vec::new() });
        sim.subscribe(s, r, 1);
        sim.force_signal(s, 5);
        sim.run_to_completion();
        assert_eq!(sim.signal(s), 5);
        assert!(sim.component::<Recorder>(r).unwrap().seen.is_empty());
    }
}
