//! Signals: named 64-bit state with SystemC `sc_signal` update semantics.
//!
//! Writes performed during an evaluate phase are *pending* until the kernel
//! commits them between delta cycles; a commit that changes a signal's
//! value wakes the components on its sensitivity list in the next delta.
//!
//! The store is laid out struct-of-arrays: the commit path touches only
//! the dense `pending`/`dirty` columns (a flat flag per slot instead of an
//! `Option` discriminant), and names — which only matter at build and
//! report time — live in their own column, allocated once and shared with
//! the lookup map.

use std::collections::HashMap;
use std::rc::Rc;

use crate::kernel::ComponentId;

/// Handle of a signal within a [`Simulation`](crate::Simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

/// Storage for all signals of a simulation.
#[derive(Debug, Default)]
pub(crate) struct SignalStore {
    /// Registered names; each allocation is shared with the `by_name` key.
    names: Vec<Rc<str>>,
    /// Committed values.
    values: Vec<u64>,
    /// Pending write per slot, meaningful while its dirty flag is set.
    pending: Vec<u64>,
    /// Dense per-slot dirty flag gating `pending`.
    dirty_flags: Vec<bool>,
    /// `(component, event kind delivered on change)` per slot.
    sensitivity: Vec<Vec<(ComponentId, u64)>>,
    by_name: HashMap<Rc<str>, SignalId>,
    /// Slots with a pending write, in first-write order (deduplicated by
    /// the dirty flags) — commit wake order must be deterministic.
    dirty: Vec<SignalId>,
}

impl SignalStore {
    /// Pre-allocates room for `additional` more signals across every
    /// column (design builds register their whole pin list in one burst).
    pub fn reserve(&mut self, additional: usize) {
        self.names.reserve(additional);
        self.values.reserve(additional);
        self.pending.reserve(additional);
        self.dirty_flags.reserve(additional);
        self.sensitivity.reserve(additional);
        self.by_name.reserve(additional);
    }

    /// Creates a signal; duplicate names are rejected by the kernel wrapper.
    pub fn add(&mut self, name: &str, init: u64) -> SignalId {
        let id = SignalId(self.values.len());
        let name: Rc<str> = Rc::from(name);
        self.names.push(name.clone());
        self.values.push(init);
        self.pending.push(0);
        self.dirty_flags.push(false);
        self.sensitivity.push(Vec::new());
        self.by_name.insert(name, id);
        id
    }

    pub fn lookup(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    pub fn contains_name(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    pub fn name(&self, id: SignalId) -> &str {
        &self.names[id.0]
    }

    pub fn read(&self, id: SignalId) -> u64 {
        self.values[id.0]
    }

    /// Requests a write; commits at the next update phase (last write wins).
    pub fn write(&mut self, id: SignalId, value: u64) {
        if !self.dirty_flags[id.0] {
            self.dirty_flags[id.0] = true;
            self.dirty.push(id);
        }
        self.pending[id.0] = value;
    }

    /// Immediately forces a value (initialization only — bypasses the
    /// update phase and does not wake sensitive components).
    pub fn force(&mut self, id: SignalId, value: u64) {
        self.values[id.0] = value;
    }

    pub fn subscribe(&mut self, id: SignalId, component: ComponentId, kind: u64) {
        self.sensitivity[id.0].push((component, kind));
    }

    pub fn has_pending(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Commits all pending writes. Calls `wake(component, kind)` for every
    /// subscriber of every signal whose committed value differs from the
    /// old one. Returns the number of changed signals.
    pub fn commit(&mut self, mut wake: impl FnMut(ComponentId, u64)) -> usize {
        let mut changed = 0;
        // Disjoint-field borrows: the dirty list is only read while the
        // value/flag columns are written, and cleared after — the
        // allocation is reused across commits.
        for id in &self.dirty {
            let i = id.0;
            self.dirty_flags[i] = false;
            let v = self.pending[i];
            if v != self.values[i] {
                self.values[i] = v;
                changed += 1;
                for &(c, kind) in &self.sensitivity[i] {
                    wake(c, kind);
                }
            }
        }
        self.dirty.clear();
        changed
    }

    /// Iterates `(name, current value)` over all signals.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.names
            .iter()
            .zip(&self.values)
            .map(|(n, &v)| (n.as_ref(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_deferred_until_commit() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        st.write(s, 5);
        assert_eq!(st.read(s), 0, "pending until commit");
        let changed = st.commit(|_, _| {});
        assert_eq!(changed, 1);
        assert_eq!(st.read(s), 5);
    }

    #[test]
    fn last_write_wins() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        st.write(s, 1);
        st.write(s, 2);
        st.commit(|_, _| {});
        assert_eq!(st.read(s), 2);
    }

    #[test]
    fn unchanged_commit_does_not_wake() {
        let mut st = SignalStore::default();
        let s = st.add("s", 7);
        st.subscribe(s, ComponentId(0), 9);
        st.write(s, 7);
        let mut woken = Vec::new();
        let changed = st.commit(|c, k| woken.push((c, k)));
        assert_eq!(changed, 0);
        assert!(woken.is_empty());
        assert!(!st.has_pending(), "dirty state fully cleared");
    }

    #[test]
    fn change_wakes_all_subscribers() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        st.subscribe(s, ComponentId(1), 10);
        st.subscribe(s, ComponentId(2), 20);
        st.write(s, 1);
        let mut woken = Vec::new();
        st.commit(|c, k| woken.push((c, k)));
        assert_eq!(woken, vec![(ComponentId(1), 10), (ComponentId(2), 20)]);
    }

    #[test]
    fn lookup_by_name() {
        let mut st = SignalStore::default();
        let s = st.add("rdy", 0);
        assert_eq!(st.lookup("rdy"), Some(s));
        assert_eq!(st.lookup("nope"), None);
        assert_eq!(st.name(s), "rdy");
    }

    #[test]
    fn name_storage_is_shared_not_duplicated() {
        let mut st = SignalStore::default();
        st.reserve(2);
        let s = st.add("shared", 0);
        let (key, _) = st.by_name.get_key_value("shared").expect("registered");
        assert!(
            Rc::ptr_eq(key, &st.names[s.0]),
            "map key and name column share one allocation"
        );
    }

    #[test]
    fn dirty_list_is_reused_across_commits() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        for round in 1..=3u64 {
            st.write(s, round);
            assert!(st.has_pending());
            assert_eq!(st.commit(|_, _| {}), 1);
        }
        assert_eq!(st.read(s), 3);
    }
}
