//! Signals: named 64-bit state with SystemC `sc_signal` update semantics.
//!
//! Writes performed during an evaluate phase are *pending* until the kernel
//! commits them between delta cycles; a commit that changes a signal's
//! value wakes the components on its sensitivity list in the next delta.

use std::collections::HashMap;

use crate::kernel::ComponentId;

/// Handle of a signal within a [`Simulation`](crate::Simulation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) usize);

#[derive(Debug)]
struct Slot {
    name: String,
    value: u64,
    pending: Option<u64>,
    /// `(component, event kind delivered on change)`.
    sensitivity: Vec<(ComponentId, u64)>,
}

/// Storage for all signals of a simulation.
#[derive(Debug, Default)]
pub(crate) struct SignalStore {
    slots: Vec<Slot>,
    by_name: HashMap<String, SignalId>,
    /// Signals with a pending write, deduplicated.
    dirty: Vec<SignalId>,
}

impl SignalStore {
    /// Creates a signal; duplicate names are rejected by the kernel wrapper.
    pub fn add(&mut self, name: &str, init: u64) -> SignalId {
        let id = SignalId(self.slots.len());
        self.slots.push(Slot {
            name: name.to_owned(),
            value: init,
            pending: None,
            sensitivity: Vec::new(),
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    pub fn lookup(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    pub fn contains_name(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    pub fn name(&self, id: SignalId) -> &str {
        &self.slots[id.0].name
    }

    pub fn read(&self, id: SignalId) -> u64 {
        self.slots[id.0].value
    }

    /// Requests a write; commits at the next update phase (last write wins).
    pub fn write(&mut self, id: SignalId, value: u64) {
        let slot = &mut self.slots[id.0];
        if slot.pending.is_none() {
            self.dirty.push(id);
        }
        slot.pending = Some(value);
    }

    /// Immediately forces a value (initialization only — bypasses the
    /// update phase and does not wake sensitive components).
    pub fn force(&mut self, id: SignalId, value: u64) {
        self.slots[id.0].value = value;
    }

    pub fn subscribe(&mut self, id: SignalId, component: ComponentId, kind: u64) {
        self.slots[id.0].sensitivity.push((component, kind));
    }

    pub fn has_pending(&self) -> bool {
        !self.dirty.is_empty()
    }

    /// Commits all pending writes. Calls `wake(component, kind)` for every
    /// subscriber of every signal whose committed value differs from the
    /// old one. Returns the number of changed signals.
    pub fn commit(&mut self, mut wake: impl FnMut(ComponentId, u64)) -> usize {
        let mut changed = 0;
        let dirty = std::mem::take(&mut self.dirty);
        for id in dirty {
            let slot = &mut self.slots[id.0];
            let Some(v) = slot.pending.take() else {
                continue;
            };
            if v != slot.value {
                slot.value = v;
                changed += 1;
                for &(c, kind) in &slot.sensitivity {
                    wake(c, kind);
                }
            }
        }
        changed
    }

    /// Iterates `(name, current value)` over all signals.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.slots.iter().map(|s| (s.name.as_str(), s.value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_is_deferred_until_commit() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        st.write(s, 5);
        assert_eq!(st.read(s), 0, "pending until commit");
        let changed = st.commit(|_, _| {});
        assert_eq!(changed, 1);
        assert_eq!(st.read(s), 5);
    }

    #[test]
    fn last_write_wins() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        st.write(s, 1);
        st.write(s, 2);
        st.commit(|_, _| {});
        assert_eq!(st.read(s), 2);
    }

    #[test]
    fn unchanged_commit_does_not_wake() {
        let mut st = SignalStore::default();
        let s = st.add("s", 7);
        st.subscribe(s, ComponentId(0), 9);
        st.write(s, 7);
        let mut woken = Vec::new();
        let changed = st.commit(|c, k| woken.push((c, k)));
        assert_eq!(changed, 0);
        assert!(woken.is_empty());
    }

    #[test]
    fn change_wakes_all_subscribers() {
        let mut st = SignalStore::default();
        let s = st.add("s", 0);
        st.subscribe(s, ComponentId(1), 10);
        st.subscribe(s, ComponentId(2), 20);
        st.write(s, 1);
        let mut woken = Vec::new();
        st.commit(|c, k| woken.push((c, k)));
        assert_eq!(woken, vec![(ComponentId(1), 10), (ComponentId(2), 20)]);
    }

    #[test]
    fn lookup_by_name() {
        let mut st = SignalStore::default();
        let s = st.add("rdy", 0);
        assert_eq!(st.lookup("rdy"), Some(s));
        assert_eq!(st.lookup("nope"), None);
        assert_eq!(st.name(s), "rdy");
    }
}
