//! The delta staging area: per-round flat buffers for the *active*
//! timestamp.
//!
//! All same-timestamp work — `notify` wakes, zero-delay self-schedules and
//! signal-commit wakes — lands here with an O(1) `Vec` push, never touching
//! the time wheel or a comparison-based queue. Rounds are drained in delta
//! order by swapping the round buffer with the kernel's scratch vector
//! (classic double buffering: while round *d* is being delivered, its
//! pushes accumulate in the buffer for round *d + 1*), so buffers are
//! recycled and the steady state allocates nothing.
//!
//! Round `d` lives at `rounds[d]` — deltas restart at zero each timestamp,
//! so the buffer list is a plain `Vec` whose length is the high-water mark
//! of deltas per timestamp (a handful), and the drained prefix *is* the
//! recycling pool for the next timestamp.
//!
//! FIFO order among simultaneous events falls out of bucket insertion
//! order; no global sequence number is needed on this path.

use crate::kernel::ComponentId;
use crate::time::SimTime;

/// One staged delivery; the `(time, delta)` key is implicit in the buffer
/// holding it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Staged {
    /// Receiving component.
    pub target: ComponentId,
    /// Component-defined tag.
    pub kind: u64,
}

/// Double-buffered per-delta staging for the timestamp currently being
/// processed.
#[derive(Debug, Default)]
pub(crate) struct DeltaStaging {
    /// The timestamp the staging area is open at (meaningful while
    /// `active`).
    time: SimTime,
    /// True between [`open`](Self::open) and the exhausting
    /// [`next_round`](Self::next_round).
    active: bool,
    /// Drain cursor: the next round to deliver is `rounds[head]`.
    head: usize,
    /// `rounds[d]` holds the deliveries staged at delta `d`; entries before
    /// `head` are drained (and empty, keeping their capacity for reuse).
    rounds: Vec<Vec<Staged>>,
    /// Total staged events across all rounds.
    len: usize,
}

impl DeltaStaging {
    /// Opens the staging area at `time` with the delta counter reset.
    pub fn open(&mut self, time: SimTime) {
        debug_assert!(!self.active, "staging re-opened while active");
        debug_assert_eq!(self.len, 0, "staging opened with residual events");
        self.time = time;
        self.active = true;
        self.head = 0;
    }

    /// True if the staging area is open at exactly `time` — the routing
    /// predicate: such pushes stage, everything else goes to the wheel.
    pub fn is_open_at(&self, time: SimTime) -> bool {
        self.active && self.time == time
    }

    /// The open timestamp, if any.
    pub fn open_time(&self) -> Option<SimTime> {
        self.active.then_some(self.time)
    }

    /// Stages a delivery at `delta` of the open timestamp.
    ///
    /// The kernel only ever pushes at `current round + 1` (evaluate-phase
    /// zero-delay schedules and update-phase commit wakes), so `delta`
    /// can never lie behind the drain cursor.
    pub fn push(&mut self, delta: u32, target: ComponentId, kind: u64) {
        debug_assert!(self.active, "staging push while closed");
        debug_assert!(
            delta as usize >= self.head,
            "staging push at delta {delta} behind drain cursor {}",
            self.head
        );
        let idx = delta as usize;
        if self.rounds.len() <= idx {
            self.rounds.resize_with(idx + 1, Vec::new);
        }
        self.rounds[idx].push(Staged { target, kind });
        self.len += 1;
    }

    /// Swaps the next non-empty round into `out` (which must be empty) and
    /// returns its delta. Returns `None` — closing the staging area — once
    /// every round has drained.
    pub fn next_round(&mut self, out: &mut Vec<Staged>) -> Option<u32> {
        debug_assert!(out.is_empty(), "round scratch not drained");
        while self.head < self.rounds.len() {
            let delta = self.head as u32;
            let round = &mut self.rounds[self.head];
            self.head += 1;
            if !round.is_empty() {
                self.len -= round.len();
                std::mem::swap(round, out);
                return Some(delta);
            }
        }
        self.active = false;
        self.head = 0;
        None
    }

    /// Total staged events.
    pub fn len(&self) -> usize {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(n: usize) -> ComponentId {
        ComponentId(n)
    }

    #[test]
    fn rounds_drain_in_delta_order_with_fifo_buckets() {
        let mut st = DeltaStaging::default();
        st.open(SimTime::from_ns(10));
        st.push(0, cid(1), 11);
        st.push(1, cid(2), 22);
        st.push(0, cid(3), 33);
        assert_eq!(st.len(), 3);

        let mut out = Vec::new();
        assert_eq!(st.next_round(&mut out), Some(0));
        assert_eq!(
            out,
            vec![
                Staged {
                    target: cid(1),
                    kind: 11
                },
                Staged {
                    target: cid(3),
                    kind: 33
                }
            ]
        );
        out.clear();
        assert_eq!(st.next_round(&mut out), Some(1));
        assert_eq!(out.len(), 1);
        out.clear();
        assert_eq!(st.next_round(&mut out), None);
        assert_eq!(st.len(), 0);
        assert!(!st.is_open_at(SimTime::from_ns(10)));
    }

    #[test]
    fn pushes_during_drain_land_in_later_rounds() {
        let mut st = DeltaStaging::default();
        st.open(SimTime::ZERO);
        st.push(0, cid(0), 0);
        let mut out = Vec::new();
        assert_eq!(st.next_round(&mut out), Some(0));
        out.clear();
        // While round 0 is "being delivered", its successors stage at 1.
        st.push(1, cid(7), 70);
        assert_eq!(st.next_round(&mut out), Some(1));
        assert_eq!(out[0].target, cid(7));
        out.clear();
        assert_eq!(st.next_round(&mut out), None);
    }

    #[test]
    fn empty_intermediate_rounds_are_skipped() {
        let mut st = DeltaStaging::default();
        st.open(SimTime::ZERO);
        st.push(3, cid(4), 40); // sparse: rounds 0..=2 stay empty
        let mut out = Vec::new();
        assert_eq!(st.next_round(&mut out), Some(3));
        out.clear();
        assert_eq!(st.next_round(&mut out), None);
    }

    #[test]
    fn buffers_are_recycled_across_timestamps() {
        let mut st = DeltaStaging::default();
        let mut out = Vec::new();
        for ts in 0..100 {
            st.open(SimTime::from_ns(ts));
            st.push(0, cid(0), ts);
            st.push(1, cid(1), ts);
            while st.next_round(&mut out).is_some() {
                out.clear();
            }
        }
        assert!(
            st.rounds.len() <= 2,
            "buffer list stays at the per-timestamp high-water mark"
        );
        assert!(st.rounds.iter().all(|r| r.capacity() > 0 || r.is_empty()));
    }
}
