//! `desim` — a discrete-event simulation kernel.
//!
//! This crate is the SystemC substitute of the reproduction: a
//! single-threaded event-driven kernel with
//!
//! - integer-nanosecond simulation time ([`SimTime`]),
//! - an evaluate/update/notify **delta-cycle** discipline matching SystemC's
//!   `sc_signal` semantics: writes performed during an evaluate phase commit
//!   between delta cycles, and components sensitive to a changed signal wake
//!   in the next delta,
//! - components as trait objects ([`Component`]) receiving [`Event`]s,
//! - named signals with sensitivity lists,
//! - kernel statistics ([`SimStats`]) counting processed events and delta
//!   cycles — the activity measure behind the paper's Table I overhead
//!   discussion.
//!
//! RTL models (`rtlkit`) and TLM models (`tlmkit`) are built on top of this
//! kernel, which is what makes the paper's cross-abstraction
//! simulation-time comparison meaningful: all three abstraction levels run
//! on the same scheduler.
//!
//! # Example
//!
//! ```
//! use desim::{Component, Event, SimCtx, SimTime, Simulation};
//!
//! /// Toggles a signal every 5 ns.
//! struct Toggler {
//!     out: desim::SignalId,
//! }
//!
//! impl Component for Toggler {
//!     fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
//!         let v = ctx.read(self.out);
//!         ctx.write(self.out, 1 - v);
//!         ctx.schedule_self(5, 0);
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let clk = sim.add_signal("clk", 0);
//! let toggler = sim.add_component(Toggler { out: clk });
//! sim.schedule(SimTime::ZERO, toggler, 0);
//! sim.run_until(SimTime::from_ns(50));
//! assert_eq!(sim.stats().events_processed, 11); // t = 0, 5, ..., 50
//! ```

mod kernel;
mod queue;
mod signal;
mod staging;
mod stats;
mod time;
mod wheel;

pub use kernel::{Component, ComponentId, Event, SimCtx, Simulation, KERNEL_COUNTER_TRACK};
pub use queue::{default_scheduler, set_default_scheduler, SchedulerKind};
pub use signal::SignalId;
pub use stats::SimStats;
pub use time::SimTime;

/// Test-only scheduler access for differential testing.
///
/// Hidden from docs: this exists so the randomized equivalence suite
/// (`tests/sched_differential.rs`) can drive the two queue implementations
/// event-for-event without going through a full simulation.
#[doc(hidden)]
pub mod testing {
    use crate::kernel::ComponentId;
    use crate::queue::EventQueue;
    pub use crate::queue::SchedulerKind;
    use crate::staging::Staged;
    use crate::time::SimTime;

    /// Drives one queue implementation push-by-push / pop-by-pop.
    ///
    /// Pushes must describe a kernel-realizable trace: while a timestamp
    /// is mid-drain, same-timestamp pushes must land at a delta strictly
    /// greater than the round currently being popped (exactly what
    /// `SimCtx` enforces by construction).
    pub struct SchedulerHarness {
        queue: EventQueue,
        round: Vec<Staged>,
        cursor: usize,
        key: (SimTime, u32),
        active: Option<SimTime>,
    }

    impl SchedulerHarness {
        #[must_use]
        pub fn new(kind: SchedulerKind) -> SchedulerHarness {
            SchedulerHarness {
                queue: EventQueue::new(kind),
                round: Vec::new(),
                cursor: 0,
                key: (SimTime::ZERO, 0),
                active: None,
            }
        }

        /// Schedules `(target, kind)` at `(time_ns, delta)`.
        pub fn push(&mut self, time_ns: u64, delta: u32, target: usize, kind: u64) {
            self.queue
                .push(SimTime::from_ns(time_ns), delta, ComponentId(target), kind);
        }

        /// Pops the globally earliest event as
        /// `(time_ns, delta, target, kind)`.
        pub fn pop(&mut self) -> Option<(u64, u32, usize, u64)> {
            loop {
                if self.cursor < self.round.len() {
                    let ev = self.round[self.cursor];
                    self.cursor += 1;
                    return Some((self.key.0.as_ns(), self.key.1, ev.target.0, ev.kind));
                }
                self.round.clear();
                self.cursor = 0;
                // Exhaust the open timestamp's rounds before moving time
                // forward — the kernel's discipline.
                if let Some(t) = self.active {
                    match self.queue.next_round(t, &mut self.round) {
                        Some(delta) => {
                            self.key = (t, delta);
                            continue;
                        }
                        None => self.active = None,
                    }
                }
                let t = self.queue.next_time()?;
                self.queue.begin_timestamp(t);
                self.active = Some(t);
            }
        }

        /// Pending events (undelivered round remainder included).
        #[must_use]
        pub fn len(&self) -> usize {
            self.queue.len() + (self.round.len() - self.cursor)
        }

        #[must_use]
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }
}
