//! `desim` — a discrete-event simulation kernel.
//!
//! This crate is the SystemC substitute of the reproduction: a
//! single-threaded event-driven kernel with
//!
//! - integer-nanosecond simulation time ([`SimTime`]),
//! - an evaluate/update/notify **delta-cycle** discipline matching SystemC's
//!   `sc_signal` semantics: writes performed during an evaluate phase commit
//!   between delta cycles, and components sensitive to a changed signal wake
//!   in the next delta,
//! - components as trait objects ([`Component`]) receiving [`Event`]s,
//! - named signals with sensitivity lists,
//! - kernel statistics ([`SimStats`]) counting processed events and delta
//!   cycles — the activity measure behind the paper's Table I overhead
//!   discussion.
//!
//! RTL models (`rtlkit`) and TLM models (`tlmkit`) are built on top of this
//! kernel, which is what makes the paper's cross-abstraction
//! simulation-time comparison meaningful: all three abstraction levels run
//! on the same scheduler.
//!
//! # Example
//!
//! ```
//! use desim::{Component, Event, SimCtx, SimTime, Simulation};
//!
//! /// Toggles a signal every 5 ns.
//! struct Toggler {
//!     out: desim::SignalId,
//! }
//!
//! impl Component for Toggler {
//!     fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
//!         let v = ctx.read(self.out);
//!         ctx.write(self.out, 1 - v);
//!         ctx.schedule_self(5, 0);
//!     }
//! }
//!
//! let mut sim = Simulation::new();
//! let clk = sim.add_signal("clk", 0);
//! let toggler = sim.add_component(Toggler { out: clk });
//! sim.schedule(SimTime::ZERO, toggler, 0);
//! sim.run_until(SimTime::from_ns(50));
//! assert_eq!(sim.stats().events_processed, 11); // t = 0, 5, ..., 50
//! ```

mod kernel;
mod queue;
mod signal;
mod stats;
mod time;

pub use kernel::{Component, ComponentId, Event, SimCtx, Simulation, KERNEL_COUNTER_TRACK};
pub use signal::SignalId;
pub use stats::SimStats;
pub use time::SimTime;
