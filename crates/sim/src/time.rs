//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulation time, in integer nanoseconds.
///
/// The newtype keeps simulation time from being confused with durations or
/// other integers in model code.
///
/// ```
/// use desim::SimTime;
///
/// let t = SimTime::from_ns(10) + 160;
/// assert_eq!(t.as_ns(), 170);
/// assert_eq!(t.to_string(), "170ns");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Time zero (simulation start).
    pub const ZERO: SimTime = SimTime(0);

    /// The latest representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// A time `ns` nanoseconds after simulation start.
    #[must_use]
    pub const fn from_ns(ns: u64) -> SimTime {
        SimTime(ns)
    }

    /// Nanoseconds since simulation start.
    #[must_use]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Nanoseconds from `self` to `later`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `later < self`.
    #[must_use]
    pub fn delta_to(self, later: SimTime) -> u64 {
        debug_assert!(later >= self, "delta_to target precedes self");
        later.0 - self.0
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;

    fn add(self, ns: u64) -> SimTime {
        SimTime(self.0 + ns)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, ns: u64) {
        self.0 += ns;
    }
}

impl Sub for SimTime {
    type Output = u64;

    fn sub(self, earlier: SimTime) -> u64 {
        self.0 - earlier.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl From<u64> for SimTime {
    fn from(ns: u64) -> SimTime {
        SimTime(ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(10);
        assert_eq!((t + 7).as_ns(), 17);
        assert_eq!(SimTime::from_ns(30) - t, 20);
        assert_eq!(t.delta_to(SimTime::from_ns(25)), 15);
        let mut u = t;
        u += 5;
        assert_eq!(u, SimTime::from_ns(15));
    }

    #[test]
    fn ordering_and_display() {
        assert!(SimTime::ZERO < SimTime::from_ns(1));
        assert_eq!(SimTime::from_ns(170).to_string(), "170ns");
    }
}
