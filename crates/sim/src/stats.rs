//! Kernel activity statistics.

use std::fmt;

/// Counters accumulated by a [`Simulation`](crate::Simulation) run.
///
/// The paper's Table I discussion attributes checker overhead to the extra
/// simulation events checkers inject at each clock cycle; these counters
/// make that activity observable and testable independently of wall-clock
/// noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimStats {
    /// Events delivered to components (evaluate-phase invocations).
    pub events_processed: u64,
    /// Delta cycles executed (update/notify rounds).
    pub delta_cycles: u64,
    /// Committed signal changes.
    pub signal_changes: u64,
    /// Distinct timestamps at which activity occurred.
    pub timestamps: u64,
}

impl SimStats {
    /// Fresh, zeroed counters.
    #[must_use]
    pub fn new() -> SimStats {
        SimStats::default()
    }

    /// Accumulates `other`'s counters into `self` — used to aggregate the
    /// per-run snapshots of a multi-run campaign into one total.
    pub fn merge(&mut self, other: &SimStats) {
        self.events_processed += other.events_processed;
        self.delta_cycles += other.delta_cycles;
        self.signal_changes += other.signal_changes;
        self.timestamps += other.timestamps;
    }
}

impl std::ops::AddAssign for SimStats {
    fn add_assign(&mut self, rhs: SimStats) {
        self.merge(&rhs);
    }
}

impl std::ops::Add for SimStats {
    type Output = SimStats;

    fn add(mut self, rhs: SimStats) -> SimStats {
        self.merge(&rhs);
        self
    }
}

impl std::iter::Sum for SimStats {
    fn sum<I: Iterator<Item = SimStats>>(iter: I) -> SimStats {
        iter.fold(SimStats::new(), std::ops::Add::add)
    }
}

impl fmt::Display for SimStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} events, {} deltas, {} signal changes, {} timestamps",
            self.events_processed, self.delta_cycles, self.signal_changes, self.timestamps
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let s = SimStats {
            events_processed: 3,
            delta_cycles: 2,
            signal_changes: 1,
            timestamps: 1,
        };
        assert_eq!(
            s.to_string(),
            "3 events, 2 deltas, 1 signal changes, 1 timestamps"
        );
    }

    #[test]
    fn merge_adds_all_counters() {
        let a = SimStats {
            events_processed: 3,
            delta_cycles: 2,
            signal_changes: 1,
            timestamps: 1,
        };
        let b = SimStats {
            events_processed: 10,
            delta_cycles: 5,
            signal_changes: 4,
            timestamps: 2,
        };
        let total: SimStats = [a, b].into_iter().sum();
        assert_eq!(
            total,
            SimStats {
                events_processed: 13,
                delta_cycles: 7,
                signal_changes: 5,
                timestamps: 3
            }
        );
        let mut acc = a;
        acc += b;
        assert_eq!(acc, total);
    }
}
