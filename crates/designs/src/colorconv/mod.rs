//! ColorConv: an 8-stage pipelined RGB → YCbCr converter with a latency of
//! 8 clock cycles — the paper's second test case.
//!
//! Interface (RTL):
//!
//! | signal | dir | meaning |
//! |---|---|---|
//! | `px_valid` | in | one-cycle pixel strobe |
//! | `r`, `g`, `b` | in | 8-bit colour channels |
//! | `y`, `cb`, `cr` | out | converted channels (studio range) |
//! | `out_valid` | out | one-cycle result strobe, 8 cycles after `px_valid` |
//! | `ov_next_cycle` | out | prediction: `out_valid` rises next cycle |
//!
//! `ov_next_cycle` is removed by the RTL-to-TLM protocol abstraction
//! ([`ABSTRACTED_SIGNALS`]), exercising the Fig. 4 rules on this design.

pub mod algo;
mod core;
mod properties;
mod rtl;
mod tlm;
mod workload;

pub use core::{ColorConvCore, ConvMutation, ConvOutputs};
pub use properties::{suite, ABSTRACTED_SIGNALS};
pub use rtl::{build_rtl, RtlBuilt, RTL_SIGNALS};
pub use tlm::{
    build_tlm_at, build_tlm_at_bulk, build_tlm_ca, bulk_surviving_properties, TlmBuilt,
    TLM_AT_BULK_SIGNALS, TLM_AT_SIGNALS, TLM_CA_SIGNALS,
};
pub use workload::{ConvWorkload, Pixel};
