//! The cycle-stepping ColorConv core shared by the RTL and TLM-CA models.
//!
//! An 8-stage pipeline with a throughput of one pixel per cycle and a
//! latency of 8 cycles: a pixel whose `px_valid` is sampled at edge `e0`
//! appears on `y`/`cb`/`cr` with `out_valid` at edge `e8`; the
//! `ov_next_cycle` prediction output rises at `e7`.
//!
//! The conversion arithmetic is split across the pipeline stages the way
//! the RTL implementation would be (products, blue terms, rounding, shift,
//! offset, clamp, output register), so every stage does real per-cycle
//! work and the final result equals [`algo::convert`] exactly.

use super::algo::{self, Ycbcr};

/// Work item travelling down the pipeline.
#[derive(Debug, Clone, Copy)]
struct Work {
    r: i32,
    g: i32,
    b: i32,
    y: i32,
    cb: i32,
    cr: i32,
}

/// Applies the work of pipeline stage `stage` (1-based move into that
/// stage).
fn stage_fn(stage: usize, mut w: Work) -> Work {
    match stage {
        // Stage 2: red/green products.
        1 => {
            w.y = 66 * w.r + 129 * w.g;
            w.cb = -38 * w.r - 74 * w.g;
            w.cr = 112 * w.r - 94 * w.g;
        }
        // Stage 3: blue terms.
        2 => {
            w.y += 25 * w.b;
            w.cb += 112 * w.b;
            w.cr += -18 * w.b;
        }
        // Stage 4: rounding.
        3 => {
            w.y += 128;
            w.cb += 128;
            w.cr += 128;
        }
        // Stage 5: shift.
        4 => {
            w.y >>= 8;
            w.cb >>= 8;
            w.cr >>= 8;
        }
        // Stage 6: offsets.
        5 => {
            w.y += 16;
            w.cb += 128;
            w.cr += 128;
        }
        // Stage 7: clamp.
        6 => {
            w.y = w.y.clamp(16, 235);
            w.cb = w.cb.clamp(16, 240);
            w.cr = w.cr.clamp(16, 240);
        }
        // Stages 1 (capture) and 8 (output register): pass-through.
        _ => {}
    }
    w
}

/// Output interface of the core, one sample per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConvOutputs {
    /// Converted luma (holds its value once produced).
    pub y: u64,
    /// Converted blue-difference chroma.
    pub cb: u64,
    /// Converted red-difference chroma.
    pub cr: u64,
    /// One-cycle output strobe.
    pub out_valid: bool,
    /// Prediction: `out_valid` will rise at the next cycle.
    pub ov_next_cycle: bool,
}

/// Fault injections for demonstrating checker effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvMutation {
    /// Correct behaviour.
    #[default]
    None,
    /// Output produced one cycle early (latency 7).
    LatencyShort,
    /// Output produced one cycle late (latency 9).
    LatencyLong,
    /// Luma forced out of studio range.
    CorruptLuma,
    /// `out_valid` never asserted.
    DropValid,
    /// `out_valid` stuck at 1 every cycle.
    StuckValid,
    /// The second accepted pixel never enters the pipeline.
    DropPixel,
    /// One luma bit flipped after the clamp stage (seeded position).
    FlipLuma {
        /// Which luma bit (mod 8) to flip.
        bit: u8,
    },
}

/// Cycle-accurate 8-stage ColorConv pipeline.
#[derive(Debug, Clone)]
pub struct ColorConvCore {
    mutation: ConvMutation,
    pipe: [Option<Work>; 9],
    /// Pixels accepted so far (drives [`ConvMutation::DropPixel`]).
    seen: u32,
    outputs: ConvOutputs,
}

impl ColorConvCore {
    /// The design latency in clock cycles (strobe sample → output sample).
    pub const LATENCY: u32 = 8;

    /// A correct core.
    #[must_use]
    pub fn new() -> ColorConvCore {
        ColorConvCore::with_mutation(ConvMutation::None)
    }

    /// A core with an injected fault.
    #[must_use]
    pub fn with_mutation(mutation: ConvMutation) -> ColorConvCore {
        ColorConvCore {
            mutation,
            pipe: [None; 9],
            seen: 0,
            outputs: ConvOutputs::default(),
        }
    }

    /// True while any pixel is in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.pipe.iter().any(Option::is_some)
    }

    /// Executes one clock cycle with the given input pins; returns the
    /// output pins as visible at this cycle's (postponed) sample.
    pub fn step(&mut self, px_valid: bool, r: u8, g: u8, b: u8) -> ConvOutputs {
        let depth = match self.mutation {
            ConvMutation::LatencyShort => 7,
            ConvMutation::LatencyLong => 9,
            _ => 8,
        };

        // Shift the pipeline: the item leaving the last used stage exits.
        let exiting = self.pipe[depth - 1].take();
        for stage in (1..depth).rev() {
            self.pipe[stage] = self.pipe[stage - 1].take().map(|w| stage_fn(stage, w));
        }
        self.pipe[0] = if px_valid {
            let drop = matches!(self.mutation, ConvMutation::DropPixel) && self.seen == 1;
            self.seen += 1;
            (!drop).then(|| Work {
                r: i32::from(r),
                g: i32::from(g),
                b: i32::from(b),
                y: 0,
                cb: 0,
                cr: 0,
            })
        } else {
            None
        };

        self.outputs.out_valid = false;
        if let Some(mut w) = exiting {
            // Late/early pipelines still finish the arithmetic.
            for stage in depth..=7 {
                w = stage_fn(stage, w);
            }
            match self.mutation {
                ConvMutation::CorruptLuma => w.y = 0,
                ConvMutation::FlipLuma { bit } => w.y ^= 1 << (bit % 8),
                _ => {}
            }
            self.outputs.y = w.y as u64;
            self.outputs.cb = w.cb as u64;
            self.outputs.cr = w.cr as u64;
            self.outputs.out_valid = !matches!(self.mutation, ConvMutation::DropValid);
        }
        if matches!(self.mutation, ConvMutation::StuckValid) {
            self.outputs.out_valid = true;
        }
        self.outputs.ov_next_cycle = self.pipe[depth - 1].is_some();
        self.outputs
    }

    /// Converts one pixel functionally (reference path used by the TLM-AT
    /// model), applying the data mutations.
    #[must_use]
    pub fn convert_with_mutation(mutation: ConvMutation, r: u8, g: u8, b: u8) -> Ycbcr {
        let mut px = algo::convert(r, g, b);
        match mutation {
            ConvMutation::CorruptLuma => px.y = 0,
            ConvMutation::FlipLuma { bit } => px.y ^= 1 << (bit % 8),
            _ => {}
        }
        px
    }
}

impl Default for ColorConvCore {
    fn default() -> ColorConvCore {
        ColorConvCore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_single(core: &mut ColorConvCore, r: u8, g: u8, b: u8, cycles: u32) -> Vec<ConvOutputs> {
        (0..cycles).map(|c| core.step(c == 0, r, g, b)).collect()
    }

    #[test]
    fn latency_is_8_cycles() {
        let mut core = ColorConvCore::new();
        let outs = run_single(&mut core, 10, 20, 30, 12);
        for (cycle, o) in outs.iter().enumerate() {
            assert_eq!(o.out_valid, cycle == 8, "out_valid wrong at cycle {cycle}");
            assert_eq!(o.ov_next_cycle, cycle == 7, "ov_nc wrong at cycle {cycle}");
        }
    }

    #[test]
    fn pipeline_result_matches_reference() {
        for (r, g, b) in [(0, 0, 0), (255, 255, 255), (0, 255, 0), (12, 200, 99)] {
            let mut core = ColorConvCore::new();
            let outs = run_single(&mut core, r, g, b, 10);
            let expect = algo::convert(r, g, b);
            assert_eq!(outs[8].y, u64::from(expect.y), "({r},{g},{b})");
            assert_eq!(outs[8].cb, u64::from(expect.cb));
            assert_eq!(outs[8].cr, u64::from(expect.cr));
        }
    }

    #[test]
    fn full_throughput_back_to_back() {
        let mut core = ColorConvCore::new();
        let pixels: Vec<(u8, u8, u8)> = (0..20)
            .map(|i| (i as u8, 2 * i as u8, 255 - i as u8))
            .collect();
        let mut outputs = Vec::new();
        for c in 0..30 {
            let (valid, (r, g, b)) = match pixels.get(c) {
                Some(&p) => (true, p),
                None => (false, (0, 0, 0)),
            };
            let o = core.step(valid, r, g, b);
            if o.out_valid {
                outputs.push((o.y, o.cb, o.cr));
            }
        }
        assert_eq!(
            outputs.len(),
            20,
            "one result per cycle once the pipe fills"
        );
        for (i, &(y, cb, cr)) in outputs.iter().enumerate() {
            let e = algo::convert(pixels[i].0, pixels[i].1, pixels[i].2);
            assert_eq!(
                (y, cb, cr),
                (u64::from(e.y), u64::from(e.cb), u64::from(e.cr))
            );
        }
    }

    #[test]
    fn latency_mutations_shift_output() {
        let mut short = ColorConvCore::with_mutation(ConvMutation::LatencyShort);
        let outs = run_single(&mut short, 1, 2, 3, 12);
        assert!(outs[7].out_valid && !outs[8].out_valid);
        let expect = algo::convert(1, 2, 3);
        assert_eq!(
            outs[7].y,
            u64::from(expect.y),
            "short pipe still computes correctly"
        );

        let mut long = ColorConvCore::with_mutation(ConvMutation::LatencyLong);
        let outs = run_single(&mut long, 1, 2, 3, 12);
        assert!(!outs[8].out_valid && outs[9].out_valid);
        assert_eq!(outs[9].y, u64::from(expect.y));
    }

    #[test]
    fn corrupt_luma_violates_range() {
        let mut core = ColorConvCore::with_mutation(ConvMutation::CorruptLuma);
        let outs = run_single(&mut core, 100, 100, 100, 10);
        assert!(outs[8].out_valid);
        assert_eq!(outs[8].y, 0);
    }

    #[test]
    fn drop_valid_never_strobes() {
        let mut core = ColorConvCore::with_mutation(ConvMutation::DropValid);
        let outs = run_single(&mut core, 100, 100, 100, 12);
        assert!(outs.iter().all(|o| !o.out_valid));
    }

    #[test]
    fn stuck_valid_strobes_every_cycle() {
        let mut core = ColorConvCore::with_mutation(ConvMutation::StuckValid);
        let outs = run_single(&mut core, 100, 100, 100, 12);
        assert!(outs.iter().all(|o| o.out_valid));
        let expect = algo::convert(100, 100, 100);
        assert_eq!(outs[8].y, u64::from(expect.y), "data path is untouched");
    }

    #[test]
    fn drop_pixel_swallows_the_second_pixel() {
        let mut core = ColorConvCore::with_mutation(ConvMutation::DropPixel);
        let mut strobes = Vec::new();
        for c in 0..30 {
            let o = core.step(c < 3, 10, 20, 30);
            if o.out_valid {
                strobes.push(c);
            }
        }
        assert_eq!(strobes, vec![8, 10], "pixel 1 never exits");
    }

    #[test]
    fn flip_luma_perturbs_every_black_pixel() {
        for bit in 0..8 {
            let mut core = ColorConvCore::with_mutation(ConvMutation::FlipLuma { bit });
            let outs = run_single(&mut core, 0, 0, 0, 10);
            assert!(outs[8].out_valid);
            assert_ne!(outs[8].y, 16, "bit {bit} leaves black luma intact");
            let px = ColorConvCore::convert_with_mutation(ConvMutation::FlipLuma { bit }, 0, 0, 0);
            assert_eq!(u64::from(px.y), outs[8].y, "functional path agrees");
        }
    }

    #[test]
    fn busy_tracks_pipeline_occupancy() {
        let mut core = ColorConvCore::new();
        assert!(!core.busy());
        core.step(true, 1, 1, 1);
        assert!(core.busy());
        for _ in 0..9 {
            core.step(false, 0, 0, 0);
        }
        assert!(!core.busy());
    }
}
