//! ColorConv workloads: the pixel streams driven through all three models.

use tinyrng::TinyRng;

use crate::CLOCK_PERIOD_NS;

/// One RGB pixel request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pixel {
    /// Red channel.
    pub r: u8,
    /// Green channel.
    pub g: u8,
    /// Blue channel.
    pub b: u8,
}

/// A stream of pixels, issued every `gap_cycles` clock cycles.
///
/// Shared by the RTL testbench and both TLM initiators, like
/// [`DesWorkload`](crate::des56::DesWorkload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvWorkload {
    /// The pixels, in issue order.
    pub pixels: Vec<Pixel>,
    /// Clock cycles between consecutive pixels (must exceed the design
    /// latency for TLM-AT comparability; default 10).
    pub gap_cycles: u64,
    /// Rising-edge index (1-based) of the first pixel.
    pub first_edge: u64,
}

impl ConvWorkload {
    /// Default spacing: one pixel every 10 cycles, first at edge 2.
    pub const DEFAULT_GAP: u64 = 10;

    /// A workload from explicit pixels with the default spacing.
    #[must_use]
    pub fn new(pixels: Vec<Pixel>) -> ConvWorkload {
        ConvWorkload {
            pixels,
            gap_cycles: Self::DEFAULT_GAP,
            first_edge: 2,
        }
    }

    /// `count` random pixels from a seeded RNG.
    #[must_use]
    pub fn random(count: usize, seed: u64) -> ConvWorkload {
        let mut rng = TinyRng::new(seed);
        let pixels = (0..count)
            .map(|_| Pixel {
                r: rng.next_u8(),
                g: rng.next_u8(),
                b: rng.next_u8(),
            })
            .collect();
        ConvWorkload::new(pixels)
    }

    /// Random pixels where every 6th is black, white or pure green in
    /// rotation, keeping properties `c2`, `c3` and `c12` non-vacuous.
    #[must_use]
    pub fn mixed(count: usize, seed: u64) -> ConvWorkload {
        let mut w = ConvWorkload::random(count, seed);
        for (i, px) in w.pixels.iter_mut().enumerate() {
            if i % 6 == 0 {
                *px = match (i / 6) % 3 {
                    0 => Pixel { r: 0, g: 0, b: 0 },
                    1 => Pixel {
                        r: 255,
                        g: 255,
                        b: 255,
                    },
                    _ => Pixel { r: 0, g: 255, b: 0 },
                };
            }
        }
        w
    }

    /// The rising-edge index at which pixel `i` is strobed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn request_edge(&self, i: usize) -> u64 {
        assert!(i < self.pixels.len(), "pixel index out of range");
        self.first_edge + self.gap_cycles * i as u64
    }

    /// The simulation time of pixel `i`'s strobe sample.
    #[must_use]
    pub fn request_time_ns(&self, i: usize) -> u64 {
        self.request_edge(i) * CLOCK_PERIOD_NS
    }

    /// The pixel strobed at rising edge `edge`, if any.
    #[must_use]
    pub fn pixel_at_edge(&self, edge: u64) -> Option<Pixel> {
        if edge < self.first_edge {
            return None;
        }
        let offset = edge - self.first_edge;
        if !offset.is_multiple_of(self.gap_cycles) {
            return None;
        }
        self.pixels
            .get((offset / self.gap_cycles) as usize)
            .copied()
    }

    /// Rising edges needed to complete every pixel (with margin).
    #[must_use]
    pub fn total_edges(&self) -> u64 {
        if self.pixels.is_empty() {
            return self.first_edge + 4;
        }
        self.request_edge(self.pixels.len() - 1) + 8 + 4
    }

    /// Simulation end time covering [`total_edges`](Self::total_edges).
    #[must_use]
    pub fn end_time_ns(&self) -> u64 {
        self.total_edges() * CLOCK_PERIOD_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_arithmetic() {
        let w = ConvWorkload::random(4, 9);
        assert_eq!(w.request_edge(0), 2);
        assert_eq!(w.request_edge(3), 32);
        assert_eq!(w.request_time_ns(3), 320);
        assert_eq!(w.total_edges(), 44);
    }

    #[test]
    fn pixel_at_edge() {
        let w = ConvWorkload::new(vec![Pixel { r: 1, g: 2, b: 3 }]);
        assert_eq!(w.pixel_at_edge(2).unwrap().r, 1);
        assert_eq!(w.pixel_at_edge(3), None);
        assert_eq!(w.pixel_at_edge(12), None);
    }

    #[test]
    fn mixed_injects_anchor_pixels() {
        let w = ConvWorkload::mixed(20, 4);
        assert_eq!(w.pixels[0], Pixel { r: 0, g: 0, b: 0 });
        assert_eq!(
            w.pixels[6],
            Pixel {
                r: 255,
                g: 255,
                b: 255
            }
        );
        assert_eq!(w.pixels[12], Pixel { r: 0, g: 255, b: 0 });
        assert_eq!(w.pixels[18], Pixel { r: 0, g: 0, b: 0 });
    }

    #[test]
    fn deterministic_randomness() {
        assert_eq!(ConvWorkload::random(5, 1), ConvWorkload::random(5, 1));
    }
}
