//! The ColorConv PSL property suite: 12 RTL properties, as in the paper's
//! evaluation (Section V).

use psl::ClockedProperty;

use crate::suite::{PropertyClass, SuiteEntry};

/// Signals removed by the RTL-to-TLM protocol abstraction (the pipeline
/// output prediction).
pub const ABSTRACTED_SIGNALS: &[&str] = &["ov_next_cycle"];

fn parse(src: &str) -> ClockedProperty {
    src.parse()
        .unwrap_or_else(|e| panic!("suite property must parse: {src}: {e}"))
}

/// The 12-property ColorConv suite.
///
/// ```
/// let suite = designs::colorconv::suite();
/// assert_eq!(suite.len(), 12);
/// ```
#[must_use]
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "c1",
            intent: "every pixel completes in exactly 8 cycles",
            rtl: parse("always (!px_valid || next[8] out_valid) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c2",
            intent: "a black pixel converts to the luma floor (Y = 16)",
            rtl: parse(
                "always (!(px_valid && r == 0 && g == 0 && b == 0) || next[8](y == 16)) @clk_pos",
            ),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c3",
            intent: "a white pixel converts to the luma ceiling (Y = 235)",
            rtl: parse(
                "always (!(px_valid && r == 255 && g == 255 && b == 255) \
                 || next[8](y == 235)) @clk_pos",
            ),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c4",
            intent: "valid luma never goes below the studio floor",
            rtl: parse("always (!out_valid || y >= 16) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c5",
            intent: "valid luma never exceeds the studio ceiling",
            rtl: parse("always (!out_valid || y <= 235) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c6",
            intent: "valid Cb stays within the studio range",
            rtl: parse("always (!out_valid || (cb >= 16 && cb <= 240)) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c7",
            intent: "valid Cr stays within the studio range",
            rtl: parse("always (!out_valid || (cr >= 16 && cr <= 240)) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c8",
            intent: "output is announced one cycle ahead, then produced",
            rtl: parse(
                "always (!px_valid || (next[7](ov_next_cycle) && next[8](out_valid))) @clk_pos",
            ),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c9",
            intent: "the one-cycle prediction is honoured",
            rtl: parse("always (!ov_next_cycle || next out_valid) @clk_pos"),
            class: PropertyClass::ReviewExpectedFail,
        },
        SuiteEntry {
            name: "c10",
            intent: "pixels are not issued back-to-back in this workload",
            rtl: parse("always (!px_valid || next (!px_valid)) @clk_pos"),
            class: PropertyClass::CaOnly,
        },
        SuiteEntry {
            name: "c11",
            intent: "no output is valid before the first pixel",
            rtl: parse("(!out_valid) until px_valid @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "c12",
            intent: "a pure green pixel has a low blue-difference chroma",
            rtl: parse(
                "always (!(px_valid && r == 0 && g == 255 && b == 0) \
                 || next[8](cb <= 128)) @clk_pos",
            ),
            class: PropertyClass::AtCompatible,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_twelve_parseable_properties() {
        let s = suite();
        assert_eq!(s.len(), 12);
        for e in &s {
            assert!(e.name.starts_with('c'));
            assert!(!e.intent.is_empty());
        }
    }

    #[test]
    fn only_c8_c9_touch_abstracted_signals() {
        for entry in suite() {
            let refs = entry
                .rtl
                .property
                .signals()
                .iter()
                .any(|s| ABSTRACTED_SIGNALS.contains(s));
            let expect = matches!(entry.name, "c8" | "c9");
            assert_eq!(refs, expect, "{}", entry.name);
        }
    }

    #[test]
    fn classes_cover_the_design_space() {
        let s = suite();
        let count = |class| s.iter().filter(|e| e.class == class).count();
        assert_eq!(count(PropertyClass::AtCompatible), 10);
        assert_eq!(count(PropertyClass::CaOnly), 1);
        assert_eq!(count(PropertyClass::ReviewExpectedFail), 1);
        assert_eq!(count(PropertyClass::DeletedAtTlm), 0);
    }
}
