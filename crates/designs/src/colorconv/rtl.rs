//! The ColorConv RTL model: clocked pipeline plus stimulus generator.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use rtlkit::{Clock, ClockHandle, EdgeDetector};

use super::core::{ColorConvCore, ConvMutation};
use super::workload::ConvWorkload;
use crate::CLOCK_PERIOD_NS;

/// Names of the ColorConv I/O signals at RTL, in declaration order.
pub const RTL_SIGNALS: &[&str] = &[
    "px_valid",
    "r",
    "g",
    "b",
    "y",
    "cb",
    "cr",
    "out_valid",
    "ov_next_cycle",
];

/// The clocked ColorConv design: one [`ColorConvCore`] step per rising
/// edge.
struct ColorConvRtl {
    clk: SignalId,
    det: EdgeDetector,
    core: ColorConvCore,
    px_valid: SignalId,
    r: SignalId,
    g: SignalId,
    b: SignalId,
    y: SignalId,
    cb: SignalId,
    cr: SignalId,
    out_valid: SignalId,
    ov_nc: SignalId,
}

impl Component for ColorConvRtl {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        let v = ctx.read(self.clk);
        if !self.det.is_rising(v) {
            return;
        }
        let px_valid = ctx.read(self.px_valid) != 0;
        let r = ctx.read(self.r) as u8;
        let g = ctx.read(self.g) as u8;
        let b = ctx.read(self.b) as u8;
        let o = self.core.step(px_valid, r, g, b);
        ctx.write(self.y, o.y);
        ctx.write(self.cb, o.cb);
        ctx.write(self.cr, o.cr);
        ctx.write(self.out_valid, u64::from(o.out_valid));
        ctx.write(self.ov_nc, u64::from(o.ov_next_cycle));
    }
}

/// Drives the pixel stream onto the design inputs at falling edges.
struct ConvStimulus {
    clk: SignalId,
    det: EdgeDetector,
    workload: ConvWorkload,
    px_valid: SignalId,
    r: SignalId,
    g: SignalId,
    b: SignalId,
}

impl Component for ConvStimulus {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let v = ctx.read(self.clk);
        if !self.det.is_falling(v) {
            return;
        }
        let target_edge = ev.time.as_ns() / CLOCK_PERIOD_NS + 1;
        match self.workload.pixel_at_edge(target_edge) {
            Some(px) => {
                ctx.write(self.px_valid, 1);
                ctx.write(self.r, u64::from(px.r));
                ctx.write(self.g, u64::from(px.g));
                ctx.write(self.b, u64::from(px.b));
            }
            None => ctx.write(self.px_valid, 0),
        }
    }
}

/// A fully wired RTL simulation of ColorConv.
pub struct RtlBuilt {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The design clock.
    pub clk: ClockHandle,
    /// Time by which every pixel has completed.
    pub end_ns: u64,
}

impl RtlBuilt {
    /// Runs the simulation to its end time and returns the kernel stats.
    pub fn run(&mut self) -> desim::SimStats {
        self.sim.run_until(SimTime::from_ns(self.end_ns))
    }
}

/// Builds the ColorConv RTL simulation for a workload.
#[must_use]
pub fn build_rtl(workload: &ConvWorkload, mutation: ConvMutation) -> RtlBuilt {
    let mut sim = Simulation::new();
    sim.reserve_signals(10); // pin list + clock, registered in one burst
    let clk = Clock::install(&mut sim, "clk", CLOCK_PERIOD_NS);
    let px_valid = sim.add_signal("px_valid", 0);
    let r = sim.add_signal("r", 0);
    let g = sim.add_signal("g", 0);
    let b = sim.add_signal("b", 0);
    let y = sim.add_signal("y", 0);
    let cb = sim.add_signal("cb", 0);
    let cr = sim.add_signal("cr", 0);
    let out_valid = sim.add_signal("out_valid", 0);
    let ov_nc = sim.add_signal("ov_next_cycle", 0);

    let dut = sim.add_component(ColorConvRtl {
        clk: clk.signal,
        det: EdgeDetector::new(),
        core: ColorConvCore::with_mutation(mutation),
        px_valid,
        r,
        g,
        b,
        y,
        cb,
        cr,
        out_valid,
        ov_nc,
    });
    sim.subscribe(clk.signal, dut, 0);

    let stim = sim.add_component(ConvStimulus {
        clk: clk.signal,
        det: EdgeDetector::new(),
        workload: workload.clone(),
        px_valid,
        r,
        g,
        b,
    });
    sim.subscribe(clk.signal, stim, 0);

    RtlBuilt {
        sim,
        clk,
        end_ns: workload.end_time_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::algo;
    use super::super::workload::Pixel;
    use super::*;
    use psl::{ClockEdge, SignalEnv};
    use rtlkit::WaveRecorder;

    #[test]
    fn pixel_converts_8_cycles_after_strobe() {
        let w = ConvWorkload::new(vec![Pixel {
            r: 10,
            g: 200,
            b: 99,
        }]);
        let mut built = build_rtl(&w, ConvMutation::None);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        let trace = WaveRecorder::take_trace(&built.sim, rec);
        let steps = trace.steps();
        let e0 = 1; // request at edge 2 = steps[1]
        assert_eq!(steps[e0].signal("px_valid"), Some(1));
        assert_eq!(steps[e0 + 8].signal("out_valid"), Some(1));
        assert_eq!(steps[e0 + 7].signal("ov_next_cycle"), Some(1));
        let expect = algo::convert(10, 200, 99);
        assert_eq!(steps[e0 + 8].signal("y"), Some(u64::from(expect.y)));
        assert_eq!(steps[e0 + 8].signal("cb"), Some(u64::from(expect.cb)));
        assert_eq!(steps[e0 + 8].signal("cr"), Some(u64::from(expect.cr)));
        assert_eq!(steps[e0 + 9].signal("out_valid"), Some(0));
    }

    #[test]
    fn stream_of_pixels_all_convert() {
        let w = ConvWorkload::mixed(7, 5);
        let mut built = build_rtl(&w, ConvMutation::None);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        let trace = WaveRecorder::take_trace(&built.sim, rec);
        let valid_count = trace
            .steps()
            .iter()
            .filter(|s| s.signal("out_valid") == Some(1))
            .count();
        assert_eq!(valid_count, 7);
    }
}
