//! RGB → YCbCr colour-space conversion (ITU-R BT.601, integer
//! approximation, full-range RGB to studio-range YCbCr).

/// A converted pixel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ycbcr {
    /// Luma, in [16, 235].
    pub y: u8,
    /// Blue-difference chroma, in [16, 240].
    pub cb: u8,
    /// Red-difference chroma, in [16, 240].
    pub cr: u8,
}

fn clamp(v: i32, lo: i32, hi: i32) -> u8 {
    v.clamp(lo, hi) as u8
}

/// Converts one full-range RGB pixel to studio-range YCbCr using the
/// standard integer coefficients (`Y = 16 + (66R + 129G + 25B + 128) >> 8`,
/// …).
///
/// ```
/// use designs::colorconv::algo::convert;
///
/// assert_eq!(convert(0, 0, 0).y, 16);        // black
/// assert_eq!(convert(255, 255, 255).y, 235); // white
/// let green = convert(0, 255, 0);
/// assert!(green.cb < 128 && green.cr < 128);
/// ```
#[must_use]
pub fn convert(r: u8, g: u8, b: u8) -> Ycbcr {
    let (r, g, b) = (i32::from(r), i32::from(g), i32::from(b));
    let y = 16 + ((66 * r + 129 * g + 25 * b + 128) >> 8);
    let cb = 128 + ((-38 * r - 74 * g + 112 * b + 128) >> 8);
    let cr = 128 + ((112 * r - 94 * g - 18 * b + 128) >> 8);
    Ycbcr {
        y: clamp(y, 16, 235),
        cb: clamp(cb, 16, 240),
        cr: clamp(cr, 16, 240),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn black_and_white_anchors() {
        assert_eq!(
            convert(0, 0, 0),
            Ycbcr {
                y: 16,
                cb: 128,
                cr: 128
            }
        );
        let w = convert(255, 255, 255);
        assert_eq!(w.y, 235);
        // Chroma of a grey pixel stays at the midpoint (±1 rounding).
        assert!((127..=129).contains(&w.cb), "cb = {}", w.cb);
        assert!((127..=129).contains(&w.cr), "cr = {}", w.cr);
    }

    #[test]
    fn primaries_have_expected_chroma_polarity() {
        let red = convert(255, 0, 0);
        assert!(red.cr > 200, "red is strongly positive in Cr: {}", red.cr);
        assert!(red.cb < 128);
        let blue = convert(0, 0, 255);
        assert!(blue.cb > 200);
        assert!(blue.cr < 128);
        let green = convert(0, 255, 0);
        assert!(green.cb < 80 && green.cr < 80);
    }

    #[test]
    fn all_outputs_stay_in_studio_range() {
        for r in (0u16..=255).step_by(17) {
            for g in (0u16..=255).step_by(17) {
                for b in (0u16..=255).step_by(17) {
                    let px = convert(r as u8, g as u8, b as u8);
                    assert!((16..=235).contains(&px.y));
                    assert!((16..=240).contains(&px.cb));
                    assert!((16..=240).contains(&px.cr));
                }
            }
        }
    }

    #[test]
    fn luma_is_monotone_in_each_channel() {
        let base = convert(10, 20, 30);
        assert!(convert(200, 20, 30).y > base.y);
        assert!(convert(10, 200, 30).y > base.y);
        assert!(convert(10, 20, 200).y > base.y);
    }
}
