//! The ColorConv TLM models: cycle-accurate and approximately-timed.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use tlmkit::{CodingStyle, Transaction, TransactionBus};

use super::core::{ColorConvCore, ConvMutation};
use super::workload::ConvWorkload;
use crate::CLOCK_PERIOD_NS;

/// Mirror signals preserved at TLM-CA (full protocol).
pub const TLM_CA_SIGNALS: &[&str] = &[
    "px_valid",
    "r",
    "g",
    "b",
    "y",
    "cb",
    "cr",
    "out_valid",
    "ov_next_cycle",
];

/// Mirror signals preserved at TLM-AT (the pipeline prediction output is
/// abstracted away).
pub const TLM_AT_SIGNALS: &[&str] = &["px_valid", "r", "g", "b", "y", "cb", "cr", "out_valid"];

/// A fully wired TLM simulation of ColorConv.
pub struct TlmBuilt {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The transaction observation channel.
    pub bus: TransactionBus,
    /// Time by which every pixel has completed.
    pub end_ns: u64,
}

impl TlmBuilt {
    /// Runs the simulation to its end time and returns the kernel stats.
    pub fn run(&mut self) -> desim::SimStats {
        self.sim.run_until(SimTime::from_ns(self.end_ns))
    }
}

/// The TLM-CA model: one transaction per clock period, stepping the same
/// cycle core as RTL.
struct ConvTlmCa {
    bus: TransactionBus,
    core: ColorConvCore,
    workload: ConvWorkload,
    edge: u64,
    last_edge: u64,
    px_valid: SignalId,
    r: SignalId,
    g: SignalId,
    b: SignalId,
    y: SignalId,
    cb: SignalId,
    cr: SignalId,
    out_valid: SignalId,
    ov_nc: SignalId,
}

impl Component for ConvTlmCa {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        self.edge += 1;
        let pixel = self.workload.pixel_at_edge(self.edge);
        let valid = pixel.is_some();
        let (r, g, b) = pixel.map_or((0, 0, 0), |p| (p.r, p.g, p.b));
        let o = self.core.step(valid, r, g, b);

        ctx.write(self.px_valid, u64::from(valid));
        if let Some(p) = pixel {
            ctx.write(self.r, u64::from(p.r));
            ctx.write(self.g, u64::from(p.g));
            ctx.write(self.b, u64::from(p.b));
        }
        ctx.write(self.y, o.y);
        ctx.write(self.cb, o.cb);
        ctx.write(self.cr, o.cr);
        ctx.write(self.out_valid, u64::from(o.out_valid));
        ctx.write(self.ov_nc, u64::from(o.ov_next_cycle));

        let tx = if valid {
            Transaction::write(
                0,
                u64::from(r) << 16 | u64::from(g) << 8 | u64::from(b),
                ev.time,
            )
        } else {
            Transaction::read(0, o.y, ev.time)
        };
        self.bus.publish(ctx, tx);

        if self.edge < self.last_edge {
            ctx.schedule_self(CLOCK_PERIOD_NS, 0);
        }
    }
}

/// Builds the ColorConv TLM-CA simulation for a workload.
#[must_use]
pub fn build_tlm_ca(workload: &ConvWorkload, mutation: ConvMutation) -> TlmBuilt {
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let px_valid = sim.add_signal("px_valid", 0);
    let r = sim.add_signal("r", 0);
    let g = sim.add_signal("g", 0);
    let b = sim.add_signal("b", 0);
    let y = sim.add_signal("y", 0);
    let cb = sim.add_signal("cb", 0);
    let cr = sim.add_signal("cr", 0);
    let out_valid = sim.add_signal("out_valid", 0);
    let ov_nc = sim.add_signal("ov_next_cycle", 0);

    let model = sim.add_component(ConvTlmCa {
        bus: bus.clone(),
        core: ColorConvCore::with_mutation(mutation),
        workload: workload.clone(),
        edge: 0,
        last_edge: workload.total_edges(),
        px_valid,
        r,
        g,
        b,
        y,
        cb,
        cr,
        out_valid,
        ov_nc,
    });
    sim.schedule(SimTime::from_ns(CLOCK_PERIOD_NS), model, 0);

    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

const OP_WRITE: u64 = 0;
const OP_READ: u64 = 1;
const OP_STROBE_RELEASE: u64 = 2;
const OP_VALID_CLEAR: u64 = 3;

/// The TLM-AT model: per pixel, one write transaction and one read
/// transaction at the RTL completion time (`t + 8 × period`); the strict
/// style adds the Def. III.1 transactions.
struct ConvTlmAt {
    bus: TransactionBus,
    mutation: ConvMutation,
    workload: ConvWorkload,
    strict: bool,
    px_valid: SignalId,
    r: SignalId,
    g: SignalId,
    b: SignalId,
    y: SignalId,
    cb: SignalId,
    cr: SignalId,
    out_valid: SignalId,
}

impl ConvTlmAt {
    fn read_delay_ns(&self) -> u64 {
        let cycles = match self.mutation {
            ConvMutation::LatencyShort => 7,
            ConvMutation::LatencyLong => 9,
            _ => 8,
        };
        cycles * CLOCK_PERIOD_NS
    }
}

impl Component for ConvTlmAt {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let op = ev.kind & 0b11;
        let index = (ev.kind >> 2) as usize;
        match op {
            OP_WRITE => {
                let px = self.workload.pixels[index];
                ctx.write(self.px_valid, 1);
                ctx.write(self.r, u64::from(px.r));
                ctx.write(self.g, u64::from(px.g));
                ctx.write(self.b, u64::from(px.b));
                ctx.write(
                    self.out_valid,
                    u64::from(matches!(self.mutation, ConvMutation::StuckValid)),
                );
                self.bus.publish(
                    ctx,
                    Transaction::write(
                        0,
                        u64::from(px.r) << 16 | u64::from(px.g) << 8 | u64::from(px.b),
                        ev.time,
                    ),
                );
                let swallowed = matches!(self.mutation, ConvMutation::DropPixel) && index == 1;
                if !swallowed {
                    ctx.schedule_self(self.read_delay_ns(), (ev.kind & !0b11) | OP_READ);
                }
                if self.strict {
                    ctx.schedule_self(CLOCK_PERIOD_NS, (ev.kind & !0b11) | OP_STROBE_RELEASE);
                }
            }
            OP_STROBE_RELEASE => {
                ctx.write(self.px_valid, 0);
                self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
            }
            OP_READ => {
                let px = self.workload.pixels[index];
                let res = ColorConvCore::convert_with_mutation(self.mutation, px.r, px.g, px.b);
                ctx.write(self.px_valid, 0);
                ctx.write(self.y, u64::from(res.y));
                ctx.write(self.cb, u64::from(res.cb));
                ctx.write(self.cr, u64::from(res.cr));
                if !matches!(self.mutation, ConvMutation::DropValid) {
                    ctx.write(self.out_valid, 1);
                }
                self.bus
                    .publish(ctx, Transaction::read(0, u64::from(res.y), ev.time));
                if self.strict {
                    ctx.schedule_self(CLOCK_PERIOD_NS, (ev.kind & !0b11) | OP_VALID_CLEAR);
                }
            }
            OP_VALID_CLEAR => {
                ctx.write(self.out_valid, 0);
                self.bus.publish(ctx, Transaction::read(0, 0, ev.time));
            }
            _ => unreachable!("2-bit op"),
        }
    }
}

/// Builds the ColorConv TLM-AT simulation for a workload.
///
/// # Panics
///
/// Panics if `style` is [`CodingStyle::CycleAccurate`] (use
/// [`build_tlm_ca`]).
#[must_use]
pub fn build_tlm_at(
    workload: &ConvWorkload,
    mutation: ConvMutation,
    style: CodingStyle,
) -> TlmBuilt {
    let strict = match style {
        CodingStyle::ApproximatelyTimedLoose => false,
        CodingStyle::ApproximatelyTimedStrict => true,
        CodingStyle::CycleAccurate => panic!("use build_tlm_ca for the cycle-accurate style"),
    };
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let px_valid = sim.add_signal("px_valid", 0);
    let r = sim.add_signal("r", 0);
    let g = sim.add_signal("g", 0);
    let b = sim.add_signal("b", 0);
    let y = sim.add_signal("y", 0);
    let cb = sim.add_signal("cb", 0);
    let cr = sim.add_signal("cr", 0);
    let out_valid = sim.add_signal("out_valid", 0);

    let model = sim.add_component(ConvTlmAt {
        bus: bus.clone(),
        mutation,
        workload: workload.clone(),
        strict,
        px_valid,
        r,
        g,
        b,
        y,
        cb,
        cr,
        out_valid,
    });
    for i in 0..workload.pixels.len() {
        let kind = ((i as u64) << 2) | OP_WRITE;
        sim.schedule(SimTime::from_ns(workload.request_time_ns(i)), model, kind);
    }

    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

/// Mirror signals of the **bulk** TLM-AT model: per-pixel handshake is
/// fully abstracted; only frame-level signals and the last converted
/// pixel remain observable.
pub const TLM_AT_BULK_SIGNALS: &[&str] = &[
    "frame_start",
    "frame_done",
    "npixels",
    "y",
    "cb",
    "cr",
    "out_valid",
    "checksum",
];

/// The bulk-granularity TLM-AT model: **one write transaction for the
/// whole pixel stream and one read transaction for all results**, exactly
/// as Section V of the paper describes its approximately-timed models.
///
/// The entire conversion runs functionally inside the read transaction;
/// the base simulation cost is therefore dominated by data processing
/// while the event count is constant — which is what pushes checker
/// overhead towards the paper's single-digit percentages (EXPERIMENTS.md,
/// deviation D1). The price is observability: per-pixel properties have
/// nothing left to watch, only frame-level and last-pixel range checks
/// remain meaningful.
struct ConvTlmAtBulk {
    bus: TransactionBus,
    mutation: ConvMutation,
    workload: ConvWorkload,
    frame_start: SignalId,
    frame_done: SignalId,
    npixels: SignalId,
    y: SignalId,
    cb: SignalId,
    cr: SignalId,
    out_valid: SignalId,
    checksum: SignalId,
}

impl Component for ConvTlmAtBulk {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        match ev.kind {
            OP_WRITE => {
                ctx.write(self.frame_start, 1);
                ctx.write(self.npixels, self.workload.pixels.len() as u64);
                self.bus.publish(
                    ctx,
                    Transaction::write(0, self.workload.pixels.len() as u64, ev.time),
                );
                // Read completes when the RTL model would emit the last pixel.
                let last = self.workload.pixels.len() - 1;
                let done_ns = self.workload.request_time_ns(last) + 8 * CLOCK_PERIOD_NS;
                ctx.schedule_self(done_ns - ev.time.as_ns(), OP_READ);
            }
            OP_READ => {
                // Convert the whole frame functionally; a running checksum
                // over every converted pixel is mirrored alongside the last
                // pixel's channels, so the full result buffer is computed
                // and observable.
                let mut last = None;
                let mut checksum: u64 = 0;
                for px in &self.workload.pixels {
                    let res = ColorConvCore::convert_with_mutation(self.mutation, px.r, px.g, px.b);
                    checksum = checksum.rotate_left(7).wrapping_add(
                        u64::from(res.y) << 16 | u64::from(res.cb) << 8 | u64::from(res.cr),
                    );
                    last = Some(res);
                }
                let res = last.expect("non-empty workload");
                ctx.write(self.checksum, checksum);
                ctx.write(self.frame_start, 0);
                ctx.write(self.frame_done, 1);
                ctx.write(self.y, u64::from(res.y));
                ctx.write(self.cb, u64::from(res.cb));
                ctx.write(self.cr, u64::from(res.cr));
                if !matches!(self.mutation, ConvMutation::DropValid) {
                    ctx.write(self.out_valid, 1);
                }
                self.bus
                    .publish(ctx, Transaction::read(0, u64::from(res.y), ev.time));
            }
            _ => unreachable!("bulk model only schedules write/read"),
        }
    }
}

/// Builds the bulk-granularity ColorConv TLM-AT simulation: exactly two
/// transactions for the whole workload — one write submitting the frame,
/// one read returning all results (with checksum) at the instant the RTL
/// model would emit the last pixel.
///
/// # Panics
///
/// Panics if the workload is empty.
#[must_use]
pub fn build_tlm_at_bulk(workload: &ConvWorkload, mutation: ConvMutation) -> TlmBuilt {
    assert!(
        !workload.pixels.is_empty(),
        "bulk model needs at least one pixel"
    );
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let frame_start = sim.add_signal("frame_start", 0);
    let frame_done = sim.add_signal("frame_done", 0);
    let npixels = sim.add_signal("npixels", 0);
    let y = sim.add_signal("y", 0);
    let cb = sim.add_signal("cb", 0);
    let cr = sim.add_signal("cr", 0);
    let out_valid = sim.add_signal("out_valid", 0);
    let checksum = sim.add_signal("checksum", 0);

    let model = sim.add_component(ConvTlmAtBulk {
        bus: bus.clone(),
        mutation,
        workload: workload.clone(),
        frame_start,
        frame_done,
        npixels,
        y,
        cb,
        cr,
        out_valid,
        checksum,
    });
    sim.schedule(
        SimTime::from_ns(workload.request_time_ns(0)),
        model,
        OP_WRITE,
    );

    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

/// The ColorConv properties that survive at the bulk granularity: range
/// checks over the (last) converted pixel, evaluated at `T_b`.
#[must_use]
pub fn bulk_surviving_properties() -> Vec<(String, psl::ClockedProperty)> {
    ["c4", "c5", "c6", "c7"]
        .iter()
        .zip([
            "always (!out_valid || y >= 16) @T_b",
            "always (!out_valid || y <= 235) @T_b",
            "always (!out_valid || (cb >= 16 && cb <= 240)) @T_b",
            "always (!out_valid || (cr >= 16 && cr <= 240)) @T_b",
        ])
        .map(|(n, src)| ((*n).to_owned(), src.parse().expect("parses")))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::super::algo;
    use super::super::workload::Pixel;
    use super::*;
    use psl::SignalEnv;
    use tlmkit::TxTraceRecorder;

    fn one_pixel() -> ConvWorkload {
        ConvWorkload::new(vec![Pixel {
            r: 10,
            g: 200,
            b: 99,
        }])
    }

    #[test]
    fn tlm_ca_one_transaction_per_cycle() {
        let w = one_pixel();
        let mut built = build_tlm_ca(&w, ConvMutation::None);
        built.run();
        assert_eq!(built.bus.published(), w.total_edges());
    }

    #[test]
    fn tlm_ca_matches_rtl_completion_time() {
        let w = one_pixel();
        let mut built = build_tlm_ca(&w, ConvMutation::None);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_CA_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        // Pixel at edge 2 (t=20); out_valid at t = (2+8)*10 = 100.
        let pos = trace.position_at_time(100).expect("transaction at 100ns");
        assert_eq!(trace.steps()[pos].signal("out_valid"), Some(1));
        let e = algo::convert(10, 200, 99);
        assert_eq!(trace.steps()[pos].signal("y"), Some(u64::from(e.y)));
    }

    #[test]
    fn tlm_at_loose_two_transactions_per_pixel() {
        let w = one_pixel();
        let mut built = build_tlm_at(&w, ConvMutation::None, CodingStyle::ApproximatelyTimedLoose);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        assert_eq!(built.bus.published(), 2);
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[0].time_ns, 20);
        assert_eq!(trace.steps()[1].time_ns, 100);
        assert_eq!(trace.steps()[1].signal("out_valid"), Some(1));
        let e = algo::convert(10, 200, 99);
        assert_eq!(trace.steps()[1].signal("cb"), Some(u64::from(e.cb)));
    }

    #[test]
    fn tlm_at_strict_four_transactions_per_pixel() {
        let w = one_pixel();
        let mut built = build_tlm_at(
            &w,
            ConvMutation::None,
            CodingStyle::ApproximatelyTimedStrict,
        );
        built.run();
        assert_eq!(built.bus.published(), 4);
    }

    #[test]
    fn bulk_model_two_transactions_total() {
        let w = ConvWorkload::mixed(25, 6);
        let mut built = build_tlm_at_bulk(&w, ConvMutation::None);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_BULK_SIGNALS);
        built.run();
        assert_eq!(
            built.bus.published(),
            2,
            "one write + one read for the whole frame"
        );
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[0].signal("frame_start"), Some(1));
        assert_eq!(trace.steps()[0].signal("npixels"), Some(25));
        assert_eq!(trace.steps()[1].signal("frame_done"), Some(1));
        // Read lands when the RTL model would emit the last pixel.
        assert_eq!(trace.steps()[1].time_ns, w.request_time_ns(24) + 80);
        let last = w.pixels[24];
        let expect = algo::convert(last.r, last.g, last.b);
        assert_eq!(trace.steps()[1].signal("y"), Some(u64::from(expect.y)));
    }

    #[test]
    fn bulk_surviving_properties_pass() {
        use abv_checker::{Binding, Checker};
        let w = ConvWorkload::mixed(10, 8);
        let mut built = build_tlm_at_bulk(&w, ConvMutation::None);
        let checkers = Checker::attach_all(
            &mut built.sim,
            &bulk_surviving_properties(),
            Binding::bus(&built.bus),
        )
        .expect("installs");
        built.run();
        let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
        assert!(report.all_pass(), "{report}");
    }

    #[test]
    fn bulk_catches_corrupt_luma() {
        use abv_checker::{Binding, Checker};
        let w = ConvWorkload::mixed(10, 8);
        let mut built = build_tlm_at_bulk(&w, ConvMutation::CorruptLuma);
        let checkers = Checker::attach_all(
            &mut built.sim,
            &bulk_surviving_properties(),
            Binding::bus(&built.bus),
        )
        .expect("installs");
        built.run();
        let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
        assert!(report.property("c4").expect("c4").failure_count > 0);
    }

    #[test]
    fn at_drop_pixel_swallows_the_second_request() {
        let w = ConvWorkload::new(vec![
            Pixel { r: 1, g: 2, b: 3 },
            Pixel { r: 4, g: 5, b: 6 },
            Pixel { r: 7, g: 8, b: 9 },
        ]);
        let mut built = build_tlm_at(
            &w,
            ConvMutation::DropPixel,
            CodingStyle::ApproximatelyTimedLoose,
        );
        built.run();
        // Three writes, two completions: pixel 1 never converts.
        assert_eq!(built.bus.published(), 5);
    }

    #[test]
    fn at_stuck_valid_raises_out_valid_at_the_request() {
        let w = one_pixel();
        let mut built = build_tlm_at(
            &w,
            ConvMutation::StuckValid,
            CodingStyle::ApproximatelyTimedLoose,
        );
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[0].signal("px_valid"), Some(1));
        assert_eq!(trace.steps()[0].signal("out_valid"), Some(1));
        assert_eq!(trace.steps()[0].signal("y"), Some(0), "no result yet");
    }

    #[test]
    fn corrupt_luma_visible_at_read() {
        let w = one_pixel();
        let mut built = build_tlm_at(
            &w,
            ConvMutation::CorruptLuma,
            CodingStyle::ApproximatelyTimedLoose,
        );
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[1].signal("y"), Some(0));
    }
}
