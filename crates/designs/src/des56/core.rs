//! The cycle-stepping DES core shared by the RTL and TLM-CA models.
//!
//! One call to [`Des56Core::step`] is one clock cycle. Timing (for the
//! postponed sampling discipline of `rtlkit`, edge `e0` = the edge whose
//! sample shows `ds = 1`):
//!
//! - `e0`: input capture (block registered, state loaded through IP);
//! - `e1` … `e16`: one Feistel round per cycle;
//! - `e15`: `rdy_next_next_cycle` asserted;
//! - `e16`: `rdy_next_cycle` asserted;
//! - `e17`: `out` and `rdy` asserted (latency 17);
//! - `e18`: `rdy` deasserted.
//!
//! A strobe arriving while the core is busy is ignored (the workloads
//! space requests accordingly; overlap behaviour is exercised separately
//! in the naive-scaling ablation).

use super::algo::{KeySchedule, RoundState};

/// Output interface of the core, one sample per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DesOutputs {
    /// Result block (holds its value once produced).
    pub out: u64,
    /// One-cycle result strobe.
    pub rdy: bool,
    /// Prediction: `rdy` will rise at the next cycle.
    pub rdy_next_cycle: bool,
    /// Prediction: `rdy` will rise in two cycles.
    pub rdy_next_next_cycle: bool,
}

/// Fault injections for demonstrating checker effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DesMutation {
    /// Correct behaviour.
    #[default]
    None,
    /// Result produced one cycle early (latency 16).
    LatencyShort,
    /// Result produced one cycle late (latency 18).
    LatencyLong,
    /// Result block forced to zero.
    CorruptData,
    /// `rdy` never asserted.
    DropReady,
    /// `rdy` stuck at 1 every cycle.
    StuckControl,
    /// The second accepted strobe is silently swallowed: its block never
    /// enters the round pipeline.
    DropTransaction,
    /// Every accepted block is elaborated twice back-to-back, keeping the
    /// core busy for 34 cycles and swallowing strobes in that window.
    DuplicateTransaction,
}

/// Cycle-accurate DES-56 core state machine.
#[derive(Debug, Clone)]
pub struct Des56Core {
    ks: KeySchedule,
    mutation: DesMutation,
    state: RoundState,
    decrypt: bool,
    /// Cycles since capture; `0` = idle.
    phase: u32,
    /// Strobes accepted while idle (drives [`DesMutation::DropTransaction`]).
    seen: u32,
    /// The captured block, kept for [`DesMutation::DuplicateTransaction`].
    block: (u64, bool),
    /// True while re-running the captured block a second time.
    dup_pending: bool,
    outputs: DesOutputs,
}

impl Des56Core {
    /// The design latency in clock cycles (strobe sample → result sample).
    pub const LATENCY: u32 = 17;

    /// A core keyed with `key`.
    #[must_use]
    pub fn new(key: u64) -> Des56Core {
        Des56Core::with_mutation(key, DesMutation::None)
    }

    /// A core with an injected fault.
    #[must_use]
    pub fn with_mutation(key: u64, mutation: DesMutation) -> Des56Core {
        Des56Core {
            ks: KeySchedule::new(key),
            mutation,
            state: RoundState { l: 0, r: 0 },
            decrypt: false,
            phase: 0,
            seen: 0,
            block: (0, false),
            dup_pending: false,
            outputs: DesOutputs::default(),
        }
    }

    /// Accepts (or, under [`DesMutation::DropTransaction`], swallows) a
    /// strobed block while the core is idle.
    fn capture(&mut self, indata: u64, decrypt: bool) {
        let drop = matches!(self.mutation, DesMutation::DropTransaction) && self.seen == 1;
        self.seen += 1;
        if drop {
            return;
        }
        self.block = (indata, decrypt);
        self.state = RoundState::load(indata);
        self.decrypt = decrypt;
        self.phase = 1;
    }

    /// True while an elaboration is in flight.
    #[must_use]
    pub fn busy(&self) -> bool {
        self.phase > 0
    }

    /// Executes one clock cycle with the given input pins; returns the
    /// output pins as visible at this cycle's (postponed) sample.
    pub fn step(&mut self, ds: bool, indata: u64, decrypt: bool) -> DesOutputs {
        let (emit_at, predict_base) = match self.mutation {
            DesMutation::LatencyShort => (16, 15),
            DesMutation::LatencyLong => (18, 17),
            _ => (17, 16),
        };

        self.outputs.rdy = matches!(self.mutation, DesMutation::StuckControl);
        self.outputs.rdy_next_cycle = false;
        self.outputs.rdy_next_next_cycle = false;

        if self.phase == 0 {
            if ds {
                // e0: capture.
                self.capture(indata, decrypt);
            }
            return self.outputs;
        }

        // e1..e16: one round per cycle.
        if self.phase <= 16 {
            let round_idx = (self.phase - 1) as usize;
            let subkey_idx = if self.decrypt {
                15 - round_idx
            } else {
                round_idx
            };
            self.state = self.state.round(self.ks.subkey(subkey_idx));
        }

        if self.phase == emit_at {
            if !matches!(self.mutation, DesMutation::DropReady) {
                self.outputs.rdy = true;
            }
            let mut out = self.state.output();
            if matches!(self.mutation, DesMutation::CorruptData) {
                out = 0;
            }
            self.outputs.out = out;
            if matches!(self.mutation, DesMutation::DuplicateTransaction) && !self.dup_pending {
                // Re-elaborate the same block; strobes stay swallowed.
                self.dup_pending = true;
                self.state = RoundState::load(self.block.0);
                self.decrypt = self.block.1;
                self.phase = 1;
            } else {
                self.dup_pending = false;
                self.phase = 0;
                // Back-to-back capture on the completion cycle.
                if ds {
                    self.capture(indata, decrypt);
                }
            }
        } else {
            self.outputs.rdy_next_cycle = self.phase == predict_base;
            self.outputs.rdy_next_next_cycle = self.phase == predict_base - 1;
            self.phase += 1;
        }
        self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::super::algo;
    use super::*;

    const KEY: u64 = 0x133457799BBCDFF1;
    const PLAIN: u64 = 0x0123456789ABCDEF;
    const CIPHER: u64 = 0x85E813540F0AB405;

    /// Runs the core with a single strobe and returns, per cycle, the
    /// outputs (cycle 0 = strobe cycle).
    fn run(core: &mut Des56Core, data: u64, decrypt: bool, cycles: u32) -> Vec<DesOutputs> {
        (0..cycles)
            .map(|c| core.step(c == 0, data, decrypt))
            .collect()
    }

    #[test]
    fn latency_is_17_cycles() {
        let mut core = Des56Core::new(KEY);
        let outs = run(&mut core, PLAIN, false, 20);
        for (cycle, o) in outs.iter().enumerate() {
            assert_eq!(o.rdy, cycle == 17, "rdy wrong at cycle {cycle}");
        }
        assert_eq!(outs[17].out, CIPHER);
    }

    #[test]
    fn prediction_signals_lead_ready() {
        let mut core = Des56Core::new(KEY);
        let outs = run(&mut core, PLAIN, false, 20);
        for (cycle, o) in outs.iter().enumerate() {
            assert_eq!(
                o.rdy_next_next_cycle,
                cycle == 15,
                "rdy_nnc wrong at {cycle}"
            );
            assert_eq!(o.rdy_next_cycle, cycle == 16, "rdy_nc wrong at {cycle}");
        }
    }

    #[test]
    fn decrypt_mode() {
        let mut core = Des56Core::new(KEY);
        let outs = run(&mut core, CIPHER, true, 20);
        assert_eq!(outs[17].out, PLAIN);
    }

    #[test]
    fn strobe_while_busy_is_ignored() {
        let mut core = Des56Core::new(KEY);
        core.step(true, PLAIN, false);
        for _ in 0..5 {
            core.step(true, 0xFFFF, true); // ignored
        }
        for _ in 6..17 {
            core.step(false, 0, false);
        }
        let o = core.step(false, 0, false);
        assert!(o.rdy);
        assert_eq!(o.out, CIPHER);
    }

    #[test]
    fn second_block_after_completion() {
        let mut core = Des56Core::new(KEY);
        let _ = run(&mut core, PLAIN, false, 20);
        let outs = run(&mut core, CIPHER, true, 20);
        assert_eq!(outs[17].out, PLAIN);
        assert!(outs[17].rdy);
    }

    #[test]
    fn matches_block_algorithm_for_random_inputs() {
        let mut seed = 0x243F6A8885A308D3u64; // deterministic xorshift
        let ks = algo::KeySchedule::new(KEY);
        for _ in 0..32 {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            let mut core = Des56Core::new(KEY);
            let outs = run(&mut core, seed, false, 18);
            assert_eq!(outs[17].out, algo::encrypt(seed, &ks));
        }
    }

    #[test]
    fn latency_short_mutation_emits_at_16() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::LatencyShort);
        let outs = run(&mut core, PLAIN, false, 20);
        assert!(outs[16].rdy);
        assert!(!outs[17].rdy);
    }

    #[test]
    fn latency_long_mutation_emits_at_18() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::LatencyLong);
        let outs = run(&mut core, PLAIN, false, 20);
        assert!(!outs[17].rdy);
        assert!(outs[18].rdy);
    }

    #[test]
    fn corrupt_data_mutation_zeroes_the_block() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::CorruptData);
        let outs = run(&mut core, PLAIN, false, 20);
        assert!(outs[17].rdy);
        assert_eq!(outs[17].out, 0);
    }

    #[test]
    fn drop_ready_mutation_never_asserts_rdy() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::DropReady);
        let outs = run(&mut core, PLAIN, false, 25);
        assert!(outs.iter().all(|o| !o.rdy));
    }

    #[test]
    fn stuck_control_mutation_forces_rdy_every_cycle() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::StuckControl);
        let outs = run(&mut core, PLAIN, false, 20);
        assert!(outs.iter().all(|o| o.rdy));
        assert_eq!(outs[17].out, CIPHER, "data path is untouched");
    }

    #[test]
    fn drop_transaction_mutation_swallows_the_second_block() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::DropTransaction);
        let first = run(&mut core, PLAIN, false, 20);
        assert!(first[17].rdy, "first block completes normally");
        let second = run(&mut core, CIPHER, true, 20);
        assert!(
            second.iter().all(|o| !o.rdy),
            "second block never elaborated"
        );
        let third = run(&mut core, CIPHER, true, 20);
        assert!(third[17].rdy, "third block completes normally");
        assert_eq!(third[17].out, PLAIN);
    }

    #[test]
    fn duplicate_transaction_mutation_emits_twice_and_stays_busy() {
        let mut core = Des56Core::with_mutation(KEY, DesMutation::DuplicateTransaction);
        let outs = run(&mut core, PLAIN, false, 40);
        for (cycle, o) in outs.iter().enumerate() {
            assert_eq!(
                o.rdy,
                cycle == 17 || cycle == 34,
                "rdy wrong at cycle {cycle}"
            );
        }
        assert_eq!(outs[17].out, CIPHER);
        assert_eq!(outs[34].out, CIPHER, "same block re-elaborated");
        // A strobe inside the duplicate window is swallowed.
        let mut core = Des56Core::with_mutation(KEY, DesMutation::DuplicateTransaction);
        core.step(true, PLAIN, false);
        for c in 1..=20 {
            let o = core.step(c == 20, CIPHER, true); // strobe at cycle 20: busy
            assert_eq!(o.rdy, c == 17);
        }
        for c in 21..40 {
            let o = core.step(false, 0, false);
            assert_eq!(o.rdy, c == 34, "only the duplicate completes");
        }
    }
}
