//! DES56: a reconfigurable (encrypt/decrypt) 64-bit cryptographic IP with
//! a latency of 17 clock cycles — the paper's first test case.
//!
//! Interface (RTL):
//!
//! | signal | dir | meaning |
//! |---|---|---|
//! | `ds` | in | one-cycle data strobe |
//! | `indata` | in | 64-bit input block |
//! | `mode` | in | 0 = encrypt, 1 = decrypt |
//! | `out` | out | 64-bit result block |
//! | `rdy` | out | one-cycle result strobe, 17 cycles after `ds` |
//! | `rdy_next_cycle` | out | prediction: `rdy` rises next cycle |
//! | `rdy_next_next_cycle` | out | prediction: `rdy` rises in two cycles |
//!
//! The two prediction outputs are removed by the RTL-to-TLM protocol
//! abstraction ([`properties::ABSTRACTED_SIGNALS`]), which is what
//! exercises the paper's Fig. 4 signal-abstraction rules on this design.

pub mod algo;
mod core;
mod properties;
mod rtl;
mod tlm;
mod workload;

pub use core::{Des56Core, DesMutation, DesOutputs};
pub use properties::{suite, ABSTRACTED_SIGNALS};
pub use rtl::{build_rtl, RtlBuilt, DES_KEY, RTL_SIGNALS};
pub use tlm::{build_tlm_at, build_tlm_ca, TlmBuilt, TLM_AT_SIGNALS, TLM_CA_SIGNALS};
pub use workload::{DesBlock, DesWorkload};
