//! The DES-56 block cipher, implemented from the FIPS 46-3 tables.
//!
//! Bit numbering follows the standard: bit 1 is the most significant bit
//! of the 64-bit block. The cipher core exposes the per-round artifacts
//! (key schedule, single round) so the RTL model can execute exactly one
//! round per clock cycle.

/// Initial permutation IP (64 → 64).
const IP: [u8; 64] = [
    58, 50, 42, 34, 26, 18, 10, 2, 60, 52, 44, 36, 28, 20, 12, 4, //
    62, 54, 46, 38, 30, 22, 14, 6, 64, 56, 48, 40, 32, 24, 16, 8, //
    57, 49, 41, 33, 25, 17, 9, 1, 59, 51, 43, 35, 27, 19, 11, 3, //
    61, 53, 45, 37, 29, 21, 13, 5, 63, 55, 47, 39, 31, 23, 15, 7,
];

/// Final permutation IP⁻¹ (64 → 64).
const FP: [u8; 64] = [
    40, 8, 48, 16, 56, 24, 64, 32, 39, 7, 47, 15, 55, 23, 63, 31, //
    38, 6, 46, 14, 54, 22, 62, 30, 37, 5, 45, 13, 53, 21, 61, 29, //
    36, 4, 44, 12, 52, 20, 60, 28, 35, 3, 43, 11, 51, 19, 59, 27, //
    34, 2, 42, 10, 50, 18, 58, 26, 33, 1, 41, 9, 49, 17, 57, 25,
];

/// Expansion E (32 → 48).
const E: [u8; 48] = [
    32, 1, 2, 3, 4, 5, 4, 5, 6, 7, 8, 9, //
    8, 9, 10, 11, 12, 13, 12, 13, 14, 15, 16, 17, //
    16, 17, 18, 19, 20, 21, 20, 21, 22, 23, 24, 25, //
    24, 25, 26, 27, 28, 29, 28, 29, 30, 31, 32, 1,
];

/// Permutation P (32 → 32).
const P: [u8; 32] = [
    16, 7, 20, 21, 29, 12, 28, 17, 1, 15, 23, 26, 5, 18, 31, 10, //
    2, 8, 24, 14, 32, 27, 3, 9, 19, 13, 30, 6, 22, 11, 4, 25,
];

/// Permuted choice 1 (64 → 56).
const PC1: [u8; 56] = [
    57, 49, 41, 33, 25, 17, 9, 1, 58, 50, 42, 34, 26, 18, //
    10, 2, 59, 51, 43, 35, 27, 19, 11, 3, 60, 52, 44, 36, //
    63, 55, 47, 39, 31, 23, 15, 7, 62, 54, 46, 38, 30, 22, //
    14, 6, 61, 53, 45, 37, 29, 21, 13, 5, 28, 20, 12, 4,
];

/// Permuted choice 2 (56 → 48).
const PC2: [u8; 48] = [
    14, 17, 11, 24, 1, 5, 3, 28, 15, 6, 21, 10, //
    23, 19, 12, 4, 26, 8, 16, 7, 27, 20, 13, 2, //
    41, 52, 31, 37, 47, 55, 30, 40, 51, 45, 33, 48, //
    44, 49, 39, 56, 34, 53, 46, 42, 50, 36, 29, 32,
];

/// Left-rotation amounts per round.
const SHIFTS: [u8; 16] = [1, 1, 2, 2, 2, 2, 2, 2, 1, 2, 2, 2, 2, 2, 2, 1];

/// The eight S-boxes (row-major: `S[box][row * 16 + column]`).
const SBOX: [[u8; 64]; 8] = [
    [
        14, 4, 13, 1, 2, 15, 11, 8, 3, 10, 6, 12, 5, 9, 0, 7, //
        0, 15, 7, 4, 14, 2, 13, 1, 10, 6, 12, 11, 9, 5, 3, 8, //
        4, 1, 14, 8, 13, 6, 2, 11, 15, 12, 9, 7, 3, 10, 5, 0, //
        15, 12, 8, 2, 4, 9, 1, 7, 5, 11, 3, 14, 10, 0, 6, 13,
    ],
    [
        15, 1, 8, 14, 6, 11, 3, 4, 9, 7, 2, 13, 12, 0, 5, 10, //
        3, 13, 4, 7, 15, 2, 8, 14, 12, 0, 1, 10, 6, 9, 11, 5, //
        0, 14, 7, 11, 10, 4, 13, 1, 5, 8, 12, 6, 9, 3, 2, 15, //
        13, 8, 10, 1, 3, 15, 4, 2, 11, 6, 7, 12, 0, 5, 14, 9,
    ],
    [
        10, 0, 9, 14, 6, 3, 15, 5, 1, 13, 12, 7, 11, 4, 2, 8, //
        13, 7, 0, 9, 3, 4, 6, 10, 2, 8, 5, 14, 12, 11, 15, 1, //
        13, 6, 4, 9, 8, 15, 3, 0, 11, 1, 2, 12, 5, 10, 14, 7, //
        1, 10, 13, 0, 6, 9, 8, 7, 4, 15, 14, 3, 11, 5, 2, 12,
    ],
    [
        7, 13, 14, 3, 0, 6, 9, 10, 1, 2, 8, 5, 11, 12, 4, 15, //
        13, 8, 11, 5, 6, 15, 0, 3, 4, 7, 2, 12, 1, 10, 14, 9, //
        10, 6, 9, 0, 12, 11, 7, 13, 15, 1, 3, 14, 5, 2, 8, 4, //
        3, 15, 0, 6, 10, 1, 13, 8, 9, 4, 5, 11, 12, 7, 2, 14,
    ],
    [
        2, 12, 4, 1, 7, 10, 11, 6, 8, 5, 3, 15, 13, 0, 14, 9, //
        14, 11, 2, 12, 4, 7, 13, 1, 5, 0, 15, 10, 3, 9, 8, 6, //
        4, 2, 1, 11, 10, 13, 7, 8, 15, 9, 12, 5, 6, 3, 0, 14, //
        11, 8, 12, 7, 1, 14, 2, 13, 6, 15, 0, 9, 10, 4, 5, 3,
    ],
    [
        12, 1, 10, 15, 9, 2, 6, 8, 0, 13, 3, 4, 14, 7, 5, 11, //
        10, 15, 4, 2, 7, 12, 9, 5, 6, 1, 13, 14, 0, 11, 3, 8, //
        9, 14, 15, 5, 2, 8, 12, 3, 7, 0, 4, 10, 1, 13, 11, 6, //
        4, 3, 2, 12, 9, 5, 15, 10, 11, 14, 1, 7, 6, 0, 8, 13,
    ],
    [
        4, 11, 2, 14, 15, 0, 8, 13, 3, 12, 9, 7, 5, 10, 6, 1, //
        13, 0, 11, 7, 4, 9, 1, 10, 14, 3, 5, 12, 2, 15, 8, 6, //
        1, 4, 11, 13, 12, 3, 7, 14, 10, 15, 6, 8, 0, 5, 9, 2, //
        6, 11, 13, 8, 1, 4, 10, 7, 9, 5, 0, 15, 14, 2, 3, 12,
    ],
    [
        13, 2, 8, 4, 6, 15, 11, 1, 10, 9, 3, 14, 5, 0, 12, 7, //
        1, 15, 13, 8, 10, 3, 7, 4, 12, 5, 6, 11, 0, 14, 9, 2, //
        7, 11, 4, 1, 9, 12, 14, 2, 0, 6, 10, 13, 15, 3, 5, 8, //
        2, 1, 14, 7, 4, 10, 8, 13, 15, 12, 9, 0, 3, 5, 6, 11,
    ],
];

/// Applies a 1-based MSB-first permutation table to the top `in_bits` bits
/// of `input`, producing `table.len()` output bits (MSB-aligned in the
/// returned value's low `table.len()` bits).
fn permute(input: u64, in_bits: u32, table: &[u8]) -> u64 {
    let mut out = 0u64;
    for &pos in table {
        out <<= 1;
        out |= (input >> (in_bits - u32::from(pos))) & 1;
    }
    out
}

/// The DES round function `f(R, K)`.
fn feistel(r: u32, subkey: u64) -> u32 {
    let expanded = permute(u64::from(r), 32, &E); // 48 bits
    let x = expanded ^ subkey;
    let mut s_out = 0u32;
    for (box_idx, sbox) in SBOX.iter().enumerate() {
        let chunk = ((x >> (42 - 6 * box_idx)) & 0x3F) as u8;
        let row = ((chunk & 0x20) >> 4) | (chunk & 0x01);
        let col = (chunk >> 1) & 0x0F;
        s_out = (s_out << 4) | u32::from(sbox[usize::from(row * 16 + col)]);
    }
    permute(u64::from(s_out), 32, &P) as u32
}

/// The precomputed key schedule: sixteen 48-bit subkeys.
///
/// ```
/// use designs::des56::algo::KeySchedule;
///
/// let ks = KeySchedule::new(0x133457799BBCDFF1);
/// assert_eq!(ks.subkey(0), 0x1B02EFFC7072);
/// assert_eq!(ks.subkey(15), 0xCB3D8B0E17F5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KeySchedule {
    subkeys: [u64; 16],
}

impl KeySchedule {
    /// Derives the schedule from a 64-bit key (parity bits ignored).
    #[must_use]
    pub fn new(key: u64) -> KeySchedule {
        let pc1 = permute(key, 64, &PC1); // 56 bits
        let mut c = (pc1 >> 28) as u32 & 0x0FFF_FFFF;
        let mut d = pc1 as u32 & 0x0FFF_FFFF;
        let mut subkeys = [0u64; 16];
        for (round, &shift) in SHIFTS.iter().enumerate() {
            c = ((c << shift) | (c >> (28 - u32::from(shift)))) & 0x0FFF_FFFF;
            d = ((d << shift) | (d >> (28 - u32::from(shift)))) & 0x0FFF_FFFF;
            let cd = (u64::from(c) << 28) | u64::from(d);
            subkeys[round] = permute(cd, 56, &PC2);
        }
        KeySchedule { subkeys }
    }

    /// The 48-bit subkey of `round` (0-based).
    ///
    /// # Panics
    ///
    /// Panics if `round >= 16`.
    #[must_use]
    pub fn subkey(&self, round: usize) -> u64 {
        self.subkeys[round]
    }
}

/// The `(L, R)` halves of the cipher state between rounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundState {
    /// Left half.
    pub l: u32,
    /// Right half.
    pub r: u32,
}

impl RoundState {
    /// Loads a plaintext/ciphertext block through the initial permutation.
    #[must_use]
    pub fn load(block: u64) -> RoundState {
        let ip = permute(block, 64, &IP);
        RoundState {
            l: (ip >> 32) as u32,
            r: ip as u32,
        }
    }

    /// Executes one Feistel round with the given subkey.
    #[must_use]
    pub fn round(self, subkey: u64) -> RoundState {
        RoundState {
            l: self.r,
            r: self.l ^ feistel(self.r, subkey),
        }
    }

    /// Produces the output block: pre-output swap then final permutation.
    #[must_use]
    pub fn output(self) -> u64 {
        let pre = (u64::from(self.r) << 32) | u64::from(self.l);
        permute(pre, 64, &FP)
    }
}

/// Encrypts one 64-bit block.
///
/// ```
/// use designs::des56::algo::{encrypt, KeySchedule};
///
/// let ks = KeySchedule::new(0x133457799BBCDFF1);
/// assert_eq!(encrypt(0x0123456789ABCDEF, &ks), 0x85E813540F0AB405);
/// ```
#[must_use]
pub fn encrypt(block: u64, ks: &KeySchedule) -> u64 {
    let mut st = RoundState::load(block);
    for round in 0..16 {
        st = st.round(ks.subkey(round));
    }
    st.output()
}

/// Decrypts one 64-bit block (subkeys applied in reverse order).
#[must_use]
pub fn decrypt(block: u64, ks: &KeySchedule) -> u64 {
    let mut st = RoundState::load(block);
    for round in (0..16).rev() {
        st = st.round(ks.subkey(round));
    }
    st.output()
}

/// Runs the cipher in the requested direction.
#[must_use]
pub fn apply(block: u64, ks: &KeySchedule, decrypt_mode: bool) -> u64 {
    if decrypt_mode {
        decrypt(block, ks)
    } else {
        encrypt(block, ks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic worked example (Grabbe's "DES Algorithm Illustrated").
    const KEY: u64 = 0x133457799BBCDFF1;
    const PLAIN: u64 = 0x0123456789ABCDEF;
    const CIPHER: u64 = 0x85E813540F0AB405;

    #[test]
    fn known_answer_encrypt() {
        let ks = KeySchedule::new(KEY);
        assert_eq!(encrypt(PLAIN, &ks), CIPHER);
    }

    #[test]
    fn known_answer_decrypt() {
        let ks = KeySchedule::new(KEY);
        assert_eq!(decrypt(CIPHER, &ks), PLAIN);
    }

    #[test]
    fn nist_style_vectors() {
        // Weak-key-free vectors cross-checked against OpenSSL `des-ecb`.
        let ks = KeySchedule::new(0x0101010101010101);
        assert_eq!(encrypt(0x8000000000000000, &ks), 0x95F8A5E5DD31D900);
        assert_eq!(encrypt(0x0000000000000001, &ks), 0x166B40B44ABA4BD6);
    }

    #[test]
    fn zero_block_encrypts_to_nonzero() {
        // Property p1 relies on E(0) != 0 for the design key.
        let ks = KeySchedule::new(KEY);
        assert_ne!(encrypt(0, &ks), 0);
    }

    #[test]
    fn subkey_first_and_last() {
        let ks = KeySchedule::new(KEY);
        assert_eq!(ks.subkey(0), 0x1B02EFFC7072);
        assert_eq!(ks.subkey(15), 0xCB3D8B0E17F5);
    }

    #[test]
    fn round_by_round_matches_block_encrypt() {
        let ks = KeySchedule::new(KEY);
        let mut st = RoundState::load(PLAIN);
        for round in 0..16 {
            st = st.round(ks.subkey(round));
        }
        assert_eq!(st.output(), CIPHER);
    }

    #[test]
    fn apply_selects_direction() {
        let ks = KeySchedule::new(KEY);
        assert_eq!(apply(PLAIN, &ks, false), CIPHER);
        assert_eq!(apply(CIPHER, &ks, true), PLAIN);
    }

    #[test]
    fn permute_identity_roundtrip() {
        // FP ∘ IP = identity.
        for block in [0u64, 1, u64::MAX, PLAIN, 0xDEADBEEFCAFEBABE] {
            let ip = permute(block, 64, &IP);
            assert_eq!(permute(ip, 64, &FP), block);
        }
    }
}
