//! The DES56 TLM models: cycle-accurate and approximately-timed.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use tlmkit::{CodingStyle, Transaction, TransactionBus};

use super::algo::{self, KeySchedule};
use super::core::{Des56Core, DesMutation};
use super::rtl::DES_KEY;
use super::workload::DesWorkload;
use crate::CLOCK_PERIOD_NS;

/// Mirror signals preserved at TLM-CA (full protocol).
pub const TLM_CA_SIGNALS: &[&str] = &[
    "ds",
    "indata",
    "mode",
    "out",
    "rdy",
    "rdy_next_cycle",
    "rdy_next_next_cycle",
];

/// Mirror signals preserved at TLM-AT (protocol abstracted: the ready
/// prediction signals are gone).
pub const TLM_AT_SIGNALS: &[&str] = &["ds", "indata", "mode", "out", "rdy"];

/// A fully wired TLM simulation of DES56.
pub struct TlmBuilt {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The transaction observation channel.
    pub bus: TransactionBus,
    /// Time by which every request has completed.
    pub end_ns: u64,
}

impl TlmBuilt {
    /// Runs the simulation to its end time and returns the kernel stats.
    pub fn run(&mut self) -> desim::SimStats {
        self.sim.run_until(SimTime::from_ns(self.end_ns))
    }
}

/// The TLM-CA initiator+target: one transaction per clock period, stepping
/// the same cycle core as the RTL model (timing equivalence by
/// construction).
struct Des56TlmCa {
    bus: TransactionBus,
    core: Des56Core,
    workload: DesWorkload,
    edge: u64,
    last_edge: u64,
    ds: SignalId,
    indata: SignalId,
    mode: SignalId,
    out: SignalId,
    rdy: SignalId,
    rdy_nc: SignalId,
    rdy_nnc: SignalId,
}

impl Component for Des56TlmCa {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        self.edge += 1;
        let block = self.workload.block_at_edge(self.edge);
        let ds = block.is_some();
        let (data, decrypt) = block.map_or((0, false), |b| (b.data, b.decrypt));
        let o = self.core.step(ds, data, decrypt);

        ctx.write(self.ds, u64::from(ds));
        if let Some(b) = block {
            ctx.write(self.indata, b.data);
            ctx.write(self.mode, u64::from(b.decrypt));
        }
        ctx.write(self.out, o.out);
        ctx.write(self.rdy, u64::from(o.rdy));
        ctx.write(self.rdy_nc, u64::from(o.rdy_next_cycle));
        ctx.write(self.rdy_nnc, u64::from(o.rdy_next_next_cycle));

        let tx = if ds {
            Transaction::write(0, data, ev.time)
        } else {
            Transaction::read(0, o.out, ev.time)
        };
        self.bus.publish(ctx, tx);

        if self.edge < self.last_edge {
            ctx.schedule_self(CLOCK_PERIOD_NS, 0);
        }
    }
}

/// Builds the DES56 TLM-CA simulation for a workload.
#[must_use]
pub fn build_tlm_ca(workload: &DesWorkload, mutation: DesMutation) -> TlmBuilt {
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let ds = sim.add_signal("ds", 0);
    let indata = sim.add_signal("indata", 0);
    let mode = sim.add_signal("mode", 0);
    let out = sim.add_signal("out", 0);
    let rdy = sim.add_signal("rdy", 0);
    let rdy_nc = sim.add_signal("rdy_next_cycle", 0);
    let rdy_nnc = sim.add_signal("rdy_next_next_cycle", 0);

    let model = sim.add_component(Des56TlmCa {
        bus: bus.clone(),
        core: Des56Core::with_mutation(DES_KEY, mutation),
        workload: workload.clone(),
        edge: 0,
        last_edge: workload.total_edges(),
        ds,
        indata,
        mode,
        out,
        rdy,
        rdy_nc,
        rdy_nnc,
    });
    // First cycle transaction at the first rising-edge time.
    sim.schedule(SimTime::from_ns(CLOCK_PERIOD_NS), model, 0);

    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

/// Event kinds of the TLM-AT initiator (low 2 bits; block index above).
const OP_WRITE: u64 = 0;
const OP_READ: u64 = 1;
const OP_STROBE_RELEASE: u64 = 2;
const OP_RDY_CLEAR: u64 = 3;

/// The TLM-AT initiator+target: per request, one write transaction
/// submitting the block and one read transaction fetching the result at
/// the RTL completion time (`t + 17 × period`). In
/// [`CodingStyle::ApproximatelyTimedStrict`] mode it additionally produces
/// the transactions required by strict Def. III.1 timing equivalence
/// (strobe release at `t + period`, ready deassert at `t_end + period`).
struct Des56TlmAt {
    bus: TransactionBus,
    ks: KeySchedule,
    mutation: DesMutation,
    workload: DesWorkload,
    strict: bool,
    /// First edge at which the core is idle again
    /// ([`DesMutation::DuplicateTransaction`] busy window).
    busy_until_edge: u64,
    ds: SignalId,
    indata: SignalId,
    mode: SignalId,
    out: SignalId,
    rdy: SignalId,
}

impl Des56TlmAt {
    fn read_delay_ns(&self) -> u64 {
        let cycles = match self.mutation {
            DesMutation::LatencyShort => 16,
            DesMutation::LatencyLong => 18,
            _ => 17,
        };
        cycles * CLOCK_PERIOD_NS
    }
}

impl Component for Des56TlmAt {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let op = ev.kind & 0b11;
        let index = (ev.kind >> 2) as usize;
        match op {
            OP_WRITE => {
                let block = self.workload.blocks[index];
                ctx.write(self.ds, 1);
                ctx.write(self.indata, block.data);
                ctx.write(self.mode, u64::from(block.decrypt));
                ctx.write(
                    self.rdy,
                    u64::from(matches!(self.mutation, DesMutation::StuckControl)),
                );
                self.bus
                    .publish(ctx, Transaction::write(0, block.data, ev.time));
                let edge = ev.time.as_ns() / CLOCK_PERIOD_NS;
                let swallowed = match self.mutation {
                    DesMutation::DropTransaction => index == 1,
                    DesMutation::DuplicateTransaction => edge < self.busy_until_edge,
                    _ => false,
                };
                if !swallowed {
                    ctx.schedule_self(self.read_delay_ns(), (ev.kind & !0b11) | OP_READ);
                    if matches!(self.mutation, DesMutation::DuplicateTransaction) {
                        // The faulty core re-elaborates the block once more.
                        self.busy_until_edge = edge + 2 * u64::from(Des56Core::LATENCY);
                        ctx.schedule_self(2 * self.read_delay_ns(), (ev.kind & !0b11) | OP_READ);
                    }
                }
                if self.strict {
                    ctx.schedule_self(CLOCK_PERIOD_NS, (ev.kind & !0b11) | OP_STROBE_RELEASE);
                }
            }
            OP_STROBE_RELEASE => {
                ctx.write(self.ds, 0);
                self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
            }
            OP_READ => {
                let block = self.workload.blocks[index];
                let mut result = algo::apply(block.data, &self.ks, block.decrypt);
                if matches!(self.mutation, DesMutation::CorruptData) {
                    result = 0;
                }
                ctx.write(self.ds, 0);
                ctx.write(self.out, result);
                if matches!(self.mutation, DesMutation::DropReady) {
                    // The faulty IP never raises `rdy`: no completion
                    // transaction is observable at all.
                    return;
                }
                ctx.write(self.rdy, 1);
                self.bus.publish(ctx, Transaction::read(0, result, ev.time));
                if self.strict {
                    ctx.schedule_self(CLOCK_PERIOD_NS, (ev.kind & !0b11) | OP_RDY_CLEAR);
                }
            }
            OP_RDY_CLEAR => {
                ctx.write(self.rdy, 0);
                self.bus.publish(ctx, Transaction::read(0, 0, ev.time));
            }
            _ => unreachable!("2-bit op"),
        }
    }
}

/// Builds the DES56 TLM-AT simulation for a workload.
///
/// `style` must be one of the approximately-timed styles; write
/// transactions are scheduled at the same instants where the RTL model
/// samples the strobes, read transactions at the RTL completion instants.
///
/// # Panics
///
/// Panics if `style` is [`CodingStyle::CycleAccurate`] (use
/// [`build_tlm_ca`]).
#[must_use]
pub fn build_tlm_at(workload: &DesWorkload, mutation: DesMutation, style: CodingStyle) -> TlmBuilt {
    let strict = match style {
        CodingStyle::ApproximatelyTimedLoose => false,
        CodingStyle::ApproximatelyTimedStrict => true,
        CodingStyle::CycleAccurate => panic!("use build_tlm_ca for the cycle-accurate style"),
    };
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let ds = sim.add_signal("ds", 0);
    let indata = sim.add_signal("indata", 0);
    let mode = sim.add_signal("mode", 0);
    let out = sim.add_signal("out", 0);
    let rdy = sim.add_signal("rdy", 0);

    let model = sim.add_component(Des56TlmAt {
        bus: bus.clone(),
        ks: KeySchedule::new(DES_KEY),
        mutation,
        workload: workload.clone(),
        strict,
        busy_until_edge: 0,
        ds,
        indata,
        mode,
        out,
        rdy,
    });
    for i in 0..workload.blocks.len() {
        let kind = ((i as u64) << 2) | OP_WRITE;
        sim.schedule(SimTime::from_ns(workload.request_time_ns(i)), model, kind);
    }

    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::workload::DesBlock;
    use super::*;
    use psl::SignalEnv;
    use tlmkit::TxTraceRecorder;

    fn one_block() -> DesWorkload {
        DesWorkload::new(vec![DesBlock {
            data: 0x0123456789ABCDEF,
            decrypt: false,
        }])
    }

    #[test]
    fn tlm_ca_produces_one_transaction_per_cycle() {
        let w = one_block();
        let mut built = build_tlm_ca(&w, DesMutation::None);
        built.run();
        assert_eq!(built.bus.published(), w.total_edges());
    }

    #[test]
    fn tlm_ca_result_at_completion_edge() {
        let w = one_block();
        let mut built = build_tlm_ca(&w, DesMutation::None);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_CA_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        // Request at edge 2 (t=20); rdy at t = (2+17)*10 = 190.
        let pos = trace.position_at_time(190).expect("transaction at 190ns");
        assert_eq!(trace.steps()[pos].signal("rdy"), Some(1));
        let ks = KeySchedule::new(DES_KEY);
        assert_eq!(
            trace.steps()[pos].signal("out"),
            Some(algo::encrypt(0x0123456789ABCDEF, &ks))
        );
    }

    #[test]
    fn tlm_at_loose_two_transactions_per_block() {
        let w = one_block();
        let mut built = build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
        built.run();
        assert_eq!(built.bus.published(), 2);
    }

    #[test]
    fn tlm_at_strict_four_transactions_per_block() {
        let w = one_block();
        let mut built = build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedStrict);
        built.run();
        assert_eq!(built.bus.published(), 4);
    }

    #[test]
    fn tlm_at_read_lands_at_rtl_completion_time() {
        let w = one_block();
        let mut built = build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.steps()[0].time_ns, 20);
        assert_eq!(trace.steps()[0].signal("ds"), Some(1));
        assert_eq!(trace.steps()[1].time_ns, 190);
        assert_eq!(trace.steps()[1].signal("rdy"), Some(1));
        assert_eq!(trace.steps()[1].signal("ds"), Some(0));
        let ks = KeySchedule::new(DES_KEY);
        assert_eq!(
            trace.steps()[1].signal("out"),
            Some(algo::encrypt(0x0123456789ABCDEF, &ks))
        );
    }

    #[test]
    fn tlm_at_latency_mutations_shift_read() {
        let w = one_block();
        for (mutation, expected) in [
            (DesMutation::LatencyShort, 180),
            (DesMutation::LatencyLong, 200),
        ] {
            let mut built = build_tlm_at(&w, mutation, CodingStyle::ApproximatelyTimedLoose);
            let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
            built.sim.run_until(SimTime::from_ns(1000));
            let trace = TxTraceRecorder::take_trace(&built.sim, rec);
            assert_eq!(trace.steps()[1].time_ns, expected);
        }
    }

    #[test]
    #[should_panic(expected = "use build_tlm_ca")]
    fn at_builder_rejects_ca_style() {
        let _ = build_tlm_at(&one_block(), DesMutation::None, CodingStyle::CycleAccurate);
    }

    fn two_blocks() -> DesWorkload {
        DesWorkload::new(vec![
            DesBlock {
                data: 0x0123456789ABCDEF,
                decrypt: false,
            },
            DesBlock {
                data: 0xFEDCBA9876543210,
                decrypt: false,
            },
        ])
    }

    #[test]
    fn tlm_at_drop_ready_publishes_no_completion() {
        let w = one_block();
        let mut built = build_tlm_at(
            &w,
            DesMutation::DropReady,
            CodingStyle::ApproximatelyTimedLoose,
        );
        built.run();
        assert_eq!(built.bus.published(), 1, "only the request is observable");
    }

    #[test]
    fn tlm_at_drop_transaction_swallows_second_request() {
        let w = two_blocks();
        let mut built = build_tlm_at(
            &w,
            DesMutation::DropTransaction,
            CodingStyle::ApproximatelyTimedLoose,
        );
        built.run();
        // Two writes, but only the first request completes.
        assert_eq!(built.bus.published(), 3);
    }

    #[test]
    fn tlm_at_duplicate_transaction_completes_twice_and_swallows_busy_strobes() {
        let w = two_blocks();
        let mut built = build_tlm_at(
            &w,
            DesMutation::DuplicateTransaction,
            CodingStyle::ApproximatelyTimedLoose,
        );
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.sim.run_until(SimTime::from_ns(1000));
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        // Request 0 at 20 ns completes at 190 and again at 360; the request
        // at 220 ns lands in the busy window and never completes.
        let times: Vec<u64> = trace.steps().iter().map(|s| s.time_ns).collect();
        assert_eq!(times, vec![20, 190, 220, 360]);
    }

    #[test]
    fn tlm_at_stuck_control_raises_rdy_at_the_request() {
        let w = one_block();
        let mut built = build_tlm_at(
            &w,
            DesMutation::StuckControl,
            CodingStyle::ApproximatelyTimedLoose,
        );
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[0].signal("ds"), Some(1));
        assert_eq!(trace.steps()[0].signal("rdy"), Some(1));
    }
}
