//! The DES56 RTL model: clocked design plus stimulus generator.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use rtlkit::{Clock, ClockHandle, EdgeDetector};

use super::core::{Des56Core, DesMutation};
use super::workload::DesWorkload;
use crate::CLOCK_PERIOD_NS;

/// The design key used by all DES56 models (the classic worked-example
/// key; any non-weak key works).
pub const DES_KEY: u64 = 0x133457799BBCDFF1;

/// Names of the DES56 I/O signals at RTL, in declaration order.
pub const RTL_SIGNALS: &[&str] = &[
    "ds",
    "indata",
    "mode",
    "out",
    "rdy",
    "rdy_next_cycle",
    "rdy_next_next_cycle",
];

/// The clocked DES56 design: one [`Des56Core`] step per rising edge.
struct Des56Rtl {
    clk: SignalId,
    det: EdgeDetector,
    core: Des56Core,
    ds: SignalId,
    indata: SignalId,
    mode: SignalId,
    out: SignalId,
    rdy: SignalId,
    rdy_nc: SignalId,
    rdy_nnc: SignalId,
}

impl Component for Des56Rtl {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        let v = ctx.read(self.clk);
        if !self.det.is_rising(v) {
            return;
        }
        let ds = ctx.read(self.ds) != 0;
        let indata = ctx.read(self.indata);
        let decrypt = ctx.read(self.mode) != 0;
        let o = self.core.step(ds, indata, decrypt);
        ctx.write(self.out, o.out);
        ctx.write(self.rdy, u64::from(o.rdy));
        ctx.write(self.rdy_nc, u64::from(o.rdy_next_cycle));
        ctx.write(self.rdy_nnc, u64::from(o.rdy_next_next_cycle));
    }
}

/// Drives the workload onto the design inputs at falling edges, so values
/// are stable before the rising edge that samples them.
struct DesStimulus {
    clk: SignalId,
    det: EdgeDetector,
    workload: DesWorkload,
    ds: SignalId,
    indata: SignalId,
    mode: SignalId,
}

impl Component for DesStimulus {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let v = ctx.read(self.clk);
        if !self.det.is_falling(v) {
            return;
        }
        // Falling edge at k·period + period/2 prepares rising edge k+1.
        let target_edge = ev.time.as_ns() / CLOCK_PERIOD_NS + 1;
        match self.workload.block_at_edge(target_edge) {
            Some(block) => {
                ctx.write(self.ds, 1);
                ctx.write(self.indata, block.data);
                ctx.write(self.mode, u64::from(block.decrypt));
            }
            None => {
                ctx.write(self.ds, 0);
            }
        }
    }
}

/// A fully wired RTL simulation of DES56.
pub struct RtlBuilt {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The design clock.
    pub clk: ClockHandle,
    /// Time by which every request has completed.
    pub end_ns: u64,
}

/// Builds the DES56 RTL simulation for a workload.
///
/// ```
/// use designs::des56::{build_rtl, DesMutation, DesWorkload};
/// use desim::SimTime;
///
/// let w = DesWorkload::random(2, 1);
/// let mut built = build_rtl(&w, DesMutation::None);
/// built.sim.run_until(SimTime::from_ns(built.end_ns));
/// assert!(built.sim.stats().events_processed > 0);
/// ```
#[must_use]
pub fn build_rtl(workload: &DesWorkload, mutation: DesMutation) -> RtlBuilt {
    let mut sim = Simulation::new();
    sim.reserve_signals(10); // pin list + clock, registered in one burst
    let clk = Clock::install(&mut sim, "clk", CLOCK_PERIOD_NS);
    let ds = sim.add_signal("ds", 0);
    let indata = sim.add_signal("indata", 0);
    let mode = sim.add_signal("mode", 0);
    let out = sim.add_signal("out", 0);
    let rdy = sim.add_signal("rdy", 0);
    let rdy_nc = sim.add_signal("rdy_next_cycle", 0);
    let rdy_nnc = sim.add_signal("rdy_next_next_cycle", 0);

    let dut = sim.add_component(Des56Rtl {
        clk: clk.signal,
        det: EdgeDetector::new(),
        core: Des56Core::with_mutation(DES_KEY, mutation),
        ds,
        indata,
        mode,
        out,
        rdy,
        rdy_nc,
        rdy_nnc,
    });
    sim.subscribe(clk.signal, dut, 0);

    let stim = sim.add_component(DesStimulus {
        clk: clk.signal,
        det: EdgeDetector::new(),
        workload: workload.clone(),
        ds,
        indata,
        mode,
    });
    sim.subscribe(clk.signal, stim, 0);

    RtlBuilt {
        sim,
        clk,
        end_ns: workload.end_time_ns(),
    }
}

impl RtlBuilt {
    /// Runs the simulation to its end time and returns the kernel stats.
    pub fn run(&mut self) -> desim::SimStats {
        self.sim.run_until(SimTime::from_ns(self.end_ns))
    }
}

#[cfg(test)]
mod tests {
    use super::super::algo::{self, KeySchedule};
    use super::super::workload::DesBlock;
    use super::*;
    use psl::{ClockEdge, SignalEnv};
    use rtlkit::WaveRecorder;

    fn single_block_trace(data: u64, decrypt: bool) -> psl::Trace {
        let w = DesWorkload::new(vec![DesBlock { data, decrypt }]);
        let mut built = build_rtl(&w, DesMutation::None);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        WaveRecorder::take_trace(&built.sim, rec)
    }

    #[test]
    fn strobe_visible_at_request_edge_and_result_17_later() {
        let plain = 0x0123456789ABCDEF;
        let trace = single_block_trace(plain, false);
        let steps = trace.steps();
        // Edge indices are 1-based; steps[k] is edge k+1 (time (k+1)*10).
        let e0 = 1; // first request at edge 2
        assert_eq!(steps[e0].signal("ds"), Some(1));
        assert_eq!(steps[e0].signal("indata"), Some(plain));
        assert_eq!(steps[e0 + 1].signal("ds"), Some(0), "one-cycle strobe");
        assert_eq!(steps[e0 + 17].signal("rdy"), Some(1));
        let ks = KeySchedule::new(DES_KEY);
        assert_eq!(
            steps[e0 + 17].signal("out"),
            Some(algo::encrypt(plain, &ks))
        );
        assert_eq!(steps[e0 + 18].signal("rdy"), Some(0));
        assert_eq!(steps[e0 + 16].signal("rdy_next_cycle"), Some(1));
        assert_eq!(steps[e0 + 15].signal("rdy_next_next_cycle"), Some(1));
    }

    #[test]
    fn decrypt_block_roundtrips() {
        let ks = KeySchedule::new(DES_KEY);
        let cipher = algo::encrypt(0x1122334455667788, &ks);
        let trace = single_block_trace(cipher, true);
        let steps = trace.steps();
        assert_eq!(steps[1 + 17].signal("out"), Some(0x1122334455667788));
    }

    #[test]
    fn back_to_back_requests_all_complete() {
        let w = DesWorkload::random(5, 3);
        let mut built = build_rtl(&w, DesMutation::None);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        let trace = WaveRecorder::take_trace(&built.sim, rec);
        let rdy_count = trace
            .steps()
            .iter()
            .filter(|s| s.signal("rdy") == Some(1))
            .count();
        assert_eq!(rdy_count, 5);
    }

    #[test]
    fn mutated_model_shifts_ready() {
        let w = DesWorkload::random(1, 3);
        let mut built = build_rtl(&w, DesMutation::LatencyShort);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        let trace = WaveRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[1 + 16].signal("rdy"), Some(1));
        assert_eq!(trace.steps()[1 + 17].signal("rdy"), Some(0));
    }
}
