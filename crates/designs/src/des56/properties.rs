//! The DES56 PSL property suite: 9 RTL properties, as in the paper's
//! evaluation (Section V), including the three of Fig. 3.

use psl::ClockedProperty;

use crate::suite::{PropertyClass, SuiteEntry};

/// Signals removed by the RTL-to-TLM protocol abstraction (the ready
/// prediction outputs), i.e. the input to the Fig. 4 rules.
pub const ABSTRACTED_SIGNALS: &[&str] = &["rdy_next_cycle", "rdy_next_next_cycle"];

fn parse(src: &str) -> ClockedProperty {
    src.parse()
        .unwrap_or_else(|e| panic!("suite property must parse: {src}: {e}"))
}

/// The 9-property DES56 suite.
///
/// ```
/// let suite = designs::des56::suite();
/// assert_eq!(suite.len(), 9);
/// assert_eq!(suite[0].name, "p1");
/// ```
#[must_use]
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "p1",
            intent: "a zero input block still produces a non-zero result 17 cycles later",
            rtl: parse("always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "p2",
            intent: "after a strobe, no new strobe arrives until the result is ready",
            rtl: parse("always (!ds || (next ((!ds) until next rdy))) @clk_pos"),
            class: PropertyClass::CaOnly,
        },
        SuiteEntry {
            name: "p3",
            intent: "ready is announced two cycles ahead, one cycle ahead, then raised",
            rtl: parse(
                "always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) \
                 && next[17](rdy))) @clk_pos",
            ),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "p4",
            intent: "every request completes in exactly 17 cycles",
            rtl: parse("always (!ds || next[17] rdy) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "p5",
            intent: "decryption requests complete with the same latency",
            rtl: parse("always (!(ds && mode == 1) || next[17] rdy) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "p6",
            intent: "guarded variant of p1: checked only at instants with a zero input",
            rtl: parse("always (!ds || next[17](out != 0)) @(clk_pos && indata == 0)"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "p7",
            intent: "the strobe and the ready pulse are never simultaneous",
            rtl: parse("always (!rdy || !ds) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "p8",
            intent: "the two-cycle ready prediction is followed by the one-cycle prediction",
            rtl: parse("always (!rdy_next_next_cycle || next rdy_next_cycle) @clk_pos"),
            class: PropertyClass::DeletedAtTlm,
        },
        SuiteEntry {
            name: "p9",
            intent: "no result is announced before the first request",
            rtl: parse("(!rdy) until ds @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_nine_parseable_properties() {
        let s = suite();
        assert_eq!(s.len(), 9);
        let names: Vec<_> = s.iter().map(|e| e.name).collect();
        assert_eq!(
            names,
            vec!["p1", "p2", "p3", "p4", "p5", "p6", "p7", "p8", "p9"]
        );
    }

    #[test]
    fn paper_fig3_properties_match() {
        let s = suite();
        assert_eq!(
            s[0].rtl.to_string(),
            "always ((!(ds && (indata == 0))) || (next[17] (out != 0))) @clk_pos"
        );
        assert_eq!(
            s[1].rtl.to_string(),
            "always ((!ds) || (next ((!ds) until (next rdy)))) @clk_pos"
        );
        assert!(s[2]
            .rtl
            .to_string()
            .contains("next[15] rdy_next_next_cycle"));
    }

    #[test]
    fn only_p8_touches_only_abstracted_signals() {
        for entry in suite() {
            let refs_abstracted = entry
                .rtl
                .property
                .signals()
                .iter()
                .any(|s| ABSTRACTED_SIGNALS.contains(s));
            let expect = matches!(entry.name, "p3" | "p8");
            assert_eq!(refs_abstracted, expect, "{}", entry.name);
        }
    }
}
