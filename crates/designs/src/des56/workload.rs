//! DES56 workloads: the block streams driven through all three models.

use tinyrng::TinyRng;

use crate::CLOCK_PERIOD_NS;

/// One elaboration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesBlock {
    /// Input block.
    pub data: u64,
    /// True for decryption.
    pub decrypt: bool,
}

/// A stream of blocks, issued every `gap_cycles` clock cycles.
///
/// The same workload drives the RTL testbench, the TLM-CA initiator and
/// the TLM-AT initiator, which is what makes the three simulations
/// comparable (and the models timing-equivalent on the shared stimulus).
///
/// ```
/// use designs::des56::DesWorkload;
///
/// let w = DesWorkload::random(100, 42);
/// assert_eq!(w.blocks.len(), 100);
/// assert_eq!(w.request_edge(0), 2);
/// assert_eq!(w.request_edge(1), 2 + w.gap_cycles);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesWorkload {
    /// The requests, in issue order.
    pub blocks: Vec<DesBlock>,
    /// Clock cycles between consecutive strobes (must exceed the design
    /// latency; default 20).
    pub gap_cycles: u64,
    /// Rising-edge index (1-based) of the first strobe.
    pub first_edge: u64,
}

impl DesWorkload {
    /// Default spacing: one request every 20 cycles, first at edge 2.
    pub const DEFAULT_GAP: u64 = 20;

    /// A workload from explicit blocks with the default spacing.
    #[must_use]
    pub fn new(blocks: Vec<DesBlock>) -> DesWorkload {
        DesWorkload {
            blocks,
            gap_cycles: Self::DEFAULT_GAP,
            first_edge: 2,
        }
    }

    /// `count` random blocks (mixed encrypt/decrypt) from a seeded RNG.
    #[must_use]
    pub fn random(count: usize, seed: u64) -> DesWorkload {
        let mut rng = TinyRng::new(seed);
        let blocks = (0..count)
            .map(|_| DesBlock {
                data: rng.next_u64(),
                decrypt: rng.flip(),
            })
            .collect();
        DesWorkload::new(blocks)
    }

    /// `count` random blocks where every 8th block is the all-zero encrypt
    /// request, keeping property `p1`'s antecedent (`ds && indata == 0`)
    /// non-vacuous — the mix used by the benchmark harness.
    #[must_use]
    pub fn mixed(count: usize, seed: u64) -> DesWorkload {
        let mut w = DesWorkload::random(count, seed);
        for (i, block) in w.blocks.iter_mut().enumerate() {
            if i % 8 == 0 {
                *block = DesBlock {
                    data: 0,
                    decrypt: false,
                };
            }
        }
        w
    }

    /// The rising-edge index at which request `i` is strobed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn request_edge(&self, i: usize) -> u64 {
        assert!(i < self.blocks.len(), "request index out of range");
        self.first_edge + self.gap_cycles * i as u64
    }

    /// The simulation time of request `i`'s strobe sample.
    #[must_use]
    pub fn request_time_ns(&self, i: usize) -> u64 {
        self.request_edge(i) * CLOCK_PERIOD_NS
    }

    /// The block strobed at rising edge `edge`, if any.
    #[must_use]
    pub fn block_at_edge(&self, edge: u64) -> Option<DesBlock> {
        if edge < self.first_edge {
            return None;
        }
        let offset = edge - self.first_edge;
        if !offset.is_multiple_of(self.gap_cycles) {
            return None;
        }
        self.blocks
            .get((offset / self.gap_cycles) as usize)
            .copied()
    }

    /// Rising edges needed to complete every request (with margin for the
    /// ready pulse to retire).
    #[must_use]
    pub fn total_edges(&self) -> u64 {
        if self.blocks.is_empty() {
            return self.first_edge + 4;
        }
        self.request_edge(self.blocks.len() - 1) + 17 + 4
    }

    /// Simulation end time covering [`total_edges`](Self::total_edges).
    #[must_use]
    pub fn end_time_ns(&self) -> u64 {
        self.total_edges() * CLOCK_PERIOD_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_and_times() {
        let w = DesWorkload::random(3, 7);
        assert_eq!(w.request_edge(2), 42);
        assert_eq!(w.request_time_ns(2), 420);
        assert_eq!(w.total_edges(), 42 + 21);
        assert_eq!(w.end_time_ns(), 630);
    }

    #[test]
    fn block_at_edge_matches_schedule() {
        let w = DesWorkload::new(vec![
            DesBlock {
                data: 1,
                decrypt: false,
            },
            DesBlock {
                data: 2,
                decrypt: true,
            },
        ]);
        assert_eq!(w.block_at_edge(1), None);
        assert_eq!(w.block_at_edge(2).unwrap().data, 1);
        assert_eq!(w.block_at_edge(3), None);
        assert_eq!(w.block_at_edge(22).unwrap().data, 2);
        assert_eq!(w.block_at_edge(42), None, "past the last block");
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        assert_eq!(DesWorkload::random(10, 1), DesWorkload::random(10, 1));
        assert_ne!(DesWorkload::random(10, 1), DesWorkload::random(10, 2));
    }

    #[test]
    fn empty_workload_has_finite_end() {
        let w = DesWorkload::new(Vec::new());
        assert!(w.total_edges() > 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn request_edge_bounds_checked() {
        let w = DesWorkload::random(1, 0);
        let _ = w.request_edge(1);
    }
}
