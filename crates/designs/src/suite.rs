//! Property-suite metadata shared by both IPs.

use psl::ClockedProperty;

/// Expected behaviour of a property across abstraction levels — the
/// classification discussed in DESIGN.md §5b.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PropertyClass {
    /// The abstracted property only references instants where the TLM-AT
    /// model produces transactions (write submission / read completion):
    /// it must pass at RTL, TLM-CA and TLM-AT.
    AtCompatible,
    /// The abstracted property references intermediate instants that a
    /// loose TLM-AT model never produces: it must pass at RTL and TLM-CA,
    /// and — per the strict Def. III.3 semantics — fail at TLM-AT with a
    /// "no event at required instant" diagnostic.
    CaOnly,
    /// Signal abstraction dropped a disjunct (Section III-B): the result
    /// is *not* a logical consequence of the original, the abstraction
    /// flags it for review, and it is expected to fail at TLM until
    /// manually refined.
    ReviewExpectedFail,
    /// Signal abstraction deletes the whole property: nothing to check at
    /// TLM.
    DeletedAtTlm,
}

/// One property of an IP's verification suite.
#[derive(Debug, Clone)]
pub struct SuiteEntry {
    /// Short identifier (`p1` … `p9`, `c1` … `c12`).
    pub name: &'static str,
    /// What the property asserts, in prose.
    pub intent: &'static str,
    /// The RTL property.
    pub rtl: ClockedProperty,
    /// Cross-level classification.
    pub class: PropertyClass,
}

impl SuiteEntry {
    /// `(name, property)` pair as the checker installers expect.
    #[must_use]
    pub fn named(&self) -> (String, ClockedProperty) {
        (self.name.to_owned(), self.rtl.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn named_pairs() {
        let e = SuiteEntry {
            name: "p1",
            intent: "demo",
            rtl: "always rdy @clk_pos".parse().unwrap(),
            class: PropertyClass::AtCompatible,
        };
        let (n, p) = e.named();
        assert_eq!(n, "p1");
        assert_eq!(p, e.rtl);
    }
}
