//! The design factory: fresh, fully-wired simulation instances from a
//! declarative `(design, level, size, seed, fault)` spec.
//!
//! This is what lets a verification campaign construct isolated runs
//! without knowing each IP's builder signatures: every combination yields
//! a [`BuiltDesign`] carrying the simulation, the observable attachment
//! points (clock signal and/or transaction bus — exactly what a
//! checker [`Binding`](abv_checker::Binding) needs), the nominal end time,
//! and a uniform `run()`.

use abv_core::{abstract_property, reuse_at_cycle_accurate, AbstractionConfig};
use desim::{SignalId, SimStats, Simulation};
use psl::ClockedProperty;
use tlmkit::{CodingStyle, TransactionBus};

use crate::{colorconv, des56, fir, SuiteEntry, CLOCK_PERIOD_NS};

/// Which IP to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignKind {
    /// 64-bit DES core (latency 17, 9 properties).
    Des56,
    /// RGB→YCbCr pipeline (latency 8, 12 properties).
    ColorConv,
    /// 4-tap FIR filter (latency 5, 6 properties).
    Fir,
}

impl DesignKind {
    /// All designs, in the paper's order (the FIR extension last).
    pub const ALL: [DesignKind; 3] = [DesignKind::Des56, DesignKind::ColorConv, DesignKind::Fir];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DesignKind::Des56 => "DES56",
            DesignKind::ColorConv => "ColorConv",
            DesignKind::Fir => "FIR",
        }
    }

    /// Parses a case-insensitive label (`des56`, `colorconv`, `fir`).
    #[must_use]
    pub fn parse(s: &str) -> Option<DesignKind> {
        match s.to_ascii_lowercase().as_str() {
            "des56" | "des" => Some(DesignKind::Des56),
            "colorconv" | "conv" => Some(DesignKind::ColorConv),
            "fir" => Some(DesignKind::Fir),
            _ => None,
        }
    }

    /// The IP's RTL property suite.
    #[must_use]
    pub fn suite(self) -> Vec<SuiteEntry> {
        match self {
            DesignKind::Des56 => des56::suite(),
            DesignKind::ColorConv => colorconv::suite(),
            DesignKind::Fir => fir::suite(),
        }
    }

    /// The IP's abstraction configuration (10 ns clock, the IP's
    /// unobservable signals removed).
    #[must_use]
    pub fn config(self) -> AbstractionConfig {
        let base = AbstractionConfig::new(CLOCK_PERIOD_NS);
        match self {
            DesignKind::Des56 => base.abstract_signals(des56::ABSTRACTED_SIGNALS.iter().copied()),
            DesignKind::ColorConv => {
                base.abstract_signals(colorconv::ABSTRACTED_SIGNALS.iter().copied())
            }
            DesignKind::Fir => base.abstract_signals(fir::ABSTRACTED_SIGNALS.iter().copied()),
        }
    }
}

/// Abstraction level of a built simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbsLevel {
    /// RTL simulation (clock + pin wiggling).
    Rtl,
    /// TLM cycle-accurate: one transaction per clock period.
    TlmCa,
    /// TLM approximately-timed, the paper's loose style: one write + one
    /// read transaction per elaboration.
    TlmAt,
    /// ColorConv-only bulk-AT style: one transaction per image row.
    TlmAtBulk,
}

impl AbsLevel {
    /// The levels every design supports, in Table I order.
    pub const ALL: [AbsLevel; 3] = [AbsLevel::Rtl, AbsLevel::TlmCa, AbsLevel::TlmAt];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AbsLevel::Rtl => "RTL",
            AbsLevel::TlmCa => "TLM-CA",
            AbsLevel::TlmAt => "TLM-AT",
            AbsLevel::TlmAtBulk => "TLM-AT-bulk",
        }
    }

    /// Parses a case-insensitive label (`rtl`, `tlm-ca`, `tlm-at`,
    /// `tlm-at-bulk`).
    #[must_use]
    pub fn parse(s: &str) -> Option<AbsLevel> {
        match s.to_ascii_lowercase().as_str() {
            "rtl" => Some(AbsLevel::Rtl),
            "tlm-ca" | "tlmca" | "ca" => Some(AbsLevel::TlmCa),
            "tlm-at" | "tlmat" | "at" => Some(AbsLevel::TlmAt),
            "tlm-at-bulk" | "bulk" => Some(AbsLevel::TlmAtBulk),
            _ => None,
        }
    }
}

/// An optional injected fault, selected design-independently; each maps to
/// the IP's corresponding mutation.
///
/// Not every IP supports every fault — [`Fault::catalogue`] lists the
/// supported set per design, and [`build`] returns
/// [`BuildError::UnsupportedFault`] for pairs outside it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Fault {
    /// Correct behaviour.
    #[default]
    None,
    /// The IP's output appears one cycle early — caught by the latency
    /// properties at every level.
    LatencyShort,
    /// The IP's output appears one cycle late.
    LatencyLong,
    /// The IP's payload is corrupted out of its legal range (DES56 emits a
    /// zero block, ColorConv zeroes the luma, FIR exceeds its 16-bit
    /// bound).
    CorruptData,
    /// The completion strobe never rises; at TLM-AT the DES56 model also
    /// loses the completion transaction entirely.
    DropReady,
    /// The completion strobe is stuck at 1 from the first cycle.
    StuckControl,
    /// The second request is silently swallowed and never elaborated.
    DropTransaction,
    /// Every accepted request is elaborated twice, keeping the IP busy for
    /// two latency windows and swallowing requests meanwhile.
    DuplicateTransaction,
    /// One payload bit flipped at a seeded position.
    BitFlip {
        /// Which bit to flip (interpreted mod the IP's payload width).
        bit: u8,
    },
}

impl Fault {
    /// Display label (the bit-flip position is carried separately).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Fault::None => "none",
            Fault::LatencyShort => "latency-short",
            Fault::LatencyLong => "latency-long",
            Fault::CorruptData => "corrupt-data",
            Fault::DropReady => "drop-ready",
            Fault::StuckControl => "stuck-control",
            Fault::DropTransaction => "drop-transaction",
            Fault::DuplicateTransaction => "duplicate-transaction",
            Fault::BitFlip { .. } => "bit-flip",
        }
    }

    /// The faults `design` supports (its mutation catalogue), baseline
    /// first. The [`Fault::BitFlip`] entry carries bit 0; campaign layers
    /// reseed the position.
    #[must_use]
    pub fn catalogue(design: DesignKind) -> Vec<Fault> {
        match design {
            DesignKind::Des56 => vec![
                Fault::None,
                Fault::LatencyShort,
                Fault::LatencyLong,
                Fault::CorruptData,
                Fault::DropReady,
                Fault::StuckControl,
                Fault::DropTransaction,
                Fault::DuplicateTransaction,
            ],
            DesignKind::ColorConv => vec![
                Fault::None,
                Fault::LatencyShort,
                Fault::LatencyLong,
                Fault::CorruptData,
                Fault::DropReady,
                Fault::StuckControl,
                Fault::DropTransaction,
                Fault::BitFlip { bit: 0 },
            ],
            DesignKind::Fir => vec![
                Fault::None,
                Fault::LatencyShort,
                Fault::CorruptData,
                Fault::DropReady,
                Fault::DropTransaction,
                Fault::BitFlip { bit: 0 },
            ],
        }
    }
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Fault::BitFlip { bit } => write!(f, "bit-flip[{bit}]"),
            other => f.write_str(other.label()),
        }
    }
}

/// One fully-built, fresh simulation instance.
///
/// `clk` is populated for RTL builds, `bus` for TLM builds; a checker
/// binding is built from whichever is present.
pub struct BuiltDesign {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The clock signal, when the level has one.
    pub clk: Option<SignalId>,
    /// The transaction bus, when the level has one.
    pub bus: Option<TransactionBus>,
    /// Nominal end time of the workload, in ns.
    pub end_ns: u64,
}

/// Errors from [`build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The design does not support the requested level (only ColorConv has
    /// a bulk-AT model).
    UnsupportedLevel {
        /// The design asked for.
        design: DesignKind,
        /// The level it does not support.
        level: AbsLevel,
    },
    /// The design's mutation catalogue has no equivalent of the requested
    /// fault (see [`Fault::catalogue`]).
    UnsupportedFault {
        /// The design asked for.
        design: DesignKind,
        /// The fault it does not support.
        fault: Fault,
    },
}

impl std::fmt::Display for BuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BuildError::UnsupportedLevel { design, level } => {
                write!(f, "{} has no {} model", design.label(), level.label())
            }
            BuildError::UnsupportedFault { design, fault } => {
                write!(f, "{} has no {fault} mutation", design.label())
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// Builds a fresh `design` instance at `level` over a seeded workload of
/// `size` requests, with `fault` injected.
///
/// Equal arguments produce behaviourally identical simulations — the
/// whole stimulus is derived from `seed` — which is the foundation of the
/// campaign engine's determinism guarantee.
///
/// # Errors
///
/// [`BuildError::UnsupportedLevel`] for [`AbsLevel::TlmAtBulk`] on designs
/// other than ColorConv; [`BuildError::UnsupportedFault`] for `(design,
/// fault)` pairs outside [`Fault::catalogue`].
pub fn build(
    design: DesignKind,
    level: AbsLevel,
    size: usize,
    seed: u64,
    fault: Fault,
) -> Result<BuiltDesign, BuildError> {
    let style = CodingStyle::ApproximatelyTimedLoose;
    match design {
        DesignKind::Des56 => {
            let w = des56::DesWorkload::mixed(size, seed);
            let m = des_mutation(fault).ok_or(BuildError::UnsupportedFault { design, fault })?;
            match level {
                AbsLevel::Rtl => Ok(from_des_rtl(des56::build_rtl(&w, m))),
                AbsLevel::TlmCa => Ok(from_des_tlm(des56::build_tlm_ca(&w, m))),
                AbsLevel::TlmAt => Ok(from_des_tlm(des56::build_tlm_at(&w, m, style))),
                AbsLevel::TlmAtBulk => Err(BuildError::UnsupportedLevel { design, level }),
            }
        }
        DesignKind::ColorConv => {
            let w = colorconv::ConvWorkload::mixed(size, seed);
            let m = conv_mutation(fault).ok_or(BuildError::UnsupportedFault { design, fault })?;
            match level {
                AbsLevel::Rtl => Ok(from_conv_rtl(colorconv::build_rtl(&w, m))),
                AbsLevel::TlmCa => Ok(from_conv_tlm(colorconv::build_tlm_ca(&w, m))),
                AbsLevel::TlmAt => Ok(from_conv_tlm(colorconv::build_tlm_at(&w, m, style))),
                AbsLevel::TlmAtBulk => Ok(from_conv_tlm(colorconv::build_tlm_at_bulk(&w, m))),
            }
        }
        DesignKind::Fir => {
            let w = fir::FirWorkload::random(size, seed);
            let m = fir_mutation(fault).ok_or(BuildError::UnsupportedFault { design, fault })?;
            match level {
                AbsLevel::Rtl => Ok(from_fir_rtl(fir::build_rtl(&w, m))),
                AbsLevel::TlmCa => Ok(from_fir_tlm(fir::build_tlm_ca(&w, m))),
                AbsLevel::TlmAt => Ok(from_fir_tlm(fir::build_tlm_at(&w, m, style))),
                AbsLevel::TlmAtBulk => Err(BuildError::UnsupportedLevel { design, level }),
            }
        }
    }
}

/// Maps the design-independent fault onto the DES56 mutation catalogue.
fn des_mutation(fault: Fault) -> Option<des56::DesMutation> {
    use des56::DesMutation as M;
    match fault {
        Fault::None => Some(M::None),
        Fault::LatencyShort => Some(M::LatencyShort),
        Fault::LatencyLong => Some(M::LatencyLong),
        Fault::CorruptData => Some(M::CorruptData),
        Fault::DropReady => Some(M::DropReady),
        Fault::StuckControl => Some(M::StuckControl),
        Fault::DropTransaction => Some(M::DropTransaction),
        Fault::DuplicateTransaction => Some(M::DuplicateTransaction),
        Fault::BitFlip { .. } => None,
    }
}

/// Maps the design-independent fault onto the ColorConv mutation catalogue.
fn conv_mutation(fault: Fault) -> Option<colorconv::ConvMutation> {
    use colorconv::ConvMutation as M;
    match fault {
        Fault::None => Some(M::None),
        Fault::LatencyShort => Some(M::LatencyShort),
        Fault::LatencyLong => Some(M::LatencyLong),
        Fault::CorruptData => Some(M::CorruptLuma),
        Fault::DropReady => Some(M::DropValid),
        Fault::StuckControl => Some(M::StuckValid),
        Fault::DropTransaction => Some(M::DropPixel),
        Fault::BitFlip { bit } => Some(M::FlipLuma { bit }),
        Fault::DuplicateTransaction => None,
    }
}

/// Maps the design-independent fault onto the FIR mutation catalogue.
fn fir_mutation(fault: Fault) -> Option<fir::FirMutation> {
    use fir::FirMutation as M;
    match fault {
        Fault::None => Some(M::None),
        Fault::LatencyShort => Some(M::LatencyShort),
        Fault::CorruptData => Some(M::CorruptResult),
        Fault::DropReady => Some(M::DropValid),
        Fault::DropTransaction => Some(M::DropSample),
        Fault::BitFlip { bit } => Some(M::FlipResult { bit }),
        Fault::LatencyLong | Fault::StuckControl | Fault::DuplicateTransaction => None,
    }
}

/// The properties to verify at `level`, in suite order:
///
/// - RTL: the original clock-context properties;
/// - TLM-CA: the originals re-clocked onto `T_b` (no abstraction);
/// - TLM-AT: the surviving results of Methodology III.1;
/// - bulk-AT: the subset of the abstracted suite whose deadline structure
///   survives row-level transaction batching.
///
/// # Panics
///
/// Panics if a suite property fails to abstract (the shipped suites always
/// abstract).
#[must_use]
pub fn properties_at(design: DesignKind, level: AbsLevel) -> Vec<(String, ClockedProperty)> {
    let suite = design.suite();
    match level {
        AbsLevel::Rtl => suite.iter().map(SuiteEntry::named).collect(),
        AbsLevel::TlmCa => suite
            .iter()
            .map(|e| {
                (
                    e.name.to_owned(),
                    reuse_at_cycle_accurate(&e.rtl).expect("clock context"),
                )
            })
            .collect(),
        AbsLevel::TlmAt => {
            let cfg = design.config();
            suite
                .iter()
                .filter_map(|e| {
                    abstract_property(&e.rtl, &cfg)
                        .expect("suite abstracts")
                        .into_property()
                        .map(|q| (e.name.to_owned(), q))
                })
                .collect()
        }
        AbsLevel::TlmAtBulk => colorconv::bulk_surviving_properties(),
    }
}

/// The subset of [`properties_at`] expected to **pass** on the unmutated
/// design at `level`: the full suite at RTL/TLM-CA, the AT-compatible
/// subset (abstracted) at TLM-AT, the surviving range checks at bulk-AT.
///
/// This is the baseline a mutation campaign measures against — a mutant is
/// killed exactly when one of these fails.
///
/// # Panics
///
/// Panics if a suite property fails to abstract (the shipped suites always
/// abstract).
#[must_use]
pub fn passing_properties_at(
    design: DesignKind,
    level: AbsLevel,
) -> Vec<(String, ClockedProperty)> {
    match level {
        AbsLevel::Rtl | AbsLevel::TlmCa => properties_at(design, level),
        AbsLevel::TlmAt => {
            let cfg = design.config();
            design
                .suite()
                .iter()
                .filter(|e| e.class == crate::PropertyClass::AtCompatible)
                .filter_map(|e| {
                    abstract_property(&e.rtl, &cfg)
                        .expect("suite abstracts")
                        .into_property()
                        .map(|q| (e.name.to_owned(), q))
                })
                .collect()
        }
        AbsLevel::TlmAtBulk => colorconv::bulk_surviving_properties(),
    }
}

impl BuiltDesign {
    /// Runs the simulation to the workload's end and returns the kernel's
    /// activity counters.
    pub fn run(&mut self) -> SimStats {
        self.sim.run_until(desim::SimTime::from_ns(self.end_ns))
    }

    /// The checker binding over this instance's attachment points.
    ///
    /// # Panics
    ///
    /// Panics if the instance offers neither a clock nor a bus (no level
    /// builds such an instance).
    #[must_use]
    pub fn binding(&self) -> abv_checker::Binding {
        match (self.clk, &self.bus) {
            (Some(clk), Some(bus)) => abv_checker::Binding::full(clk, bus),
            (Some(clk), None) => abv_checker::Binding::clock(clk),
            (None, Some(bus)) => abv_checker::Binding::bus(bus),
            (None, None) => unreachable!("every level offers a clock or a bus"),
        }
    }

    /// Attaches a tracer to the instance's simulation. Call *before*
    /// attaching checkers so their track-name metadata is recorded.
    pub fn set_tracer(&mut self, tracer: abv_obs::Tracer) {
        self.sim.set_tracer(tracer);
    }
}

fn from_des_rtl(b: des56::RtlBuilt) -> BuiltDesign {
    BuiltDesign {
        clk: Some(b.clk.signal),
        bus: None,
        end_ns: b.end_ns,
        sim: b.sim,
    }
}

fn from_des_tlm(b: des56::TlmBuilt) -> BuiltDesign {
    BuiltDesign {
        clk: None,
        bus: Some(b.bus),
        end_ns: b.end_ns,
        sim: b.sim,
    }
}

fn from_conv_rtl(b: colorconv::RtlBuilt) -> BuiltDesign {
    BuiltDesign {
        clk: Some(b.clk.signal),
        bus: None,
        end_ns: b.end_ns,
        sim: b.sim,
    }
}

fn from_conv_tlm(b: colorconv::TlmBuilt) -> BuiltDesign {
    BuiltDesign {
        clk: None,
        bus: Some(b.bus),
        end_ns: b.end_ns,
        sim: b.sim,
    }
}

fn from_fir_rtl(b: fir::RtlBuilt) -> BuiltDesign {
    BuiltDesign {
        clk: Some(b.clk.signal),
        bus: None,
        end_ns: b.end_ns,
        sim: b.sim,
    }
}

fn from_fir_tlm(b: fir::TlmBuilt) -> BuiltDesign {
    BuiltDesign {
        clk: None,
        bus: Some(b.bus),
        end_ns: b.end_ns,
        sim: b.sim,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use abv_checker::Checker;

    #[test]
    fn labels_roundtrip_through_parse() {
        for d in DesignKind::ALL {
            assert_eq!(DesignKind::parse(d.label()), Some(d));
        }
        for l in [
            AbsLevel::Rtl,
            AbsLevel::TlmCa,
            AbsLevel::TlmAt,
            AbsLevel::TlmAtBulk,
        ] {
            assert_eq!(AbsLevel::parse(l.label()), Some(l));
        }
        assert_eq!(DesignKind::parse("bogus"), None);
        assert_eq!(AbsLevel::parse("bogus"), None);
    }

    #[test]
    fn bulk_is_colorconv_only() {
        assert!(build(DesignKind::Des56, AbsLevel::TlmAtBulk, 2, 0, Fault::None).is_err());
        assert!(build(DesignKind::Fir, AbsLevel::TlmAtBulk, 2, 0, Fault::None).is_err());
        assert!(build(
            DesignKind::ColorConv,
            AbsLevel::TlmAtBulk,
            2,
            0,
            Fault::None
        )
        .is_ok());
    }

    #[test]
    fn every_design_level_runs_with_its_suite() {
        for design in DesignKind::ALL {
            for level in AbsLevel::ALL {
                let mut built = build(design, level, 3, 7, Fault::None).expect("builds");
                let props = properties_at(design, level);
                assert!(!props.is_empty());
                let binding = built.binding();
                let checkers =
                    Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
                let stats = built.run();
                assert!(stats.events_processed > 0);
                let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
                // At RTL/TLM-CA the whole suite holds; at TLM-AT only the
                // AT-compatible subset is expected to pass on the loose
                // model (the rest fail by design — PropertyClass).
                for entry in design.suite() {
                    let Some(p) = report.property(entry.name) else {
                        continue;
                    };
                    let expect_pass = match level {
                        AbsLevel::Rtl | AbsLevel::TlmCa => true,
                        _ => entry.class == crate::PropertyClass::AtCompatible,
                    };
                    assert_eq!(
                        p.failure_count == 0,
                        expect_pass,
                        "{} {} {}: {p}",
                        design.label(),
                        level.label(),
                        entry.name
                    );
                }
            }
        }
    }

    #[test]
    fn latency_fault_is_caught_at_tlm_at() {
        for design in DesignKind::ALL {
            let mut built =
                build(design, AbsLevel::TlmAt, 4, 9, Fault::LatencyShort).expect("builds");
            let props = properties_at(design, AbsLevel::TlmAt);
            let binding = built.binding();
            let checkers = Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
            built.run();
            let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
            assert!(report.total_failures() > 0, "{}: {report}", design.label());
        }
    }

    #[test]
    fn unsupported_faults_are_structured_errors() {
        // DES56 has no payload bit-flip; ColorConv no duplicate; FIR
        // neither latency-long nor stuck-control nor duplicate.
        let cases = [
            (DesignKind::Des56, Fault::BitFlip { bit: 3 }),
            (DesignKind::ColorConv, Fault::DuplicateTransaction),
            (DesignKind::Fir, Fault::LatencyLong),
            (DesignKind::Fir, Fault::StuckControl),
            (DesignKind::Fir, Fault::DuplicateTransaction),
        ];
        for (design, fault) in cases {
            for level in AbsLevel::ALL {
                let err = match build(design, level, 2, 0, fault) {
                    Err(err) => err,
                    Ok(_) => panic!("{} {fault} must not fall back", design.label()),
                };
                assert_eq!(err, BuildError::UnsupportedFault { design, fault });
            }
        }
        let msg = BuildError::UnsupportedFault {
            design: DesignKind::Des56,
            fault: Fault::BitFlip { bit: 3 },
        }
        .to_string();
        assert_eq!(msg, "DES56 has no bit-flip[3] mutation");
    }

    #[test]
    fn catalogue_builds_everywhere_and_starts_with_the_baseline() {
        for design in DesignKind::ALL {
            let catalogue = Fault::catalogue(design);
            assert_eq!(catalogue[0], Fault::None);
            for fault in catalogue {
                for level in AbsLevel::ALL {
                    assert!(
                        build(design, level, 2, 1, fault).is_ok(),
                        "{} {} {fault}",
                        design.label(),
                        level.label()
                    );
                }
            }
        }
    }

    #[test]
    fn passing_properties_pass_on_the_unmutated_design() {
        for design in DesignKind::ALL {
            for level in AbsLevel::ALL {
                let mut built = build(design, level, 3, 7, Fault::None).expect("builds");
                let props = passing_properties_at(design, level);
                assert!(!props.is_empty());
                let binding = built.binding();
                let checkers =
                    Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
                built.run();
                let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
                assert!(
                    report.all_pass(),
                    "{} {}: {report}",
                    design.label(),
                    level.label()
                );
            }
        }
    }

    #[test]
    fn every_catalogued_mutant_is_killed_at_every_level() {
        for design in DesignKind::ALL {
            for fault in Fault::catalogue(design) {
                for level in AbsLevel::ALL {
                    let mut built = build(design, level, 8, 2015, fault).expect("builds");
                    let props = passing_properties_at(design, level);
                    let binding = built.binding();
                    let checkers =
                        Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
                    built.run();
                    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
                    let expect_killed = fault != Fault::None;
                    assert_eq!(
                        report.total_failures() > 0,
                        expect_killed,
                        "{} {} {fault}: {report}",
                        design.label(),
                        level.label()
                    );
                }
            }
        }
    }

    #[test]
    fn same_spec_same_behaviour() {
        let run_once = || {
            let mut built =
                build(DesignKind::ColorConv, AbsLevel::TlmAt, 5, 42, Fault::None).expect("builds");
            let props = properties_at(DesignKind::ColorConv, AbsLevel::TlmAt);
            let binding = built.binding();
            let checkers = Checker::attach_all(&mut built.sim, &props, binding).expect("attaches");
            let stats = built.run();
            let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
            (
                stats.events_processed,
                stats.delta_cycles,
                format!("{report}"),
            )
        };
        assert_eq!(run_once(), run_once());
    }
}
