//! `designs` — the paper's two test-case IPs at all three abstraction
//! levels.
//!
//! - [`des56`]: a reconfigurable (encrypt/decrypt) 64-bit DES
//!   cryptographic core with a latency of 17 clock cycles and its 9 PSL
//!   properties;
//! - [`colorconv`]: an 8-stage pipelined RGB→YCbCr converter with a
//!   latency of 8 clock cycles and its 12 PSL properties;
//! - [`fir`]: a 4-tap FIR filter (latency 5, 6 properties) — an extension
//!   IP beyond the paper's evaluation, demonstrating the flow's
//!   generality.
//!
//! Each IP provides:
//!
//! - a pure algorithmic core (`algo`) shared by every abstraction level,
//! - a cycle-stepping core (`core`) shared by the RTL and TLM-CA models
//!   (which is what makes them timing-equivalent by construction,
//!   Def. III.1),
//! - simulation builders for **RTL**, **TLM-CA** (one transaction per
//!   clock period) and **TLM-AT** (one write + one read per elaboration;
//!   optionally the strict Def. III.1 variant with transactions at every
//!   preserved-I/O change — DESIGN.md §5b),
//! - a PSL property suite with each property classified by its expected
//!   behaviour across abstraction levels ([`PropertyClass`]),
//! - fault-injection [`des56::DesMutation`] / [`colorconv::ConvMutation`]
//!   variants used to demonstrate that the abstracted checkers catch real
//!   TLM bugs.
//!
//! All models use a 10 ns clock ([`CLOCK_PERIOD_NS`]), matching the
//! paper's running example (`ε = 17 × 10ns = 170ns`).

pub mod colorconv;
pub mod des56;
mod factory;
pub mod fir;
mod suite;

pub use factory::{
    build, passing_properties_at, properties_at, AbsLevel, BuildError, BuiltDesign, DesignKind,
    Fault,
};
pub use suite::{PropertyClass, SuiteEntry};

/// The RTL clock period shared by both IPs, in nanoseconds.
pub const CLOCK_PERIOD_NS: u64 = 10;
