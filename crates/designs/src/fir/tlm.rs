//! The FIR TLM models: cycle-accurate and approximately-timed.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use tlmkit::{CodingStyle, Transaction, TransactionBus};

use super::core::{reference, FirCore, FirMutation};
use super::workload::FirWorkload;
use crate::CLOCK_PERIOD_NS;

/// Mirror signals preserved at TLM-CA (full protocol).
pub const TLM_CA_SIGNALS: &[&str] = &[
    "in_valid",
    "sample",
    "result",
    "out_valid",
    "res_next_cycle",
];

/// Mirror signals preserved at TLM-AT (prediction output abstracted).
pub const TLM_AT_SIGNALS: &[&str] = &["in_valid", "sample", "result", "out_valid"];

/// A fully wired TLM simulation of the FIR filter.
pub struct TlmBuilt {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The transaction observation channel.
    pub bus: TransactionBus,
    /// Time by which every sample has retired.
    pub end_ns: u64,
}

impl TlmBuilt {
    /// Runs the simulation to its end time and returns the kernel stats.
    pub fn run(&mut self) -> desim::SimStats {
        self.sim.run_until(SimTime::from_ns(self.end_ns))
    }
}

struct FirTlmCa {
    bus: TransactionBus,
    core: FirCore,
    workload: FirWorkload,
    edge: u64,
    last_edge: u64,
    in_valid: SignalId,
    sample: SignalId,
    result: SignalId,
    out_valid: SignalId,
    res_nc: SignalId,
}

impl Component for FirTlmCa {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        self.edge += 1;
        let s = self.workload.sample_at_edge(self.edge);
        let valid = s.is_some();
        let o = self.core.step(valid, s.unwrap_or(0));
        ctx.write(self.in_valid, u64::from(valid));
        if let Some(v) = s {
            ctx.write(self.sample, v);
        }
        ctx.write(self.result, o.result);
        ctx.write(self.out_valid, u64::from(o.out_valid));
        ctx.write(self.res_nc, u64::from(o.res_next_cycle));
        let tx = if valid {
            Transaction::write(0, s.unwrap_or(0), ev.time)
        } else {
            Transaction::read(0, o.result, ev.time)
        };
        self.bus.publish(ctx, tx);
        if self.edge < self.last_edge {
            ctx.schedule_self(CLOCK_PERIOD_NS, 0);
        }
    }
}

/// Builds the FIR TLM-CA simulation for a workload.
#[must_use]
pub fn build_tlm_ca(workload: &FirWorkload, mutation: FirMutation) -> TlmBuilt {
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let in_valid = sim.add_signal("in_valid", 0);
    let sample = sim.add_signal("sample", 0);
    let result = sim.add_signal("result", 0);
    let out_valid = sim.add_signal("out_valid", 0);
    let res_nc = sim.add_signal("res_next_cycle", 0);
    let model = sim.add_component(FirTlmCa {
        bus: bus.clone(),
        core: FirCore::new(mutation),
        workload: workload.clone(),
        edge: 0,
        last_edge: workload.total_edges(),
        in_valid,
        sample,
        result,
        out_valid,
        res_nc,
    });
    sim.schedule(SimTime::from_ns(CLOCK_PERIOD_NS), model, 0);
    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

const OP_WRITE: u64 = 0;
const OP_READ: u64 = 1;

/// The FIR TLM-AT model: one write per sample and one read at the RTL
/// completion time (`t + 5 × period`); the filter state is a functional
/// delay line.
struct FirTlmAt {
    bus: TransactionBus,
    mutation: FirMutation,
    workload: FirWorkload,
    history: [u64; 4],
    in_valid: SignalId,
    sample: SignalId,
    result: SignalId,
    out_valid: SignalId,
}

impl Component for FirTlmAt {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let op = ev.kind & 1;
        let index = (ev.kind >> 1) as usize;
        match op {
            OP_WRITE => {
                let s = self.workload.samples[index];
                ctx.write(self.in_valid, 1);
                ctx.write(self.sample, s);
                ctx.write(self.out_valid, 0);
                self.bus.publish(ctx, Transaction::write(0, s, ev.time));
                // A swallowed sample neither completes nor enters the
                // functional delay line (the read op does both).
                let swallowed = matches!(self.mutation, FirMutation::DropSample) && index == 1;
                if !swallowed {
                    let delay = match self.mutation {
                        FirMutation::LatencyShort => 4,
                        _ => 5,
                    } * CLOCK_PERIOD_NS;
                    ctx.schedule_self(delay, (ev.kind & !1) | OP_READ);
                }
            }
            _ => {
                let s = self.workload.samples[index];
                self.history.rotate_right(1);
                self.history[0] = s;
                let mut r = reference(&self.history);
                match self.mutation {
                    FirMutation::DropTap => {
                        r = r.saturating_sub(
                            (u64::from(super::core::TAPS[0]) * self.history[0]) >> 8,
                        );
                    }
                    FirMutation::CorruptResult => r |= 1 << 16,
                    FirMutation::FlipResult { bit } => r ^= 1 << (16 + bit % 8),
                    _ => {}
                }
                ctx.write(self.in_valid, 0);
                ctx.write(self.result, r);
                if !matches!(self.mutation, FirMutation::DropValid) {
                    ctx.write(self.out_valid, 1);
                }
                self.bus.publish(ctx, Transaction::read(0, r, ev.time));
            }
        }
    }
}

/// Builds the FIR TLM-AT simulation for a workload.
///
/// # Panics
///
/// Panics if `style` is [`CodingStyle::CycleAccurate`].
#[must_use]
pub fn build_tlm_at(workload: &FirWorkload, mutation: FirMutation, style: CodingStyle) -> TlmBuilt {
    assert!(
        !matches!(style, CodingStyle::CycleAccurate),
        "use build_tlm_ca for the cycle-accurate style"
    );
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let in_valid = sim.add_signal("in_valid", 0);
    let sample = sim.add_signal("sample", 0);
    let result = sim.add_signal("result", 0);
    let out_valid = sim.add_signal("out_valid", 0);
    let model = sim.add_component(FirTlmAt {
        bus: bus.clone(),
        mutation,
        workload: workload.clone(),
        history: [0; 4],
        in_valid,
        sample,
        result,
        out_valid,
    });
    for i in 0..workload.samples.len() {
        sim.schedule(
            SimTime::from_ns(workload.request_time_ns(i)),
            model,
            ((i as u64) << 1) | OP_WRITE,
        );
    }
    TlmBuilt {
        sim,
        bus,
        end_ns: workload.end_time_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psl::SignalEnv;
    use tlmkit::TxTraceRecorder;

    #[test]
    fn ca_matches_rtl_completion_instants() {
        let w = FirWorkload::new(vec![512, 64]);
        let mut built = build_tlm_ca(&w, FirMutation::None);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_CA_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        // First sample at edge 2 → result at edge 7 (t = 70).
        let pos = trace.position_at_time(70).expect("transaction at 70ns");
        assert_eq!(trace.steps()[pos].signal("out_valid"), Some(1));
        assert_eq!(
            trace.steps()[pos].signal("result"),
            Some(reference(&[512, 0, 0, 0]))
        );
    }

    #[test]
    fn at_two_transactions_per_sample_with_matching_values() {
        let w = FirWorkload::new(vec![512, 64]);
        let mut built = build_tlm_at(&w, FirMutation::None, CodingStyle::ApproximatelyTimedLoose);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        assert_eq!(built.bus.published(), 4);
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[1].time_ns, 70);
        assert_eq!(
            trace.steps()[1].signal("result"),
            Some(reference(&[512, 0, 0, 0]))
        );
        assert_eq!(
            trace.steps()[3].signal("result"),
            Some(reference(&[64, 512, 0, 0]))
        );
    }

    #[test]
    fn at_drop_sample_skips_completion_and_history() {
        let w = FirWorkload::new(vec![512, 64, 128]);
        let mut built = build_tlm_at(
            &w,
            FirMutation::DropSample,
            CodingStyle::ApproximatelyTimedLoose,
        );
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        // Three writes, two completions.
        assert_eq!(built.bus.published(), 5);
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        let reads: Vec<u64> = trace
            .steps()
            .iter()
            .filter(|s| s.signal("in_valid") == Some(0))
            .filter_map(|s| s.signal("result"))
            .collect();
        // Sample 1 is missing from the delay line, matching the RTL core.
        assert_eq!(
            reads,
            vec![reference(&[512, 0, 0, 0]), reference(&[128, 512, 0, 0])]
        );
    }

    #[test]
    fn at_drop_valid_completes_without_the_strobe() {
        let w = FirWorkload::new(vec![512]);
        let mut built = build_tlm_at(
            &w,
            FirMutation::DropValid,
            CodingStyle::ApproximatelyTimedLoose,
        );
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, TLM_AT_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        assert_eq!(trace.steps()[1].time_ns, 70);
        assert_eq!(trace.steps()[1].signal("out_valid"), Some(0));
    }
}
