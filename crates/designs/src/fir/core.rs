//! The cycle-stepping FIR core shared by the RTL and TLM-CA models.
//!
//! A 4-tap transposed-form FIR: a sample strobed at edge `e0` produces its
//! filtered output at edge `e5` (capture, four multiply-accumulate stages,
//! output register). Samples may arrive back-to-back (throughput 1).

/// The fixed filter taps (Q8 fixed point: a gentle low-pass).
pub const TAPS: [u32; 4] = [32, 96, 96, 32];

/// Output interface of the core, one sample per cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FirOutputs {
    /// Filtered output (`Σ tap_i · x[n-i] >> 8`), valid with `out_valid`.
    pub result: u64,
    /// One-cycle result strobe.
    pub out_valid: bool,
    /// Prediction: `out_valid` rises at the next cycle.
    pub res_next_cycle: bool,
}

/// Fault injections.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FirMutation {
    /// Correct behaviour.
    #[default]
    None,
    /// Output produced one cycle early.
    LatencyShort,
    /// Wrong arithmetic: the first tap is dropped.
    DropTap,
    /// Result forced above the 16-bit output bound.
    CorruptResult,
    /// `out_valid` never asserted.
    DropValid,
    /// The second accepted sample never enters the filter.
    DropSample,
    /// A high result bit (16 + `bit % 8`) flipped on.
    FlipResult {
        /// Which high bit (mod 8, offset 16) to flip.
        bit: u8,
    },
}

/// The reference (functional) filter over a sample history, newest first.
#[must_use]
pub fn reference(history: &[u64; 4]) -> u64 {
    let acc: u64 = TAPS
        .iter()
        .zip(history)
        .map(|(t, x)| u64::from(*t) * x)
        .sum();
    acc >> 8
}

/// Work item travelling down the MAC pipeline.
#[derive(Debug, Clone, Copy)]
struct Work {
    history: [u64; 4],
    acc: u64,
    stage: usize,
}

/// Cycle-accurate 4-tap FIR pipeline (latency 5).
#[derive(Debug, Clone)]
pub struct FirCore {
    mutation: FirMutation,
    delay_line: [u64; 4],
    pipe: [Option<Work>; 5],
    /// Samples accepted so far (drives [`FirMutation::DropSample`]).
    seen: u32,
    outputs: FirOutputs,
}

impl FirCore {
    /// The design latency in clock cycles (strobe sample → result sample).
    pub const LATENCY: u32 = 5;

    /// A core with an injected fault (or [`FirMutation::None`]).
    #[must_use]
    pub fn new(mutation: FirMutation) -> FirCore {
        FirCore {
            mutation,
            delay_line: [0; 4],
            pipe: [None; 5],
            seen: 0,
            outputs: FirOutputs::default(),
        }
    }

    /// Executes one clock cycle with the given input pins.
    pub fn step(&mut self, in_valid: bool, sample: u64) -> FirOutputs {
        let depth = match self.mutation {
            FirMutation::LatencyShort => 4,
            _ => 5,
        };

        let exiting = self.pipe[depth - 1].take();
        for stage in (1..depth).rev() {
            let mutation = self.mutation;
            self.pipe[stage] = self.pipe[stage - 1].take().map(|mut w| {
                // Stages 1..=4 each accumulate one tap.
                if (1..=4).contains(&w.stage) {
                    let dropped = matches!(mutation, FirMutation::DropTap) && w.stage == 1;
                    if !dropped {
                        w.acc += u64::from(TAPS[w.stage - 1]) * w.history[w.stage - 1];
                    }
                }
                w.stage += 1;
                w
            });
        }
        if in_valid {
            let drop = matches!(self.mutation, FirMutation::DropSample) && self.seen == 1;
            self.seen += 1;
            if !drop {
                self.delay_line.rotate_right(1);
                self.delay_line[0] = sample;
                self.pipe[0] = Some(Work {
                    history: self.delay_line,
                    acc: 0,
                    stage: 1,
                });
            }
        }

        self.outputs.out_valid = false;
        if let Some(mut w) = exiting {
            // A shortened pipe finishes the remaining taps combinationally.
            while w.stage <= 4 {
                w.acc += u64::from(TAPS[w.stage - 1]) * w.history[w.stage - 1];
                w.stage += 1;
            }
            let mut result = w.acc >> 8;
            match self.mutation {
                FirMutation::CorruptResult => result |= 1 << 16,
                FirMutation::FlipResult { bit } => result ^= 1 << (16 + bit % 8),
                _ => {}
            }
            self.outputs.result = result;
            self.outputs.out_valid = !matches!(self.mutation, FirMutation::DropValid);
        }
        self.outputs.res_next_cycle = self.pipe[depth - 1].is_some();
        self.outputs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_single(core: &mut FirCore, sample: u64, cycles: u32) -> Vec<FirOutputs> {
        (0..cycles).map(|c| core.step(c == 0, sample)).collect()
    }

    #[test]
    fn latency_is_5_cycles() {
        let mut core = FirCore::new(FirMutation::None);
        let outs = run_single(&mut core, 256, 8);
        for (cycle, o) in outs.iter().enumerate() {
            assert_eq!(o.out_valid, cycle == 5, "cycle {cycle}");
            assert_eq!(o.res_next_cycle, cycle == 4, "cycle {cycle}");
        }
        // First sample: history = [256, 0, 0, 0].
        assert_eq!(outs[5].result, reference(&[256, 0, 0, 0]));
    }

    #[test]
    fn streaming_matches_reference() {
        let samples: Vec<u64> = (1..=20).map(|k| k * 37).collect();
        let mut core = FirCore::new(FirMutation::None);
        let mut results = Vec::new();
        for c in 0..30 {
            let (valid, sample) = match samples.get(c) {
                Some(&s) => (true, s),
                None => (false, 0),
            };
            let o = core.step(valid, sample);
            if o.out_valid {
                results.push(o.result);
            }
        }
        assert_eq!(results.len(), samples.len());
        let mut history = [0u64; 4];
        for (i, &s) in samples.iter().enumerate() {
            history.rotate_right(1);
            history[0] = s;
            assert_eq!(results[i], reference(&history), "sample {i}");
        }
    }

    #[test]
    fn latency_short_mutation() {
        let mut core = FirCore::new(FirMutation::LatencyShort);
        let outs = run_single(&mut core, 256, 8);
        assert!(outs[4].out_valid && !outs[5].out_valid);
        assert_eq!(
            outs[4].result,
            reference(&[256, 0, 0, 0]),
            "value still correct"
        );
    }

    #[test]
    fn drop_tap_mutation_corrupts_value() {
        let mut core = FirCore::new(FirMutation::DropTap);
        let outs = run_single(&mut core, 256, 8);
        assert!(outs[5].out_valid);
        assert_ne!(outs[5].result, reference(&[256, 0, 0, 0]));
    }

    #[test]
    fn corrupt_result_exceeds_output_bound() {
        let mut core = FirCore::new(FirMutation::CorruptResult);
        let outs = run_single(&mut core, 256, 8);
        assert!(outs[5].out_valid);
        assert!(outs[5].result > 65535);
    }

    #[test]
    fn drop_valid_never_strobes() {
        let mut core = FirCore::new(FirMutation::DropValid);
        let outs = run_single(&mut core, 256, 8);
        assert!(outs.iter().all(|o| !o.out_valid));
    }

    #[test]
    fn drop_sample_swallows_the_second_sample() {
        let mut core = FirCore::new(FirMutation::DropSample);
        let mut strobes = Vec::new();
        for c in 0..20 {
            let o = core.step(c < 3, 512);
            if o.out_valid {
                strobes.push(c);
            }
        }
        assert_eq!(strobes, vec![5, 7], "sample 1 never filters");
    }

    #[test]
    fn flip_result_sets_a_high_bit() {
        for bit in 0..8 {
            let mut core = FirCore::new(FirMutation::FlipResult { bit });
            let outs = run_single(&mut core, 512, 8);
            assert!(outs[5].out_valid);
            assert!(outs[5].result > 65535, "bit {bit} stays in range");
            assert_eq!(outs[5].result & 0xFFFF, reference(&[512, 0, 0, 0]));
        }
    }

    #[test]
    fn dc_gain_is_unity() {
        // Taps sum to 256 (Q8), so a constant input passes through.
        assert_eq!(TAPS.iter().sum::<u32>(), 256);
        assert_eq!(reference(&[1000, 1000, 1000, 1000]), 1000);
    }
}
