//! The FIR PSL property suite: 6 RTL properties for the extension IP.

use psl::ClockedProperty;

use crate::suite::{PropertyClass, SuiteEntry};

/// Signals removed by the protocol abstraction.
pub const ABSTRACTED_SIGNALS: &[&str] = &["res_next_cycle"];

fn parse(src: &str) -> ClockedProperty {
    src.parse()
        .unwrap_or_else(|e| panic!("suite property must parse: {src}: {e}"))
}

/// The 6-property FIR suite.
#[must_use]
pub fn suite() -> Vec<SuiteEntry> {
    vec![
        SuiteEntry {
            name: "f1",
            intent: "every sample produces a result in exactly 5 cycles",
            rtl: parse("always (!in_valid || next[5] out_valid) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "f2",
            intent: "results respect the filter's DC bound (taps sum to unity)",
            rtl: parse("always (!out_valid || result <= 65535) @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "f3",
            intent: "result is announced one cycle ahead, then produced",
            rtl: parse(
                "always (!in_valid || (next[4](res_next_cycle) && next[5](out_valid))) @clk_pos",
            ),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "f4",
            intent: "samples are spaced in this workload",
            rtl: parse("always (!in_valid || next (!in_valid)) @clk_pos"),
            class: PropertyClass::CaOnly,
        },
        SuiteEntry {
            name: "f5",
            intent: "no result before the first sample",
            rtl: parse("(!out_valid) until in_valid @clk_pos"),
            class: PropertyClass::AtCompatible,
        },
        SuiteEntry {
            name: "f6",
            intent: "the one-cycle prediction is honoured",
            rtl: parse("always (!res_next_cycle || next out_valid) @clk_pos"),
            class: PropertyClass::ReviewExpectedFail,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_six_parseable_properties() {
        let s = suite();
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|e| e.name.starts_with('f')));
    }
}
