//! FIR: a 4-tap finite-impulse-response filter with a latency of 5 clock
//! cycles — an **extension IP** beyond the paper's two test cases,
//! demonstrating that the abstraction flow generalizes to designs it was
//! not written against.
//!
//! Interface (RTL):
//!
//! | signal | dir | meaning |
//! |---|---|---|
//! | `in_valid` | in | one-cycle sample strobe |
//! | `sample` | in | 16-bit input sample |
//! | `result` | out | filtered output (fixed point, `>> 8`) |
//! | `out_valid` | out | one-cycle result strobe, 5 cycles after `in_valid` |
//! | `res_next_cycle` | out | prediction: `out_valid` rises next cycle |
//!
//! `res_next_cycle` is removed by the protocol abstraction
//! ([`ABSTRACTED_SIGNALS`]).

mod core;
mod properties;
mod rtl;
mod tlm;
mod workload;

pub use core::{reference, FirCore, FirMutation, FirOutputs, TAPS};
pub use properties::{suite, ABSTRACTED_SIGNALS};
pub use rtl::{build_rtl, RtlBuilt, RTL_SIGNALS};
pub use tlm::{build_tlm_at, build_tlm_ca, TlmBuilt, TLM_AT_SIGNALS, TLM_CA_SIGNALS};
pub use workload::FirWorkload;
