//! FIR workloads: sample streams shared by all three models.

use tinyrng::TinyRng;

use crate::CLOCK_PERIOD_NS;

/// A stream of 16-bit samples, one every `gap_cycles` clock cycles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirWorkload {
    /// The samples, in issue order.
    pub samples: Vec<u64>,
    /// Clock cycles between consecutive samples (default 8).
    pub gap_cycles: u64,
    /// Rising-edge index (1-based) of the first sample.
    pub first_edge: u64,
}

impl FirWorkload {
    /// Default spacing: one sample every 8 cycles, first at edge 2.
    pub const DEFAULT_GAP: u64 = 8;

    /// A workload from explicit samples with the default spacing.
    #[must_use]
    pub fn new(samples: Vec<u64>) -> FirWorkload {
        FirWorkload {
            samples,
            gap_cycles: Self::DEFAULT_GAP,
            first_edge: 2,
        }
    }

    /// `count` random 16-bit samples from a seeded RNG.
    #[must_use]
    pub fn random(count: usize, seed: u64) -> FirWorkload {
        let mut rng = TinyRng::new(seed);
        FirWorkload::new((0..count).map(|_| u64::from(rng.next_u16())).collect())
    }

    /// The rising-edge index at which sample `i` is strobed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn request_edge(&self, i: usize) -> u64 {
        assert!(i < self.samples.len(), "sample index out of range");
        self.first_edge + self.gap_cycles * i as u64
    }

    /// The simulation time of sample `i`'s strobe sample.
    #[must_use]
    pub fn request_time_ns(&self, i: usize) -> u64 {
        self.request_edge(i) * CLOCK_PERIOD_NS
    }

    /// The sample strobed at rising edge `edge`, if any.
    #[must_use]
    pub fn sample_at_edge(&self, edge: u64) -> Option<u64> {
        if edge < self.first_edge {
            return None;
        }
        let offset = edge - self.first_edge;
        if !offset.is_multiple_of(self.gap_cycles) {
            return None;
        }
        self.samples
            .get((offset / self.gap_cycles) as usize)
            .copied()
    }

    /// Rising edges needed to retire every sample (with margin).
    #[must_use]
    pub fn total_edges(&self) -> u64 {
        if self.samples.is_empty() {
            return self.first_edge + 4;
        }
        self.request_edge(self.samples.len() - 1) + 5 + 4
    }

    /// Simulation end time covering [`total_edges`](Self::total_edges).
    #[must_use]
    pub fn end_time_ns(&self) -> u64 {
        self.total_edges() * CLOCK_PERIOD_NS
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_arithmetic() {
        let w = FirWorkload::random(3, 1);
        assert_eq!(w.request_edge(0), 2);
        assert_eq!(w.request_edge(2), 18);
        assert_eq!(w.request_time_ns(2), 180);
        assert_eq!(w.total_edges(), 27);
        assert_eq!(w.sample_at_edge(10), Some(w.samples[1]));
        assert_eq!(w.sample_at_edge(11), None);
    }

    #[test]
    fn samples_fit_16_bits() {
        let w = FirWorkload::random(50, 2);
        assert!(w.samples.iter().all(|&s| s <= 0xFFFF));
    }
}
