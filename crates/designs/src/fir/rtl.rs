//! The FIR RTL model: clocked pipeline plus stimulus generator.

use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use rtlkit::{Clock, ClockHandle, EdgeDetector};

use super::core::{FirCore, FirMutation};
use super::workload::FirWorkload;
use crate::CLOCK_PERIOD_NS;

/// Names of the FIR I/O signals at RTL, in declaration order.
pub const RTL_SIGNALS: &[&str] = &[
    "in_valid",
    "sample",
    "result",
    "out_valid",
    "res_next_cycle",
];

struct FirRtl {
    clk: SignalId,
    det: EdgeDetector,
    core: FirCore,
    in_valid: SignalId,
    sample: SignalId,
    result: SignalId,
    out_valid: SignalId,
    res_nc: SignalId,
}

impl Component for FirRtl {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        if !self.det.is_rising(ctx.read(self.clk)) {
            return;
        }
        let valid = ctx.read(self.in_valid) != 0;
        let sample = ctx.read(self.sample);
        let o = self.core.step(valid, sample);
        ctx.write(self.result, o.result);
        ctx.write(self.out_valid, u64::from(o.out_valid));
        ctx.write(self.res_nc, u64::from(o.res_next_cycle));
    }
}

struct FirStimulus {
    clk: SignalId,
    det: EdgeDetector,
    workload: FirWorkload,
    in_valid: SignalId,
    sample: SignalId,
}

impl Component for FirStimulus {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        if !self.det.is_falling(ctx.read(self.clk)) {
            return;
        }
        let target_edge = ev.time.as_ns() / CLOCK_PERIOD_NS + 1;
        match self.workload.sample_at_edge(target_edge) {
            Some(s) => {
                ctx.write(self.in_valid, 1);
                ctx.write(self.sample, s);
            }
            None => ctx.write(self.in_valid, 0),
        }
    }
}

/// A fully wired RTL simulation of the FIR filter.
pub struct RtlBuilt {
    /// The simulation, ready to run.
    pub sim: Simulation,
    /// The design clock.
    pub clk: ClockHandle,
    /// Time by which every sample has retired.
    pub end_ns: u64,
}

impl RtlBuilt {
    /// Runs the simulation to its end time and returns the kernel stats.
    pub fn run(&mut self) -> desim::SimStats {
        self.sim.run_until(SimTime::from_ns(self.end_ns))
    }
}

/// Builds the FIR RTL simulation for a workload.
#[must_use]
pub fn build_rtl(workload: &FirWorkload, mutation: FirMutation) -> RtlBuilt {
    let mut sim = Simulation::new();
    sim.reserve_signals(10); // pin list + clock, registered in one burst
    let clk = Clock::install(&mut sim, "clk", CLOCK_PERIOD_NS);
    let in_valid = sim.add_signal("in_valid", 0);
    let sample = sim.add_signal("sample", 0);
    let result = sim.add_signal("result", 0);
    let out_valid = sim.add_signal("out_valid", 0);
    let res_nc = sim.add_signal("res_next_cycle", 0);

    let dut = sim.add_component(FirRtl {
        clk: clk.signal,
        det: EdgeDetector::new(),
        core: FirCore::new(mutation),
        in_valid,
        sample,
        result,
        out_valid,
        res_nc,
    });
    sim.subscribe(clk.signal, dut, 0);

    let stim = sim.add_component(FirStimulus {
        clk: clk.signal,
        det: EdgeDetector::new(),
        workload: workload.clone(),
        in_valid,
        sample,
    });
    sim.subscribe(clk.signal, stim, 0);

    RtlBuilt {
        sim,
        clk,
        end_ns: workload.end_time_ns(),
    }
}

#[cfg(test)]
mod tests {
    use super::super::core::reference;
    use super::*;
    use psl::{ClockEdge, SignalEnv};
    use rtlkit::WaveRecorder;

    #[test]
    fn single_sample_filters_5_cycles_after_strobe() {
        let w = FirWorkload::new(vec![512]);
        let mut built = build_rtl(&w, FirMutation::None);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        let trace = WaveRecorder::take_trace(&built.sim, rec);
        let steps = trace.steps();
        assert_eq!(steps[1].signal("in_valid"), Some(1));
        assert_eq!(steps[1 + 5].signal("out_valid"), Some(1));
        assert_eq!(steps[1 + 4].signal("res_next_cycle"), Some(1));
        assert_eq!(
            steps[1 + 5].signal("result"),
            Some(reference(&[512, 0, 0, 0]))
        );
    }

    #[test]
    fn stream_retires_every_sample() {
        let w = FirWorkload::random(6, 9);
        let mut built = build_rtl(&w, FirMutation::None);
        let rec = WaveRecorder::install(
            &mut built.sim,
            built.clk.signal,
            ClockEdge::Pos,
            RTL_SIGNALS,
        );
        built.run();
        let trace = WaveRecorder::take_trace(&built.sim, rec);
        let count = trace
            .steps()
            .iter()
            .filter(|s| s.signal("out_valid") == Some(1))
            .count();
        assert_eq!(count, 6);
    }
}
