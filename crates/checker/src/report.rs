//! Verification results.

use std::fmt;

use abv_obs::Histogram;

/// Why an instance failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailReason {
    /// The monitored condition evaluated to false.
    Violated,
    /// An anchored `next_ε^τ` obligation expected an event at
    /// `deadline_ns`, but the next observed event came later (or the
    /// simulation ended) — Section IV's "failure at 350ns because C\[3\] was
    /// not executed when expected at 340ns" case.
    MissedDeadline {
        /// The expected evaluation instant.
        deadline_ns: u64,
    },
}

impl fmt::Display for FailReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FailReason::Violated => f.write_str("condition violated"),
            FailReason::MissedDeadline { deadline_ns } => {
                write!(f, "no event at required instant {deadline_ns}ns")
            }
        }
    }
}

/// One recorded property violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Failure {
    /// When the failing instance was activated.
    pub fire_ns: u64,
    /// When the failure was detected.
    pub fail_ns: u64,
    /// Why it failed.
    pub reason: FailReason,
    /// The outstanding obligation at the point of failure, rendered from
    /// the property's formula arena (empty when unavailable).
    pub residual: String,
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fired @{}ns, failed @{}ns: {}",
            self.fire_ns, self.fail_ns, self.reason
        )?;
        if !self.residual.is_empty() {
            write!(f, " [obligation: {}]", self.residual)?;
        }
        Ok(())
    }
}

/// Overall verdict of a property over a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No instance failed.
    Pass,
    /// At least one instance failed.
    Fail,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Verdict::Pass => "PASS",
            Verdict::Fail => "FAIL",
        })
    }
}

/// Maximum number of failures retained with full detail; further failures
/// only increment [`PropertyReport::failure_count`].
pub const MAX_RECORDED_FAILURES: usize = 64;

/// Accumulated results of one property's checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyReport {
    /// Property display name.
    pub name: String,
    /// Verification sessions started (one per matching evaluation point for
    /// `always` properties).
    pub activations: u64,
    /// Activations that were trivially true and never registered.
    pub vacuous: u64,
    /// Instances that resolved successfully after registration.
    pub completions: u64,
    /// Total failures (recorded + overflowed).
    pub failure_count: u64,
    /// First [`MAX_RECORDED_FAILURES`] failures, in detection order.
    pub failures: Vec<Failure>,
    /// Instances still undetermined at simulation end.
    pub pending: u64,
    /// High-water mark of simultaneously live instances — comparable to the
    /// paper's static lifetime bound for the checker-instance array.
    pub max_live_instances: usize,
    /// Monitor progression steps performed (work measure).
    pub evaluations: u64,
    /// Failures whose reason was a missed `next_ε^τ` deadline — the
    /// wrapper's "expected evaluation time passed without a transaction"
    /// case, split out from `failure_count` because it is the
    /// abstraction-specific failure mode.
    pub timeout_fails: u64,
    /// Completion latency (`fail_ns`/completion time − `fire_ns`, in
    /// nanoseconds) of instances that resolved successfully. Divide by the
    /// reference clock period for the paper's cycle view.
    pub latency: Histogram,
    /// Distinct interned nodes in the property's formula arena (its size).
    /// Merging takes the maximum across runs, since each run owns an
    /// arena of the same property.
    pub arena_nodes: usize,
    /// Progression-memo hits: progressions answered from the per-event
    /// cache because another live instance already rewrote the same
    /// residual at this event.
    pub memo_hits: u64,
    /// Progression-memo misses (progressions actually computed).
    pub memo_misses: u64,
}

impl PropertyReport {
    /// An empty report for `name`.
    #[must_use]
    pub fn new(name: String) -> PropertyReport {
        PropertyReport {
            name,
            activations: 0,
            vacuous: 0,
            completions: 0,
            failure_count: 0,
            failures: Vec::new(),
            pending: 0,
            max_live_instances: 0,
            evaluations: 0,
            timeout_fails: 0,
            latency: Histogram::new(),
            arena_nodes: 0,
            memo_hits: 0,
            memo_misses: 0,
        }
    }

    /// Progression-memo hit rate in percent (0 when nothing was looked
    /// up): the share of residual rewrites that were shared across live
    /// instances instead of recomputed.
    #[must_use]
    pub fn memo_hit_pct(&self) -> u64 {
        (self.memo_hits * 100)
            .checked_div(self.memo_hits + self.memo_misses)
            .unwrap_or(0)
    }

    /// The overall verdict.
    #[must_use]
    pub fn verdict(&self) -> Verdict {
        if self.failure_count > 0 {
            Verdict::Fail
        } else {
            Verdict::Pass
        }
    }

    /// True while the failure list is below [`MAX_RECORDED_FAILURES`]:
    /// callers use this to skip rendering residual strings for failures
    /// that would be counted but not stored.
    pub(crate) fn wants_failure_detail(&self) -> bool {
        self.failures.len() < MAX_RECORDED_FAILURES
    }

    pub(crate) fn record_failure(&mut self, failure: Failure) {
        self.failure_count += 1;
        if matches!(failure.reason, FailReason::MissedDeadline { .. }) {
            self.timeout_fails += 1;
        }
        if self.failures.len() < MAX_RECORDED_FAILURES {
            self.failures.push(failure);
        }
    }

    /// Records the completion latency of a successfully resolved instance.
    pub(crate) fn record_completion_latency(&mut self, latency_ns: u64) {
        self.latency.record(latency_ns);
    }

    /// Folds `other` — the same property observed over another run — into
    /// `self`: counters add, recorded failures concatenate up to
    /// [`MAX_RECORDED_FAILURES`], and the live-instance high-water mark
    /// takes the maximum across runs.
    ///
    /// Merging is associative, so a campaign may fold per-run reports in
    /// any grouping and obtain the same aggregate — as long as the overall
    /// run *order* is fixed (the failure list keeps first-come detail).
    ///
    /// # Panics
    ///
    /// Panics if the two reports name different properties.
    pub fn merge(&mut self, other: &PropertyReport) {
        assert_eq!(
            self.name, other.name,
            "merging reports of different properties"
        );
        self.activations += other.activations;
        self.vacuous += other.vacuous;
        self.completions += other.completions;
        self.failure_count += other.failure_count;
        for failure in &other.failures {
            if self.failures.len() >= MAX_RECORDED_FAILURES {
                break;
            }
            self.failures.push(failure.clone());
        }
        self.pending += other.pending;
        self.max_live_instances = self.max_live_instances.max(other.max_live_instances);
        self.evaluations += other.evaluations;
        self.timeout_fails += other.timeout_fails;
        self.latency.merge(&other.latency);
        self.arena_nodes = self.arena_nodes.max(other.arena_nodes);
        self.memo_hits += other.memo_hits;
        self.memo_misses += other.memo_misses;
    }
}

impl fmt::Display for PropertyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} ({} activations, {} vacuous, {} completed, {} failed, {} pending)",
            self.name,
            self.verdict(),
            self.activations,
            self.vacuous,
            self.completions,
            self.failure_count,
            self.pending
        )
    }
}

/// Results of a whole property suite over one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CheckReport {
    /// Per-property results, in installation order.
    pub properties: Vec<PropertyReport>,
}

impl CheckReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> CheckReport {
        CheckReport::default()
    }

    /// True if every property passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.properties.iter().all(|p| p.verdict() == Verdict::Pass)
    }

    /// Total failures across properties.
    #[must_use]
    pub fn total_failures(&self) -> u64 {
        self.properties.iter().map(|p| p.failure_count).sum()
    }

    /// The report for the property named `name`.
    #[must_use]
    pub fn property(&self, name: &str) -> Option<&PropertyReport> {
        self.properties.iter().find(|p| p.name == name)
    }

    /// Folds another run's suite report into `self`, property by property
    /// (see [`PropertyReport::merge`]). An empty `self` adopts `other`'s
    /// property list, so a campaign can fold per-run reports into a
    /// `CheckReport::new()` accumulator.
    ///
    /// # Panics
    ///
    /// Panics if both reports are non-empty and their property lists
    /// differ in length or order — merged runs must install the same
    /// suite.
    pub fn merge(&mut self, other: &CheckReport) {
        if self.properties.is_empty() {
            self.properties = other.properties.clone();
            return;
        }
        if other.properties.is_empty() {
            return;
        }
        assert_eq!(
            self.properties.len(),
            other.properties.len(),
            "merging suite reports of different sizes"
        );
        for (mine, theirs) in self.properties.iter_mut().zip(&other.properties) {
            mine.merge(theirs);
        }
    }
}

impl FromIterator<PropertyReport> for CheckReport {
    fn from_iter<I: IntoIterator<Item = PropertyReport>>(iter: I) -> CheckReport {
        CheckReport {
            properties: iter.into_iter().collect(),
        }
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in &self.properties {
            writeln!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verdicts() {
        let mut r = PropertyReport::new("p".into());
        assert_eq!(r.verdict(), Verdict::Pass);
        r.record_failure(Failure {
            fire_ns: 1,
            fail_ns: 2,
            reason: FailReason::Violated,
            residual: String::new(),
        });
        assert_eq!(r.verdict(), Verdict::Fail);
        assert_eq!(r.failure_count, 1);
    }

    #[test]
    fn failure_recording_caps_detail() {
        let mut r = PropertyReport::new("p".into());
        for i in 0..(MAX_RECORDED_FAILURES as u64 + 10) {
            r.record_failure(Failure {
                fire_ns: i,
                fail_ns: i,
                reason: FailReason::Violated,
                residual: String::new(),
            });
        }
        assert_eq!(r.failures.len(), MAX_RECORDED_FAILURES);
        assert_eq!(r.failure_count, MAX_RECORDED_FAILURES as u64 + 10);
    }

    #[test]
    fn check_report_aggregates() {
        let ok = PropertyReport::new("ok".into());
        let mut bad = PropertyReport::new("bad".into());
        bad.record_failure(Failure {
            fire_ns: 0,
            fail_ns: 5,
            reason: FailReason::Violated,
            residual: String::new(),
        });
        let report: CheckReport = [ok, bad].into_iter().collect();
        assert!(!report.all_pass());
        assert_eq!(report.total_failures(), 1);
        assert_eq!(report.property("ok").unwrap().verdict(), Verdict::Pass);
        assert!(report.property("ghost").is_none());
        assert!(report.to_string().contains("bad: FAIL"));
    }

    #[test]
    fn reports_cross_thread_boundaries() {
        fn assert_send<T: Send + 'static>() {}
        assert_send::<PropertyReport>();
        assert_send::<CheckReport>();
        assert_send::<Failure>();
    }

    #[test]
    fn property_merge_accumulates() {
        let mut a = PropertyReport::new("p".into());
        a.activations = 5;
        a.completions = 4;
        a.max_live_instances = 2;
        a.record_failure(Failure {
            fire_ns: 1,
            fail_ns: 2,
            reason: FailReason::Violated,
            residual: String::new(),
        });
        a.record_completion_latency(170);
        let mut b = PropertyReport::new("p".into());
        b.activations = 3;
        b.vacuous = 1;
        b.pending = 2;
        b.max_live_instances = 7;
        b.record_failure(Failure {
            fire_ns: 10,
            fail_ns: 20,
            reason: FailReason::MissedDeadline { deadline_ns: 15 },
            residual: String::new(),
        });
        b.record_completion_latency(340);
        a.merge(&b);
        assert_eq!(a.activations, 8);
        assert_eq!(a.vacuous, 1);
        assert_eq!(a.completions, 4);
        assert_eq!(a.pending, 2);
        assert_eq!(a.failure_count, 2);
        assert_eq!(a.failures.len(), 2);
        assert_eq!(a.failures[1].fire_ns, 10);
        assert_eq!(a.max_live_instances, 7);
        assert_eq!(a.timeout_fails, 1, "only b's failure missed a deadline");
        assert_eq!(a.latency.count(), 2);
        assert_eq!(a.latency.max(), 340);
    }

    #[test]
    fn property_merge_caps_recorded_failures() {
        let mut a = PropertyReport::new("p".into());
        let mut b = PropertyReport::new("p".into());
        for i in 0..MAX_RECORDED_FAILURES as u64 {
            a.record_failure(Failure {
                fire_ns: i,
                fail_ns: i,
                reason: FailReason::Violated,
                residual: String::new(),
            });
            b.record_failure(Failure {
                fire_ns: i,
                fail_ns: i,
                reason: FailReason::Violated,
                residual: String::new(),
            });
        }
        a.merge(&b);
        assert_eq!(a.failures.len(), MAX_RECORDED_FAILURES);
        assert_eq!(a.failure_count, 2 * MAX_RECORDED_FAILURES as u64);
    }

    #[test]
    #[should_panic(expected = "different properties")]
    fn property_merge_rejects_name_mismatch() {
        let mut a = PropertyReport::new("p".into());
        a.merge(&PropertyReport::new("q".into()));
    }

    #[test]
    fn suite_merge_folds_from_empty_accumulator() {
        let mut p = PropertyReport::new("p".into());
        p.activations = 2;
        let run: CheckReport = [p].into_iter().collect();
        let mut acc = CheckReport::new();
        acc.merge(&run);
        acc.merge(&run);
        acc.merge(&CheckReport::new());
        assert_eq!(acc.properties.len(), 1);
        assert_eq!(acc.properties[0].activations, 4);
    }

    #[test]
    fn displays() {
        let mut f = Failure {
            fire_ns: 10,
            fail_ns: 350,
            reason: FailReason::MissedDeadline { deadline_ns: 340 },
            residual: String::new(),
        };
        assert_eq!(
            f.to_string(),
            "fired @10ns, failed @350ns: no event at required instant 340ns"
        );
        f.residual = "at[340ns](rdy)".into();
        assert_eq!(
            f.to_string(),
            "fired @10ns, failed @350ns: no event at required instant 340ns \
             [obligation: at[340ns](rdy)]"
        );
    }

    #[test]
    fn memo_hit_pct_is_guarded() {
        let mut r = PropertyReport::new("p".into());
        assert_eq!(r.memo_hit_pct(), 0);
        r.memo_hits = 3;
        r.memo_misses = 1;
        assert_eq!(r.memo_hit_pct(), 75);
    }
}
