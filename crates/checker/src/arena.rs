//! The interned monitor IR: a hash-consed formula arena with memoized
//! progression.
//!
//! Monitor formulas are stored once per distinct shape in a
//! [`FormulaArena`]: every node is identified by a dense [`NodeId`]
//! (`true` and `false` have fixed ids), children are ids, and the smart
//! constructors canonicalize on build — constant folding plus the
//! `And`/`Or` identity, annihilator and idempotence laws — so
//! structurally equal residuals are *pointer equal* ids.
//!
//! Interning is what makes progression memoizable: within one evaluation
//! event, progressing a node is a pure function of `(NodeId, read, now)`,
//! and `read`/`now` are fixed for the whole event. The arena therefore
//! keeps a dense per-node memo stamped with an event epoch: residuals
//! shared across the live instances of a property (the paper's
//! 17-instance pool for `q3`) progress **once per event instead of once
//! per instance**, and steady-state progression allocates nothing — every
//! rewritten node already exists in the arena.
//!
//! One arena is owned per attached property
//! (see [`compile`](crate::compile)), so campaign workers and parallel
//! simulations never share interner state and the deterministic merge is
//! untouched.

use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasherDefault, Hasher};

use crate::monitor::{Lit, SignalRead};

/// The fast, non-cryptographic hasher used by the interning tables
/// (the classic `FxHash` multiply-xor scheme; interning keys are tiny
/// `Copy` structs, and lookups sit on the progression hot path).
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(u64::from(b));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

type FxBuild = BuildHasherDefault<FxHasher>;

/// Identifier of one interned monitor-formula node in a [`FormulaArena`].
///
/// Ids are dense and arena-local; `true`/`false` are the fixed ids
/// [`NodeId::TRUE`]/[`NodeId::FALSE`]. Hash-consing guarantees that two
/// ids of the same arena are equal iff the formulas are structurally
/// equal (after canonicalization), so residual comparison is an integer
/// compare.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(u32);

impl NodeId {
    /// The interned `true` formula.
    pub const TRUE: NodeId = NodeId(0);
    /// The interned `false` formula.
    pub const FALSE: NodeId = NodeId(1);

    #[inline]
    fn idx(self) -> usize {
        self.0 as usize
    }

    /// True iff this is [`NodeId::TRUE`] or [`NodeId::FALSE`].
    #[inline]
    #[must_use]
    pub fn is_const(self) -> bool {
        self.0 <= 1
    }
}

/// Identifier of one interned literal (a resolved signal test).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct LitId(u32);

/// An interned monitor-formula node. Children are [`NodeId`]s and
/// literals are interned separately, so nodes are small `Copy` values
/// and structural hashing touches no heap data.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Node {
    True,
    False,
    Lit(LitId),
    And(NodeId, NodeId),
    Or(NodeId, NodeId),
    /// `next[n]`: operand holds `n` evaluation events ahead.
    NextN(u32, NodeId),
    /// `next_ε^τ`, not yet reached: anchors to `now + eps` when progressed.
    NextEt {
        eps_ns: u64,
        inner: NodeId,
    },
    /// An anchored obligation: operand must be evaluated at the event at
    /// exactly `deadline_ns`; an event past the deadline fails it.
    At {
        deadline_ns: u64,
        inner: NodeId,
    },
    Until(NodeId, NodeId),
    Release(NodeId, NodeId),
    Always(NodeId),
    Eventually(NodeId),
}

/// One per-node memo slot: the progression result computed at `epoch`.
/// Epoch 0 never matches (arenas start at epoch 1), so slots need no
/// `Option`.
#[derive(Debug, Clone, Copy)]
struct MemoSlot {
    epoch: u64,
    result: NodeId,
}

const MEMO_EMPTY: MemoSlot = MemoSlot {
    epoch: 0,
    result: NodeId::FALSE,
};

/// Sentinel for "no permanent progression result". Node ids are dense from
/// zero, so `u32::MAX` can never be a real node.
const PERM_NONE: NodeId = NodeId(u32::MAX);

/// A hash-consed arena of monitor formulas with a memoized progression
/// cache.
///
/// See the [module docs](self) for the design; the lifecycle is:
/// [`compile`](crate::compile) lowers a property into the arena, the
/// owning [`PropertyChecker`](crate::PropertyChecker) calls
/// [`begin_event`](FormulaArena::begin_event) once per evaluation event
/// and [`progress`](FormulaArena::progress) per live residual, and
/// [`stats`](FormulaArena::stats) feed the per-property report and the
/// observability counter tracks.
#[derive(Debug, Default)]
pub struct FormulaArena {
    nodes: Vec<Node>,
    index: HashMap<Node, NodeId, FxBuild>,
    lits: Vec<Lit>,
    lit_index: HashMap<Lit, LitId, FxBuild>,
    /// Per-node flag: does the subformula contain a temporal connective?
    /// Boolean-only nodes resolve to a constant in one event and bypass
    /// the memo entirely (see [`progress`](FormulaArena::progress)).
    temporal: Vec<bool>,
    /// Permanent progression results for event-independent rewrites
    /// (`next[n]` countdowns): valid across all epochs,
    /// [`PERM_NONE`] when absent.
    perm: Vec<NodeId>,
    memo: Vec<MemoSlot>,
    epoch: u64,
    hits: u64,
    misses: u64,
}

/// Cumulative arena counters, surfaced in
/// [`PropertyReport`](crate::PropertyReport) and on the
/// [`ARENA_COUNTER_TRACK`](abv_obs::ARENA_COUNTER_TRACK) trace track.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaStats {
    /// Distinct interned nodes (arena size).
    pub nodes: usize,
    /// Progression-memo hits: progressions answered from the per-event
    /// cache instead of recomputed.
    pub hits: u64,
    /// Progression-memo misses (actual progression computations).
    pub misses: u64,
}

impl ArenaStats {
    /// Memo hit rate in percent (0 when nothing was looked up).
    #[must_use]
    pub fn hit_pct(&self) -> u64 {
        (self.hits * 100)
            .checked_div(self.hits + self.misses)
            .unwrap_or(0)
    }
}

impl FormulaArena {
    /// An arena holding only the `true`/`false` constants.
    #[must_use]
    pub fn new() -> FormulaArena {
        let mut arena = FormulaArena {
            epoch: 1,
            ..FormulaArena::default()
        };
        let t = arena.intern(Node::True);
        let f = arena.intern(Node::False);
        debug_assert_eq!(t, NodeId::TRUE);
        debug_assert_eq!(f, NodeId::FALSE);
        arena
    }

    /// Cumulative size and memo counters.
    #[must_use]
    pub fn stats(&self) -> ArenaStats {
        ArenaStats {
            nodes: self.nodes.len(),
            hits: self.hits,
            misses: self.misses,
        }
    }

    fn intern(&mut self, node: Node) -> NodeId {
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = NodeId(u32::try_from(self.nodes.len()).expect("arena node limit"));
        // Children are interned before their parents, so the flags of `a`
        // and `b` are already present.
        let temporal = match node {
            Node::True | Node::False | Node::Lit(_) => false,
            Node::And(a, b) | Node::Or(a, b) => self.temporal[a.idx()] || self.temporal[b.idx()],
            _ => true,
        };
        self.nodes.push(node);
        self.temporal.push(temporal);
        self.perm.push(PERM_NONE);
        self.memo.push(MEMO_EMPTY);
        self.index.insert(node, id);
        id
    }

    fn lit_id(&mut self, lit: &Lit) -> LitId {
        if let Some(&id) = self.lit_index.get(lit) {
            return id;
        }
        let id = LitId(u32::try_from(self.lits.len()).expect("arena literal limit"));
        self.lits.push(lit.clone());
        self.lit_index.insert(lit.clone(), id);
        id
    }

    /// Interns a resolved literal.
    pub fn lit(&mut self, lit: &Lit) -> NodeId {
        let lit = self.lit_id(lit);
        self.intern(Node::Lit(lit))
    }

    fn bool_id(b: bool) -> NodeId {
        if b {
            NodeId::TRUE
        } else {
            NodeId::FALSE
        }
    }

    /// `a && b`, canonicalized: constants fold (`false` annihilates,
    /// `true` is the identity) and `a && a` collapses to `a` — free under
    /// hash-consing, where idempotence is an id compare.
    pub fn and(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == NodeId::FALSE || b == NodeId::FALSE {
            NodeId::FALSE
        } else if a == NodeId::TRUE {
            b
        } else if b == NodeId::TRUE || a == b {
            a
        } else {
            self.intern(Node::And(a, b))
        }
    }

    /// `a || b`, canonicalized (dual of [`and`](FormulaArena::and)).
    pub fn or(&mut self, a: NodeId, b: NodeId) -> NodeId {
        if a == NodeId::TRUE || b == NodeId::TRUE {
            NodeId::TRUE
        } else if a == NodeId::FALSE {
            b
        } else if b == NodeId::FALSE || a == b {
            a
        } else {
            self.intern(Node::Or(a, b))
        }
    }

    /// `next[n] inner`.
    pub fn next_n(&mut self, n: u32, inner: NodeId) -> NodeId {
        self.intern(Node::NextN(n, inner))
    }

    /// `next_ε^τ inner`, pre-anchoring.
    pub fn next_et(&mut self, eps_ns: u64, inner: NodeId) -> NodeId {
        self.intern(Node::NextEt { eps_ns, inner })
    }

    /// An anchored obligation at the absolute instant `deadline_ns`.
    pub fn at(&mut self, deadline_ns: u64, inner: NodeId) -> NodeId {
        self.intern(Node::At { deadline_ns, inner })
    }

    /// `a until b`.
    pub fn until(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.intern(Node::Until(a, b))
    }

    /// `a release b`.
    pub fn release(&mut self, a: NodeId, b: NodeId) -> NodeId {
        self.intern(Node::Release(a, b))
    }

    /// `always inner`.
    pub fn always(&mut self, inner: NodeId) -> NodeId {
        self.intern(Node::Always(inner))
    }

    /// `eventually inner`.
    pub fn eventually(&mut self, inner: NodeId) -> NodeId {
        self.intern(Node::Eventually(inner))
    }

    /// Opens a new evaluation event: progression results memoized under
    /// earlier epochs become stale. The owning checker calls this exactly
    /// once per evaluation event, before any
    /// [`progress`](FormulaArena::progress) of that event.
    pub fn begin_event(&mut self) {
        self.epoch += 1;
    }

    /// Progresses `id` through the evaluation event at `now`: the result
    /// is the obligation that must hold from the *next* evaluation event
    /// on. Memoized per [`begin_event`](FormulaArena::begin_event) epoch,
    /// so residuals shared across instances are rewritten once per event.
    ///
    /// Boolean-only residuals (no temporal connective anywhere below)
    /// resolve to a constant in place: they create no nodes and nothing
    /// about them is shareable across instances, so they bypass the memo —
    /// this keeps single-shot boolean activations as cheap as a direct
    /// tree walk.
    pub fn progress<R: SignalRead + ?Sized>(&mut self, id: NodeId, read: &R, now: u64) -> NodeId {
        if id.is_const() {
            return id;
        }
        if !self.temporal[id.idx()] {
            return Self::bool_id(self.eval_bool(id, read));
        }
        // `next[n]` countdowns rewrite independently of the event: the
        // successor is cached permanently, so steady-state countdown steps
        // are a single indexed load (no hashing, no epoch check).
        let perm = self.perm[id.idx()];
        if perm != PERM_NONE {
            self.hits += 1;
            return perm;
        }
        if let Node::NextN(n, inner) = self.nodes[id.idx()] {
            self.misses += 1;
            let result = if n == 1 {
                inner
            } else {
                self.next_n(n - 1, inner)
            };
            self.perm[id.idx()] = result;
            return result;
        }
        let slot = self.memo[id.idx()];
        if slot.epoch == self.epoch {
            self.hits += 1;
            return slot.result;
        }
        self.misses += 1;
        let result = self.progress_uncached(id, read, now);
        self.memo[id.idx()] = MemoSlot {
            epoch: self.epoch,
            result,
        };
        result
    }

    /// Evaluates a boolean-only node (no temporal connective below) to its
    /// truth value at the current event.
    fn eval_bool<R: SignalRead + ?Sized>(&self, id: NodeId, read: &R) -> bool {
        match self.nodes[id.idx()] {
            Node::True => true,
            Node::False => false,
            Node::Lit(lit) => self.lits[lit.0 as usize].eval(read),
            Node::And(a, b) => self.eval_bool(a, read) && self.eval_bool(b, read),
            Node::Or(a, b) => self.eval_bool(a, read) || self.eval_bool(b, read),
            _ => unreachable!("temporal node reached the boolean fast path"),
        }
    }

    fn progress_uncached<R: SignalRead + ?Sized>(
        &mut self,
        id: NodeId,
        read: &R,
        now: u64,
    ) -> NodeId {
        match self.nodes[id.idx()] {
            Node::True | Node::False => id,
            Node::Lit(lit) => Self::bool_id(self.lits[lit.0 as usize].eval(read)),
            Node::And(a, b) => {
                let pa = self.progress(a, read, now);
                if pa == NodeId::FALSE {
                    return NodeId::FALSE;
                }
                let pb = self.progress(b, read, now);
                self.and(pa, pb)
            }
            Node::Or(a, b) => {
                let pa = self.progress(a, read, now);
                if pa == NodeId::TRUE {
                    return NodeId::TRUE;
                }
                let pb = self.progress(b, read, now);
                self.or(pa, pb)
            }
            Node::NextN(1, inner) => inner,
            Node::NextN(n, inner) => self.next_n(n - 1, inner),
            Node::NextEt { eps_ns, inner } => self.at(now + eps_ns, inner),
            Node::At { deadline_ns, inner } => {
                if now < deadline_ns {
                    id // event not consumed by this obligation
                } else if now == deadline_ns {
                    self.progress(inner, read, now)
                } else {
                    NodeId::FALSE // deadline passed without an observable event
                }
            }
            // φ U ψ  ≡  ψ ∨ (φ ∧ X(φ U ψ))
            Node::Until(a, b) => {
                let pb = self.progress(b, read, now);
                if pb == NodeId::TRUE {
                    return NodeId::TRUE;
                }
                let pa = self.progress(a, read, now);
                let tail = self.and(pa, id);
                self.or(pb, tail)
            }
            // φ R ψ  ≡  ψ ∧ (φ ∨ X(φ R ψ))
            Node::Release(a, b) => {
                let pb = self.progress(b, read, now);
                if pb == NodeId::FALSE {
                    return NodeId::FALSE;
                }
                let pa = self.progress(a, read, now);
                let tail = self.or(pa, id);
                self.and(pb, tail)
            }
            Node::Always(a) => {
                let pa = self.progress(a, read, now);
                self.and(pa, id)
            }
            Node::Eventually(a) => {
                let pa = self.progress(a, read, now);
                self.or(pa, id)
            }
        }
    }

    /// The earliest anchored deadline of a residual made solely of `At`
    /// obligations under `And`/`Or`, or `None` when any other connective
    /// forces every-event observation. Constants below `And`/`Or` are
    /// absorbed by the constructors, and a bare constant residual never
    /// reaches the wake planner.
    pub(crate) fn earliest_deadline(&self, id: NodeId) -> Option<u64> {
        match self.nodes[id.idx()] {
            Node::At { deadline_ns, .. } => Some(deadline_ns),
            Node::And(a, b) | Node::Or(a, b) => {
                let (ea, eb) = (self.earliest_deadline(a)?, self.earliest_deadline(b)?);
                Some(ea.min(eb))
            }
            _ => None,
        }
    }

    /// Three-valued end-of-simulation evaluation of a residual: anchored
    /// obligations with deadlines at or before `end` are false (their
    /// instant passed without an observable event), later ones and
    /// event-counting obligations are unknown.
    pub(crate) fn finish_eval(&self, id: NodeId, end: u64) -> Option<bool> {
        match self.nodes[id.idx()] {
            Node::True => Some(true),
            Node::False => Some(false),
            Node::At { deadline_ns, .. } if deadline_ns <= end => Some(false),
            Node::And(a, b) => match (self.finish_eval(a, end), self.finish_eval(b, end)) {
                (Some(false), _) | (_, Some(false)) => Some(false),
                (Some(true), Some(true)) => Some(true),
                _ => None,
            },
            Node::Or(a, b) => match (self.finish_eval(a, end), self.finish_eval(b, end)) {
                (Some(true), _) | (_, Some(true)) => Some(true),
                (Some(false), Some(false)) => Some(false),
                _ => None,
            },
            _ => None,
        }
    }

    /// The earliest missed deadline contributing to a false finish
    /// verdict.
    pub(crate) fn earliest_missed(&self, id: NodeId, end: u64) -> Option<u64> {
        let mut earliest: Option<u64> = None;
        self.walk_missed(id, end, &mut earliest);
        earliest
    }

    fn walk_missed(&self, id: NodeId, end: u64, earliest: &mut Option<u64>) {
        match self.nodes[id.idx()] {
            Node::At { deadline_ns, .. } if deadline_ns <= end => {
                *earliest = Some(earliest.map_or(deadline_ns, |e| e.min(deadline_ns)));
            }
            Node::And(a, b) | Node::Or(a, b) => {
                self.walk_missed(a, end, earliest);
                self.walk_missed(b, end, earliest);
            }
            _ => {}
        }
    }

    /// A human-readable rendering of `id`, for failure messages and
    /// diagnostics.
    #[must_use]
    pub fn display(&self, id: NodeId) -> DisplayNode<'_> {
        DisplayNode { arena: self, id }
    }

    fn fmt_node(&self, id: NodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.nodes[id.idx()] {
            Node::True => f.write_str("true"),
            Node::False => f.write_str("false"),
            Node::Lit(lit) => {
                let lit = &self.lits[lit.0 as usize];
                if lit.negated {
                    f.write_str("!")?;
                }
                match lit.test {
                    crate::monitor::LitTest::Bool => write!(f, "{}", lit.name),
                    crate::monitor::LitTest::Cmp(op, rhs) => {
                        if lit.negated {
                            write!(f, "({} {op} {rhs})", lit.name)
                        } else {
                            write!(f, "{} {op} {rhs}", lit.name)
                        }
                    }
                }
            }
            Node::And(a, b) => {
                f.write_str("(")?;
                self.fmt_node(a, f)?;
                f.write_str(" && ")?;
                self.fmt_node(b, f)?;
                f.write_str(")")
            }
            Node::Or(a, b) => {
                f.write_str("(")?;
                self.fmt_node(a, f)?;
                f.write_str(" || ")?;
                self.fmt_node(b, f)?;
                f.write_str(")")
            }
            Node::NextN(n, inner) => {
                write!(f, "next[{n}](")?;
                self.fmt_node(inner, f)?;
                f.write_str(")")
            }
            Node::NextEt { eps_ns, inner } => {
                write!(f, "next_et[{eps_ns}ns](")?;
                self.fmt_node(inner, f)?;
                f.write_str(")")
            }
            Node::At { deadline_ns, inner } => {
                write!(f, "at[{deadline_ns}ns](")?;
                self.fmt_node(inner, f)?;
                f.write_str(")")
            }
            Node::Until(a, b) => {
                f.write_str("(")?;
                self.fmt_node(a, f)?;
                f.write_str(" until ")?;
                self.fmt_node(b, f)?;
                f.write_str(")")
            }
            Node::Release(a, b) => {
                f.write_str("(")?;
                self.fmt_node(a, f)?;
                f.write_str(" release ")?;
                self.fmt_node(b, f)?;
                f.write_str(")")
            }
            Node::Always(inner) => {
                f.write_str("always(")?;
                self.fmt_node(inner, f)?;
                f.write_str(")")
            }
            Node::Eventually(inner) => {
                f.write_str("eventually(")?;
                self.fmt_node(inner, f)?;
                f.write_str(")")
            }
        }
    }
}

/// Borrowed [`fmt::Display`] view of an arena residual (see
/// [`FormulaArena::display`]).
#[derive(Debug, Clone, Copy)]
pub struct DisplayNode<'a> {
    arena: &'a FormulaArena,
    id: NodeId,
}

impl fmt::Display for DisplayNode<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.arena.fmt_node(self.id, f)
    }
}

/// Test helper: a literal over an arbitrary signal id.
#[cfg(test)]
pub(crate) fn test_lit(sig: desim::SignalId, name: &str, negated: bool) -> Lit {
    Lit {
        sig,
        name: name.into(),
        test: crate::monitor::LitTest::Bool,
        negated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use desim::SignalId;
    use std::cell::RefCell;
    use std::collections::HashMap;

    fn sig(n: usize) -> SignalId {
        thread_local! {
            static IDS: RefCell<Vec<SignalId>> = const { RefCell::new(Vec::new()) };
            static SIM: RefCell<desim::Simulation> = RefCell::new(desim::Simulation::new());
        }
        IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            while ids.len() <= n {
                let next = ids.len();
                let id = SIM.with(|sim| sim.borrow_mut().add_signal(&format!("s{next}"), 0));
                ids.push(id);
            }
            ids[n]
        })
    }

    fn env(pairs: &[(usize, u64)]) -> impl Fn(SignalId) -> u64 + '_ {
        let map: HashMap<SignalId, u64> = pairs.iter().map(|&(s, v)| (sig(s), v)).collect();
        move |s| map.get(&s).copied().unwrap_or(0)
    }

    #[test]
    fn constants_have_fixed_ids() {
        let arena = FormulaArena::new();
        assert_eq!(arena.stats().nodes, 2);
        assert!(NodeId::TRUE.is_const());
        assert!(NodeId::FALSE.is_const());
    }

    #[test]
    fn interning_dedupes_structurally_equal_nodes() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&test_lit(sig(0), "a", false));
        let b = arena.lit(&test_lit(sig(1), "b", false));
        let ab1 = arena.and(a, b);
        let ab2 = arena.and(a, b);
        assert_eq!(ab1, ab2);
        let n = arena.stats().nodes;
        let _ = arena.and(a, b);
        assert_eq!(arena.stats().nodes, n, "no growth on re-interning");
        // Same literal again: same node.
        assert_eq!(a, arena.lit(&test_lit(sig(0), "a", false)));
    }

    #[test]
    fn smart_constructors_canonicalize() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&test_lit(sig(0), "a", false));
        assert_eq!(arena.and(NodeId::TRUE, a), a, "identity");
        assert_eq!(arena.or(NodeId::FALSE, a), a, "identity");
        assert_eq!(arena.and(NodeId::FALSE, a), NodeId::FALSE, "annihilator");
        assert_eq!(arena.or(NodeId::TRUE, a), NodeId::TRUE, "annihilator");
        assert_eq!(arena.and(a, a), a, "idempotence");
        assert_eq!(arena.or(a, a), a, "idempotence");
        assert_eq!(
            arena.and(NodeId::TRUE, NodeId::FALSE),
            NodeId::FALSE,
            "constant folding"
        );
    }

    #[test]
    fn progression_is_memoized_within_an_event() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&test_lit(sig(0), "a", false));
        let u = arena.until(a, a);
        let read = env(&[]);
        arena.begin_event();
        let r1 = arena.progress(u, &read, 10);
        let before = arena.stats();
        let r2 = arena.progress(u, &read, 10);
        let after = arena.stats();
        assert_eq!(r1, r2);
        assert_eq!(after.hits, before.hits + 1, "second progression is a hit");
        assert_eq!(after.misses, before.misses, "nothing recomputed");
        // A new event invalidates the memo. Only `u` is counted: the bare
        // literal resolves through the boolean fast path, not the memo.
        arena.begin_event();
        let _ = arena.progress(u, &read, 20);
        assert_eq!(arena.stats().misses, after.misses + 1, "u recomputed");
    }

    #[test]
    fn progression_matches_tree_semantics() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&test_lit(sig(0), "a", false));
        let f = arena.next_n(3, a);
        let read = env(&[(0, 1)]);
        arena.begin_event();
        let f1 = arena.progress(f, &read, 10);
        assert_eq!(f1, arena.next_n(2, a));
        arena.begin_event();
        let f2 = arena.progress(f1, &read, 20);
        arena.begin_event();
        let f3 = arena.progress(f2, &read, 30);
        arena.begin_event();
        assert_eq!(arena.progress(f3, &read, 40), NodeId::TRUE);
    }

    #[test]
    fn next_et_anchors_and_resolves_at_deadline() {
        let mut arena = FormulaArena::new();
        let rdy = arena.lit(&test_lit(sig(0), "rdy", false));
        let f = arena.next_et(170, rdy);
        let hi = env(&[(0, 1)]);
        let lo = env(&[]);
        arena.begin_event();
        let anchored = arena.progress(f, &lo, 10);
        assert_eq!(anchored, arena.at(180, rdy));
        arena.begin_event();
        assert_eq!(arena.progress(anchored, &hi, 100), anchored, "pre-deadline");
        arena.begin_event();
        assert_eq!(arena.progress(anchored, &hi, 180), NodeId::TRUE);
        arena.begin_event();
        assert_eq!(arena.progress(anchored, &lo, 180), NodeId::FALSE);
        arena.begin_event();
        assert_eq!(arena.progress(anchored, &hi, 190), NodeId::FALSE, "missed");
    }

    #[test]
    fn steady_state_progression_allocates_no_nodes() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&test_lit(sig(0), "a", false));
        let b = arena.lit(&test_lit(sig(1), "b", false));
        let u = arena.until(a, b);
        let read = env(&[(0, 1)]);
        arena.begin_event();
        let r = arena.progress(u, &read, 10);
        assert_eq!(r, u, "unresolved until keeps its residual id");
        let size = arena.stats().nodes;
        for k in 1..50u64 {
            arena.begin_event();
            let r = arena.progress(u, &read, 10 + k);
            assert_eq!(r, u);
        }
        assert_eq!(arena.stats().nodes, size, "no allocation in steady state");
    }

    #[test]
    fn finish_eval_and_missed_deadlines() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&test_lit(sig(0), "a", false));
        let at100 = arena.at(100, a);
        let at200 = arena.at(200, a);
        let both = arena.or(at100, at200);
        assert_eq!(arena.finish_eval(both, 50), None);
        assert_eq!(arena.finish_eval(both, 150), None, "at200 still open");
        assert_eq!(arena.finish_eval(both, 250), Some(false));
        assert_eq!(arena.earliest_missed(both, 250), Some(100));
        assert_eq!(arena.earliest_deadline(both), Some(100));
        let u = arena.until(a, a);
        assert_eq!(
            arena.earliest_deadline(u),
            None,
            "until observes everything"
        );
    }

    #[test]
    fn display_renders_residuals() {
        let mut arena = FormulaArena::new();
        let ds = arena.lit(&test_lit(sig(0), "ds", true));
        let rdy = arena.lit(&test_lit(sig(1), "rdy", false));
        let at = arena.at(180, rdy);
        let body = arena.or(ds, at);
        assert_eq!(arena.display(body).to_string(), "(!ds || at[180ns](rdy))");
        let cmp = arena.lit(&Lit {
            sig: sig(2),
            name: "mode".into(),
            test: crate::monitor::LitTest::Cmp(psl::CmpOp::Eq, 1),
            negated: false,
        });
        let next = arena.next_n(17, cmp);
        assert_eq!(arena.display(next).to_string(), "next[17](mode == 1)");
    }
}
