//! Checker hosts: the components that feed evaluation events to a
//! [`PropertyChecker`].

use abv_obs::{trace, TraceEvent, Tracer};
use desim::{Component, ComponentId, Event, SignalId, SimCtx, Simulation};
use psl::{ClockEdge, ClockedProperty};
use tlmkit::TransactionBus;

use crate::compile::{compile, CompileError};
use crate::monitor::PropertyChecker;
use crate::report::PropertyReport;

const KIND_CLK: u64 = 0;
const KIND_SAMPLE: u64 = 1;
const KIND_TX: u64 = 2;

/// Spacing between per-checker trace-track blocks: each checker host owns
/// tracks `[base, base + TRACE_TRACK_STRIDE)` for its property-level track
/// plus one track per pool slot.
const TRACE_TRACK_STRIDE: u64 = 1000;

/// The base trace track of the checker hosted by component `id`.
fn trace_tid_base(id: ComponentId) -> u64 {
    (id.index() as u64 + 1) * TRACE_TRACK_STRIDE
}

/// Drives a checker at clock edges — the RTL verification host, also used
/// for unabstracted properties on cycle-accurate models.
///
/// The host implements the postponed sampling discipline: woken by a clock
/// change on the matching edge, it re-schedules itself one delta later so
/// the checker observes the values committed by the design at that edge.
pub struct ClockCheckerHost {
    checker: PropertyChecker,
    clk: SignalId,
    edge: ClockEdge,
    last_clk: u64,
}

/// Compiles `property` and installs a [`ClockCheckerHost`] sampling at the
/// edges of `clk` required by the property's clock context.
pub(crate) fn install_clock_host(
    sim: &mut Simulation,
    clk: SignalId,
    name: &str,
    property: &ClockedProperty,
) -> Result<ComponentId, InstallError> {
    let (checker, edge) = compile(name, property, sim)?;
    let edge = edge.ok_or(InstallError::WrongContext)?;
    let host = ClockCheckerHost {
        checker,
        clk,
        edge,
        last_clk: 0,
    };
    let id = sim.add_component(host);
    sim.subscribe(clk, id, KIND_CLK);
    assign_trace_tracks::<ClockCheckerHost>(sim, id, name);
    Ok(id)
}

/// Gives the freshly installed checker its trace-track block and labels the
/// property-level track, so traces show one named row per property.
fn assign_trace_tracks<H: CheckerHost>(sim: &mut Simulation, id: ComponentId, name: &str) {
    let tid = trace_tid_base(id);
    sim.component_mut::<H>(id)
        .expect("just installed")
        .checker_mut()
        .set_trace_tid(tid);
    let tracer = sim.tracer().clone();
    trace!(tracer, TraceEvent::thread_name(0, tid, name));
}

/// Shared behaviour of checker-host components: access to the wrapped
/// [`PropertyChecker`] and the finalize entry points, which are identical
/// for every host kind.
pub trait CheckerHost: Component + Sized {
    /// The wrapped checker (for inspection in tests).
    fn checker(&self) -> &PropertyChecker;

    /// Mutable access to the wrapped checker (e.g. to disable the
    /// evaluation-table optimization for ablation runs).
    fn checker_mut(&mut self) -> &mut PropertyChecker;

    /// Finalizes the checker at simulation end `end_ns` and returns the
    /// definitive report.
    fn finalize(&mut self, end_ns: u64) -> PropertyReport {
        self.finalize_traced(end_ns, &Tracer::disabled())
    }

    /// [`finalize`](CheckerHost::finalize) with trace emission: closes
    /// the spans of still-open checker instances.
    fn finalize_traced(&mut self, end_ns: u64, tracer: &Tracer) -> PropertyReport {
        self.checker_mut().finish_traced(end_ns, tracer);
        self.checker().report()
    }
}

impl CheckerHost for ClockCheckerHost {
    fn checker(&self) -> &PropertyChecker {
        &self.checker
    }

    fn checker_mut(&mut self) -> &mut PropertyChecker {
        &mut self.checker
    }
}

impl CheckerHost for TxCheckerHost {
    fn checker(&self) -> &PropertyChecker {
        &self.checker
    }

    fn checker_mut(&mut self) -> &mut PropertyChecker {
        &mut self.checker
    }
}

/// Compiles `property` and installs a [`TxCheckerHost`] observing `bus`.
pub(crate) fn install_tx_host(
    sim: &mut Simulation,
    bus: &TransactionBus,
    name: &str,
    property: &ClockedProperty,
) -> Result<ComponentId, InstallError> {
    let (checker, edge) = compile(name, property, sim)?;
    if edge.is_some() {
        return Err(InstallError::WrongContext);
    }
    let id = sim.add_component(TxCheckerHost { checker });
    bus.subscribe(id, KIND_TX);
    assign_trace_tracks::<TxCheckerHost>(sim, id, name);
    Ok(id)
}

impl Component for ClockCheckerHost {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        match ev.kind {
            KIND_CLK => {
                let v = ctx.read(self.clk);
                let matched = match self.edge {
                    ClockEdge::Pos => self.last_clk == 0 && v != 0,
                    ClockEdge::Neg => self.last_clk != 0 && v == 0,
                    ClockEdge::Any | ClockEdge::True => v != self.last_clk,
                };
                self.last_clk = v;
                if matched {
                    ctx.schedule_self(0, KIND_SAMPLE);
                }
            }
            KIND_SAMPLE => {
                let now = ev.time.as_ns();
                let checker = &mut self.checker;
                checker.on_event_traced(&|sig| ctx.read(sig), now, ctx.tracer());
            }
            other => unreachable!("unknown host event kind {other}"),
        }
    }
}

/// The paper's TLM **wrapper** (Section IV): drives a checker at
/// transaction ends observed on a [`TransactionBus`].
///
/// Instance pooling, the evaluation table, deadline failures and
/// reset/reuse live in [`PropertyChecker`]; the wrapper is its transaction
/// front-end.
pub struct TxCheckerHost {
    checker: PropertyChecker,
}

impl Component for TxCheckerHost {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        match ev.kind {
            // Two-phase wake, mirroring the clocked checker processes the
            // generator produces: the transaction notification re-schedules
            // a sampling delta so the checker observes the model's
            // committed post-transaction state.
            KIND_TX => ctx.schedule_self(0, KIND_SAMPLE),
            KIND_SAMPLE => {
                let now = ev.time.as_ns();
                let checker = &mut self.checker;
                checker.on_event_traced(&|sig| ctx.read(sig), now, ctx.tracer());
            }
            other => unreachable!("unknown host event kind {other}"),
        }
    }
}

/// Errors from host installation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// Checker synthesis failed.
    Compile(CompileError),
    /// Clock-context property given to the transaction host or vice versa.
    /// The [`Checker::attach`](crate::Checker::attach) facade dispatches on
    /// the property's context, so this is a defensive internal check.
    WrongContext,
    /// The property samples at clock edges but the
    /// [`Binding`](crate::Binding) carries no clock signal.
    MissingClock,
    /// The property samples at transaction boundaries but the
    /// [`Binding`](crate::Binding) carries no transaction bus.
    MissingBus,
}

impl std::fmt::Display for InstallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstallError::Compile(e) => write!(f, "{e}"),
            InstallError::WrongContext => {
                f.write_str("property context does not match the host kind")
            }
            InstallError::MissingClock => {
                f.write_str("clock-context property, but the binding has no clock signal")
            }
            InstallError::MissingBus => {
                f.write_str("transaction-context property, but the binding has no bus")
            }
        }
    }
}

impl std::error::Error for InstallError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            InstallError::Compile(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for InstallError {
    fn from(e: CompileError) -> InstallError {
        InstallError::Compile(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attach::{Binding, Checker};
    use desim::SimTime;
    use rtlkit::{Clock, EdgeDetector};
    use tlmkit::Transaction;

    /// Pulses `ds` at a chosen edge index and `rdy` 17 edges later.
    struct PulseDut {
        clk: SignalId,
        ds: SignalId,
        rdy: SignalId,
        det: EdgeDetector,
        edge_count: u64,
        fire_edge: u64,
        latency: u64,
    }

    impl Component for PulseDut {
        fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
            let v = ctx.read(self.clk);
            if !self.det.is_rising(v) {
                return;
            }
            self.edge_count += 1;
            ctx.write(self.ds, u64::from(self.edge_count == self.fire_edge));
            ctx.write(
                self.rdy,
                u64::from(self.edge_count == self.fire_edge + self.latency),
            );
        }
    }

    fn pulse_sim(fire_edge: u64, latency: u64) -> (Simulation, SignalId) {
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let ds = sim.add_signal("ds", 0);
        let rdy = sim.add_signal("rdy", 0);
        let dut = sim.add_component(PulseDut {
            clk: clk.signal,
            ds,
            rdy,
            det: EdgeDetector::new(),
            edge_count: 0,
            fire_edge,
            latency,
        });
        sim.subscribe(clk.signal, dut, 0);
        (sim, clk.signal)
    }

    #[test]
    fn rtl_checker_passes_correct_latency() {
        let (mut sim, clk) = pulse_sim(3, 17);
        let p: ClockedProperty = "always (!ds || next[17] rdy) @clk_pos".parse().unwrap();
        let checker = Checker::attach(&mut sim, "p4", &p, Binding::clock(clk)).unwrap();
        sim.run_until(SimTime::from_ns(400));
        let report = checker.finalize(&mut sim, 400);
        assert_eq!(report.failure_count, 0, "{report}");
        assert_eq!(report.completions, 1);
        assert!(report.activations >= 30);
    }

    #[test]
    fn rtl_checker_catches_wrong_latency() {
        let (mut sim, clk) = pulse_sim(3, 16); // one cycle early
        let p: ClockedProperty = "always (!ds || next[17] rdy) @clk_pos".parse().unwrap();
        let checker = Checker::attach(&mut sim, "p4", &p, Binding::clock(clk)).unwrap();
        sim.run_until(SimTime::from_ns(400));
        let report = checker.finalize(&mut sim, 400);
        assert_eq!(report.failure_count, 1, "{report}");
    }

    #[test]
    fn clock_only_binding_rejects_transaction_context() {
        let (mut sim, clk) = pulse_sim(3, 17);
        let p: ClockedProperty = "always rdy @T_b".parse().unwrap();
        let err = Checker::attach(&mut sim, "p", &p, Binding::clock(clk)).unwrap_err();
        assert_eq!(err, InstallError::MissingBus);
    }

    /// Publishes a write at 10ns (ds=1) and a read at 180ns (rdy=1).
    struct AtModel {
        bus: TransactionBus,
        ds: SignalId,
        rdy: SignalId,
    }

    impl Component for AtModel {
        fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
            match ev.kind {
                0 => {
                    ctx.write(self.ds, 1);
                    ctx.write(self.rdy, 0);
                    self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
                    ctx.schedule_self(170, 1);
                }
                _ => {
                    ctx.write(self.ds, 0);
                    ctx.write(self.rdy, 1);
                    self.bus.publish(ctx, Transaction::read(0, 0, ev.time));
                }
            }
        }
    }

    fn at_sim() -> (Simulation, TransactionBus) {
        let mut sim = Simulation::new();
        let bus = TransactionBus::new();
        let ds = sim.add_signal("ds", 0);
        let rdy = sim.add_signal("rdy", 0);
        let model = sim.add_component(AtModel {
            bus: bus.clone(),
            ds,
            rdy,
        });
        sim.schedule(SimTime::from_ns(10), model, 0);
        (sim, bus)
    }

    #[test]
    fn tlm_wrapper_passes_q3_on_at_model() {
        let (mut sim, bus) = at_sim();
        let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
        let checker = Checker::attach(&mut sim, "q3", &q3, Binding::bus(&bus)).unwrap();
        sim.run_to_completion();
        let report = checker.finalize(&mut sim, 200);
        assert_eq!(report.failure_count, 0, "{report}");
        assert_eq!(report.completions, 1);
        assert_eq!(report.activations, 2);
        assert_eq!(report.vacuous, 1, "the read transaction has ds=0");
    }

    #[test]
    fn tlm_wrapper_fails_q2_on_sparse_at_model() {
        // q2 references t_fire+10, where the loose AT model has no event
        // (DESIGN.md §5b): strict Def. III.3 semantics must fail it.
        let (mut sim, bus) = at_sim();
        let q2: ClockedProperty =
            "always (!ds || (next_et[1,10](!ds) until next_et[2,20](rdy))) @T_b"
                .parse()
                .unwrap();
        let checker = Checker::attach(&mut sim, "q2", &q2, Binding::bus(&bus)).unwrap();
        sim.run_to_completion();
        let report = checker.finalize(&mut sim, 200);
        assert!(report.failure_count >= 1, "{report}");
    }

    #[test]
    fn bus_only_binding_rejects_clock_context() {
        let (mut sim, bus) = at_sim();
        let p: ClockedProperty = "always rdy @clk_pos".parse().unwrap();
        let err = Checker::attach(&mut sim, "p", &p, Binding::bus(&bus)).unwrap_err();
        assert_eq!(err, InstallError::MissingClock);
    }

    #[test]
    fn wrapper_lifecycle_is_traced_as_spans() {
        use abv_obs::{Phase, Tracer};

        let (mut sim, bus) = at_sim();
        let (tracer, sink) = Tracer::memory();
        sim.set_tracer(tracer);
        let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
        let checker = Checker::attach(&mut sim, "q3", &q3, Binding::bus(&bus)).unwrap();
        sim.run_to_completion();
        let _ = checker.finalize(&mut sim, 200);

        let events = sink.borrow_mut().take_events();
        let begins: Vec<_> = events.iter().filter(|e| e.phase == Phase::Begin).collect();
        let ends = events.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins.len(), 1, "one checker-instance activation span");
        assert_eq!(ends, 1, "the span is closed at resolution");
        assert_eq!(begins[0].name, "q3");
        assert_eq!(begins[0].ts_ns, 10, "activated at the write transaction");
        let obligation = events
            .iter()
            .find(|e| e.name == "obligation")
            .expect("table registration traced");
        assert!(obligation
            .args
            .iter()
            .any(|(k, v)| k == "deadline_ns" && *v == abv_obs::ArgValue::U64(180)));
        assert!(events.iter().any(|e| e.name == "pass"));
        assert!(
            events.iter().any(|e| e.name == "vacuous"),
            "the ds=0 read activation is vacuous"
        );
        assert!(
            events
                .iter()
                .any(|e| e.phase == Phase::Counter && e.name == desim::KERNEL_COUNTER_TRACK),
            "kernel counter track present"
        );
        assert!(
            events
                .iter()
                .any(|e| e.phase == Phase::Meta && e.name == "thread_name"),
            "property track is labelled"
        );
    }

    #[test]
    fn batch_attach_reports_index() {
        let (mut sim, bus) = at_sim();
        let good: ClockedProperty = "always rdy @T_b".parse().unwrap();
        let bad: ClockedProperty = "always ghost @T_b".parse().unwrap();
        let err = Checker::attach_all(
            &mut sim,
            &[("good".into(), good), ("bad".into(), bad)],
            Binding::bus(&bus),
        )
        .unwrap_err();
        assert_eq!(err.0, 1);
    }

    #[test]
    fn full_binding_dispatches_on_context() {
        // A mixed simulation: a clock plus a transaction bus; one property
        // of each context attaches through the same binding.
        let mut sim = Simulation::new();
        let clk = Clock::install(&mut sim, "clk", 10);
        let bus = TransactionBus::new();
        let _rdy = sim.add_signal("rdy", 1);
        let binding = Binding::full(clk.signal, &bus);
        let clocked: ClockedProperty = "always rdy @clk_pos".parse().unwrap();
        let tx: ClockedProperty = "always rdy @T_b".parse().unwrap();
        let checkers = Checker::attach_all(
            &mut sim,
            &[("clk".into(), clocked), ("tx".into(), tx)],
            binding,
        )
        .unwrap();
        sim.run_until(SimTime::from_ns(100));
        let report = Checker::collect(&mut sim, &checkers, 100);
        assert_eq!(report.properties.len(), 2);
        assert!(report.all_pass(), "{report}");
    }
}
