//! The unified checker-attach facade.
//!
//! [`Checker::attach`] replaces the split
//! `ClockCheckerHost::install`/`TxCheckerHost::install` entry points: the
//! caller describes *what the simulation offers* (a [`Binding`] with a
//! clock signal, a transaction bus, or both) and the facade dispatches on
//! the property's evaluation context — clock-context properties get a
//! clock-edge host, transaction-context (`T_b`) properties get the
//! paper's TLM wrapper. The returned [`Checker`] handle is uniform:
//! [`Checker::finalize`] yields the [`PropertyReport`] regardless of which
//! host kind is behind it.

use desim::{ComponentId, SignalId, Simulation};
use psl::ClockedProperty;
use tlmkit::TransactionBus;

use crate::host::{
    install_clock_host, install_tx_host, CheckerHost, ClockCheckerHost, InstallError, TxCheckerHost,
};
use crate::monitor::PropertyChecker;
use crate::report::{CheckReport, PropertyReport};

/// What the simulation offers a checker to observe: a clock signal, a
/// transaction bus, or both. Which one a given property actually uses is
/// decided by [`Checker::attach`] from the property's context.
///
/// The binding owns a handle to the bus (buses are cheap shared handles),
/// so one binding is typically built per simulation and cloned for every
/// property of the suite.
#[derive(Debug, Clone)]
pub struct Binding {
    clk: Option<SignalId>,
    bus: Option<TransactionBus>,
}

impl Binding {
    /// A binding offering only a clock signal (pure-RTL simulations).
    #[must_use]
    pub fn clock(clk: SignalId) -> Binding {
        Binding {
            clk: Some(clk),
            bus: None,
        }
    }

    /// A binding offering only a transaction bus (pure-TLM simulations).
    #[must_use]
    pub fn bus(bus: &TransactionBus) -> Binding {
        Binding {
            clk: None,
            bus: Some(bus.clone()),
        }
    }

    /// A binding offering both, for mixed-level simulations where the
    /// property set contains clocked and transaction properties.
    #[must_use]
    pub fn full(clk: SignalId, bus: &TransactionBus) -> Binding {
        Binding {
            clk: Some(clk),
            bus: Some(bus.clone()),
        }
    }
}

/// Which host kind backs a [`Checker`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Clock,
    Tx,
}

/// A uniform handle to one attached property checker.
///
/// ```
/// use abv_checker::{Binding, Checker};
/// use desim::Simulation;
/// use rtlkit::Clock;
///
/// let mut sim = Simulation::new();
/// let clk = Clock::install(&mut sim, "clk", 10);
/// let rdy = sim.add_signal("rdy", 1);
/// let p = "always rdy @clk_pos".parse().unwrap();
/// let checker = Checker::attach(&mut sim, "p", &p, Binding::clock(clk.signal)).unwrap();
/// sim.run_until(desim::SimTime::from_ns(100));
/// let report = checker.finalize(&mut sim, 100);
/// assert_eq!(report.failure_count, 0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Checker {
    id: ComponentId,
    kind: Kind,
}

impl Checker {
    /// Compiles `property` and attaches a checker to `sim`, picking the
    /// host kind from the property's evaluation context: clock contexts
    /// sample at the edges of the binding's clock, transaction contexts
    /// observe the binding's bus.
    ///
    /// # Errors
    ///
    /// - [`InstallError::Compile`] if checker synthesis fails (unknown
    ///   signals, unsupported operators);
    /// - [`InstallError::MissingClock`] / [`InstallError::MissingBus`] if
    ///   the binding does not offer what the context needs.
    pub fn attach(
        sim: &mut Simulation,
        name: &str,
        property: &ClockedProperty,
        binding: Binding,
    ) -> Result<Checker, InstallError> {
        if property.context.is_transaction() {
            let bus = binding.bus.as_ref().ok_or(InstallError::MissingBus)?;
            let id = install_tx_host(sim, bus, name, property)?;
            Ok(Checker { id, kind: Kind::Tx })
        } else {
            let clk = binding.clk.ok_or(InstallError::MissingClock)?;
            let id = install_clock_host(sim, clk, name, property)?;
            Ok(Checker {
                id,
                kind: Kind::Clock,
            })
        }
    }

    /// Attaches one checker per `(name, property)` pair against the same
    /// binding, in order.
    ///
    /// # Errors
    ///
    /// Fails on the first property that cannot be attached, reporting its
    /// index alongside the error.
    pub fn attach_all(
        sim: &mut Simulation,
        properties: &[(String, ClockedProperty)],
        binding: Binding,
    ) -> Result<Vec<Checker>, (usize, InstallError)> {
        properties
            .iter()
            .enumerate()
            .map(|(i, (name, p))| {
                Checker::attach(sim, name, p, binding.clone()).map_err(|e| (i, e))
            })
            .collect()
    }

    /// Finalizes the checker at simulation end `end_ns` and returns the
    /// definitive report (undetermined instances become `pending`). Uses
    /// the simulation's tracer, so still-open checker-instance spans are
    /// closed in the trace.
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to `sim`.
    #[must_use]
    pub fn finalize(&self, sim: &mut Simulation, end_ns: u64) -> PropertyReport {
        let tracer = sim.tracer().clone();
        match self.kind {
            Kind::Clock => sim
                .component_mut::<ClockCheckerHost>(self.id)
                .expect("checker handle must belong to this simulation")
                .finalize_traced(end_ns, &tracer),
            Kind::Tx => sim
                .component_mut::<TxCheckerHost>(self.id)
                .expect("checker handle must belong to this simulation")
                .finalize_traced(end_ns, &tracer),
        }
    }

    /// Finalizes a whole suite of checkers into one [`CheckReport`], in
    /// attach order.
    ///
    /// # Panics
    ///
    /// Panics if a handle does not belong to `sim`.
    #[must_use]
    pub fn collect(sim: &mut Simulation, checkers: &[Checker], end_ns: u64) -> CheckReport {
        checkers.iter().map(|c| c.finalize(sim, end_ns)).collect()
    }

    /// The underlying host component id.
    #[must_use]
    pub fn component_id(&self) -> ComponentId {
        self.id
    }

    /// The wrapped [`PropertyChecker`] (for inspection in tests).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to `sim`.
    #[must_use]
    pub fn checker_ref<'s>(&self, sim: &'s Simulation) -> &'s PropertyChecker {
        match self.kind {
            Kind::Clock => sim
                .component::<ClockCheckerHost>(self.id)
                .expect("checker handle must belong to this simulation")
                .checker(),
            Kind::Tx => sim
                .component::<TxCheckerHost>(self.id)
                .expect("checker handle must belong to this simulation")
                .checker(),
        }
    }

    /// Mutable access to the wrapped [`PropertyChecker`] (e.g. to disable
    /// the evaluation-table optimization for ablation runs).
    ///
    /// # Panics
    ///
    /// Panics if the handle does not belong to `sim`.
    #[must_use]
    pub fn checker_mut<'s>(&self, sim: &'s mut Simulation) -> &'s mut PropertyChecker {
        match self.kind {
            Kind::Clock => sim
                .component_mut::<ClockCheckerHost>(self.id)
                .expect("checker handle must belong to this simulation")
                .checker_mut(),
            Kind::Tx => sim
                .component_mut::<TxCheckerHost>(self.id)
                .expect("checker handle must belong to this simulation")
                .checker_mut(),
        }
    }
}
