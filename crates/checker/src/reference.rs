//! The retained pointer-tree monitor: the pre-arena `Rc<Mx>` progression
//! core, kept verbatim as a differential-testing oracle and as the
//! baseline for the `checker_overhead` progression benchmark.
//!
//! [`ReferenceChecker`] mirrors [`PropertyChecker`](crate::PropertyChecker)
//! exactly — same activation policy, instance pool, evaluation table and
//! report bookkeeping — but every residual is a freshly allocated
//! reference-counted tree, nothing is interned or memoized, and literal
//! evaluation goes through `&dyn Fn` as the old hot path did. The two
//! implementations must produce identical verdicts, failure times and
//! [`PropertyReport`]s (modulo the arena-only fields, which stay zero
//! here, and rendered residual strings, which stay empty); see
//! `tests/differential.rs`.

use std::collections::BTreeMap;
use std::rc::Rc;

use desim::{SignalId, Simulation};
use psl::nnf::to_nnf;
use psl::{ClockEdge, ClockedProperty, EvalContext, Property};

use crate::compile::{resolve, CompileError};
use crate::monitor::Lit;
use crate::report::{FailReason, Failure, PropertyReport};

/// Shared monitor-formula node.
type M = Rc<Mx>;

/// Monitor formulas as heap trees (the pre-arena representation).
#[derive(Debug, PartialEq)]
enum Mx {
    True,
    False,
    Lit(Lit),
    And(M, M),
    Or(M, M),
    NextN(u32, M),
    NextEt { eps_ns: u64, inner: M },
    At { deadline_ns: u64, inner: M },
    Until(M, M),
    Release(M, M),
    Always(M),
    Eventually(M),
}

thread_local! {
    static M_TRUE: M = Rc::new(Mx::True);
    static M_FALSE: M = Rc::new(Mx::False);
}

fn m_true() -> M {
    M_TRUE.with(Rc::clone)
}

fn m_false() -> M {
    M_FALSE.with(Rc::clone)
}

fn m_bool(b: bool) -> M {
    if b {
        m_true()
    } else {
        m_false()
    }
}

/// `a && b` with constant absorption.
fn m_and(a: M, b: M) -> M {
    match (&*a, &*b) {
        (Mx::False, _) | (_, Mx::False) => m_false(),
        (Mx::True, _) => b,
        (_, Mx::True) => a,
        _ => Rc::new(Mx::And(a, b)),
    }
}

/// `a || b` with constant absorption.
fn m_or(a: M, b: M) -> M {
    match (&*a, &*b) {
        (Mx::True, _) | (_, Mx::True) => m_true(),
        (Mx::False, _) => b,
        (_, Mx::False) => a,
        _ => Rc::new(Mx::Or(a, b)),
    }
}

/// Tree progression: allocates the rewritten residual afresh at every
/// step, with dynamically dispatched literal reads — the cost model the
/// arena replaces.
fn progress(m: &M, read: &dyn Fn(SignalId) -> u64, now: u64) -> M {
    match &**m {
        Mx::True | Mx::False => Rc::clone(m),
        Mx::Lit(lit) => m_bool(lit.eval(read)),
        Mx::And(a, b) => {
            let pa = progress(a, read, now);
            if matches!(*pa, Mx::False) {
                return m_false();
            }
            m_and(pa, progress(b, read, now))
        }
        Mx::Or(a, b) => {
            let pa = progress(a, read, now);
            if matches!(*pa, Mx::True) {
                return m_true();
            }
            m_or(pa, progress(b, read, now))
        }
        Mx::NextN(1, inner) => Rc::clone(inner),
        Mx::NextN(n, inner) => Rc::new(Mx::NextN(n - 1, Rc::clone(inner))),
        Mx::NextEt { eps_ns, inner } => Rc::new(Mx::At {
            deadline_ns: now + eps_ns,
            inner: Rc::clone(inner),
        }),
        Mx::At { deadline_ns, inner } => {
            if now < *deadline_ns {
                Rc::clone(m)
            } else if now == *deadline_ns {
                progress(inner, read, now)
            } else {
                m_false()
            }
        }
        Mx::Until(a, b) => {
            let pb = progress(b, read, now);
            if matches!(*pb, Mx::True) {
                return m_true();
            }
            let pa = progress(a, read, now);
            m_or(pb, m_and(pa, Rc::clone(m)))
        }
        Mx::Release(a, b) => {
            let pb = progress(b, read, now);
            if matches!(*pb, Mx::False) {
                return m_false();
            }
            let pa = progress(a, read, now);
            m_and(pb, m_or(pa, Rc::clone(m)))
        }
        Mx::Always(a) => m_and(progress(a, read, now), Rc::clone(m)),
        Mx::Eventually(a) => m_or(progress(a, read, now), Rc::clone(m)),
    }
}

fn earliest_deadline(m: &M) -> Option<u64> {
    match &**m {
        Mx::At { deadline_ns, .. } => Some(*deadline_ns),
        Mx::And(a, b) | Mx::Or(a, b) => {
            let (ea, eb) = (earliest_deadline(a)?, earliest_deadline(b)?);
            Some(ea.min(eb))
        }
        _ => None,
    }
}

fn finish_eval(m: &M, end: u64) -> Option<bool> {
    match &**m {
        Mx::True => Some(true),
        Mx::False => Some(false),
        Mx::At { deadline_ns, .. } if *deadline_ns <= end => Some(false),
        Mx::And(a, b) => match (finish_eval(a, end), finish_eval(b, end)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Mx::Or(a, b) => match (finish_eval(a, end), finish_eval(b, end)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => None,
    }
}

fn earliest_missed(m: &M, end: u64) -> Option<u64> {
    let mut earliest: Option<u64> = None;
    fn walk(m: &M, end: u64, earliest: &mut Option<u64>) {
        match &**m {
            Mx::At { deadline_ns, .. } if *deadline_ns <= end => {
                *earliest = Some(earliest.map_or(*deadline_ns, |e| e.min(*deadline_ns)));
            }
            Mx::And(a, b) | Mx::Or(a, b) => {
                walk(a, end, earliest);
                walk(b, end, earliest);
            }
            _ => {}
        }
    }
    walk(m, end, &mut earliest);
    earliest
}

#[derive(Debug)]
struct Instance {
    residual: M,
    fire_ns: u64,
}

/// The pre-arena property checker, preserved as an executable oracle.
#[derive(Debug)]
pub struct ReferenceChecker {
    name: String,
    body: M,
    repeating: bool,
    guard: Option<M>,
    fired_once: bool,
    pool: Vec<Option<Instance>>,
    free: Vec<usize>,
    table: BTreeMap<u64, Vec<usize>>,
    every: Vec<usize>,
    use_table: bool,
    report: PropertyReport,
}

impl ReferenceChecker {
    /// The property's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of currently live instances.
    #[must_use]
    pub fn live_instances(&self) -> usize {
        self.pool.len() - self.free.len()
    }

    /// Disables the evaluation-table optimization (see
    /// [`PropertyChecker::disable_evaluation_table`](crate::PropertyChecker::disable_evaluation_table)).
    pub fn disable_evaluation_table(&mut self) {
        self.use_table = false;
    }

    /// Processes one evaluation event at `now` nanoseconds, with the same
    /// phase order as the arena checker.
    pub fn on_event(&mut self, read: &dyn Fn(SignalId) -> u64, now: u64) {
        if let Some(guard) = &self.guard {
            let g = progress(guard, read, now);
            if !matches!(*g, Mx::True) {
                return;
            }
        }

        let every = std::mem::take(&mut self.every);

        while let Some((&deadline, _)) = self.table.first_key_value() {
            if deadline > now {
                break;
            }
            let slots = self.table.remove(&deadline).expect("key just observed");
            let missed = (deadline < now).then_some(deadline);
            for slot in slots {
                self.step(slot, read, now, missed);
            }
        }

        for slot in every {
            self.step(slot, read, now, None);
        }

        if self.repeating || !self.fired_once {
            self.fired_once = true;
            self.report.activations += 1;
            let residual = progress(&self.body, read, now);
            self.report.evaluations += 1;
            match &*residual {
                Mx::True => self.report.vacuous += 1,
                Mx::False => self.report.record_failure(Failure {
                    fire_ns: now,
                    fail_ns: now,
                    reason: FailReason::Violated,
                    residual: String::new(),
                }),
                _ => {
                    let slot = self.alloc(Instance {
                        residual: Rc::clone(&residual),
                        fire_ns: now,
                    });
                    self.register(slot, &residual);
                }
            }
        }
    }

    /// Finalizes at simulation end `end_ns` (see
    /// [`PropertyChecker::finish`](crate::PropertyChecker::finish)).
    pub fn finish(&mut self, end_ns: u64) {
        let table = std::mem::take(&mut self.table);
        let every = std::mem::take(&mut self.every);
        for slot in table.into_values().flatten().chain(every) {
            let instance = self.pool[slot].as_ref().expect("live slot");
            let fire_ns = instance.fire_ns;
            let residual = Rc::clone(&instance.residual);
            match finish_eval(&residual, end_ns) {
                Some(false) => {
                    let reason = match earliest_missed(&residual, end_ns) {
                        Some(deadline_ns) => FailReason::MissedDeadline { deadline_ns },
                        None => FailReason::Violated,
                    };
                    self.fail(slot, end_ns, reason);
                }
                Some(true) => {
                    self.report.completions += 1;
                    self.report.record_completion_latency(end_ns - fire_ns);
                    self.release(slot);
                }
                None => {
                    self.report.pending += 1;
                    self.release(slot);
                }
            }
        }
    }

    /// A snapshot of the accumulated results. The arena-only fields
    /// (`arena_nodes`, `memo_hits`, `memo_misses`) stay zero.
    #[must_use]
    pub fn report(&self) -> PropertyReport {
        let mut r = self.report.clone();
        r.max_live_instances = r.max_live_instances.max(self.live_instances());
        r
    }

    fn step(&mut self, slot: usize, read: &dyn Fn(SignalId) -> u64, now: u64, missed: Option<u64>) {
        let instance = self.pool[slot].as_mut().expect("live slot");
        let fire_ns = instance.fire_ns;
        let residual = progress(&instance.residual, read, now);
        self.report.evaluations += 1;
        match &*residual {
            Mx::True => {
                self.report.completions += 1;
                self.report.record_completion_latency(now - fire_ns);
                self.release(slot);
            }
            Mx::False => {
                let reason = match missed {
                    Some(deadline_ns) => FailReason::MissedDeadline { deadline_ns },
                    None => FailReason::Violated,
                };
                self.fail(slot, now, reason);
            }
            _ => {
                instance.residual = Rc::clone(&residual);
                self.register(slot, &residual);
            }
        }
    }

    fn register(&mut self, slot: usize, residual: &M) {
        match earliest_deadline(residual) {
            Some(deadline) if self.use_table => {
                self.table.entry(deadline).or_default().push(slot);
            }
            _ => self.every.push(slot),
        }
    }

    fn alloc(&mut self, instance: Instance) -> usize {
        let slot = match self.free.pop() {
            Some(slot) => {
                self.pool[slot] = Some(instance);
                slot
            }
            None => {
                self.pool.push(Some(instance));
                self.pool.len() - 1
            }
        };
        self.report.max_live_instances = self.report.max_live_instances.max(self.live_instances());
        slot
    }

    fn release(&mut self, slot: usize) {
        self.pool[slot] = None;
        self.free.push(slot);
    }

    fn fail(&mut self, slot: usize, now: u64, reason: FailReason) {
        let fire_ns = self.pool[slot].as_ref().expect("live slot").fire_ns;
        self.report.record_failure(Failure {
            fire_ns,
            fail_ns: now,
            reason,
            residual: String::new(),
        });
        self.release(slot);
    }
}

/// Synthesizes a [`ReferenceChecker`] with the same pipeline as
/// [`compile`](crate::compile): NNF, repeating-activation unwrap, signal
/// resolution — only the target representation differs.
///
/// # Errors
///
/// Returns [`CompileError::MissingSignal`] if a referenced signal does not
/// exist in `sim`.
pub fn compile_reference(
    name: &str,
    property: &ClockedProperty,
    sim: &Simulation,
) -> Result<(ReferenceChecker, Option<ClockEdge>), CompileError> {
    let nnf = to_nnf(&property.property);
    let (body, repeating) = match nnf {
        Property::Always(inner) => (*inner, true),
        other => (other, false),
    };
    let body = translate(&body, sim)?;
    let (guard, edge) = match &property.context {
        EvalContext::Clock { edge, guard } => (guard.as_deref(), Some(*edge)),
        EvalContext::Transaction { guard } => (guard.as_deref(), None),
    };
    let guard = match guard {
        Some(g) => Some(translate(&to_nnf(g), sim)?),
        None => None,
    };
    Ok((
        ReferenceChecker {
            report: PropertyReport::new(name.to_owned()),
            name: name.to_owned(),
            body,
            repeating,
            guard,
            fired_once: false,
            pool: Vec::new(),
            free: Vec::new(),
            table: BTreeMap::new(),
            every: Vec::new(),
            use_table: true,
        },
        edge,
    ))
}

fn translate(p: &Property, sim: &Simulation) -> Result<M, CompileError> {
    Ok(match p {
        Property::Const(true) => Rc::new(Mx::True),
        Property::Const(false) => Rc::new(Mx::False),
        Property::Atom(a) => Rc::new(Mx::Lit(resolve(a, false, sim)?)),
        Property::Not(inner) => match &**inner {
            Property::Atom(a) => Rc::new(Mx::Lit(resolve(a, true, sim)?)),
            _ => return Err(CompileError::UnsupportedNegation),
        },
        Property::And(a, b) => Rc::new(Mx::And(translate(a, sim)?, translate(b, sim)?)),
        Property::Or(a, b) => Rc::new(Mx::Or(translate(a, sim)?, translate(b, sim)?)),
        Property::Implies(..) => unreachable!("implication is eliminated by NNF"),
        Property::Next { n, inner } => Rc::new(Mx::NextN(*n, translate(inner, sim)?)),
        Property::NextEt { eps_ns, inner, .. } => Rc::new(Mx::NextEt {
            eps_ns: *eps_ns,
            inner: translate(inner, sim)?,
        }),
        Property::Until(a, b) => Rc::new(Mx::Until(translate(a, sim)?, translate(b, sim)?)),
        Property::Release(a, b) => Rc::new(Mx::Release(translate(a, sim)?, translate(b, sim)?)),
        Property::Always(inner) => Rc::new(Mx::Always(translate(inner, sim)?)),
        Property::Eventually(inner) => Rc::new(Mx::Eventually(translate(inner, sim)?)),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_q3_matches_known_wrapper_behaviour() {
        let mut sim = Simulation::new();
        let ds = sim.add_signal("ds", 0);
        let rdy = sim.add_signal("rdy", 0);
        let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
        let (mut c, edge) = compile_reference("q3", &q3, &sim).unwrap();
        assert_eq!(edge, None);
        let fire = move |s: SignalId| u64::from(s == ds);
        let ready = move |s: SignalId| u64::from(s == rdy);
        c.on_event(&fire, 10);
        c.on_event(&ready, 350); // past the 180ns deadline
        let r = c.report();
        assert_eq!(r.failure_count, 1);
        assert_eq!(
            r.failures[0].reason,
            FailReason::MissedDeadline { deadline_ns: 180 }
        );
        assert_eq!(r.failures[0].fire_ns, 10);
        assert_eq!(r.failures[0].fail_ns, 350);
        assert_eq!(r.arena_nodes, 0, "reference leaves arena fields zero");
    }
}
