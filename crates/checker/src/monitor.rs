//! The monitor core: compiled formulas, progression, instance pool and
//! evaluation table.
//!
//! A compiled property is evaluated per *instance*. Each instance holds a
//! residual obligation — a [`NodeId`] into the property's hash-consed
//! [`FormulaArena`]; every evaluation event progresses the residual into
//! the obligation that must hold from the next event on. Residuals that
//! reduce to `true` complete, `false` fail.
//!
//! Because residuals are interned, instances that reached the same
//! obligation hold the *same id*, and the arena's per-event progression
//! memo rewrites each distinct residual once per event no matter how many
//! instances share it (see the [`arena`](crate::arena) module docs).
//!
//! Instances whose residual consists solely of absolute-deadline
//! obligations (`At` nodes, produced by `next_ε^τ`) are parked in an
//! **evaluation table** keyed by deadline and are only touched when an
//! event reaches (or overshoots) a deadline — the paper's wrapper
//! optimization (Section IV, point 2). All other residuals must observe
//! every event.

use std::collections::BTreeMap;
use std::rc::Rc;

use abv_obs::{trace, TraceEvent, Tracer, ARENA_COUNTER_TRACK};
use desim::SignalId;
use psl::CmpOp;

use crate::arena::{FormulaArena, NodeId};
use crate::report::{FailReason, Failure, PropertyReport};

/// Signal-value access during monitor evaluation.
///
/// The blanket impl makes any `Fn(SignalId) -> u64` closure a
/// [`SignalRead`], so hosts keep passing plain closures — but the whole
/// progression path is generic over the reader, so per-literal evaluation
/// is statically dispatched instead of going through `&dyn Fn`.
pub trait SignalRead {
    /// The current value of `sig`.
    fn value(&self, sig: SignalId) -> u64;
}

impl<F: Fn(SignalId) -> u64 + ?Sized> SignalRead for F {
    #[inline]
    fn value(&self, sig: SignalId) -> u64 {
        self(sig)
    }
}

/// A resolved literal: a signal test, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub(crate) struct Lit {
    pub sig: SignalId,
    pub name: Rc<str>,
    pub test: LitTest,
    pub negated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum LitTest {
    /// Boolean signal: true iff non-zero.
    Bool,
    /// Comparison against a constant.
    Cmp(CmpOp, u64),
}

impl Lit {
    #[inline]
    pub(crate) fn eval<R: SignalRead + ?Sized>(&self, read: &R) -> bool {
        let raw = read.value(self.sig);
        let v = match self.test {
            LitTest::Bool => raw != 0,
            LitTest::Cmp(op, rhs) => op.apply(raw, rhs),
        };
        v != self.negated
    }
}

/// When an instance's residual next needs to observe an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakePlan {
    /// The residual must be progressed at every evaluation event.
    EveryEvent,
    /// The residual consists solely of anchored deadlines; the earliest is
    /// at this absolute time (nanoseconds).
    AtTime(u64),
}

/// Computes the wake plan of a (non-constant) residual.
pub(crate) fn wake_plan(arena: &FormulaArena, id: NodeId) -> WakePlan {
    match arena.earliest_deadline(id) {
        Some(d) => WakePlan::AtTime(d),
        None => WakePlan::EveryEvent,
    }
}

/// One running verification session of a property.
#[derive(Debug)]
struct Instance {
    residual: NodeId,
    fire_ns: u64,
}

/// A synthesized checker for one property: monitor body, activation
/// policy, guard, instance pool and evaluation table, plus the property's
/// own [`FormulaArena`] holding every formula the monitor can reach.
///
/// Built by [`compile`](crate::compile); driven by a host
/// ([`ClockCheckerHost`](crate::ClockCheckerHost) or
/// [`TxCheckerHost`](crate::TxCheckerHost)) which calls
/// [`on_event`](PropertyChecker::on_event) at each evaluation point.
#[derive(Debug)]
pub struct PropertyChecker {
    name: String,
    arena: FormulaArena,
    body: NodeId,
    /// True for `always φ`: a new instance activates at every evaluation
    /// point (Section IV, point 4). False: a single activation at the first
    /// evaluation point.
    repeating: bool,
    guard: Option<NodeId>,
    fired_once: bool,
    pool: Vec<Option<Instance>>,
    free: Vec<usize>,
    table: BTreeMap<u64, Vec<usize>>,
    every: Vec<usize>,
    use_table: bool,
    completion_bound_ns: Option<u64>,
    report: PropertyReport,
    /// Base trace-track id: property-level events land here, instance
    /// `slot` events on `trace_tid + 1 + slot`. Assigned at install time
    /// from the host's component id so tracks are stable per build order.
    trace_tid: u64,
}

impl PropertyChecker {
    pub(crate) fn new(
        name: String,
        arena: FormulaArena,
        body: NodeId,
        repeating: bool,
        guard: Option<NodeId>,
    ) -> PropertyChecker {
        PropertyChecker {
            report: PropertyReport::new(name.clone()),
            name,
            arena,
            body,
            repeating,
            guard,
            fired_once: false,
            pool: Vec::new(),
            free: Vec::new(),
            table: BTreeMap::new(),
            every: Vec::new(),
            use_table: true,
            completion_bound_ns: None,
            trace_tid: 0,
        }
    }

    /// Sets the base trace-track id (see the `trace_tid` field).
    pub(crate) fn set_trace_tid(&mut self, tid: u64) {
        self.trace_tid = tid;
    }

    /// The trace track of property-level events (vacuous/immediate-fail
    /// instants); instance `slot` lives on `trace_tid() + 1 + slot`.
    #[must_use]
    pub fn trace_tid(&self) -> u64 {
        self.trace_tid
    }

    fn instance_tid(&self, slot: usize) -> u64 {
        self.trace_tid + 1 + slot as u64
    }

    /// Records the property's completion bound (`t_end - t_fire`), when it
    /// is statically bounded. Set by checker synthesis.
    pub(crate) fn set_completion_bound_ns(&mut self, bound: Option<u64>) {
        self.completion_bound_ns = bound;
    }

    /// The paper's static size bound for the checker-instance array
    /// (Section IV, point 1): the maximum number of instants where
    /// transactions can occur within `(t_fire, t_end]`, assuming instants
    /// are aligned to `clock_period_ns` — e.g. 17 for `q3` with a 10 ns
    /// reference clock. `None` when the property is unbounded (`until`,
    /// `release`, un-timed `next`).
    ///
    /// The live implementation grows its pool dynamically;
    /// [`PropertyReport::max_live_instances`] can be compared against this
    /// bound (see the Fig. 5 tests).
    #[must_use]
    pub fn lifetime_bound(&self, clock_period_ns: u64) -> Option<usize> {
        assert!(clock_period_ns > 0, "clock period must be positive");
        self.completion_bound_ns
            .map(|b| (b / clock_period_ns) as usize)
    }

    /// Disables the evaluation-table optimization: every instance is
    /// progressed at every evaluation event, even when its residual only
    /// waits for an absolute deadline. Semantics are unchanged (anchored
    /// obligations ignore pre-deadline events); only the amount of work
    /// differs. Used by the ablation benchmarks.
    pub fn disable_evaluation_table(&mut self) {
        self.use_table = false;
    }

    /// The property's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of currently live instances.
    #[must_use]
    pub fn live_instances(&self) -> usize {
        self.pool.len() - self.free.len()
    }

    /// Processes one evaluation event at `now` nanoseconds.
    ///
    /// Performs, in order: guard filtering, failure of instances whose
    /// deadline passed, progression of due and every-event instances, and
    /// activation of a new instance.
    pub fn on_event<R: SignalRead + ?Sized>(&mut self, read: &R, now: u64) {
        self.on_event_traced(read, now, &Tracer::disabled());
    }

    /// [`on_event`](PropertyChecker::on_event) with trace emission: the
    /// wrapper's lifecycle becomes spans and instants on this property's
    /// tracks — a `B…E` span per checker instance from activation to
    /// resolution, `obligation` instants when an instance parks in the
    /// evaluation table, `eval` instants per progression, and a
    /// `pass`/`fail`/`timeout-fail` instant at resolution — plus one
    /// arena-counter sample per processed event (arena size, memo
    /// hits/misses).
    pub fn on_event_traced<R: SignalRead + ?Sized>(&mut self, read: &R, now: u64, tracer: &Tracer) {
        // One memo epoch per evaluation event: within it, progression is a
        // pure function of the residual id.
        self.arena.begin_event();

        // Events not matching the context guard are invisible to this
        // property (Def. III.2).
        if let Some(guard) = self.guard {
            if self.arena.progress(guard, read, now) != NodeId::TRUE {
                return;
            }
        }

        // Snapshot the every-event list first: an instance progressed from
        // the table below may re-register into it, and no instance may be
        // progressed twice within one event.
        let every = std::mem::take(&mut self.every);

        // 1+2. Instances whose earliest expected evaluation time is due or
        //    overdue are progressed at this event. An overdue `At`
        //    obligation resolves to false inside the progression, so a
        //    residual that only waited for the missed instant fails
        //    (Section IV, point 2), while a disjunction with a later
        //    obligation survives and is re-registered.
        while let Some((&deadline, _)) = self.table.first_key_value() {
            if deadline > now {
                break;
            }
            let slots = self.table.remove(&deadline).expect("key just observed");
            let missed = (deadline < now).then_some(deadline);
            for slot in slots {
                self.step(slot, read, now, missed, tracer);
            }
        }

        // 3. Instances that observe every event.
        for slot in every {
            self.step(slot, read, now, None, tracer);
        }

        // 4. Activation of a new verification session.
        if self.repeating || !self.fired_once {
            self.fired_once = true;
            self.report.activations += 1;
            let residual = self.arena.progress(self.body, read, now);
            self.report.evaluations += 1;
            match residual {
                NodeId::TRUE => {
                    self.report.vacuous += 1;
                    trace!(
                        tracer,
                        TraceEvent::instant("vacuous", 0, self.trace_tid, now)
                    );
                }
                NodeId::FALSE => {
                    let residual = if self.report.wants_failure_detail() {
                        self.arena.display(self.body).to_string()
                    } else {
                        String::new()
                    };
                    self.report.record_failure(Failure {
                        fire_ns: now,
                        fail_ns: now,
                        reason: FailReason::Violated,
                        residual,
                    });
                    trace!(
                        tracer,
                        TraceEvent::instant("fail", 0, self.trace_tid, now)
                            .with_arg("reason", "violated")
                            .with_arg("fire_ns", now)
                    );
                }
                _ => {
                    let (slot, reused) = self.alloc(
                        Instance {
                            residual,
                            fire_ns: now,
                        },
                        tracer,
                    );
                    trace!(
                        tracer,
                        TraceEvent::span_begin(&self.name, 0, self.instance_tid(slot), now)
                            .with_arg("slot", slot as u64)
                            .with_arg("reused", u64::from(reused))
                    );
                    self.register(slot, residual, now, tracer);
                }
            }
        }

        trace!(tracer, {
            let stats = self.arena.stats();
            TraceEvent::counter(ARENA_COUNTER_TRACK, 0, self.trace_tid, now)
                .with_arg("nodes", stats.nodes as u64)
                .with_arg("memo_hits", stats.hits)
                .with_arg("memo_misses", stats.misses)
        });
    }

    /// Finalizes at simulation end `end_ns`: anchored obligations whose
    /// deadline lies at or before the end never saw an event (otherwise the
    /// instance would have been progressed there) and resolve to false;
    /// instances whose residual thereby becomes false are failures, ones
    /// that become true complete, and everything still undetermined is
    /// counted as pending.
    pub fn finish(&mut self, end_ns: u64) {
        self.finish_traced(end_ns, &Tracer::disabled());
    }

    /// [`finish`](PropertyChecker::finish) with trace emission: every
    /// still-open instance span is closed at `end_ns` with a
    /// `pass`/`fail`/`timeout-fail`/`pending` instant.
    pub fn finish_traced(&mut self, end_ns: u64, tracer: &Tracer) {
        let table = std::mem::take(&mut self.table);
        let every = std::mem::take(&mut self.every);
        for slot in table.into_values().flatten().chain(every) {
            let instance = self.pool[slot].as_ref().expect("live slot");
            let fire_ns = instance.fire_ns;
            let residual = instance.residual;
            let tid = self.instance_tid(slot);
            match self.arena.finish_eval(residual, end_ns) {
                Some(false) => {
                    let reason = match self.arena.earliest_missed(residual, end_ns) {
                        Some(deadline_ns) => FailReason::MissedDeadline { deadline_ns },
                        None => FailReason::Violated,
                    };
                    let rendered = if self.report.wants_failure_detail() {
                        self.arena.display(residual).to_string()
                    } else {
                        String::new()
                    };
                    self.fail(slot, end_ns, reason, rendered, tracer);
                }
                Some(true) => {
                    self.report.completions += 1;
                    self.report.record_completion_latency(end_ns - fire_ns);
                    trace!(tracer, TraceEvent::instant("pass", 0, tid, end_ns));
                    trace!(tracer, TraceEvent::span_end(0, tid, end_ns));
                    self.release(slot);
                }
                None => {
                    self.report.pending += 1;
                    trace!(tracer, TraceEvent::instant("pending", 0, tid, end_ns));
                    trace!(tracer, TraceEvent::span_end(0, tid, end_ns));
                    self.release(slot);
                }
            }
        }
    }

    /// A snapshot of the accumulated results, including the arena's size
    /// and progression-memo counters.
    #[must_use]
    pub fn report(&self) -> PropertyReport {
        let mut r = self.report.clone();
        r.max_live_instances = r.max_live_instances.max(self.live_instances());
        let stats = self.arena.stats();
        r.arena_nodes = stats.nodes;
        r.memo_hits = stats.hits;
        r.memo_misses = stats.misses;
        r
    }

    fn step<R: SignalRead + ?Sized>(
        &mut self,
        slot: usize,
        read: &R,
        now: u64,
        missed: Option<u64>,
        tracer: &Tracer,
    ) {
        let tid = self.instance_tid(slot);
        let (prev, fire_ns) = {
            let instance = self.pool[slot].as_ref().expect("live slot");
            (instance.residual, instance.fire_ns)
        };
        let residual = self.arena.progress(prev, read, now);
        self.report.evaluations += 1;
        trace!(tracer, TraceEvent::instant("eval", 0, tid, now));
        match residual {
            NodeId::TRUE => {
                self.report.completions += 1;
                self.report.record_completion_latency(now - fire_ns);
                trace!(tracer, TraceEvent::instant("pass", 0, tid, now));
                trace!(tracer, TraceEvent::span_end(0, tid, now));
                self.release(slot);
            }
            NodeId::FALSE => {
                let reason = match missed {
                    Some(deadline_ns) => FailReason::MissedDeadline { deadline_ns },
                    None => FailReason::Violated,
                };
                // Render the obligation that failed, not its `false` result.
                let rendered = if self.report.wants_failure_detail() {
                    self.arena.display(prev).to_string()
                } else {
                    String::new()
                };
                self.fail(slot, now, reason, rendered, tracer);
            }
            _ => {
                self.pool[slot].as_mut().expect("live slot").residual = residual;
                self.register(slot, residual, now, tracer);
            }
        }
    }

    fn register(&mut self, slot: usize, residual: NodeId, now: u64, tracer: &Tracer) {
        match wake_plan(&self.arena, residual) {
            WakePlan::AtTime(deadline) if self.use_table => {
                trace!(
                    tracer,
                    TraceEvent::instant("obligation", 0, self.instance_tid(slot), now)
                        .with_arg("deadline_ns", deadline)
                );
                self.table.entry(deadline).or_default().push(slot);
            }
            _ => self.every.push(slot),
        }
    }

    fn alloc(&mut self, instance: Instance, tracer: &Tracer) -> (usize, bool) {
        let (slot, reused) = match self.free.pop() {
            Some(slot) => {
                self.pool[slot] = Some(instance);
                (slot, true)
            }
            None => {
                self.pool.push(Some(instance));
                let slot = self.pool.len() - 1;
                // Name the new instance track the first time the pool grows
                // into it; reuses keep the label.
                trace!(
                    tracer,
                    TraceEvent::thread_name(
                        0,
                        self.instance_tid(slot),
                        &format!("{}#{slot}", self.name)
                    )
                );
                (slot, false)
            }
        };
        self.report.max_live_instances = self.report.max_live_instances.max(self.live_instances());
        (slot, reused)
    }

    fn release(&mut self, slot: usize) {
        self.pool[slot] = None;
        self.free.push(slot);
    }

    fn fail(
        &mut self,
        slot: usize,
        now: u64,
        reason: FailReason,
        residual: String,
        tracer: &Tracer,
    ) {
        let tid = self.instance_tid(slot);
        let fire_ns = self.pool[slot].as_ref().expect("live slot").fire_ns;
        self.report.record_failure(Failure {
            fire_ns,
            fail_ns: now,
            reason,
            residual,
        });
        trace!(tracer, {
            let (label, deadline) = match reason {
                FailReason::MissedDeadline { deadline_ns } => ("timeout-fail", Some(deadline_ns)),
                FailReason::Violated => ("fail", None),
            };
            let ev = TraceEvent::instant(label, 0, tid, now).with_arg("fire_ns", fire_ns);
            match deadline {
                Some(d) => ev.with_arg("deadline_ns", d),
                None => ev,
            }
        });
        trace!(tracer, TraceEvent::span_end(0, tid, now));
        self.release(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    fn mk_lit(sig: usize, name: &str, negated: bool) -> Lit {
        Lit {
            sig: test_sig(sig),
            name: name.into(),
            test: LitTest::Bool,
            negated,
        }
    }

    fn test_sig(n: usize) -> SignalId {
        // SignalId construction for tests: round-trip through a Simulation.
        thread_local! {
            static IDS: RefCell<Vec<SignalId>> = const { RefCell::new(Vec::new()) };
            static SIM: RefCell<desim::Simulation> = RefCell::new(desim::Simulation::new());
        }
        IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            while ids.len() <= n {
                let next = ids.len();
                let id = SIM.with(|sim| sim.borrow_mut().add_signal(&format!("s{next}"), 0));
                ids.push(id);
            }
            ids[n]
        })
    }

    fn env(pairs: &[(usize, u64)]) -> impl Fn(SignalId) -> u64 + '_ {
        let map: HashMap<SignalId, u64> = pairs.iter().map(|&(s, v)| (test_sig(s), v)).collect();
        move |s| map.get(&s).copied().unwrap_or(0)
    }

    #[test]
    fn wake_plan_classifies() {
        let mut arena = FormulaArena::new();
        let a = arena.lit(&mk_lit(0, "a", false));
        let b = arena.lit(&mk_lit(1, "b", false));
        let at = arena.at(170, a);
        assert_eq!(wake_plan(&arena, at), WakePlan::AtTime(170));
        let at200 = arena.at(200, a);
        let at150 = arena.at(150, b);
        let two = arena.or(at200, at150);
        assert_eq!(wake_plan(&arena, two), WakePlan::AtTime(150));
        let until = arena.until(a, b);
        assert_eq!(wake_plan(&arena, until), WakePlan::EveryEvent);
        let mixed = arena.and(at, until);
        assert_eq!(wake_plan(&arena, mixed), WakePlan::EveryEvent);
    }

    /// Paper q3-style checker at TLM granularity: `always (!ds || next_et
    /// [1,170] rdy)`.
    fn q3_checker() -> PropertyChecker {
        let mut arena = FormulaArena::new();
        let nds = arena.lit(&mk_lit(0, "ds", true));
        let rdy = arena.lit(&mk_lit(1, "rdy", false));
        let et = arena.next_et(170, rdy);
        let body = arena.or(nds, et);
        PropertyChecker::new("q3".into(), arena, body, true, None)
    }

    #[test]
    fn q3_completes_on_timely_ready() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10); // ds fires
        assert_eq!(c.live_instances(), 1);
        c.on_event(&env(&[]), 60); // unrelated transaction: ignored by table
        c.on_event(&env(&[(1, 1)]), 180); // rdy exactly at 10+170
        let r = c.report();
        assert_eq!(r.failure_count, 0);
        assert_eq!(r.completions, 1);
        // Activations at every event; the two ds=0 ones are vacuous.
        assert_eq!(r.activations, 3);
        assert_eq!(r.vacuous, 2);
        assert_eq!(c.live_instances(), 0, "completed instance reused");
    }

    #[test]
    fn q3_fails_when_deadline_missed() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        // Next transaction arrives past the 180ns deadline.
        c.on_event(&env(&[(1, 1)]), 350);
        let r = c.report();
        assert_eq!(r.failure_count, 1);
        assert_eq!(
            r.failures[0].reason,
            FailReason::MissedDeadline { deadline_ns: 180 }
        );
        assert_eq!(r.failures[0].fire_ns, 10);
        assert_eq!(r.failures[0].fail_ns, 350);
        assert_eq!(
            r.failures[0].residual, "at[180ns](rdy)",
            "failure carries the rendered obligation"
        );
    }

    #[test]
    fn q3_fails_on_wrong_value_at_deadline() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        c.on_event(&env(&[]), 180); // event at deadline but rdy low
        let r = c.report();
        assert_eq!(r.failure_count, 1);
        assert_eq!(r.failures[0].reason, FailReason::Violated);
    }

    #[test]
    fn finish_classifies_due_vs_pending() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10); // deadline 180
        c.finish(100); // simulation ended before the deadline
        assert_eq!(c.report().pending, 1);
        assert_eq!(c.report().failure_count, 0);

        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        c.finish(500); // deadline 180 passed without event
        assert_eq!(c.report().pending, 0);
        assert_eq!(c.report().failure_count, 1);
    }

    #[test]
    fn guard_filters_events() {
        let mut arena = FormulaArena::new();
        let body = arena.lit(&mk_lit(0, "ds", true));
        let guard = arena.lit(&mk_lit(1, "en", false));
        let mut c = PropertyChecker::new("g".into(), arena, body, true, Some(guard));
        c.on_event(&env(&[(0, 1)]), 10); // en low: invisible, no activation
        assert_eq!(c.report().activations, 0);
        c.on_event(&env(&[(0, 1), (1, 1)]), 20); // visible, !ds violated
        assert_eq!(c.report().activations, 1);
        assert_eq!(c.report().failure_count, 1);
    }

    #[test]
    fn non_repeating_property_fires_once() {
        // (!rdy) until ds
        let mut arena = FormulaArena::new();
        let nrdy = arena.lit(&mk_lit(1, "rdy", true));
        let ds = arena.lit(&mk_lit(0, "ds", false));
        let body = arena.until(nrdy, ds);
        let mut c = PropertyChecker::new("p9".into(), arena, body, false, None);
        c.on_event(&env(&[]), 10);
        c.on_event(&env(&[]), 20);
        assert_eq!(c.report().activations, 1);
        assert_eq!(c.live_instances(), 1);
        c.on_event(&env(&[(0, 1)]), 30); // ds arrives: resolves
        assert_eq!(c.report().completions, 1);
        assert_eq!(c.live_instances(), 0);
    }

    #[test]
    fn pool_reuses_slots() {
        let mut c = q3_checker();
        for k in 0..5u64 {
            let t = 10 + 400 * k;
            c.on_event(&env(&[(0, 1)]), t);
            c.on_event(&env(&[(1, 1)]), t + 170);
        }
        let r = c.report();
        assert_eq!(r.completions, 5);
        assert_eq!(
            r.max_live_instances, 1,
            "slots are reset and reused (Section IV, point 3)"
        );
    }

    #[test]
    fn max_live_matches_paper_lifetime_bound() {
        // q3 at cycle-accurate granularity: a transaction every 10ns and a
        // firing (ds=1) at each: at most ceil(170/10) = 17 live instances
        // plus the one activated at the current event.
        let mut c = q3_checker();
        for k in 0..100u64 {
            c.on_event(&env(&[(0, 1), (1, 1)]), 10 + 10 * k);
        }
        let r = c.report();
        assert!(
            r.max_live_instances <= 18,
            "max live = {}",
            r.max_live_instances
        );
        assert!(
            r.max_live_instances >= 17,
            "max live = {}",
            r.max_live_instances
        );
    }

    #[test]
    fn report_carries_arena_stats() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        c.on_event(&env(&[(1, 1)]), 180);
        let r = c.report();
        assert!(r.arena_nodes >= 4, "body formulas interned: {r:?}");
        assert!(r.memo_misses > 0, "progressions computed: {r:?}");
    }

    #[test]
    fn shared_residuals_progress_once_per_event() {
        // An unbounded every-event property: all live instances of
        // `(!rdy) until ds` share the *same* residual id, so one event with
        // N live instances computes one progression and answers the other
        // N-1 from the memo.
        let mut arena = FormulaArena::new();
        let nrdy = arena.lit(&mk_lit(1, "rdy", true));
        let ds = arena.lit(&mk_lit(0, "ds", false));
        let body = arena.until(nrdy, ds);
        let mut c = PropertyChecker::new("u".into(), arena, body, true, None);
        for k in 0..10u64 {
            c.on_event(&env(&[]), 10 + 10 * k);
        }
        let r = c.report();
        assert_eq!(c.live_instances(), 10);
        assert!(
            r.memo_hits >= 36,
            "9 events re-progress shared residuals from the memo: {r:?}"
        );
    }
}
