//! The monitor core: compiled formulas, progression, instance pool and
//! evaluation table.
//!
//! A compiled property is evaluated per *instance*. Each instance holds a
//! residual obligation (an [`Mx`] tree); every evaluation event progresses
//! the residual into the obligation that must hold from the next event on.
//! Residuals that reduce to `true` complete, `false` fail.
//!
//! Instances whose residual consists solely of absolute-deadline
//! obligations (`At` nodes, produced by `next_ε^τ`) are parked in an
//! **evaluation table** keyed by deadline and are only touched when an
//! event reaches (or overshoots) a deadline — the paper's wrapper
//! optimization (Section IV, point 2). All other residuals must observe
//! every event.

use std::collections::BTreeMap;
use std::rc::Rc;

use abv_obs::{trace, TraceEvent, Tracer};
use desim::SignalId;
use psl::CmpOp;

use crate::report::{FailReason, Failure, PropertyReport};

/// Shared monitor-formula node.
pub(crate) type M = Rc<Mx>;

/// A resolved literal: a signal test, possibly negated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Lit {
    pub sig: SignalId,
    pub name: Rc<str>,
    pub test: LitTest,
    pub negated: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LitTest {
    /// Boolean signal: true iff non-zero.
    Bool,
    /// Comparison against a constant.
    Cmp(CmpOp, u64),
}

impl Lit {
    pub(crate) fn eval(&self, read: &dyn Fn(SignalId) -> u64) -> bool {
        let raw = read(self.sig);
        let v = match self.test {
            LitTest::Bool => raw != 0,
            LitTest::Cmp(op, rhs) => op.apply(raw, rhs),
        };
        v != self.negated
    }
}

/// Monitor formulas: the compiled, signal-resolved form of properties,
/// extended with the anchored-deadline node `At` that `next_ε^τ` becomes
/// once reached.
#[derive(Debug, PartialEq)]
pub(crate) enum Mx {
    True,
    False,
    Lit(Lit),
    And(M, M),
    Or(M, M),
    /// `next[n]`: operand holds `n` evaluation events ahead.
    NextN(u32, M),
    /// `next_ε^τ`, not yet reached: anchors to `now + eps` when progressed.
    NextEt {
        eps_ns: u64,
        inner: M,
    },
    /// An anchored obligation: operand must be evaluated at the event at
    /// exactly `deadline_ns`; an event past the deadline fails it.
    At {
        deadline_ns: u64,
        inner: M,
    },
    Until(M, M),
    Release(M, M),
    Always(M),
    Eventually(M),
}

thread_local! {
    static M_TRUE: M = Rc::new(Mx::True);
    static M_FALSE: M = Rc::new(Mx::False);
}

pub(crate) fn m_true() -> M {
    M_TRUE.with(Rc::clone)
}

pub(crate) fn m_false() -> M {
    M_FALSE.with(Rc::clone)
}

fn m_bool(b: bool) -> M {
    if b {
        m_true()
    } else {
        m_false()
    }
}

/// `a && b` with constant absorption.
pub(crate) fn m_and(a: M, b: M) -> M {
    match (&*a, &*b) {
        (Mx::False, _) | (_, Mx::False) => m_false(),
        (Mx::True, _) => b,
        (_, Mx::True) => a,
        _ => Rc::new(Mx::And(a, b)),
    }
}

/// `a || b` with constant absorption.
pub(crate) fn m_or(a: M, b: M) -> M {
    match (&*a, &*b) {
        (Mx::True, _) | (_, Mx::True) => m_true(),
        (Mx::False, _) => b,
        (_, Mx::False) => a,
        _ => Rc::new(Mx::Or(a, b)),
    }
}

/// Progresses `m` through the evaluation event at `now`: the result is the
/// obligation that must hold from the *next* evaluation event on.
pub(crate) fn progress(m: &M, read: &dyn Fn(SignalId) -> u64, now: u64) -> M {
    match &**m {
        Mx::True | Mx::False => Rc::clone(m),
        Mx::Lit(lit) => m_bool(lit.eval(read)),
        Mx::And(a, b) => {
            let pa = progress(a, read, now);
            if matches!(*pa, Mx::False) {
                return m_false();
            }
            m_and(pa, progress(b, read, now))
        }
        Mx::Or(a, b) => {
            let pa = progress(a, read, now);
            if matches!(*pa, Mx::True) {
                return m_true();
            }
            m_or(pa, progress(b, read, now))
        }
        Mx::NextN(1, inner) => Rc::clone(inner),
        Mx::NextN(n, inner) => Rc::new(Mx::NextN(n - 1, Rc::clone(inner))),
        Mx::NextEt { eps_ns, inner } => Rc::new(Mx::At {
            deadline_ns: now + eps_ns,
            inner: Rc::clone(inner),
        }),
        Mx::At { deadline_ns, inner } => {
            if now < *deadline_ns {
                Rc::clone(m) // event not consumed by this obligation
            } else if now == *deadline_ns {
                progress(inner, read, now)
            } else {
                m_false() // deadline passed without an observable event
            }
        }
        // φ U ψ  ≡  ψ ∨ (φ ∧ X(φ U ψ))
        Mx::Until(a, b) => {
            let pb = progress(b, read, now);
            if matches!(*pb, Mx::True) {
                return m_true();
            }
            let pa = progress(a, read, now);
            m_or(pb, m_and(pa, Rc::clone(m)))
        }
        // φ R ψ  ≡  ψ ∧ (φ ∨ X(φ R ψ))
        Mx::Release(a, b) => {
            let pb = progress(b, read, now);
            if matches!(*pb, Mx::False) {
                return m_false();
            }
            let pa = progress(a, read, now);
            m_and(pb, m_or(pa, Rc::clone(m)))
        }
        Mx::Always(a) => m_and(progress(a, read, now), Rc::clone(m)),
        Mx::Eventually(a) => m_or(progress(a, read, now), Rc::clone(m)),
    }
}

/// When an instance's residual next needs to observe an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakePlan {
    /// The residual must be progressed at every evaluation event.
    EveryEvent,
    /// The residual consists solely of anchored deadlines; the earliest is
    /// at this absolute time (nanoseconds).
    AtTime(u64),
}

/// Computes the wake plan of a (non-constant) residual.
pub(crate) fn wake_plan(m: &M) -> WakePlan {
    fn earliest(m: &M) -> Option<u64> {
        match &**m {
            Mx::At { deadline_ns, .. } => Some(*deadline_ns),
            Mx::And(a, b) | Mx::Or(a, b) => {
                let (ea, eb) = (earliest(a)?, earliest(b)?);
                Some(ea.min(eb))
            }
            // True/False below And/Or are absorbed by the constructors, and
            // a bare constant residual never reaches wake_plan.
            _ => None,
        }
    }
    match earliest(m) {
        Some(d) => WakePlan::AtTime(d),
        None => WakePlan::EveryEvent,
    }
}

/// Three-valued end-of-simulation evaluation of a residual: anchored
/// obligations with deadlines at or before `end` are false (their instant
/// passed without an observable event), later ones and event-counting
/// obligations are unknown.
fn finish_eval(m: &M, end: u64) -> Option<bool> {
    match &**m {
        Mx::True => Some(true),
        Mx::False => Some(false),
        Mx::At { deadline_ns, .. } if *deadline_ns <= end => Some(false),
        Mx::And(a, b) => match (finish_eval(a, end), finish_eval(b, end)) {
            (Some(false), _) | (_, Some(false)) => Some(false),
            (Some(true), Some(true)) => Some(true),
            _ => None,
        },
        Mx::Or(a, b) => match (finish_eval(a, end), finish_eval(b, end)) {
            (Some(true), _) | (_, Some(true)) => Some(true),
            (Some(false), Some(false)) => Some(false),
            _ => None,
        },
        _ => None,
    }
}

/// The earliest missed deadline contributing to a false finish verdict.
fn earliest_missed(m: &M, end: u64) -> Option<u64> {
    let mut earliest: Option<u64> = None;
    fn walk(m: &M, end: u64, earliest: &mut Option<u64>) {
        match &**m {
            Mx::At { deadline_ns, .. } if *deadline_ns <= end => {
                *earliest = Some(earliest.map_or(*deadline_ns, |e| e.min(*deadline_ns)));
            }
            Mx::And(a, b) | Mx::Or(a, b) => {
                walk(a, end, earliest);
                walk(b, end, earliest);
            }
            _ => {}
        }
    }
    walk(m, end, &mut earliest);
    earliest
}

/// One running verification session of a property.
#[derive(Debug)]
struct Instance {
    residual: M,
    fire_ns: u64,
}

/// A synthesized checker for one property: monitor body, activation
/// policy, guard, instance pool and evaluation table.
///
/// Built by [`compile`](crate::compile); driven by a host
/// ([`ClockCheckerHost`](crate::ClockCheckerHost) or
/// [`TxCheckerHost`](crate::TxCheckerHost)) which calls
/// [`on_event`](PropertyChecker::on_event) at each evaluation point.
#[derive(Debug)]
pub struct PropertyChecker {
    name: String,
    body: M,
    /// True for `always φ`: a new instance activates at every evaluation
    /// point (Section IV, point 4). False: a single activation at the first
    /// evaluation point.
    repeating: bool,
    guard: Option<M>,
    fired_once: bool,
    pool: Vec<Option<Instance>>,
    free: Vec<usize>,
    table: BTreeMap<u64, Vec<usize>>,
    every: Vec<usize>,
    use_table: bool,
    completion_bound_ns: Option<u64>,
    report: PropertyReport,
    /// Base trace-track id: property-level events land here, instance
    /// `slot` events on `trace_tid + 1 + slot`. Assigned at install time
    /// from the host's component id so tracks are stable per build order.
    trace_tid: u64,
}

impl PropertyChecker {
    pub(crate) fn new(name: String, body: M, repeating: bool, guard: Option<M>) -> PropertyChecker {
        PropertyChecker {
            report: PropertyReport::new(name.clone()),
            name,
            body,
            repeating,
            guard,
            fired_once: false,
            pool: Vec::new(),
            free: Vec::new(),
            table: BTreeMap::new(),
            every: Vec::new(),
            use_table: true,
            completion_bound_ns: None,
            trace_tid: 0,
        }
    }

    /// Sets the base trace-track id (see the `trace_tid` field).
    pub(crate) fn set_trace_tid(&mut self, tid: u64) {
        self.trace_tid = tid;
    }

    /// The trace track of property-level events (vacuous/immediate-fail
    /// instants); instance `slot` lives on `trace_tid() + 1 + slot`.
    #[must_use]
    pub fn trace_tid(&self) -> u64 {
        self.trace_tid
    }

    fn instance_tid(&self, slot: usize) -> u64 {
        self.trace_tid + 1 + slot as u64
    }

    /// Records the property's completion bound (`t_end - t_fire`), when it
    /// is statically bounded. Set by checker synthesis.
    pub(crate) fn set_completion_bound_ns(&mut self, bound: Option<u64>) {
        self.completion_bound_ns = bound;
    }

    /// The paper's static size bound for the checker-instance array
    /// (Section IV, point 1): the maximum number of instants where
    /// transactions can occur within `(t_fire, t_end]`, assuming instants
    /// are aligned to `clock_period_ns` — e.g. 17 for `q3` with a 10 ns
    /// reference clock. `None` when the property is unbounded (`until`,
    /// `release`, un-timed `next`).
    ///
    /// The live implementation grows its pool dynamically;
    /// [`PropertyReport::max_live_instances`] can be compared against this
    /// bound (see the Fig. 5 tests).
    #[must_use]
    pub fn lifetime_bound(&self, clock_period_ns: u64) -> Option<usize> {
        assert!(clock_period_ns > 0, "clock period must be positive");
        self.completion_bound_ns
            .map(|b| (b / clock_period_ns) as usize)
    }

    /// Disables the evaluation-table optimization: every instance is
    /// progressed at every evaluation event, even when its residual only
    /// waits for an absolute deadline. Semantics are unchanged (anchored
    /// obligations ignore pre-deadline events); only the amount of work
    /// differs. Used by the ablation benchmarks.
    pub fn disable_evaluation_table(&mut self) {
        self.use_table = false;
    }

    /// The property's display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of currently live instances.
    #[must_use]
    pub fn live_instances(&self) -> usize {
        self.pool.len() - self.free.len()
    }

    /// Processes one evaluation event at `now` nanoseconds.
    ///
    /// Performs, in order: guard filtering, failure of instances whose
    /// deadline passed, progression of due and every-event instances, and
    /// activation of a new instance.
    pub fn on_event(&mut self, read: &dyn Fn(SignalId) -> u64, now: u64) {
        self.on_event_traced(read, now, &Tracer::disabled());
    }

    /// [`on_event`](PropertyChecker::on_event) with trace emission: the
    /// wrapper's lifecycle becomes spans and instants on this property's
    /// tracks — a `B…E` span per checker instance from activation to
    /// resolution, `obligation` instants when an instance parks in the
    /// evaluation table, `eval` instants per progression, and a
    /// `pass`/`fail`/`timeout-fail` instant at resolution.
    pub fn on_event_traced(&mut self, read: &dyn Fn(SignalId) -> u64, now: u64, tracer: &Tracer) {
        // Events not matching the context guard are invisible to this
        // property (Def. III.2).
        if let Some(guard) = &self.guard {
            let g = progress(guard, read, now);
            if !matches!(*g, Mx::True) {
                return;
            }
        }

        // Snapshot the every-event list first: an instance progressed from
        // the table below may re-register into it, and no instance may be
        // progressed twice within one event.
        let every = std::mem::take(&mut self.every);

        // 1+2. Instances whose earliest expected evaluation time is due or
        //    overdue are progressed at this event. An overdue `At`
        //    obligation resolves to false inside the progression, so a
        //    residual that only waited for the missed instant fails
        //    (Section IV, point 2), while a disjunction with a later
        //    obligation survives and is re-registered.
        while let Some((&deadline, _)) = self.table.first_key_value() {
            if deadline > now {
                break;
            }
            let slots = self.table.remove(&deadline).expect("key just observed");
            let missed = (deadline < now).then_some(deadline);
            for slot in slots {
                self.step(slot, read, now, missed, tracer);
            }
        }

        // 3. Instances that observe every event.
        for slot in every {
            self.step(slot, read, now, None, tracer);
        }

        // 4. Activation of a new verification session.
        if self.repeating || !self.fired_once {
            self.fired_once = true;
            self.report.activations += 1;
            let residual = progress(&self.body, read, now);
            self.report.evaluations += 1;
            match &*residual {
                Mx::True => {
                    self.report.vacuous += 1;
                    trace!(
                        tracer,
                        TraceEvent::instant("vacuous", 0, self.trace_tid, now)
                    );
                }
                Mx::False => {
                    self.report.record_failure(Failure {
                        fire_ns: now,
                        fail_ns: now,
                        reason: FailReason::Violated,
                    });
                    trace!(
                        tracer,
                        TraceEvent::instant("fail", 0, self.trace_tid, now)
                            .with_arg("reason", "violated")
                            .with_arg("fire_ns", now)
                    );
                }
                _ => {
                    let (slot, reused) = self.alloc(
                        Instance {
                            residual: Rc::clone(&residual),
                            fire_ns: now,
                        },
                        tracer,
                    );
                    trace!(
                        tracer,
                        TraceEvent::span_begin(&self.name, 0, self.instance_tid(slot), now)
                            .with_arg("slot", slot as u64)
                            .with_arg("reused", u64::from(reused))
                    );
                    self.register(slot, &residual, now, tracer);
                }
            }
        }
    }

    /// Finalizes at simulation end `end_ns`: anchored obligations whose
    /// deadline lies at or before the end never saw an event (otherwise the
    /// instance would have been progressed there) and resolve to false;
    /// instances whose residual thereby becomes false are failures, ones
    /// that become true complete, and everything still undetermined is
    /// counted as pending.
    pub fn finish(&mut self, end_ns: u64) {
        self.finish_traced(end_ns, &Tracer::disabled());
    }

    /// [`finish`](PropertyChecker::finish) with trace emission: every
    /// still-open instance span is closed at `end_ns` with a
    /// `pass`/`fail`/`timeout-fail`/`pending` instant.
    pub fn finish_traced(&mut self, end_ns: u64, tracer: &Tracer) {
        let table = std::mem::take(&mut self.table);
        let every = std::mem::take(&mut self.every);
        for slot in table.into_values().flatten().chain(every) {
            let instance = self.pool[slot].as_ref().expect("live slot");
            let fire_ns = instance.fire_ns;
            let residual = Rc::clone(&instance.residual);
            let tid = self.instance_tid(slot);
            match finish_eval(&residual, end_ns) {
                Some(false) => {
                    let reason = match earliest_missed(&residual, end_ns) {
                        Some(deadline_ns) => FailReason::MissedDeadline { deadline_ns },
                        None => FailReason::Violated,
                    };
                    self.fail(slot, end_ns, reason, tracer);
                }
                Some(true) => {
                    self.report.completions += 1;
                    self.report.record_completion_latency(end_ns - fire_ns);
                    trace!(tracer, TraceEvent::instant("pass", 0, tid, end_ns));
                    trace!(tracer, TraceEvent::span_end(0, tid, end_ns));
                    self.release(slot);
                }
                None => {
                    self.report.pending += 1;
                    trace!(tracer, TraceEvent::instant("pending", 0, tid, end_ns));
                    trace!(tracer, TraceEvent::span_end(0, tid, end_ns));
                    self.release(slot);
                }
            }
        }
    }

    /// A snapshot of the accumulated results.
    #[must_use]
    pub fn report(&self) -> PropertyReport {
        let mut r = self.report.clone();
        r.max_live_instances = r.max_live_instances.max(self.live_instances());
        r
    }

    fn step(
        &mut self,
        slot: usize,
        read: &dyn Fn(SignalId) -> u64,
        now: u64,
        missed: Option<u64>,
        tracer: &Tracer,
    ) {
        let tid = self.instance_tid(slot);
        let instance = self.pool[slot].as_mut().expect("live slot");
        let fire_ns = instance.fire_ns;
        let residual = progress(&instance.residual, read, now);
        self.report.evaluations += 1;
        trace!(tracer, TraceEvent::instant("eval", 0, tid, now));
        match &*residual {
            Mx::True => {
                self.report.completions += 1;
                self.report.record_completion_latency(now - fire_ns);
                trace!(tracer, TraceEvent::instant("pass", 0, tid, now));
                trace!(tracer, TraceEvent::span_end(0, tid, now));
                self.release(slot);
            }
            Mx::False => {
                let reason = match missed {
                    Some(deadline_ns) => FailReason::MissedDeadline { deadline_ns },
                    None => FailReason::Violated,
                };
                self.fail(slot, now, reason, tracer);
            }
            _ => {
                instance.residual = Rc::clone(&residual);
                self.register(slot, &residual, now, tracer);
            }
        }
    }

    fn register(&mut self, slot: usize, residual: &M, now: u64, tracer: &Tracer) {
        match wake_plan(residual) {
            WakePlan::AtTime(deadline) if self.use_table => {
                trace!(
                    tracer,
                    TraceEvent::instant("obligation", 0, self.instance_tid(slot), now)
                        .with_arg("deadline_ns", deadline)
                );
                self.table.entry(deadline).or_default().push(slot);
            }
            _ => self.every.push(slot),
        }
    }

    fn alloc(&mut self, instance: Instance, tracer: &Tracer) -> (usize, bool) {
        let (slot, reused) = match self.free.pop() {
            Some(slot) => {
                self.pool[slot] = Some(instance);
                (slot, true)
            }
            None => {
                self.pool.push(Some(instance));
                let slot = self.pool.len() - 1;
                // Name the new instance track the first time the pool grows
                // into it; reuses keep the label.
                trace!(
                    tracer,
                    TraceEvent::thread_name(
                        0,
                        self.instance_tid(slot),
                        &format!("{}#{slot}", self.name)
                    )
                );
                (slot, false)
            }
        };
        self.report.max_live_instances = self.report.max_live_instances.max(self.live_instances());
        (slot, reused)
    }

    fn release(&mut self, slot: usize) {
        self.pool[slot] = None;
        self.free.push(slot);
    }

    fn fail(&mut self, slot: usize, now: u64, reason: FailReason, tracer: &Tracer) {
        let tid = self.instance_tid(slot);
        let fire_ns = self.pool[slot].as_ref().expect("live slot").fire_ns;
        self.report.record_failure(Failure {
            fire_ns,
            fail_ns: now,
            reason,
        });
        trace!(tracer, {
            let (label, deadline) = match reason {
                FailReason::MissedDeadline { deadline_ns } => ("timeout-fail", Some(deadline_ns)),
                FailReason::Violated => ("fail", None),
            };
            let ev = TraceEvent::instant(label, 0, tid, now).with_arg("fire_ns", fire_ns);
            match deadline {
                Some(d) => ev.with_arg("deadline_ns", d),
                None => ev,
            }
        });
        trace!(tracer, TraceEvent::span_end(0, tid, now));
        self.release(slot);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::collections::HashMap;

    fn lit(sig: usize, name: &str) -> M {
        Rc::new(Mx::Lit(Lit {
            sig: test_sig(sig),
            name: name.into(),
            test: LitTest::Bool,
            negated: false,
        }))
    }

    fn nlit(sig: usize, name: &str) -> M {
        Rc::new(Mx::Lit(Lit {
            sig: test_sig(sig),
            name: name.into(),
            test: LitTest::Bool,
            negated: true,
        }))
    }

    fn test_sig(n: usize) -> SignalId {
        // SignalId construction for tests: round-trip through a Simulation.
        thread_local! {
            static IDS: RefCell<Vec<SignalId>> = const { RefCell::new(Vec::new()) };
            static SIM: RefCell<desim::Simulation> = RefCell::new(desim::Simulation::new());
        }
        IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            while ids.len() <= n {
                let next = ids.len();
                let id = SIM.with(|sim| sim.borrow_mut().add_signal(&format!("s{next}"), 0));
                ids.push(id);
            }
            ids[n]
        })
    }

    fn env(pairs: &[(usize, u64)]) -> impl Fn(SignalId) -> u64 + '_ {
        let map: HashMap<SignalId, u64> = pairs.iter().map(|&(s, v)| (test_sig(s), v)).collect();
        move |s| map.get(&s).copied().unwrap_or(0)
    }

    #[test]
    fn constant_absorption() {
        assert!(matches!(*m_and(m_true(), m_false()), Mx::False));
        assert!(matches!(*m_or(m_true(), m_false()), Mx::True));
        let a = lit(0, "a");
        assert_eq!(m_and(m_true(), Rc::clone(&a)), a);
        assert_eq!(m_or(m_false(), Rc::clone(&a)), a);
    }

    #[test]
    fn progress_literals_and_booleans() {
        let a = lit(0, "a");
        let b = nlit(1, "b");
        let read = env(&[(0, 1), (1, 0)]);
        assert!(matches!(*progress(&a, &read, 10), Mx::True));
        assert!(matches!(*progress(&b, &read, 10), Mx::True));
        let both = m_and(a, b);
        assert!(matches!(*progress(&both, &read, 10), Mx::True));
    }

    #[test]
    fn progress_next_n_counts_events() {
        let f = Rc::new(Mx::NextN(3, lit(0, "a")));
        let read = env(&[(0, 1)]);
        let f1 = progress(&f, &read, 10);
        assert!(matches!(*f1, Mx::NextN(2, _)));
        let f2 = progress(&f1, &read, 20);
        let f3 = progress(&f2, &read, 30);
        assert!(matches!(*progress(&f3, &read, 40), Mx::True));
    }

    #[test]
    fn next_et_anchors_and_resolves_at_deadline() {
        let f = Rc::new(Mx::NextEt {
            eps_ns: 170,
            inner: lit(0, "rdy"),
        });
        let hi = env(&[(0, 1)]);
        let lo = env(&[]);
        let anchored = progress(&f, &lo, 10);
        match &*anchored {
            Mx::At { deadline_ns, .. } => assert_eq!(*deadline_ns, 180),
            other => panic!("expected At, got {other:?}"),
        }
        // Events before the deadline leave it untouched.
        let same = progress(&anchored, &hi, 100);
        assert_eq!(same, anchored);
        // Event at the deadline evaluates the operand.
        assert!(matches!(*progress(&anchored, &hi, 180), Mx::True));
        assert!(matches!(*progress(&anchored, &lo, 180), Mx::False));
        // Event past the deadline fails.
        assert!(matches!(*progress(&anchored, &hi, 190), Mx::False));
    }

    #[test]
    fn until_progression() {
        let u = Rc::new(Mx::Until(nlit(0, "ds"), lit(1, "rdy")));
        // rdy high: resolves immediately.
        assert!(matches!(*progress(&u, &env(&[(1, 1)]), 10), Mx::True));
        // ds low, rdy low: residual keeps the until.
        let r = progress(&u, &env(&[]), 10);
        assert_eq!(r, u);
        // ds high, rdy low: fails.
        assert!(matches!(*progress(&u, &env(&[(0, 1)]), 10), Mx::False));
    }

    #[test]
    fn release_progression() {
        let r = Rc::new(Mx::Release(lit(0, "done"), lit(1, "ok")));
        // ok low: fails.
        assert!(
            matches!(*progress(&r, &env(&[(0, 1)]), 10), Mx::False),
            "ok must hold up to and including the releasing instant"
        );
        // ok high, done high: released.
        assert!(matches!(
            *progress(&r, &env(&[(0, 1), (1, 1)]), 10),
            Mx::True
        ));
        // ok high, done low: continues.
        let res = progress(&r, &env(&[(1, 1)]), 10);
        assert_eq!(res, r);
    }

    #[test]
    fn wake_plan_classifies() {
        let at = Rc::new(Mx::At {
            deadline_ns: 170,
            inner: lit(0, "a"),
        });
        assert_eq!(wake_plan(&at), WakePlan::AtTime(170));
        let two = m_or(
            Rc::new(Mx::At {
                deadline_ns: 200,
                inner: lit(0, "a"),
            }),
            Rc::new(Mx::At {
                deadline_ns: 150,
                inner: lit(1, "b"),
            }),
        );
        assert_eq!(wake_plan(&two), WakePlan::AtTime(150));
        let until = Rc::new(Mx::Until(lit(0, "a"), lit(1, "b")));
        assert_eq!(wake_plan(&until), WakePlan::EveryEvent);
        let mixed = m_and(at, until);
        assert_eq!(wake_plan(&mixed), WakePlan::EveryEvent);
    }

    /// Paper q3-style checker at TLM granularity: `always (!ds || next_et
    /// [1,170] rdy)`.
    fn q3_checker() -> PropertyChecker {
        let body = m_or(
            nlit(0, "ds"),
            Rc::new(Mx::NextEt {
                eps_ns: 170,
                inner: lit(1, "rdy"),
            }),
        );
        PropertyChecker::new("q3".into(), body, true, None)
    }

    #[test]
    fn q3_completes_on_timely_ready() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10); // ds fires
        assert_eq!(c.live_instances(), 1);
        c.on_event(&env(&[]), 60); // unrelated transaction: ignored by table
        c.on_event(&env(&[(1, 1)]), 180); // rdy exactly at 10+170
        let r = c.report();
        assert_eq!(r.failure_count, 0);
        assert_eq!(r.completions, 1);
        // Activations at every event; the two ds=0 ones are vacuous.
        assert_eq!(r.activations, 3);
        assert_eq!(r.vacuous, 2);
        assert_eq!(c.live_instances(), 0, "completed instance reused");
    }

    #[test]
    fn q3_fails_when_deadline_missed() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        // Next transaction arrives past the 180ns deadline.
        c.on_event(&env(&[(1, 1)]), 350);
        let r = c.report();
        assert_eq!(r.failure_count, 1);
        assert_eq!(
            r.failures[0].reason,
            FailReason::MissedDeadline { deadline_ns: 180 }
        );
        assert_eq!(r.failures[0].fire_ns, 10);
        assert_eq!(r.failures[0].fail_ns, 350);
    }

    #[test]
    fn q3_fails_on_wrong_value_at_deadline() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        c.on_event(&env(&[]), 180); // event at deadline but rdy low
        let r = c.report();
        assert_eq!(r.failure_count, 1);
        assert_eq!(r.failures[0].reason, FailReason::Violated);
    }

    #[test]
    fn finish_classifies_due_vs_pending() {
        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10); // deadline 180
        c.finish(100); // simulation ended before the deadline
        assert_eq!(c.report().pending, 1);
        assert_eq!(c.report().failure_count, 0);

        let mut c = q3_checker();
        c.on_event(&env(&[(0, 1)]), 10);
        c.finish(500); // deadline 180 passed without event
        assert_eq!(c.report().pending, 0);
        assert_eq!(c.report().failure_count, 1);
    }

    #[test]
    fn guard_filters_events() {
        let body = nlit(0, "ds");
        let guard = lit(1, "en");
        let mut c = PropertyChecker::new("g".into(), body, true, Some(guard));
        c.on_event(&env(&[(0, 1)]), 10); // en low: invisible, no activation
        assert_eq!(c.report().activations, 0);
        c.on_event(&env(&[(0, 1), (1, 1)]), 20); // visible, !ds violated
        assert_eq!(c.report().activations, 1);
        assert_eq!(c.report().failure_count, 1);
    }

    #[test]
    fn non_repeating_property_fires_once() {
        // (!rdy) until ds
        let body = Rc::new(Mx::Until(nlit(1, "rdy"), lit(0, "ds")));
        let mut c = PropertyChecker::new("p9".into(), body, false, None);
        c.on_event(&env(&[]), 10);
        c.on_event(&env(&[]), 20);
        assert_eq!(c.report().activations, 1);
        assert_eq!(c.live_instances(), 1);
        c.on_event(&env(&[(0, 1)]), 30); // ds arrives: resolves
        assert_eq!(c.report().completions, 1);
        assert_eq!(c.live_instances(), 0);
    }

    #[test]
    fn pool_reuses_slots() {
        let mut c = q3_checker();
        for k in 0..5u64 {
            let t = 10 + 400 * k;
            c.on_event(&env(&[(0, 1)]), t);
            c.on_event(&env(&[(1, 1)]), t + 170);
        }
        let r = c.report();
        assert_eq!(r.completions, 5);
        assert_eq!(
            r.max_live_instances, 1,
            "slots are reset and reused (Section IV, point 3)"
        );
    }

    #[test]
    fn max_live_matches_paper_lifetime_bound() {
        // q3 at cycle-accurate granularity: a transaction every 10ns and a
        // firing (ds=1) at each: at most ceil(170/10) = 17 live instances
        // plus the one activated at the current event.
        let mut c = q3_checker();
        for k in 0..100u64 {
            c.on_event(&env(&[(0, 1), (1, 1)]), 10 + 10 * k);
        }
        let r = c.report();
        assert!(
            r.max_live_instances <= 18,
            "max live = {}",
            r.max_live_instances
        );
        assert!(
            r.max_live_instances >= 17,
            "max live = {}",
            r.max_live_instances
        );
    }
}
