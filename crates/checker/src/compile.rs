//! Checker synthesis: from [`psl::ClockedProperty`] to [`PropertyChecker`].
//!
//! The paper's approach is generator-independent (Section IV); this module
//! plays the role of IBM FoCs in the original flow. Synthesis:
//!
//! 1. normalize to negation normal form (so negations sit on atoms),
//! 2. resolve every atom and guard signal against the simulation's signal
//!    registry,
//! 3. unwrap a top-level `always` into the *repeating activation* policy
//!    (a fresh instance per evaluation point, Section IV point 4),
//! 4. translate the body into the monitor formula language.

use desim::Simulation;
use psl::nnf::to_nnf;
use psl::{Atom, ClockEdge, ClockedProperty, EvalContext, Property};

use crate::arena::{FormulaArena, NodeId};
use crate::monitor::{Lit, LitTest, PropertyChecker};

/// Errors produced by checker synthesis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// An atom or guard observes a signal absent from the simulation —
    /// typically a property over signals removed by protocol abstraction
    /// that was not run through `abv_core::abstract_property` first.
    MissingSignal {
        /// The unresolved signal name.
        signal: String,
    },
    /// The property contains a negation over a non-atom even after NNF
    /// (cannot happen for parseable properties; kept for totality).
    UnsupportedNegation,
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CompileError::MissingSignal { signal } => {
                write!(
                    f,
                    "signal `{signal}` does not exist in the simulation (was it abstracted away?)"
                )
            }
            CompileError::UnsupportedNegation => f.write_str("negation over non-atomic property"),
        }
    }
}

impl std::error::Error for CompileError {}

/// Synthesizes a checker for `property`, resolving signals against `sim`.
///
/// The context decides which host can drive the checker:
/// [`ClockCheckerHost`](crate::ClockCheckerHost) for clock contexts,
/// [`TxCheckerHost`](crate::TxCheckerHost) for transaction contexts. The
/// returned tuple carries the clock edge for clock contexts (`None` for
/// transaction contexts).
///
/// # Errors
///
/// Returns [`CompileError::MissingSignal`] if a referenced signal does not
/// exist in `sim`.
pub fn compile(
    name: &str,
    property: &ClockedProperty,
    sim: &Simulation,
) -> Result<(PropertyChecker, Option<ClockEdge>), CompileError> {
    let nnf = to_nnf(&property.property);
    let (body, repeating) = match nnf {
        Property::Always(inner) => (*inner, true),
        other => (other, false),
    };
    let completion_bound_ns = body.completion_bound_ns();
    let mut arena = FormulaArena::new();
    let body = translate(&body, sim, &mut arena)?;
    let (guard, edge) = match &property.context {
        EvalContext::Clock { edge, guard } => (guard.as_deref(), Some(*edge)),
        EvalContext::Transaction { guard } => (guard.as_deref(), None),
    };
    let guard = match guard {
        Some(g) => Some(translate(&to_nnf(g), sim, &mut arena)?),
        None => None,
    };
    let mut checker = PropertyChecker::new(name.to_owned(), arena, body, repeating, guard);
    checker.set_completion_bound_ns(completion_bound_ns);
    Ok((checker, edge))
}

/// Lowers an NNF property into the arena. Smart constructors intern each
/// distinct subformula once, so the compiled body is already maximally
/// shared.
fn translate(
    p: &Property,
    sim: &Simulation,
    arena: &mut FormulaArena,
) -> Result<NodeId, CompileError> {
    Ok(match p {
        Property::Const(true) => NodeId::TRUE,
        Property::Const(false) => NodeId::FALSE,
        Property::Atom(a) => {
            let lit = resolve(a, false, sim)?;
            arena.lit(&lit)
        }
        Property::Not(inner) => match &**inner {
            Property::Atom(a) => {
                let lit = resolve(a, true, sim)?;
                arena.lit(&lit)
            }
            _ => return Err(CompileError::UnsupportedNegation),
        },
        Property::And(a, b) => {
            let (a, b) = (translate(a, sim, arena)?, translate(b, sim, arena)?);
            arena.and(a, b)
        }
        Property::Or(a, b) => {
            let (a, b) = (translate(a, sim, arena)?, translate(b, sim, arena)?);
            arena.or(a, b)
        }
        Property::Implies(..) => unreachable!("implication is eliminated by NNF"),
        Property::Next { n, inner } => {
            let inner = translate(inner, sim, arena)?;
            arena.next_n(*n, inner)
        }
        Property::NextEt { eps_ns, inner, .. } => {
            let inner = translate(inner, sim, arena)?;
            arena.next_et(*eps_ns, inner)
        }
        Property::Until(a, b) => {
            let (a, b) = (translate(a, sim, arena)?, translate(b, sim, arena)?);
            arena.until(a, b)
        }
        Property::Release(a, b) => {
            let (a, b) = (translate(a, sim, arena)?, translate(b, sim, arena)?);
            arena.release(a, b)
        }
        Property::Always(inner) => {
            let inner = translate(inner, sim, arena)?;
            arena.always(inner)
        }
        Property::Eventually(inner) => {
            let inner = translate(inner, sim, arena)?;
            arena.eventually(inner)
        }
    })
}

pub(crate) fn resolve(atom: &Atom, negated: bool, sim: &Simulation) -> Result<Lit, CompileError> {
    let name = atom.signal();
    let sig = sim
        .signal_id(name)
        .ok_or_else(|| CompileError::MissingSignal {
            signal: name.to_owned(),
        })?;
    let test = match atom {
        Atom::Bool(_) => LitTest::Bool,
        Atom::Cmp { op, value, .. } => LitTest::Cmp(*op, *value),
    };
    Ok(Lit {
        sig,
        name: name.into(),
        test,
        negated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim_with(names: &[&str]) -> Simulation {
        let mut sim = Simulation::new();
        for n in names {
            sim.add_signal(n, 0);
        }
        sim
    }

    #[test]
    fn compiles_paper_q3() {
        let sim = sim_with(&["ds", "rdy"]);
        let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
        let (checker, edge) = compile("q3", &q3, &sim).unwrap();
        assert_eq!(checker.name(), "q3");
        assert_eq!(edge, None);
    }

    #[test]
    fn compiles_clock_context_with_edge() {
        let sim = sim_with(&["rdy"]);
        let p: ClockedProperty = "always rdy @clk_neg".parse().unwrap();
        let (_, edge) = compile("p", &p, &sim).unwrap();
        assert_eq!(edge, Some(ClockEdge::Neg));
    }

    #[test]
    fn missing_signal_reports_name() {
        let sim = sim_with(&["rdy"]);
        let p: ClockedProperty = "always (!ds || rdy) @clk_pos".parse().unwrap();
        let err = compile("p", &p, &sim).unwrap_err();
        assert_eq!(
            err,
            CompileError::MissingSignal {
                signal: "ds".into()
            }
        );
        assert!(err.to_string().contains("abstracted"));
    }

    #[test]
    fn guard_signals_are_resolved_too() {
        let sim = sim_with(&["rdy"]);
        let p: ClockedProperty = "always rdy @(clk_pos && mode == 1)".parse().unwrap();
        let err = compile("p", &p, &sim).unwrap_err();
        assert_eq!(
            err,
            CompileError::MissingSignal {
                signal: "mode".into()
            }
        );
    }

    #[test]
    fn lifetime_bound_matches_paper_array_size() {
        let sim = sim_with(&["ds", "rdy"]);
        let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
        let (checker, _) = compile("q3", &q3, &sim).unwrap();
        // "the size of the array for q3 is 17" (Section IV, point 1).
        assert_eq!(checker.lifetime_bound(10), Some(17));
        assert_eq!(checker.lifetime_bound(5), Some(34));
        let q2: ClockedProperty =
            "always (!ds || (next_et[1,10](!ds) until next_et[2,20](rdy))) @T_b"
                .parse()
                .unwrap();
        let (checker, _) = compile("q2", &q2, &sim).unwrap();
        assert_eq!(
            checker.lifetime_bound(10),
            None,
            "until makes the lifetime unbounded"
        );
    }

    #[test]
    fn nnf_applied_before_translation() {
        // Implication and negated conjunction compile fine thanks to NNF.
        let sim = sim_with(&["ds", "indata", "out"]);
        let p: ClockedProperty = "always ((ds && indata == 0) -> next[17](out != 0)) @clk_pos"
            .parse()
            .unwrap();
        let (checker, edge) = compile("p1", &p, &sim).unwrap();
        assert_eq!(edge, Some(ClockEdge::Pos));
        assert_eq!(checker.live_instances(), 0);
    }
}
