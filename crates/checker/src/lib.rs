//! `abv-checker` — checker synthesis and hosting for dynamic
//! assertion-based verification (Section IV of the paper).
//!
//! A [`PropertyChecker`] is synthesized from a [`psl::ClockedProperty`]:
//! the property is normalized (NNF), its atoms are resolved against the
//! simulation's signals, and the resulting monitor is evaluated by
//! *formula progression* — each evaluation event rewrites the outstanding
//! obligation into the obligation that must hold from the next event on.
//! `next_ε^τ` obligations anchor to an **absolute deadline** when reached:
//! events before the deadline are ignored, an event at the deadline
//! evaluates the operand, and an event past an unconsumed deadline raises a
//! failure — exactly the wrapper behaviour of Section IV.
//!
//! Checkers are attached through the [`Checker::attach`] facade: the
//! caller builds a [`Binding`] describing what the simulation offers (a
//! clock signal, a transaction bus, or both) and the facade dispatches on
//! the property's evaluation context to one of two hosts:
//!
//! - [`ClockCheckerHost`]: samples at clock edges (RTL verification, and
//!   the unabstracted-property case);
//! - [`TxCheckerHost`]: the paper's TLM **wrapper** — it observes a
//!   [`tlmkit::TransactionBus`], maintains the checker-instance pool and
//!   the evaluation table, fails instances whose expected evaluation time
//!   passed without a transaction, resets/reuses completed instances, and
//!   activates a new instance at every transaction matching the
//!   transaction context (Section IV, points 1–4).
//!
//! When the simulation carries an enabled [`abv_obs::Tracer`], the whole
//! wrapper lifecycle is emitted as structured trace events: one `B…E` span
//! per checker instance (activation to pass/fail/timeout-fail), an
//! `obligation` instant when an instance parks in the evaluation table,
//! and named tracks per property and pool slot. See the `abv-obs` crate.
//!
//! On `ε` anchoring: Def. III.3 phrases `ε` relative to "the firing of the
//! property"; for the nested occurrences produced by Algorithm III.1 inside
//! `until`/`release` iterations, the only coherent generalization (and the
//! one the finite-trace oracle in [`psl::trace`] uses) anchors `ε` at the
//! instant the operator is *reached* during evaluation — the two coincide
//! for top-level occurrences such as the paper's `q1`/`q3`.

mod arena;
mod attach;
mod compile;
mod host;
mod monitor;
mod reference;
mod report;

pub use arena::ArenaStats;
pub use attach::{Binding, Checker};
pub use compile::{compile, CompileError};
pub use host::{CheckerHost, ClockCheckerHost, InstallError, TxCheckerHost};
pub use monitor::{PropertyChecker, SignalRead, WakePlan};
pub use reference::{compile_reference, ReferenceChecker};
pub use report::{
    CheckReport, FailReason, Failure, PropertyReport, Verdict, MAX_RECORDED_FAILURES,
};
