//! Differential test: the interned-arena [`PropertyChecker`] against the
//! retained `Rc`-tree [`ReferenceChecker`] (the pre-arena progression
//! core, kept verbatim in `reference.rs`).
//!
//! Both checkers are synthesized from the same [`ClockedProperty`] via the
//! same pipeline (NNF, repeating unwrap, signal resolution) and driven over
//! identical event streams. Their [`PropertyReport`]s must agree exactly —
//! verdicts, activation/completion counters, failure times and reasons —
//! after blanking the fields only the arena produces (interning/memo stats
//! and rendered residuals, which the reference deliberately leaves empty).
//!
//! Cases come from a seeded [`TinyRng`] loop; failure messages carry the
//! case index for reproduction.

use std::collections::HashMap;

use abv_checker::{compile, compile_reference, PropertyReport};
use desim::{SignalId, Simulation};
use psl::{Atom, ClockedProperty, EvalContext, Property};
use tinyrng::TinyRng;

const CASES: u64 = 600;

const SIGNALS: &[&str] = &["a", "b", "c"];

fn gen_atom(rng: &mut TinyRng) -> Property {
    match rng.range_u32(0, 3) {
        0 => Property::Atom(Atom::bool(*rng.pick(SIGNALS))),
        1 => Property::not(Property::Atom(Atom::bool(*rng.pick(SIGNALS)))),
        _ => Property::cmp(*rng.pick(SIGNALS), psl::CmpOp::Eq, rng.range_u64(0, 3)),
    }
}

/// Simple-subset temporal properties over the shared signals — the same
/// grammar the oracle test uses, so coverage includes `next[n]`,
/// `next_ε^τ` (aligned and unaligned offsets), `until` and `release`.
fn gen_property(rng: &mut TinyRng, depth: u32) -> Property {
    if depth == 0 {
        return gen_atom(rng);
    }
    match rng.range_u32(0, 7) {
        0 => gen_property(rng, depth - 1).and(gen_property(rng, depth - 1)),
        1 => gen_atom(rng).or(gen_property(rng, depth - 1)),
        2 => Property::next_n(rng.range_u32(1, 4), gen_property(rng, depth - 1)),
        3 => {
            let tau = rng.range_u32(1, 4);
            let eps = *rng.pick(&[10u64, 20, 30, 15]);
            Property::next_et(tau, eps, gen_property(rng, depth - 1))
        }
        4 => gen_atom(rng).until(gen_property(rng, depth - 1)),
        5 => gen_atom(rng).release(gen_property(rng, depth - 1)),
        _ => gen_atom(rng),
    }
}

/// An event stream: strictly increasing times (multiples of 10 ns, with
/// occasional gaps), random signal values.
fn gen_stream(rng: &mut TinyRng) -> Vec<(u64, Vec<u64>)> {
    let mut t = 0;
    (0..rng.range_usize(2, 14))
        .map(|_| {
            t += rng.range_u64(1, 4) * 10;
            (t, (0..SIGNALS.len()).map(|_| rng.range_u64(0, 3)).collect())
        })
        .collect()
}

/// Blanks the fields only the arena implementation fills in: interning and
/// memoization statistics, and the rendered residual obligations attached
/// to failures. Everything else must match the reference exactly.
fn normalize(mut report: PropertyReport) -> PropertyReport {
    report.arena_nodes = 0;
    report.memo_hits = 0;
    report.memo_misses = 0;
    for failure in &mut report.failures {
        failure.residual = String::new();
    }
    report
}

fn check_case(clocked: &ClockedProperty, rows: &[(u64, Vec<u64>)], label: &str) {
    let mut sim = Simulation::new();
    let sigs: Vec<SignalId> = SIGNALS.iter().map(|s| sim.add_signal(s, 0)).collect();
    let (mut arena_checker, edge_a) = compile("p", clocked, &sim).expect("compiles");
    let (mut reference, edge_r) = compile_reference("p", clocked, &sim).expect("compiles");
    assert_eq!(edge_a, edge_r, "{label}: clock-edge dispatch must agree");

    for (t, values) in rows {
        let frame: HashMap<SignalId, u64> =
            sigs.iter().copied().zip(values.iter().copied()).collect();
        let read = |sig: SignalId| frame[&sig];
        arena_checker.on_event(&read, *t);
        reference.on_event(&read, *t);
        assert_eq!(
            arena_checker.live_instances(),
            reference.live_instances(),
            "{label}: live instance pools diverge at {t}ns for {clocked}"
        );
    }
    let end = rows.last().expect("nonempty stream").0 + 10;
    arena_checker.finish(end);
    reference.finish(end);

    let arena_report = arena_checker.report();
    let reference_report = reference.report();
    assert_eq!(
        reference_report.arena_nodes, 0,
        "{label}: the reference must not report arena stats"
    );
    if arena_report.activations > 0 {
        assert!(
            arena_report.arena_nodes >= 2,
            "{label}: an active arena checker interns at least true/false"
        );
    }
    assert_eq!(
        normalize(arena_report),
        normalize(reference_report),
        "{label}: reports diverge for {clocked} on rows {rows:?}"
    );
}

/// Random properties (plain, `always`-wrapped, and guarded) over random
/// streams: the arena checker and the reference checker must produce
/// identical verdicts, counters, failure times and reasons.
#[test]
fn arena_checker_matches_reference_checker() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0xD1FF_E001, case);
        let mut p = gen_property(&mut rng, 3);
        if rng.range_u32(0, 4) == 0 {
            p = Property::always(p);
        }
        let context = if rng.range_u32(0, 4) == 0 {
            EvalContext::tb_guarded(gen_atom(&mut rng))
        } else {
            EvalContext::tb()
        };
        let clocked = ClockedProperty::new(p, context);
        let rows = gen_stream(&mut rng);
        check_case(&clocked, &rows, &format!("case {case}"));
    }
}

/// The Fig. 5 `q3` scenario end to end: a missed deadline must be reported
/// identically (same fire/fail instants, same reason) by both cores, and
/// the arena side must additionally carry a rendered obligation.
#[test]
fn q3_missed_deadline_matches_reference() {
    let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
    let mut sim = Simulation::new();
    let ds = sim.add_signal("ds", 0);
    let _rdy = sim.add_signal("rdy", 0);
    let (mut arena_checker, _) = compile("q3", &q3, &sim).unwrap();
    let (mut reference, _) = compile_reference("q3", &q3, &sim).unwrap();

    let mut rows: Vec<(u64, u64, u64)> = (170..=330)
        .step_by(10)
        .map(|t| (t, u64::from(t == 170), 0))
        .collect();
    rows.push((350, 0, 1));
    for &(t, ds_v, rdy_v) in &rows {
        let read = move |sig: SignalId| if sig == ds { ds_v } else { rdy_v };
        arena_checker.on_event(&read, t);
        reference.on_event(&read, t);
    }
    arena_checker.finish(360);
    reference.finish(360);

    let arena_report = arena_checker.report();
    assert_eq!(arena_report.failures[0].residual, "at[340ns](rdy)");
    assert!(arena_report.memo_hits + arena_report.memo_misses > 0);
    assert_eq!(normalize(arena_report), normalize(reference.report()));
}
