//! Property-style tests of the report merge algebra.
//!
//! Campaigns fold per-run [`PropertyReport`]s in work-list order but in
//! arbitrary *groupings* (per worker, per cell, per campaign), so the
//! merge must be associative with the empty report as identity. These
//! tests pin that algebra over randomized reports: counters add, recorded
//! failures concatenate up to the cap, high-water marks take the maximum,
//! and the timeout/latency/memo bookkeeping merges component-wise.

use abv_checker::{CheckReport, FailReason, Failure, PropertyReport, MAX_RECORDED_FAILURES};
use tinyrng::TinyRng;

fn arb_failure(rng: &mut TinyRng) -> Failure {
    let fire_ns = rng.next_u64() % 1_000;
    Failure {
        fire_ns,
        fail_ns: fire_ns + rng.next_u64() % 200,
        reason: if rng.next_u64().is_multiple_of(2) {
            FailReason::Violated
        } else {
            FailReason::MissedDeadline {
                deadline_ns: fire_ns + 170,
            }
        },
        residual: String::new(),
    }
}

/// A random but self-consistent report: `timeout_fails` counts the missed
/// deadlines among its failures, `failure_count` includes an overflowed
/// remainder beyond the recorded list.
fn arb_report(rng: &mut TinyRng, name: &str) -> PropertyReport {
    let mut r = PropertyReport::new(name.to_owned());
    r.activations = rng.next_u64() % 100;
    r.vacuous = rng.next_u64() % 10;
    r.completions = rng.next_u64() % 80;
    r.pending = rng.next_u64() % 5;
    r.max_live_instances = (rng.next_u64() % 40) as usize;
    r.evaluations = rng.next_u64() % 10_000;
    r.arena_nodes = (rng.next_u64() % 200) as usize;
    r.memo_hits = rng.next_u64() % 500;
    r.memo_misses = rng.next_u64() % 500;
    for _ in 0..rng.next_u64() % 40 {
        r.failures.push(arb_failure(rng));
    }
    r.failure_count = r.failures.len() as u64 + rng.next_u64() % 5;
    r.timeout_fails = r
        .failures
        .iter()
        .filter(|f| matches!(f.reason, FailReason::MissedDeadline { .. }))
        .count() as u64;
    for _ in 0..rng.next_u64() % 12 {
        r.latency.record(rng.next_u64() % 600);
    }
    r
}

fn merged(a: &PropertyReport, b: &PropertyReport) -> PropertyReport {
    let mut out = a.clone();
    out.merge(b);
    out
}

#[test]
fn merge_is_associative() {
    let mut rng = TinyRng::fork(0xA550C, 0);
    for case in 0..100 {
        let a = arb_report(&mut rng, "p");
        let b = arb_report(&mut rng, "p");
        let c = arb_report(&mut rng, "p");
        let left = merged(&merged(&a, &b), &c);
        let right = merged(&a, &merged(&b, &c));
        assert_eq!(left, right, "case {case}");
    }
}

#[test]
fn empty_report_is_the_identity_element() {
    let mut rng = TinyRng::fork(0x1D, 0);
    for case in 0..100 {
        let a = arb_report(&mut rng, "p");
        let empty = PropertyReport::new("p".to_owned());
        assert_eq!(merged(&empty, &a), a, "left identity, case {case}");
        assert_eq!(merged(&a, &empty), a, "right identity, case {case}");
    }
}

#[test]
fn counters_add_and_high_water_marks_take_the_maximum() {
    let mut rng = TinyRng::fork(0xC0DE, 0);
    for case in 0..100 {
        let a = arb_report(&mut rng, "p");
        let b = arb_report(&mut rng, "p");
        let m = merged(&a, &b);
        assert_eq!(m.activations, a.activations + b.activations, "case {case}");
        assert_eq!(m.vacuous, a.vacuous + b.vacuous);
        assert_eq!(m.completions, a.completions + b.completions);
        assert_eq!(m.pending, a.pending + b.pending);
        assert_eq!(m.evaluations, a.evaluations + b.evaluations);
        assert_eq!(m.failure_count, a.failure_count + b.failure_count);
        assert_eq!(m.timeout_fails, a.timeout_fails + b.timeout_fails);
        assert_eq!(m.memo_hits, a.memo_hits + b.memo_hits);
        assert_eq!(m.memo_misses, a.memo_misses + b.memo_misses);
        assert_eq!(
            m.max_live_instances,
            a.max_live_instances.max(b.max_live_instances)
        );
        assert_eq!(m.arena_nodes, a.arena_nodes.max(b.arena_nodes));
    }
}

#[test]
fn latency_histograms_merge_component_wise() {
    let mut rng = TinyRng::fork(0x4157, 0);
    for case in 0..100 {
        let a = arb_report(&mut rng, "p");
        let b = arb_report(&mut rng, "p");
        let m = merged(&a, &b);
        assert_eq!(m.latency.count(), a.latency.count() + b.latency.count());
        assert_eq!(m.latency.sum(), a.latency.sum() + b.latency.sum());
        assert_eq!(
            m.latency.max(),
            a.latency.max().max(b.latency.max()),
            "case {case}"
        );
    }
}

#[test]
fn failure_detail_concatenates_in_order_up_to_the_cap() {
    let mut rng = TinyRng::fork(0xFA11, 0);
    let mut acc = PropertyReport::new("p".to_owned());
    let mut expected: Vec<Failure> = Vec::new();
    let mut expected_count = 0u64;
    for _ in 0..20 {
        let next = arb_report(&mut rng, "p");
        expected.extend(next.failures.iter().cloned());
        expected_count += next.failure_count;
        acc.merge(&next);
    }
    expected.truncate(MAX_RECORDED_FAILURES);
    assert_eq!(acc.failures, expected, "first-come detail wins");
    assert_eq!(acc.failures.len(), MAX_RECORDED_FAILURES, "cap reached");
    assert_eq!(acc.failure_count, expected_count, "count is uncapped");
}

#[test]
fn suite_merge_is_associative_with_the_empty_suite_as_identity() {
    let mut rng = TinyRng::fork(0x5017E, 0);
    let suite = |rng: &mut TinyRng| -> CheckReport {
        ["p1", "p2", "p3"]
            .iter()
            .map(|name| arb_report(rng, name))
            .collect()
    };
    for case in 0..50 {
        let a = suite(&mut rng);
        let b = suite(&mut rng);
        let c = suite(&mut rng);
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right, "case {case}");

        let mut adopted = CheckReport::new();
        adopted.merge(&a);
        assert_eq!(adopted, a, "empty accumulator adopts, case {case}");
        adopted.merge(&CheckReport::new());
        assert_eq!(adopted, a, "empty right operand is a no-op");
    }
}

#[test]
fn merged_timeout_fails_track_missed_deadlines_across_runs() {
    let mut rng = TinyRng::fork(0x7E0, 0);
    let mut acc = PropertyReport::new("p".to_owned());
    let mut deadlines = 0u64;
    for _ in 0..10 {
        let run = arb_report(&mut rng, "p");
        deadlines += run.timeout_fails;
        acc.merge(&run);
    }
    assert_eq!(acc.timeout_fails, deadlines);
    assert!(
        acc.timeout_fails <= acc.failure_count,
        "timeouts are a subset of failures"
    );
}
