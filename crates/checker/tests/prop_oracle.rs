//! Randomized equivalence between the online checker (progression
//! monitors + wrapper) and the finite-trace oracle in [`psl::trace`].
//!
//! For random simple-subset properties and random transaction streams, a
//! non-repeating checker's verdict must agree with evaluating the property
//! on the recorded trace at position 0, whenever the checker reached a
//! verdict (completed or failed) before the stream ended.
//!
//! Cases come from a seeded [`TinyRng`] loop (the offline substitute for
//! `proptest`); failure messages carry the case index for reproduction.

use abv_checker::{Binding, Checker, Verdict};
use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use psl::trace::{Step, Trace};
use psl::{Atom, ClockedProperty, EvalContext, Property};
use tinyrng::TinyRng;
use tlmkit::{Transaction, TransactionBus};

const CASES: u64 = 600;

const SIGNALS: &[&str] = &["a", "b", "c"];

/// Replays `(time, values…)` rows as transactions.
struct Replay {
    bus: TransactionBus,
    sigs: Vec<SignalId>,
    rows: Vec<(u64, Vec<u64>)>,
    next: usize,
}

impl Component for Replay {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let (_, values) = &self.rows[self.next];
        for (sig, v) in self.sigs.iter().zip(values) {
            ctx.write(*sig, *v);
        }
        self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
        self.next += 1;
        if let Some(&(t, _)) = self.rows.get(self.next) {
            ctx.schedule_self(t - ev.time.as_ns(), 0);
        }
    }
}

fn gen_atom(rng: &mut TinyRng) -> Property {
    match rng.range_u32(0, 3) {
        0 => Property::Atom(Atom::bool(*rng.pick(SIGNALS))),
        1 => Property::not(Property::Atom(Atom::bool(*rng.pick(SIGNALS)))),
        _ => Property::cmp(*rng.pick(SIGNALS), psl::CmpOp::Eq, rng.range_u64(0, 3)),
    }
}

/// Simple-subset temporal properties over the shared signals, including
/// `next[n]` and `next_ε^τ` (with offsets that are multiples of the 10 ns
/// stream spacing, plus deliberately unaligned ones).
fn gen_property(rng: &mut TinyRng, depth: u32) -> Property {
    if depth == 0 {
        return gen_atom(rng);
    }
    match rng.range_u32(0, 7) {
        0 => gen_property(rng, depth - 1).and(gen_property(rng, depth - 1)),
        1 => gen_atom(rng).or(gen_property(rng, depth - 1)),
        2 => Property::next_n(rng.range_u32(1, 4), gen_property(rng, depth - 1)),
        3 => {
            let tau = rng.range_u32(1, 4);
            let eps = *rng.pick(&[10u64, 20, 30, 15]);
            Property::next_et(tau, eps, gen_property(rng, depth - 1))
        }
        4 => gen_atom(rng).until(gen_property(rng, depth - 1)),
        5 => gen_atom(rng).release(gen_property(rng, depth - 1)),
        _ => gen_atom(rng),
    }
}

/// A transaction stream: strictly increasing times (multiples of 10 ns,
/// with occasional gaps), random signal values.
fn gen_stream(rng: &mut TinyRng) -> Vec<(u64, Vec<u64>)> {
    let mut t = 0;
    (0..rng.range_usize(2, 14))
        .map(|_| {
            t += rng.range_u64(1, 4) * 10;
            (t, (0..SIGNALS.len()).map(|_| rng.range_u64(0, 3)).collect())
        })
        .collect()
}

/// Runs the online checker (non-repeating property) over the stream.
fn online_verdict(property: &Property, rows: &[(u64, Vec<u64>)]) -> (Verdict, u64, u64) {
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let sigs: Vec<SignalId> = SIGNALS.iter().map(|s| sim.add_signal(s, 0)).collect();
    let first = rows[0].0;
    let model = sim.add_component(Replay {
        bus: bus.clone(),
        sigs,
        rows: rows.to_vec(),
        next: 0,
    });
    sim.schedule(SimTime::from_ns(first), model, 0);
    let clocked = ClockedProperty::new(property.clone(), EvalContext::tb());
    let checker = Checker::attach(&mut sim, "p", &clocked, Binding::bus(&bus)).expect("attaches");
    sim.run_to_completion();
    let end = sim.now().as_ns();
    let report = checker.finalize(&mut sim, end);
    (
        report.verdict(),
        report.completions + report.vacuous,
        report.pending,
    )
}

/// Builds the trace the oracle sees (one step per transaction).
fn trace_of(rows: &[(u64, Vec<u64>)]) -> Trace {
    rows.iter()
        .map(|(t, values)| {
            Step::new(
                *t,
                SIGNALS
                    .iter()
                    .zip(values)
                    .map(|(n, v)| ((*n).to_owned(), *v)),
            )
        })
        .collect()
}

fn check_case(p: &Property, rows: &[(u64, Vec<u64>)], label: &str) {
    let (verdict, resolved_ok, pending) = online_verdict(p, rows);
    let trace = trace_of(rows);
    let expected = trace.eval(p, 0).expect("signals all defined");
    if pending == 0 {
        // Fully resolved: verdicts must agree exactly.
        let online_pass = verdict == Verdict::Pass;
        assert_eq!(
            online_pass, expected,
            "{label}: property {p} on rows {rows:?}: online {verdict:?} vs oracle {expected}"
        );
        assert!(resolved_ok >= 1 || verdict == Verdict::Fail, "{label}");
    } else if verdict == Verdict::Fail {
        // Undetermined online ⇒ the oracle may go either way (its
        // end-of-trace conventions decide); a FAIL verdict recorded before
        // the end must still be a real failure though.
        assert!(
            !expected,
            "{label}: online failure must imply oracle failure for {p} on {rows:?}"
        );
    }
}

/// When the online checker reaches a definite verdict before the stream
/// ends, it matches the oracle's evaluation at position 0.
#[test]
fn online_checker_matches_trace_oracle() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x0AC1_E001, case);
        let p = gen_property(&mut rng, 3);
        let rows = gen_stream(&mut rng);
        check_case(&p, &rows, &format!("case {case}"));
    }
}

/// Regression (ex-proptest shrink): a deadline chain whose middle `next`
/// lands between stream events.
#[test]
fn regression_nested_deadline_chain() {
    let p = Property::next_et(
        1,
        10,
        Property::next_n(
            2,
            Property::next_et(1, 30, Property::not(Property::Atom(Atom::bool("b")))),
        ),
    );
    let rows: Vec<(u64, Vec<u64>)> = [10u64, 20, 30, 50, 60]
        .iter()
        .map(|&t| (t, vec![0, 0, 0]))
        .collect();
    check_case(&p, &rows, "regression");
}
