//! Property-based equivalence between the online checker (progression
//! monitors + wrapper) and the finite-trace oracle in [`psl::trace`].
//!
//! For random simple-subset properties and random transaction streams,
//! a non-repeating checker's verdict must agree with evaluating the
//! property on the recorded trace at position 0, whenever the checker
//! reached a verdict (completed or failed) before the stream ended.

use proptest::prelude::*;
use std::collections::HashMap;

use abv_checker::{install_tx_checkers, TxCheckerHost, Verdict};
use desim::{Component, Event, SimCtx, SignalId, SimTime, Simulation};
use psl::trace::{Step, Trace};
use psl::{Atom, ClockedProperty, EvalContext, Property};
use tlmkit::{Transaction, TransactionBus};

const SIGNALS: &[&str] = &["a", "b", "c"];

/// Replays `(time, values…)` rows as transactions.
struct Replay {
    bus: TransactionBus,
    sigs: Vec<SignalId>,
    rows: Vec<(u64, Vec<u64>)>,
    next: usize,
}

impl Component for Replay {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let (_, values) = &self.rows[self.next];
        for (sig, v) in self.sigs.iter().zip(values) {
            ctx.write(*sig, *v);
        }
        self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
        self.next += 1;
        if let Some(&(t, _)) = self.rows.get(self.next) {
            ctx.schedule_self(t - ev.time.as_ns(), 0);
        }
    }
}

fn arb_atom() -> impl Strategy<Value = Property> {
    prop_oneof![
        prop::sample::select(SIGNALS).prop_map(|s| Property::Atom(Atom::bool(s))),
        prop::sample::select(SIGNALS).prop_map(|s| Property::not(Property::Atom(Atom::bool(s)))),
        (prop::sample::select(SIGNALS), 0u64..3).prop_map(|(s, v)| Property::cmp(s, psl::CmpOp::Eq, v)),
    ]
}

/// Simple-subset temporal properties over the shared signals, including
/// `next[n]` and `next_ε^τ` (with offsets that are multiples of the
/// 10 ns stream spacing, plus deliberately unaligned ones).
fn arb_property() -> impl Strategy<Value = Property> {
    let leaf = arb_atom();
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.and(y)),
            (arb_atom(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            (1u32..4, inner.clone()).prop_map(|(n, p)| Property::next_n(n, p)),
            (1u32..4, prop::sample::select(vec![10u64, 20, 30, 15]), inner.clone())
                .prop_map(|(tau, eps, p)| Property::next_et(tau, eps, p)),
            (arb_atom(), inner.clone()).prop_map(|(x, y)| x.until(y)),
            (arb_atom(), inner).prop_map(|(x, y)| x.release(y)),
        ]
    })
}

/// A transaction stream: strictly increasing times (multiples of 10 ns,
/// with occasional gaps), random signal values.
fn arb_stream() -> impl Strategy<Value = Vec<(u64, Vec<u64>)>> {
    prop::collection::vec((1u64..=3, prop::collection::vec(0u64..3, SIGNALS.len())), 2..14)
        .prop_map(|rows| {
            let mut t = 0;
            rows.into_iter()
                .map(|(gap, values)| {
                    t += gap * 10;
                    (t, values)
                })
                .collect()
        })
}

/// Runs the online checker (non-repeating property) over the stream.
fn online_verdict(property: &Property, rows: &[(u64, Vec<u64>)]) -> (Verdict, u64, u64) {
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let sigs: Vec<SignalId> = SIGNALS.iter().map(|s| sim.add_signal(s, 0)).collect();
    let first = rows[0].0;
    let model = sim.add_component(Replay {
        bus: bus.clone(),
        sigs,
        rows: rows.to_vec(),
        next: 0,
    });
    sim.schedule(SimTime::from_ns(first), model, 0);
    let clocked = ClockedProperty::new(property.clone(), EvalContext::tb());
    let hosts =
        install_tx_checkers(&mut sim, &bus, &[("p".to_owned(), clocked)]).expect("installs");
    sim.run_to_completion();
    let end = sim.now().as_ns();
    let report = sim.component_mut::<TxCheckerHost>(hosts[0]).expect("host").finalize(end);
    (report.verdict(), report.completions + report.vacuous, report.pending)
}

/// Builds the trace the oracle sees (one step per transaction).
fn trace_of(rows: &[(u64, Vec<u64>)]) -> Trace {
    rows.iter()
        .map(|(t, values)| {
            Step::new(
                *t,
                SIGNALS.iter().zip(values).map(|(n, v)| ((*n).to_owned(), *v)),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// When the online checker reaches a definite verdict before the
    /// stream ends, it matches the oracle's evaluation at position 0.
    #[test]
    fn online_checker_matches_trace_oracle(p in arb_property(), rows in arb_stream()) {
        let (verdict, resolved_ok, pending) = online_verdict(&p, &rows);
        let trace = trace_of(&rows);
        let map_env: HashMap<String, u64> = HashMap::new();
        let _ = map_env;
        let expected = trace.eval(&p, 0).expect("signals all defined");
        if pending == 0 {
            // Fully resolved: verdicts must agree exactly.
            let online_pass = verdict == Verdict::Pass;
            prop_assert_eq!(
                online_pass, expected,
                "property {} on rows {:?}: online {:?} vs oracle {}",
                &p, &rows, verdict, expected
            );
            prop_assert!(resolved_ok >= 1 || verdict == Verdict::Fail);
        } else {
            // Undetermined online ⇒ the oracle may go either way (its
            // end-of-trace conventions decide); a FAIL verdict recorded
            // before the end must still be a real failure though.
            if verdict == Verdict::Fail {
                prop_assert!(!expected,
                    "online failure must imply oracle failure for {} on {:?}", &p, &rows);
            }
        }
    }
}
