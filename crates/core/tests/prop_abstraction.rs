//! Property-based tests of the abstraction pipeline:
//!
//! - Algorithm III.1 arithmetic (`ε = n × c`, `τ` consecutive);
//! - Fig. 4 soundness for consequence-preserving drops: on any trace where
//!   the original (signal-complete) property holds, the conjunct-dropped
//!   rewrite holds too;
//! - whole-pipeline structural invariants: the abstracted body never
//!   mentions abstracted signals, never contains `next`, and carries a
//!   transaction context.

use abv_core::{abstract_property, AbstractionConfig, Consequence};
use proptest::prelude::*;
use psl::trace::{Step, Trace};
use psl::{Atom, ClockedProperty, CmpOp, EvalContext, Property};

/// Preserved signals and the abstracted one.
const KEPT: &[&str] = &["a", "b", "c"];
const GONE: &str = "hs";

fn arb_atom(include_gone: bool) -> impl Strategy<Value = Atom> {
    let mut names = KEPT.to_vec();
    if include_gone {
        names.push(GONE);
    }
    prop_oneof![
        prop::sample::select(names.clone()).prop_map(Atom::bool),
        (prop::sample::select(names), 0u64..3).prop_map(|(s, v)| Atom::cmp(s, CmpOp::Eq, v)),
    ]
}

/// Simple-subset-style RTL properties (negations on atoms only).
fn arb_rtl_property(include_gone: bool) -> impl Strategy<Value = Property> {
    let leaf = prop_oneof![
        arb_atom(include_gone).prop_map(Property::Atom),
        arb_atom(include_gone).prop_map(|a| Property::not(Property::Atom(a))),
    ];
    leaf.prop_recursive(3, 16, 2, move |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.and(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.or(y)),
            (1u32..4, inner.clone()).prop_map(|(n, p)| Property::next_n(n, p)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.until(y)),
            (inner.clone(), inner.clone()).prop_map(|(x, y)| x.release(y)),
            inner.clone().prop_map(Property::always),
            inner.prop_map(Property::eventually),
        ]
    })
}

/// A 10 ns-tick trace over all signals (including the abstracted one).
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(prop::collection::vec(0u64..3, KEPT.len() + 1), 3..16).prop_map(
        |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, row)| {
                    let mut s = Step::new(10 + 10 * i as u64, std::iter::empty::<(String, u64)>());
                    for (name, v) in KEPT.iter().zip(&row) {
                        s.set(*name, *v);
                    }
                    s.set(GONE, row[KEPT.len()]);
                    s
                })
                .collect()
        },
    )
}

fn cfg() -> AbstractionConfig {
    AbstractionConfig::new(10).abstract_signal(GONE)
}

proptest! {
    /// Structural invariants of the whole pipeline.
    #[test]
    fn abstraction_structural_invariants(p in arb_rtl_property(true)) {
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let a = abstract_property(&clocked, &cfg()).expect("abstractable");
        if let Some(q) = a.result() {
            prop_assert!(q.context.is_transaction());
            prop_assert!(!q.property.signals().contains(&GONE),
                "abstracted signal must not survive: {}", q);
            let mut has_plain_next = false;
            q.property.visit(&mut |node| {
                if matches!(node, Property::Next { .. }) {
                    has_plain_next = true;
                }
            });
            prop_assert!(!has_plain_next, "no un-timed next may survive: {}", q);
        } else {
            prop_assert_eq!(a.consequence(), Consequence::Deleted);
        }
    }

    /// `τ` indices are 1..k consecutive in syntactic order and every `ε`
    /// is a positive multiple of the clock period.
    #[test]
    fn tau_epsilon_wellformed(p in arb_rtl_property(false), period in 1u64..40) {
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let cfg = AbstractionConfig::new(period);
        let a = abstract_property(&clocked, &cfg).expect("abstractable");
        let q = a.result().expect("nothing abstracted away");
        let mut taus = Vec::new();
        q.property.visit(&mut |node| {
            if let Property::NextEt { tau, eps_ns, .. } = node {
                taus.push(*tau);
                assert!(*eps_ns >= period, "eps at least one period");
                assert_eq!(eps_ns % period, 0, "eps multiple of the period");
            }
        });
        let expected: Vec<u32> = (1..=taus.len() as u32).collect();
        prop_assert_eq!(taus, expected);
    }

    /// Consequence-preserving abstraction (Equivalent or Weakened): if the
    /// original holds on a trace, the rewritten *pre-timing* body holds on
    /// the same trace. (Timing substitution is validated separately via
    /// the eps arithmetic and the checker tests; here we compare with the
    /// `next`-preserving rules output by re-running only the Fig. 4 pass.)
    #[test]
    fn weakened_results_are_implied(p in arb_rtl_property(true), t in arb_trace()) {
        let nnf = psl::nnf::to_nnf(&p);
        let pushed = match psl::push_ahead::push_ahead(&nnf) {
            Ok(x) => x,
            Err(_) => return Ok(()),
        };
        let outcome = abv_core::rules::apply(&pushed, &cfg());
        // Only consequence-preserving runs make a claim.
        if outcome.review_drops > 0 {
            return Ok(());
        }
        let Some(rewritten) = outcome.result else { return Ok(()) };
        for pos in 0..t.len() {
            let original = t.eval(&pushed, pos).expect("signals defined");
            if original {
                prop_assert!(
                    t.eval(&rewritten, pos).expect("signals defined"),
                    "conjunct-dropped rewrite must be implied at {}: {} vs {}",
                    pos, &pushed, &rewritten
                );
            }
        }
    }

    /// Deleted properties only ever contain abstracted signals on every
    /// root-to-deletion path: conversely, a property with no abstracted
    /// signal is always Equivalent and textually unchanged except timing.
    #[test]
    fn untouched_properties_are_equivalent(p in arb_rtl_property(false)) {
        let clocked = ClockedProperty::new(p.clone(), EvalContext::clk_pos());
        let a = abstract_property(&clocked, &cfg()).expect("abstractable");
        prop_assert_eq!(a.consequence(), Consequence::Equivalent);
        prop_assert!(a.removed_atoms().is_empty());
        prop_assert!(a.result().is_some());
    }

    /// Abstracting twice is rejected (the result is already TLM).
    #[test]
    fn abstraction_is_not_reapplicable(p in arb_rtl_property(false)) {
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let a = abstract_property(&clocked, &cfg()).expect("abstractable");
        if let Some(q) = a.result() {
            prop_assert!(abstract_property(q, &cfg()).is_err());
        }
    }
}
