//! Randomized tests of the abstraction pipeline:
//!
//! - Algorithm III.1 arithmetic (`ε = n × c`, `τ` consecutive);
//! - Fig. 4 soundness for consequence-preserving drops: on any trace where
//!   the original (signal-complete) property holds, the conjunct-dropped
//!   rewrite holds too;
//! - whole-pipeline structural invariants: the abstracted body never
//!   mentions abstracted signals, never contains `next`, and carries a
//!   transaction context.
//!
//! Cases come from a seeded [`TinyRng`] loop (the offline substitute for
//! `proptest`); failure messages carry the case index for reproduction.

use abv_core::{abstract_property, AbstractionConfig, Consequence};
use psl::trace::{Step, Trace};
use psl::{Atom, ClockedProperty, CmpOp, EvalContext, Property};
use tinyrng::TinyRng;

const CASES: u64 = 400;

/// Preserved signals and the abstracted one.
const KEPT: &[&str] = &["a", "b", "c"];
const GONE: &str = "hs";

fn gen_atom(rng: &mut TinyRng, include_gone: bool) -> Atom {
    let mut names = KEPT.to_vec();
    if include_gone {
        names.push(GONE);
    }
    if rng.flip() {
        Atom::bool(*rng.pick(&names))
    } else {
        Atom::cmp(*rng.pick(&names), CmpOp::Eq, rng.range_u64(0, 3))
    }
}

fn gen_literal(rng: &mut TinyRng, include_gone: bool) -> Property {
    let atom = Property::Atom(gen_atom(rng, include_gone));
    if rng.flip() {
        Property::not(atom)
    } else {
        atom
    }
}

/// Simple-subset-style RTL properties (negations on atoms only).
fn gen_rtl_property(rng: &mut TinyRng, include_gone: bool, depth: u32) -> Property {
    if depth == 0 {
        return gen_literal(rng, include_gone);
    }
    match rng.range_u32(0, 8) {
        0 => gen_rtl_property(rng, include_gone, depth - 1).and(gen_rtl_property(
            rng,
            include_gone,
            depth - 1,
        )),
        1 => gen_rtl_property(rng, include_gone, depth - 1).or(gen_rtl_property(
            rng,
            include_gone,
            depth - 1,
        )),
        2 => Property::next_n(
            rng.range_u32(1, 4),
            gen_rtl_property(rng, include_gone, depth - 1),
        ),
        3 => gen_rtl_property(rng, include_gone, depth - 1).until(gen_rtl_property(
            rng,
            include_gone,
            depth - 1,
        )),
        4 => gen_rtl_property(rng, include_gone, depth - 1).release(gen_rtl_property(
            rng,
            include_gone,
            depth - 1,
        )),
        5 => Property::always(gen_rtl_property(rng, include_gone, depth - 1)),
        6 => Property::eventually(gen_rtl_property(rng, include_gone, depth - 1)),
        _ => gen_literal(rng, include_gone),
    }
}

/// A 10 ns-tick trace over all signals (including the abstracted one).
fn gen_trace(rng: &mut TinyRng) -> Trace {
    (0..rng.range_usize(3, 16))
        .map(|i| {
            let mut s = Step::new(10 + 10 * i as u64, std::iter::empty::<(String, u64)>());
            for name in KEPT {
                s.set(*name, rng.range_u64(0, 3));
            }
            s.set(GONE, rng.range_u64(0, 3));
            s
        })
        .collect()
}

fn cfg() -> AbstractionConfig {
    AbstractionConfig::new(10).abstract_signal(GONE)
}

/// Structural invariants of the whole pipeline.
#[test]
fn abstraction_structural_invariants() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0xC03E_0001, case);
        let p = gen_rtl_property(&mut rng, true, 3);
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let a = abstract_property(&clocked, &cfg()).expect("abstractable");
        if let Some(q) = a.result() {
            assert!(q.context.is_transaction(), "case {case}: {q}");
            assert!(
                !q.property.signals().contains(&GONE),
                "case {case}: abstracted signal must not survive: {q}"
            );
            let mut has_plain_next = false;
            q.property.visit(&mut |node| {
                if matches!(node, Property::Next { .. }) {
                    has_plain_next = true;
                }
            });
            assert!(
                !has_plain_next,
                "case {case}: no un-timed next may survive: {q}"
            );
        } else {
            assert_eq!(a.consequence(), Consequence::Deleted, "case {case}");
        }
    }
}

/// `τ` indices are 1..k consecutive in syntactic order and every `ε` is a
/// positive multiple of the clock period.
#[test]
fn tau_epsilon_wellformed() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0xC03E_0002, case);
        let p = gen_rtl_property(&mut rng, false, 3);
        let period = rng.range_u64(1, 40);
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let cfg = AbstractionConfig::new(period);
        let a = abstract_property(&clocked, &cfg).expect("abstractable");
        let q = a.result().expect("nothing abstracted away");
        let mut taus = Vec::new();
        q.property.visit(&mut |node| {
            if let Property::NextEt { tau, eps_ns, .. } = node {
                taus.push(*tau);
                assert!(*eps_ns >= period, "case {case}: eps at least one period");
                assert_eq!(
                    eps_ns % period,
                    0,
                    "case {case}: eps multiple of the period"
                );
            }
        });
        let expected: Vec<u32> = (1..=taus.len() as u32).collect();
        assert_eq!(taus, expected, "case {case}: {q}");
    }
}

/// Consequence-preserving abstraction (Equivalent or Weakened): if the
/// original holds on a trace, the rewritten *pre-timing* body holds on the
/// same trace. (Timing substitution is validated separately via the eps
/// arithmetic and the checker tests; here we compare with the
/// `next`-preserving rules output by re-running only the Fig. 4 pass.)
#[test]
fn weakened_results_are_implied() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0xC03E_0003, case);
        let p = gen_rtl_property(&mut rng, true, 3);
        let t = gen_trace(&mut rng);
        let nnf = psl::nnf::to_nnf(&p);
        let Ok(pushed) = psl::push_ahead::push_ahead(&nnf) else {
            continue;
        };
        let outcome = abv_core::rules::apply(&pushed, &cfg());
        // Only consequence-preserving runs make a claim.
        if outcome.review_drops > 0 {
            continue;
        }
        let Some(rewritten) = outcome.result else {
            continue;
        };
        for pos in 0..t.len() {
            let original = t.eval(&pushed, pos).expect("signals defined");
            if original {
                assert!(
                    t.eval(&rewritten, pos).expect("signals defined"),
                    "case {case}: conjunct-dropped rewrite must be implied at {pos}: \
                     {pushed} vs {rewritten}"
                );
            }
        }
    }
}

/// Deleted properties only ever contain abstracted signals on every
/// root-to-deletion path: conversely, a property with no abstracted signal
/// is always Equivalent and textually unchanged except timing.
#[test]
fn untouched_properties_are_equivalent() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0xC03E_0004, case);
        let p = gen_rtl_property(&mut rng, false, 3);
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let a = abstract_property(&clocked, &cfg()).expect("abstractable");
        assert_eq!(a.consequence(), Consequence::Equivalent, "case {case}");
        assert!(a.removed_atoms().is_empty(), "case {case}");
        assert!(a.result().is_some(), "case {case}");
    }
}

/// Abstracting twice is rejected (the result is already TLM).
#[test]
fn abstraction_is_not_reapplicable() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0xC03E_0005, case);
        let p = gen_rtl_property(&mut rng, false, 3);
        let clocked = ClockedProperty::new(p, EvalContext::clk_pos());
        let a = abstract_property(&clocked, &cfg()).expect("abstractable");
        if let Some(q) = a.result() {
            assert!(abstract_property(q, &cfg()).is_err(), "case {case}: {q}");
        }
    }
}
