//! Signal abstraction: the Fig. 4 transformation rules (Section III-B).
//!
//! When the RTL-to-TLM abstraction removes control signals (handshake
//! lines, ready-prediction outputs, …), subformulas observing those signals
//! can no longer be evaluated at TLM and must be deleted. Writing `∅` for a
//! deleted subformula, the paper's rules are:
//!
//! ```text
//! a_s        ⇝ ∅        next(a_s)    ⇝ ∅
//! p || ∅     ⇝ p        ∅ || p       ⇝ p
//! p && ∅     ⇝ p        ∅ && p       ⇝ p
//! p until ∅  ⇝ p        ∅ until p    ⇝ ∅
//! p release ∅ ⇝ ∅       ∅ release p  ⇝ p
//! ```
//!
//! `always`/`eventually` follow from their definitions
//! (`always p = false release p`, `eventually p = true until p`):
//! `always ∅ ⇝ ∅` and `eventually ∅ ⇝ true`.
//!
//! When `∅` propagates to the root the whole property is deleted — its
//! semantics depended entirely on the abstracted handshaking protocol.
//!
//! # Logical-consequence tracking
//!
//! In negation normal form every subformula occurs positively, so dropping
//! a *conjunct* (`p && ∅ ⇝ p`) yields a logical consequence of the original
//! property: if the original holds on the RTL model, the result must hold
//! on a timing-equivalent TLM model. Dropping a *disjunct* or an
//! `until`/`release` operand does **not** yield a consequence in general;
//! the paper prescribes human investigation of failures in that case. The
//! returned [`RuleOutcome`] counts both kinds so callers can classify the
//! result (see [`Consequence`](crate::methodology::Consequence)).

use psl::{Atom, Property};

use crate::config::AbstractionConfig;

/// Result of applying the Fig. 4 rules to a property.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleOutcome {
    /// The rewritten property, or `None` if `∅` reached the root and the
    /// whole property was deleted.
    pub result: Option<Property>,
    /// Atoms over abstracted signals that were removed, in syntactic order.
    pub removed_atoms: Vec<Atom>,
    /// Number of consequence-preserving drops (`p && ∅ ⇝ p` and the
    /// `∅ until p ⇝ ∅` / `p release ∅ ⇝ ∅` deletions, which propagate
    /// rather than rewrite).
    pub conjunct_drops: usize,
    /// Number of drops that are *not* guaranteed logical consequences
    /// (`p || ∅ ⇝ p`, `p until ∅ ⇝ p`, `∅ release p ⇝ p`).
    pub review_drops: usize,
}

impl RuleOutcome {
    /// True if no rule fired (the property observes no abstracted signal).
    #[must_use]
    pub fn is_unchanged(&self) -> bool {
        self.removed_atoms.is_empty()
    }
}

/// Applies the Fig. 4 rules, deleting every subformula that observes a
/// signal in `cfg`'s abstracted set.
///
/// The property should be in negation normal form (implication is accepted
/// for totality and handled through its `!lhs || rhs` reading).
///
/// ```
/// use abv_core::{rules::apply, AbstractionConfig};
/// use psl::Property;
///
/// let cfg = AbstractionConfig::new(10).abstract_signal("hs");
/// let p: Property = "always (a && next hs)".parse()?;
/// let out = apply(&p, &cfg);
/// assert_eq!(out.result.expect("kept").to_string(), "always a");
/// assert_eq!(out.conjunct_drops, 1);
/// # Ok::<(), psl::ParseError>(())
/// ```
#[must_use]
pub fn apply(p: &Property, cfg: &AbstractionConfig) -> RuleOutcome {
    let mut outcome = RuleOutcome {
        result: None,
        removed_atoms: Vec::new(),
        conjunct_drops: 0,
        review_drops: 0,
    };
    outcome.result = rewrite(p, cfg, &mut outcome);
    outcome
}

/// Returns the rewritten property or `None` for `∅`.
fn rewrite(p: &Property, cfg: &AbstractionConfig, out: &mut RuleOutcome) -> Option<Property> {
    match p {
        Property::Const(_) => Some(p.clone()),
        Property::Atom(a) => {
            if cfg.is_abstracted(a.signal()) {
                out.removed_atoms.push(a.clone());
                None
            } else {
                Some(p.clone())
            }
        }
        Property::Not(inner) => {
            // `!∅ ⇝ ∅`: a negated abstracted literal disappears with its atom.
            let i = rewrite(inner, cfg, out)?;
            Some(Property::not(i))
        }
        Property::And(a, b) => match (rewrite(a, cfg, out), rewrite(b, cfg, out)) {
            (Some(l), Some(r)) => Some(l.and(r)),
            (Some(x), None) | (None, Some(x)) => {
                out.conjunct_drops += 1;
                Some(x)
            }
            (None, None) => None,
        },
        Property::Or(a, b) => match (rewrite(a, cfg, out), rewrite(b, cfg, out)) {
            (Some(l), Some(r)) => Some(l.or(r)),
            (Some(x), None) | (None, Some(x)) => {
                out.review_drops += 1;
                Some(x)
            }
            (None, None) => None,
        },
        // a -> b reads as !a || b; the disjunct rules apply.
        Property::Implies(a, b) => match (rewrite(a, cfg, out), rewrite(b, cfg, out)) {
            (Some(l), Some(r)) => Some(l.implies(r)),
            (Some(l), None) => {
                out.review_drops += 1;
                Some(Property::not(l))
            }
            (None, Some(r)) => {
                out.review_drops += 1;
                Some(r)
            }
            (None, None) => None,
        },
        Property::Next { n, inner } => {
            let i = rewrite(inner, cfg, out)?;
            Some(Property::next_n(*n, i))
        }
        Property::NextEt { tau, eps_ns, inner } => {
            let i = rewrite(inner, cfg, out)?;
            Some(Property::next_et(*tau, *eps_ns, i))
        }
        Property::Until(a, b) => match (rewrite(a, cfg, out), rewrite(b, cfg, out)) {
            (Some(l), Some(r)) => Some(l.until(r)),
            // p until ∅ ⇝ p
            (Some(l), None) => {
                out.review_drops += 1;
                Some(l)
            }
            // ∅ until p ⇝ ∅
            (None, Some(_)) => {
                out.conjunct_drops += 1;
                None
            }
            (None, None) => None,
        },
        Property::Release(a, b) => match (rewrite(a, cfg, out), rewrite(b, cfg, out)) {
            (Some(l), Some(r)) => Some(l.release(r)),
            // p release ∅ ⇝ ∅
            (Some(_), None) => {
                out.conjunct_drops += 1;
                None
            }
            // ∅ release p ⇝ p
            (None, Some(r)) => {
                out.review_drops += 1;
                Some(r)
            }
            (None, None) => None,
        },
        // always p = false release p: `always ∅ ⇝ ∅`.
        Property::Always(inner) => {
            let i = rewrite(inner, cfg, out)?;
            Some(Property::always(i))
        }
        // eventually p = true until p: `eventually ∅ ⇝ true` by the
        // `p until ∅ ⇝ p` rule.
        Property::Eventually(inner) => match rewrite(inner, cfg, out) {
            Some(i) => Some(Property::eventually(i)),
            None => {
                out.review_drops += 1;
                Some(Property::t())
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> AbstractionConfig {
        AbstractionConfig::new(10)
            .abstract_signal("hs")
            .abstract_signal("hs2")
    }

    fn run(src: &str) -> RuleOutcome {
        apply(&src.parse::<Property>().unwrap(), &cfg())
    }

    fn kept(src: &str) -> String {
        run(src)
            .result
            .expect("property should be kept")
            .to_string()
    }

    #[test]
    fn atom_and_next_atom_delete() {
        assert_eq!(run("hs").result, None);
        assert_eq!(run("next[3] hs").result, None);
        assert_eq!(run("!hs").result, None);
        assert_eq!(run("next_et[1, 30] hs").result, None);
    }

    #[test]
    fn disjunct_rules() {
        assert_eq!(kept("a || hs"), "a");
        assert_eq!(kept("hs || a"), "a");
        assert_eq!(run("a || hs").review_drops, 1);
        assert_eq!(run("hs || hs2").result, None);
    }

    #[test]
    fn conjunct_rules() {
        assert_eq!(kept("a && hs"), "a");
        assert_eq!(kept("hs && a"), "a");
        assert_eq!(run("a && hs").conjunct_drops, 1);
        assert_eq!(run("a && hs").review_drops, 0);
        assert_eq!(run("hs && hs2").result, None);
    }

    #[test]
    fn until_rules() {
        assert_eq!(kept("a until hs"), "a");
        assert_eq!(run("a until hs").review_drops, 1);
        assert_eq!(run("hs until a").result, None);
        assert_eq!(run("hs until a").conjunct_drops, 1);
    }

    #[test]
    fn release_rules() {
        assert_eq!(run("a release hs").result, None);
        assert_eq!(run("a release hs").conjunct_drops, 1);
        assert_eq!(kept("hs release a"), "a");
        assert_eq!(run("hs release a").review_drops, 1);
    }

    #[test]
    fn derived_operators() {
        assert_eq!(run("always hs").result, None);
        assert_eq!(kept("eventually hs"), "true");
        assert_eq!(kept("always (a || hs)"), "always a");
    }

    #[test]
    fn deletion_propagates_to_root() {
        assert_eq!(run("always (next[2] (hs && hs2))").result, None);
    }

    #[test]
    fn untouched_property_reports_unchanged() {
        let out = run("always (a || next b)");
        assert!(out.is_unchanged());
        assert_eq!(out.result.unwrap().to_string(), "always (a || (next b))");
    }

    #[test]
    fn removed_atoms_recorded_in_order() {
        let out = run("(hs && a) || next hs2");
        let names: Vec<_> = out.removed_atoms.iter().map(Atom::signal).collect();
        assert_eq!(names, vec!["hs", "hs2"]);
    }

    #[test]
    fn paper_p3_shape() {
        // p3 body after push-ahead, with the two prediction signals
        // abstracted: the surviving conjunct is next[17] rdy.
        let cfg = AbstractionConfig::new(10)
            .abstract_signal("rdy_next_cycle")
            .abstract_signal("rdy_next_next_cycle");
        let p: Property = "always (!ds || (next[15] rdy_next_next_cycle \
                           && next[16] rdy_next_cycle && next[17] rdy))"
            .parse()
            .unwrap();
        let out = apply(&p, &cfg);
        assert_eq!(
            out.result.unwrap().to_string(),
            "always ((!ds) || (next[17] rdy))"
        );
        // One drop-rule application: (∅ && ∅) && next[17] rdy collapses in
        // a single `∅ && p ⇝ p` step; both removed atoms are recorded.
        assert_eq!(out.conjunct_drops, 1);
        assert_eq!(out.review_drops, 0);
        assert_eq!(out.removed_atoms.len(), 2);
    }

    #[test]
    fn implication_fallback() {
        assert_eq!(kept("hs -> a"), "a");
        assert_eq!(kept("a -> hs"), "!a");
        assert_eq!(run("hs -> hs2").result, None);
    }
}
