//! Algorithm III.1: substitution of `next[n]` chains with `next_ε^τ`.
//!
//! After the push-ahead procedure, every `next` chain in the property is a
//! single `next[n]` applied to a literal. Algorithm III.1 walks those
//! chains in left-to-right order and replaces the `i`-th chain
//! `next[n_i](a_i)` with `next_ε^τ(a_i)` where
//!
//! - `ε = n_i × c` (the RTL clock period `c`, in nanoseconds): the exact
//!   simulation time offset at which `a_i` must be evaluated, and
//! - `τ = i`: the chain's positional index, used by checker generation
//!   (Section IV) to synthesize the operator as if it were `next[τ]`.

use psl::push_ahead::is_pushed;
use psl::Property;

/// Errors returned by [`next_substitution`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NextSubstError {
    /// The property still has `next` operators over non-literals; run
    /// [`psl::push_ahead::push_ahead`] first.
    NotPushed,
    /// The property already contains `next_ε^τ` operators: it has already
    /// been abstracted.
    AlreadyAbstracted,
}

impl std::fmt::Display for NextSubstError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NextSubstError::NotPushed => {
                f.write_str("property must be push-ahead normalized before next substitution")
            }
            NextSubstError::AlreadyAbstracted => {
                f.write_str("property already contains next_et operators")
            }
        }
    }
}

impl std::error::Error for NextSubstError {}

/// Replaces each `next[n](literal)` with `next_ε^τ(literal)` per
/// Algorithm III.1, for an RTL clock period of `clock_period_ns`.
///
/// `next[n]` over a *constant* carries no observation obligation and is
/// folded to the constant itself (exact under the paper's ongoing-simulation
/// assumption); real properties never contain such chains.
///
/// # Errors
///
/// - [`NextSubstError::NotPushed`] if some `next` operand is not a literal;
/// - [`NextSubstError::AlreadyAbstracted`] if the property already contains
///   `next_ε^τ`.
///
/// ```
/// use abv_core::algorithm::next_substitution;
/// use psl::Property;
///
/// // From the paper's p2 walk-through (clock period 10 ns):
/// let p: Property = "always (!ds || ((next (!ds)) until (next[2] rdy)))".parse()?;
/// let q = next_substitution(&p, 10)?;
/// assert_eq!(
///     q.to_string(),
///     "always ((!ds) || ((next_et[1, 10] (!ds)) until (next_et[2, 20] rdy)))"
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn next_substitution(p: &Property, clock_period_ns: u64) -> Result<Property, NextSubstError> {
    if !is_pushed(p) {
        return Err(NextSubstError::NotPushed);
    }
    let mut has_next_et = false;
    p.visit(&mut |node| {
        if matches!(node, Property::NextEt { .. }) {
            has_next_et = true;
        }
    });
    if has_next_et {
        return Err(NextSubstError::AlreadyAbstracted);
    }
    let mut tau = 0u32;
    Ok(substitute(p, clock_period_ns, &mut tau))
}

fn substitute(p: &Property, c: u64, tau: &mut u32) -> Property {
    match p {
        Property::Const(_) | Property::Atom(_) | Property::Not(_) => p.clone(),
        Property::And(a, b) => substitute(a, c, tau).and(substitute(b, c, tau)),
        Property::Or(a, b) => substitute(a, c, tau).or(substitute(b, c, tau)),
        Property::Implies(a, b) => substitute(a, c, tau).implies(substitute(b, c, tau)),
        Property::Until(a, b) => substitute(a, c, tau).until(substitute(b, c, tau)),
        Property::Release(a, b) => substitute(a, c, tau).release(substitute(b, c, tau)),
        Property::Always(inner) => Property::always(substitute(inner, c, tau)),
        Property::Eventually(inner) => Property::eventually(substitute(inner, c, tau)),
        Property::Next { n, inner } => {
            // Push-ahead guarantees `inner` is a literal.
            if matches!(**inner, Property::Const(_)) {
                (**inner).clone()
            } else {
                *tau += 1;
                Property::next_et(*tau, u64::from(*n) * c, (**inner).clone())
            }
        }
        Property::NextEt { .. } => unreachable!("checked by next_substitution"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subst(src: &str, c: u64) -> String {
        next_substitution(&src.parse::<Property>().unwrap(), c)
            .unwrap()
            .to_string()
    }

    #[test]
    fn epsilon_is_n_times_clock_period() {
        assert_eq!(
            subst("next[17] (out != 0)", 10),
            "next_et[1, 170] (out != 0)"
        );
        assert_eq!(
            subst("next[17] (out != 0)", 7),
            "next_et[1, 119] (out != 0)"
        );
    }

    #[test]
    fn tau_counts_chains_left_to_right() {
        assert_eq!(
            subst("(next a) && ((next[2] b) || (next[3] (!c)))", 10),
            "(next_et[1, 10] a) && ((next_et[2, 20] b) || (next_et[3, 30] (!c)))"
        );
    }

    #[test]
    fn paper_p2_example() {
        assert_eq!(
            subst("always (!ds || ((next (!ds)) until (next[2] rdy)))", 10),
            "always ((!ds) || ((next_et[1, 10] (!ds)) until (next_et[2, 20] rdy)))"
        );
    }

    #[test]
    fn until_release_left_untouched() {
        assert_eq!(subst("a until (b release c)", 10), "a until (b release c)");
    }

    #[test]
    fn constant_chains_fold_without_consuming_tau() {
        assert_eq!(
            subst("(next true) && (next[2] a)", 10),
            "true && (next_et[1, 20] a)"
        );
    }

    #[test]
    fn rejects_unpushed() {
        let p: Property = "next (a || b)".parse().unwrap();
        assert_eq!(next_substitution(&p, 10), Err(NextSubstError::NotPushed));
    }

    #[test]
    fn rejects_already_abstracted() {
        let p: Property = "next_et[1, 10] a".parse().unwrap();
        assert_eq!(
            next_substitution(&p, 10),
            Err(NextSubstError::AlreadyAbstracted)
        );
    }
}
