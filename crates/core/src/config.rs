//! Configuration of an RTL-to-TLM property abstraction run.

use std::collections::BTreeSet;

/// Parameters describing how the RTL design was abstracted into the TLM
/// model, needed to abstract its properties consistently.
///
/// Built with a fluent API:
///
/// ```
/// use abv_core::AbstractionConfig;
///
/// let cfg = AbstractionConfig::new(10)
///     .abstract_signal("rdy_next_cycle")
///     .abstract_signal("rdy_next_next_cycle");
/// assert_eq!(cfg.clock_period_ns(), 10);
/// assert!(cfg.is_abstracted("rdy_next_cycle"));
/// assert!(!cfg.is_abstracted("rdy"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AbstractionConfig {
    clock_period_ns: u64,
    abstracted_signals: BTreeSet<String>,
}

impl AbstractionConfig {
    /// Creates a configuration for an RTL design clocked with the given
    /// period (Algorithm III.1's input `c`), with no abstracted signals.
    ///
    /// # Panics
    ///
    /// Panics if `clock_period_ns` is zero.
    #[must_use]
    pub fn new(clock_period_ns: u64) -> AbstractionConfig {
        assert!(clock_period_ns > 0, "clock period must be positive");
        AbstractionConfig {
            clock_period_ns,
            abstracted_signals: BTreeSet::new(),
        }
    }

    /// Declares `signal` as removed by the RTL-to-TLM protocol abstraction
    /// (Section III-B): subformulas observing it will be deleted by the
    /// Fig. 4 rules.
    #[must_use]
    pub fn abstract_signal(mut self, signal: impl Into<String>) -> AbstractionConfig {
        self.abstracted_signals.insert(signal.into());
        self
    }

    /// Declares several signals as abstracted at once.
    #[must_use]
    pub fn abstract_signals<S: Into<String>>(
        mut self,
        signals: impl IntoIterator<Item = S>,
    ) -> AbstractionConfig {
        self.abstracted_signals
            .extend(signals.into_iter().map(Into::into));
        self
    }

    /// The RTL clock period in nanoseconds.
    #[must_use]
    pub fn clock_period_ns(&self) -> u64 {
        self.clock_period_ns
    }

    /// True if `signal` was removed by the protocol abstraction.
    #[must_use]
    pub fn is_abstracted(&self, signal: &str) -> bool {
        self.abstracted_signals.contains(signal)
    }

    /// The abstracted signals, in sorted order.
    pub fn abstracted_signals(&self) -> impl Iterator<Item = &str> {
        self.abstracted_signals.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_signals() {
        let cfg = AbstractionConfig::new(10)
            .abstract_signal("a")
            .abstract_signals(["b", "c"]);
        assert_eq!(
            cfg.abstracted_signals().collect::<Vec<_>>(),
            vec!["a", "b", "c"]
        );
    }

    #[test]
    fn duplicate_signals_are_deduplicated() {
        let cfg = AbstractionConfig::new(10)
            .abstract_signal("a")
            .abstract_signal("a");
        assert_eq!(cfg.abstracted_signals().count(), 1);
    }

    #[test]
    #[should_panic(expected = "clock period must be positive")]
    fn zero_period_rejected() {
        let _ = AbstractionConfig::new(0);
    }
}
