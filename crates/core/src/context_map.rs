//! Def. III.2: mapping RTL clock contexts onto TLM transaction contexts.
//!
//! - The base clock context (`@true`) and the pure clock contexts (`@clk`,
//!   `@clk_pos`, `@clk_neg`) map onto the basic transaction context `T_b`,
//!   which evaluates the property at the end of every TLM transaction.
//! - A guarded context `@(clock_expr && var_expr)` maps onto
//!   `@(T_b && var_expr)`.
//!
//! A guard observing signals removed by the protocol abstraction is itself
//! rewritten with the Fig. 4 rules; if the whole guard is deleted the basic
//! context `T_b` results.

use psl::EvalContext;

use crate::config::AbstractionConfig;
use crate::rules;

/// Errors returned by [`map_context`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContextMapError {
    /// The context is already a transaction context: the property was
    /// already abstracted.
    AlreadyTransaction,
}

impl std::fmt::Display for ContextMapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ContextMapError::AlreadyTransaction => {
                f.write_str("context is already a transaction context")
            }
        }
    }
}

impl std::error::Error for ContextMapError {}

/// Result of a context mapping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MappedContext {
    /// The TLM transaction context.
    pub context: EvalContext,
    /// True if the guard was modified (or deleted) by signal abstraction,
    /// which calls for the same human review as in Section III-B.
    pub guard_needs_review: bool,
}

/// Maps an RTL clock context onto a TLM transaction context (Def. III.2).
///
/// # Errors
///
/// Returns [`ContextMapError::AlreadyTransaction`] when given a transaction
/// context.
///
/// ```
/// use abv_core::{context_map::map_context, AbstractionConfig};
/// use psl::EvalContext;
///
/// let cfg = AbstractionConfig::new(10);
/// let mapped = map_context(&EvalContext::clk_pos(), &cfg)?;
/// assert_eq!(mapped.context, EvalContext::tb());
/// # Ok::<(), abv_core::context_map::ContextMapError>(())
/// ```
pub fn map_context(
    context: &EvalContext,
    cfg: &AbstractionConfig,
) -> Result<MappedContext, ContextMapError> {
    match context {
        EvalContext::Transaction { .. } => Err(ContextMapError::AlreadyTransaction),
        EvalContext::Clock { guard: None, .. } => Ok(MappedContext {
            context: EvalContext::tb(),
            guard_needs_review: false,
        }),
        EvalContext::Clock {
            guard: Some(guard), ..
        } => {
            let outcome = rules::apply(guard, cfg);
            let guard_needs_review = !outcome.is_unchanged();
            let context = match outcome.result {
                Some(g) => EvalContext::tb_guarded(g),
                None => EvalContext::tb(),
            };
            Ok(MappedContext {
                context,
                guard_needs_review,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use psl::{ClockEdge, Property};

    #[test]
    fn pure_clock_contexts_map_to_tb() {
        let cfg = AbstractionConfig::new(10);
        for ctx in [
            EvalContext::clk_true(),
            EvalContext::clk_any(),
            EvalContext::clk_pos(),
            EvalContext::clk_neg(),
        ] {
            let m = map_context(&ctx, &cfg).unwrap();
            assert_eq!(m.context, EvalContext::tb());
            assert!(!m.guard_needs_review);
        }
    }

    #[test]
    fn guard_is_preserved() {
        let cfg = AbstractionConfig::new(10);
        let guard: Property = "mode == 1".parse().unwrap();
        let ctx = EvalContext::clock_guarded(ClockEdge::Pos, guard.clone());
        let m = map_context(&ctx, &cfg).unwrap();
        assert_eq!(m.context, EvalContext::tb_guarded(guard));
        assert!(!m.guard_needs_review);
    }

    #[test]
    fn guard_over_abstracted_signal_is_rewritten() {
        let cfg = AbstractionConfig::new(10).abstract_signal("hs");
        let guard: Property = "mode == 1 && hs".parse().unwrap();
        let ctx = EvalContext::clock_guarded(ClockEdge::Pos, guard);
        let m = map_context(&ctx, &cfg).unwrap();
        assert_eq!(
            m.context,
            EvalContext::tb_guarded("mode == 1".parse().unwrap())
        );
        assert!(m.guard_needs_review);
    }

    #[test]
    fn fully_abstracted_guard_becomes_basic_tb() {
        let cfg = AbstractionConfig::new(10).abstract_signal("hs");
        let ctx = EvalContext::clock_guarded(ClockEdge::Pos, "hs".parse().unwrap());
        let m = map_context(&ctx, &cfg).unwrap();
        assert_eq!(m.context, EvalContext::tb());
        assert!(m.guard_needs_review);
    }

    #[test]
    fn transaction_context_rejected() {
        let cfg = AbstractionConfig::new(10);
        assert_eq!(
            map_context(&EvalContext::tb(), &cfg),
            Err(ContextMapError::AlreadyTransaction)
        );
    }
}
