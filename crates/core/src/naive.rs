//! The *naive* transaction-count scaling rejected by the paper
//! (Section III-A), kept for ablation experiments.
//!
//! The naive approach maps the `n` clock cycles analysed by a `next[n]`
//! operator onto a corresponding number `m` of transactions, substituting
//! `next[n]` with `next[m]` and counting transactions instead of clock
//! cycles. The paper shows why this is not generally applicable:
//!
//! - it requires knowing exactly how many clock cycles each transaction
//!   covers and the exact transaction schedule within the property's
//!   monitoring window, and
//! - an overlapping (unexpected) transaction touching an unrelated part of
//!   the design inserts an extra evaluation point that makes the property
//!   fail inopportunely.
//!
//! The ablation benchmark and the integration tests use this module to
//! reproduce those spurious failures next to the correct `next_ε^τ`
//! abstraction.

use psl::push_ahead::is_pushed;
use psl::Property;

/// Errors returned by [`naive_scale`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveScaleError {
    /// The property must be push-ahead normalized first.
    NotPushed,
    /// `cycles_per_transaction` was zero.
    ZeroRatio,
}

impl std::fmt::Display for NaiveScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaiveScaleError::NotPushed => {
                f.write_str("property must be push-ahead normalized before naive scaling")
            }
            NaiveScaleError::ZeroRatio => f.write_str("cycles per transaction must be positive"),
        }
    }
}

impl std::error::Error for NaiveScaleError {}

/// Rescales every `next[n]` to `next[max(1, round(n / cycles_per_transaction))]`,
/// the transaction count the designer *believes* covers `n` clock cycles.
///
/// # Errors
///
/// - [`NaiveScaleError::NotPushed`] if some `next` operand is not a literal;
/// - [`NaiveScaleError::ZeroRatio`] if `cycles_per_transaction == 0`.
///
/// ```
/// use abv_core::naive::naive_scale;
/// use psl::Property;
///
/// let p: Property = "next[17] (out != 0)".parse()?;
/// // One transaction per 17 cycles, says the (optimistic) designer:
/// assert_eq!(naive_scale(&p, 17)?.to_string(), "next (out != 0)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn naive_scale(p: &Property, cycles_per_transaction: u32) -> Result<Property, NaiveScaleError> {
    if cycles_per_transaction == 0 {
        return Err(NaiveScaleError::ZeroRatio);
    }
    if !is_pushed(p) {
        return Err(NaiveScaleError::NotPushed);
    }
    Ok(rescale(p, cycles_per_transaction))
}

fn rescale(p: &Property, ratio: u32) -> Property {
    match p {
        Property::Const(_) | Property::Atom(_) | Property::Not(_) => p.clone(),
        Property::And(a, b) => rescale(a, ratio).and(rescale(b, ratio)),
        Property::Or(a, b) => rescale(a, ratio).or(rescale(b, ratio)),
        Property::Implies(a, b) => rescale(a, ratio).implies(rescale(b, ratio)),
        Property::Until(a, b) => rescale(a, ratio).until(rescale(b, ratio)),
        Property::Release(a, b) => rescale(a, ratio).release(rescale(b, ratio)),
        Property::Always(inner) => Property::always(rescale(inner, ratio)),
        Property::Eventually(inner) => Property::eventually(rescale(inner, ratio)),
        Property::Next { n, inner } => {
            let m = (n + ratio / 2) / ratio;
            Property::next_n(m.max(1), (**inner).clone())
        }
        Property::NextEt { tau, eps_ns, inner } => {
            Property::next_et(*tau, *eps_ns, rescale(inner, ratio))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rounds_to_nearest_transaction_count() {
        let p: Property = "next[17] a".parse().unwrap();
        assert_eq!(naive_scale(&p, 17).unwrap().to_string(), "next a");
        assert_eq!(naive_scale(&p, 10).unwrap().to_string(), "next[2] a");
        assert_eq!(naive_scale(&p, 1).unwrap().to_string(), "next[17] a");
    }

    #[test]
    fn never_scales_to_zero() {
        let p: Property = "next a".parse().unwrap();
        assert_eq!(naive_scale(&p, 100).unwrap().to_string(), "next a");
    }

    #[test]
    fn rejects_zero_ratio() {
        let p: Property = "next a".parse().unwrap();
        assert_eq!(naive_scale(&p, 0), Err(NaiveScaleError::ZeroRatio));
    }

    #[test]
    fn rejects_unpushed() {
        let p: Property = "next (a && b)".parse().unwrap();
        assert_eq!(naive_scale(&p, 2), Err(NaiveScaleError::NotPushed));
    }
}
