//! Methodology III.1: the end-to-end RTL-to-TLM property abstraction.
//!
//! Pipeline (the order follows the paper's Fig. 3 examples — signal
//! abstraction runs before `next` substitution, so `τ` indices are assigned
//! to the *surviving* chains, matching `q3`'s `next_ε^1`):
//!
//! 1. negation normal form (Def. II.1);
//! 2. push-ahead of `next` operators (Section III-A rules);
//! 3. signal abstraction (Fig. 4 rules, Section III-B);
//! 4. `next[n]` → `next_ε^τ` (Algorithm III.1);
//! 5. clock context → transaction context (Def. III.2).

use std::fmt;

use psl::push_ahead::{push_ahead, PushAheadError};
use psl::{Atom, ClockedProperty};

use crate::algorithm::{next_substitution, NextSubstError};
use crate::config::AbstractionConfig;
use crate::context_map::{map_context, ContextMapError};
use crate::rules;

/// How the abstracted property relates to the original (Section III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Consequence {
    /// No subformula was deleted: by Theorem III.2, if the RTL model
    /// satisfies the original, a timing-equivalent TLM model satisfies the
    /// result.
    Equivalent,
    /// Only consequence-preserving deletions were applied (conjunct drops):
    /// the result is a logical consequence of the original, so it must
    /// still hold on a timing-equivalent TLM model.
    Weakened,
    /// A deletion that is not a guaranteed logical consequence was applied
    /// (disjunct or `until`/`release` operand drop): a TLM failure requires
    /// human investigation — it may indicate a wrong TLM model *or* a
    /// property whose intent was altered by the rules.
    NeedsReview,
    /// The whole property was deleted: its semantics depended entirely on
    /// the abstracted protocol and it is meaningless at TLM.
    Deleted,
}

impl fmt::Display for Consequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Consequence::Equivalent => "equivalent",
            Consequence::Weakened => "weakened (logical consequence)",
            Consequence::NeedsReview => "needs review",
            Consequence::Deleted => "deleted",
        };
        f.write_str(s)
    }
}

/// Report of one property abstraction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Abstraction {
    original: ClockedProperty,
    result: Option<ClockedProperty>,
    consequence: Consequence,
    removed_atoms: Vec<Atom>,
}

impl Abstraction {
    /// The RTL property the abstraction started from.
    #[must_use]
    pub fn original(&self) -> &ClockedProperty {
        &self.original
    }

    /// The abstracted TLM property, or `None` if it was deleted.
    #[must_use]
    pub fn result(&self) -> Option<&ClockedProperty> {
        self.result.as_ref()
    }

    /// Consumes the report, returning the TLM property if kept.
    #[must_use]
    pub fn into_property(self) -> Option<ClockedProperty> {
        self.result
    }

    /// Relationship between original and result.
    #[must_use]
    pub fn consequence(&self) -> Consequence {
        self.consequence
    }

    /// Atoms over abstracted signals removed by the Fig. 4 rules, in
    /// syntactic order.
    #[must_use]
    pub fn removed_atoms(&self) -> &[Atom] {
        &self.removed_atoms
    }

    /// True if checking the result at TLM requires human investigation of
    /// failures (Section III-B).
    #[must_use]
    pub fn needs_review(&self) -> bool {
        self.consequence == Consequence::NeedsReview
    }
}

impl fmt::Display for Abstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.result {
            Some(q) => write!(f, "{} => {} [{}]", self.original, q, self.consequence),
            None => write!(f, "{} => (deleted)", self.original),
        }
    }
}

/// Errors returned by [`abstract_property`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AbstractError {
    /// The input property's context is already a transaction context.
    AlreadyTlm,
    /// The input property contains `next_ε^τ` operators.
    AlreadyAbstracted,
    /// Push-ahead failed (should not happen after NNF; indicates a property
    /// outside the supported grammar).
    PushAhead(PushAheadError),
}

impl fmt::Display for AbstractError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbstractError::AlreadyTlm => f.write_str("property already has a transaction context"),
            AbstractError::AlreadyAbstracted => {
                f.write_str("property already contains next_et operators")
            }
            AbstractError::PushAhead(e) => write!(f, "push-ahead failed: {e}"),
        }
    }
}

impl std::error::Error for AbstractError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            AbstractError::PushAhead(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PushAheadError> for AbstractError {
    fn from(e: PushAheadError) -> AbstractError {
        AbstractError::PushAhead(e)
    }
}

/// Abstracts an RTL property into a TLM property (Methodology III.1).
///
/// Returns an [`Abstraction`] report; the property itself is available via
/// [`Abstraction::result`] and may be `None` if the Fig. 4 rules deleted it
/// entirely.
///
/// # Errors
///
/// - [`AbstractError::AlreadyTlm`] if the property carries a transaction
///   context;
/// - [`AbstractError::AlreadyAbstracted`] if it contains `next_ε^τ`;
/// - [`AbstractError::PushAhead`] if the property is outside the supported
///   grammar.
///
/// ```
/// use abv_core::{abstract_property, AbstractionConfig};
/// use psl::ClockedProperty;
///
/// // Paper property p2 with a 10 ns clock:
/// let p2: ClockedProperty =
///     "always (!ds || (next ((!ds) until next rdy))) @clk_pos".parse()?;
/// let q2 = abstract_property(&p2, &AbstractionConfig::new(10))?;
/// assert_eq!(
///     q2.result().expect("kept").to_string(),
///     "always ((!ds) || ((next_et[1, 10] (!ds)) until (next_et[2, 20] rdy))) @T_b"
/// );
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn abstract_property(
    p: &ClockedProperty,
    cfg: &AbstractionConfig,
) -> Result<Abstraction, AbstractError> {
    if p.context.is_transaction() {
        return Err(AbstractError::AlreadyTlm);
    }
    let mut already = false;
    p.property.visit(&mut |node| {
        if matches!(node, psl::Property::NextEt { .. }) {
            already = true;
        }
    });
    if already {
        return Err(AbstractError::AlreadyAbstracted);
    }

    // Step 1: negation normal form.
    let nnf = psl::nnf::to_nnf(&p.property);
    // Step 2a: push-ahead.
    let pushed = push_ahead(&nnf)?;
    // Step 2b (Section III-B): signal abstraction.
    let outcome = rules::apply(&pushed, cfg);
    // Step 3 (Def. III.2): context mapping. Applied even when the body was
    // deleted, so guard review info is not lost.
    let mapped = match map_context(&p.context, cfg) {
        Ok(m) => m,
        Err(ContextMapError::AlreadyTransaction) => unreachable!("checked above"),
    };

    let consequence = |needs_review: bool, weakened: bool| {
        if needs_review {
            Consequence::NeedsReview
        } else if weakened {
            Consequence::Weakened
        } else {
            Consequence::Equivalent
        }
    };

    let Some(body) = outcome.result else {
        return Ok(Abstraction {
            original: p.clone(),
            result: None,
            consequence: Consequence::Deleted,
            removed_atoms: outcome.removed_atoms,
        });
    };

    // Step 2c (Algorithm III.1): next substitution on the surviving body.
    let body = match next_substitution(&body, cfg.clock_period_ns()) {
        Ok(b) => b,
        Err(NextSubstError::NotPushed | NextSubstError::AlreadyAbstracted) => {
            unreachable!("body is pushed and free of next_et by construction")
        }
    };

    let needs_review = outcome.review_drops > 0 || mapped.guard_needs_review;
    let weakened = outcome.conjunct_drops > 0;
    Ok(Abstraction {
        original: p.clone(),
        result: Some(ClockedProperty::new(body, mapped.context)),
        consequence: consequence(needs_review, weakened),
        removed_atoms: outcome.removed_atoms,
    })
}

/// Re-clocks an RTL property for reuse on a **cycle-accurate** TLM model
/// *without* abstraction: the clock context is mapped onto the basic
/// transaction context (Def. III.2) but the body — including `next[n]`
/// operators — is left unchanged, so `next` counts transactions.
///
/// This is sound only on TLM-CA models, where one transaction corresponds
/// to exactly one clock cycle; it is how the paper's Section V evaluates
/// "checkers synthesized from the RTL properties without abstraction" on
/// the TLM-CA implementations.
///
/// # Errors
///
/// Returns [`AbstractError::AlreadyTlm`] for a transaction-context input.
///
/// ```
/// use abv_core::reuse_at_cycle_accurate;
/// use psl::ClockedProperty;
///
/// let p: ClockedProperty = "always (!ds || next[17] rdy) @clk_pos".parse()?;
/// let q = reuse_at_cycle_accurate(&p)?;
/// assert_eq!(q.to_string(), "always ((!ds) || (next[17] rdy)) @T_b");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn reuse_at_cycle_accurate(p: &ClockedProperty) -> Result<ClockedProperty, AbstractError> {
    match &p.context {
        psl::EvalContext::Transaction { .. } => Err(AbstractError::AlreadyTlm),
        psl::EvalContext::Clock { guard, .. } => {
            let context = match guard {
                None => psl::EvalContext::tb(),
                Some(g) => psl::EvalContext::tb_guarded((**g).clone()),
            };
            Ok(ClockedProperty::new(p.property.clone(), context))
        }
    }
}

/// Abstracts a whole property suite, preserving order.
///
/// # Errors
///
/// Fails on the first property that cannot be abstracted, reporting its
/// index.
pub fn abstract_suite(
    suite: &[ClockedProperty],
    cfg: &AbstractionConfig,
) -> Result<Vec<Abstraction>, (usize, AbstractError)> {
    suite
        .iter()
        .enumerate()
        .map(|(i, p)| abstract_property(p, cfg).map_err(|e| (i, e)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg10() -> AbstractionConfig {
        AbstractionConfig::new(10)
    }

    fn run(src: &str, cfg: &AbstractionConfig) -> Abstraction {
        abstract_property(&src.parse::<ClockedProperty>().unwrap(), cfg).unwrap()
    }

    #[test]
    fn paper_fig3_p1_to_q1() {
        let a = run(
            "always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos",
            &cfg10(),
        );
        assert_eq!(
            a.result().unwrap().to_string(),
            "always (((!ds) || (indata != 0)) || (next_et[1, 170] (out != 0))) @T_b"
        );
        assert_eq!(a.consequence(), Consequence::Equivalent);
    }

    #[test]
    fn paper_fig3_p2_to_q2() {
        let a = run(
            "always (!ds || (next ((!ds) until next rdy))) @clk_pos",
            &cfg10(),
        );
        assert_eq!(
            a.result().unwrap().to_string(),
            "always ((!ds) || ((next_et[1, 10] (!ds)) until (next_et[2, 20] rdy))) @T_b"
        );
        assert_eq!(a.consequence(), Consequence::Equivalent);
    }

    #[test]
    fn paper_fig3_p3_to_q3() {
        let cfg = cfg10()
            .abstract_signal("rdy_next_cycle")
            .abstract_signal("rdy_next_next_cycle");
        let a = run(
            "always (!ds || (next[15](rdy_next_next_cycle) && next[16](rdy_next_cycle) \
             && next[17](rdy))) @clk_pos",
            &cfg,
        );
        assert_eq!(
            a.result().unwrap().to_string(),
            "always ((!ds) || (next_et[1, 170] rdy)) @T_b"
        );
        // Only conjunct drops: the result is a logical consequence.
        assert_eq!(a.consequence(), Consequence::Weakened);
        assert_eq!(a.removed_atoms().len(), 2);
    }

    #[test]
    fn until_release_properties_pass_through_theorem_iii_1() {
        let a = run("always ((!ds) until rdy) @clk_pos", &cfg10());
        assert_eq!(
            a.result().unwrap().to_string(),
            "always ((!ds) until rdy) @T_b"
        );
        assert_eq!(a.consequence(), Consequence::Equivalent);
    }

    #[test]
    fn disjunct_drop_flags_review() {
        let cfg = cfg10().abstract_signal("hs");
        let a = run("always (rdy || hs) @clk_pos", &cfg);
        assert_eq!(a.result().unwrap().to_string(), "always rdy @T_b");
        assert!(a.needs_review());
    }

    #[test]
    fn fully_protocol_dependent_property_is_deleted() {
        let cfg = cfg10().abstract_signal("req").abstract_signal("ack");
        let a = run("always (!req || next ack) @clk_pos", &cfg);
        assert!(a.result().is_none());
        assert_eq!(a.consequence(), Consequence::Deleted);
        assert_eq!(a.removed_atoms().len(), 2);
    }

    #[test]
    fn rejects_tlm_context() {
        let p: ClockedProperty = "always rdy @T_b".parse().unwrap();
        assert_eq!(
            abstract_property(&p, &cfg10()),
            Err(AbstractError::AlreadyTlm)
        );
    }

    #[test]
    fn rejects_already_abstracted_body() {
        let p: ClockedProperty = "always (next_et[1, 10] rdy) @clk_pos".parse().unwrap();
        assert_eq!(
            abstract_property(&p, &cfg10()),
            Err(AbstractError::AlreadyAbstracted)
        );
    }

    #[test]
    fn implication_sugar_is_normalized_first() {
        let a = run(
            "always ((ds && indata == 0) -> next[17](out != 0)) @clk_pos",
            &cfg10(),
        );
        assert_eq!(
            a.result().unwrap().to_string(),
            "always (((!ds) || (indata != 0)) || (next_et[1, 170] (out != 0))) @T_b"
        );
    }

    #[test]
    fn clock_period_scales_epsilon() {
        let a = run(
            "always (next[8] done) @clk_pos",
            &AbstractionConfig::new(25),
        );
        assert_eq!(
            a.result().unwrap().to_string(),
            "always (next_et[1, 200] done) @T_b"
        );
    }

    #[test]
    fn abstract_suite_reports_failing_index() {
        let good: ClockedProperty = "always rdy @clk_pos".parse().unwrap();
        let bad: ClockedProperty = "always rdy @T_b".parse().unwrap();
        let err = abstract_suite(&[good, bad], &cfg10()).unwrap_err();
        assert_eq!(err, (1, AbstractError::AlreadyTlm));
    }

    #[test]
    fn guarded_context_maps_with_guard() {
        let a = run("always rdy @(clk_pos && mode == 1)", &cfg10());
        assert_eq!(
            a.result().unwrap().to_string(),
            "always rdy @(T_b && (mode == 1))"
        );
    }

    #[test]
    fn report_display() {
        let a = run("always rdy @clk_pos", &cfg10());
        let s = a.to_string();
        assert!(s.contains("=>"), "{s}");
        assert!(s.contains("equivalent"), "{s}");
    }
}
