//! RTL-to-TLM property abstraction — the contribution of the DATE 2015
//! paper *"RTL property abstraction for TLM assertion-based verification"*.
//!
//! Given a cycle-accurate RTL property (PSL simple subset) and a
//! timing-equivalent TLM model of the same IP, this crate rewrites the
//! property into a form checkable on an event-based TLM simulation:
//!
//! 1. **Negation normal form** (step 1 of Methodology III.1, via
//!    [`psl::nnf`]);
//! 2. **Push-ahead** of `next` operators (first phase of step 2, via
//!    [`psl::push_ahead`]);
//! 3. **Signal abstraction** (Section III-B, Fig. 4): subformulas over
//!    control signals removed by protocol abstraction are deleted, see
//!    [`rules`];
//! 4. **`next[n]` → `next_ε^τ` substitution** (Algorithm III.1, second
//!    phase of step 2): `ε = n × clock_period`, `τ` = positional index, see
//!    [`algorithm`];
//! 5. **Clock-context → transaction-context mapping** (Def. III.2, step 3),
//!    see [`context_map`].
//!
//! The entry point is [`abstract_property`], which returns an
//! [`Abstraction`] report describing the resulting TLM property (or its
//! deletion) and whether the result is guaranteed to be a logical
//! consequence of the original (Section III-B's discussion).
//!
//! The deliberately broken *naive scaling* alternative discussed in
//! Section III-A (rescaling `next[n]` to transaction counts) is provided in
//! [`naive`] for the ablation experiments.
//!
//! # Example — property `p3` of the paper's Fig. 3
//!
//! ```
//! use abv_core::{abstract_property, AbstractionConfig};
//! use psl::ClockedProperty;
//!
//! let p3: ClockedProperty = "always (!ds || (next[15](rdy_next_next_cycle) \
//!     && next[16](rdy_next_cycle) && next[17](rdy))) @clk_pos".parse()?;
//! let cfg = AbstractionConfig::new(10)
//!     .abstract_signal("rdy_next_cycle")
//!     .abstract_signal("rdy_next_next_cycle");
//! let q3 = abstract_property(&p3, &cfg)?;
//! assert_eq!(
//!     q3.result().expect("q3 is kept").to_string(),
//!     "always ((!ds) || (next_et[1, 170] rdy)) @T_b"
//! );
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod algorithm;
pub mod config;
pub mod context_map;
pub mod methodology;
pub mod naive;
pub mod rules;

pub use config::AbstractionConfig;
pub use methodology::{
    abstract_property, abstract_suite, reuse_at_cycle_accurate, AbstractError, Abstraction,
    Consequence,
};
