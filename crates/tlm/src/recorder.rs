//! Transaction-driven trace capture into [`psl::Trace`].

use desim::{Component, ComponentId, Event, SignalId, SimCtx, Simulation};
use psl::trace::{Step, Trace};

use crate::bus::TransactionBus;

/// Builds a [`psl::Trace`] with one evaluation instant per transaction end,
/// sampling the model's mirror signals — the transaction-context
/// counterpart of `rtlkit`'s clock-edge waveform recorder.
///
/// When several transactions complete at the same instant their samples
/// merge into a single trace step (a [`Trace`] has strictly increasing
/// times); the live checker wrapper, by contrast, treats each transaction
/// as its own evaluation point.
pub struct TxTraceRecorder {
    watch: Vec<(String, SignalId)>,
    trace: Trace,
    last_time: Option<u64>,
}

impl TxTraceRecorder {
    /// Registers a recorder observing `bus` and sampling `signals` at each
    /// transaction end.
    ///
    /// # Panics
    ///
    /// Panics if a watched signal name does not exist.
    pub fn install<S: AsRef<str>>(
        sim: &mut Simulation,
        bus: &TransactionBus,
        signals: impl IntoIterator<Item = S>,
    ) -> ComponentId {
        let watch: Vec<(String, SignalId)> = signals
            .into_iter()
            .map(|n| {
                let n = n.as_ref();
                let id = sim
                    .signal_id(n)
                    .unwrap_or_else(|| panic!("watched signal `{n}` does not exist"));
                (n.to_owned(), id)
            })
            .collect();
        let component = sim.add_component(TxTraceRecorder {
            watch,
            trace: Trace::new(),
            last_time: None,
        });
        bus.subscribe(component, 0);
        component
    }

    /// The trace captured so far.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Extracts a clone of the captured trace from a finished simulation.
    ///
    /// # Panics
    ///
    /// Panics if `component` is not a `TxTraceRecorder` of `sim`.
    #[must_use]
    pub fn take_trace(sim: &Simulation, component: ComponentId) -> Trace {
        sim.component::<TxTraceRecorder>(component)
            .expect("component must be a TxTraceRecorder")
            .trace()
            .clone()
    }
}

impl Component for TxTraceRecorder {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let t = ev.time.as_ns();
        let mut step = Step::new(t, std::iter::empty::<(String, u64)>());
        for (name, id) in &self.watch {
            step.set(name.clone(), ctx.read(*id));
        }
        if self.last_time == Some(t) {
            // Same-instant transaction: replace the previous sample.
            let mut steps: Vec<Step> = self.trace.steps().to_vec();
            steps.pop();
            steps.push(step);
            self.trace = Trace::from_steps(steps).expect("times unchanged");
        } else {
            self.trace
                .push(step)
                .expect("transaction times are monotone");
            self.last_time = Some(t);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::Transaction;
    use desim::SimTime;
    use psl::SignalEnv;

    /// Writes a mirror signal then publishes, mimicking a TLM model.
    struct Model {
        bus: TransactionBus,
        mirror: SignalId,
        value: u64,
    }

    impl Component for Model {
        fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
            self.value += 10;
            ctx.write(self.mirror, self.value);
            self.bus
                .publish(ctx, Transaction::write(0, self.value, ev.time));
        }
    }

    #[test]
    fn one_step_per_transaction_with_committed_mirrors() {
        let mut sim = Simulation::new();
        let bus = TransactionBus::new();
        let mirror = sim.add_signal("out", 0);
        let model = sim.add_component(Model {
            bus: bus.clone(),
            mirror,
            value: 0,
        });
        let rec = TxTraceRecorder::install(&mut sim, &bus, ["out"]);
        sim.schedule(SimTime::from_ns(10), model, 0);
        sim.schedule(SimTime::from_ns(170), model, 0);
        sim.run_to_completion();
        let trace = TxTraceRecorder::take_trace(&sim, rec);
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.steps()[0].time_ns, 10);
        assert_eq!(trace.steps()[0].signal("out"), Some(10));
        assert_eq!(trace.steps()[1].time_ns, 170);
        assert_eq!(trace.steps()[1].signal("out"), Some(20));
    }

    #[test]
    fn same_instant_transactions_merge() {
        let mut sim = Simulation::new();
        let bus = TransactionBus::new();
        let mirror = sim.add_signal("out", 0);
        let model = sim.add_component(Model {
            bus: bus.clone(),
            mirror,
            value: 0,
        });
        let rec = TxTraceRecorder::install(&mut sim, &bus, ["out"]);
        sim.schedule(SimTime::from_ns(10), model, 0);
        sim.schedule(SimTime::from_ns(10), model, 0);
        sim.run_to_completion();
        let trace = TxTraceRecorder::take_trace(&sim, rec);
        assert_eq!(trace.len(), 1);
    }
}
