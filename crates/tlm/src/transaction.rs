//! Transaction records and coding styles.

use std::fmt;

use desim::SimTime;

/// Direction of a transaction, from the initiator's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TxKind {
    /// The initiator sends data to the target (task elaboration request).
    Write,
    /// The initiator fetches results from the target.
    Read,
}

impl fmt::Display for TxKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TxKind::Write => "write",
            TxKind::Read => "read",
        })
    }
}

/// A completed transaction, as observed at its end point.
///
/// The `data` field carries the payload word most relevant to observers;
/// bulk payloads stay inside the models, which expose their I/O state
/// through mirror signals instead (see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transaction {
    /// Direction.
    pub kind: TxKind,
    /// Target-local address (design-defined; 0 when unused).
    pub addr: u64,
    /// Payload word.
    pub data: u64,
    /// Completion time — the `T_b` evaluation instant.
    pub end_time: SimTime,
}

impl Transaction {
    /// A write transaction completing at `end_time`.
    #[must_use]
    pub fn write(addr: u64, data: u64, end_time: SimTime) -> Transaction {
        Transaction {
            kind: TxKind::Write,
            addr,
            data,
            end_time,
        }
    }

    /// A read transaction completing at `end_time`.
    #[must_use]
    pub fn read(addr: u64, data: u64, end_time: SimTime) -> Transaction {
        Transaction {
            kind: TxKind::Read,
            addr,
            data,
            end_time,
        }
    }
}

impl fmt::Display for Transaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{} addr={:#x} data={:#x}",
            self.kind, self.end_time, self.addr, self.data
        )
    }
}

/// TLM coding styles used in the paper's evaluation (Section V).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CodingStyle {
    /// Cycle-accurate TLM: one transaction per clock period, protocol
    /// preserved — the level at which *unabstracted* RTL properties remain
    /// checkable by counting transactions instead of clock cycles.
    CycleAccurate,
    /// Approximately-timed TLM as described in Section V: one write
    /// transaction submitting the inputs and one read transaction fetching
    /// the results.
    ApproximatelyTimedLoose,
    /// Approximately-timed TLM with the additional transactions required
    /// for strict Def. III.1 timing equivalence: one transaction at *every*
    /// instant where a preserved I/O signal changes (strobe release, ready
    /// deassert).
    ApproximatelyTimedStrict,
}

impl CodingStyle {
    /// Short label used in reports and benchmark tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CodingStyle::CycleAccurate => "TLM-CA",
            CodingStyle::ApproximatelyTimedLoose => "TLM-AT",
            CodingStyle::ApproximatelyTimedStrict => "TLM-AT(strict)",
        }
    }
}

impl fmt::Display for CodingStyle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let w = Transaction::write(1, 0xAB, SimTime::from_ns(10));
        assert_eq!(w.kind, TxKind::Write);
        assert_eq!(w.to_string(), "write @10ns addr=0x1 data=0xab");
        let r = Transaction::read(0, 2, SimTime::from_ns(170));
        assert_eq!(r.kind, TxKind::Read);
        assert!(r.to_string().starts_with("read @170ns"));
    }

    #[test]
    fn style_labels() {
        assert_eq!(CodingStyle::CycleAccurate.label(), "TLM-CA");
        assert_eq!(CodingStyle::ApproximatelyTimedLoose.to_string(), "TLM-AT");
        assert_eq!(
            CodingStyle::ApproximatelyTimedStrict.label(),
            "TLM-AT(strict)"
        );
    }
}
