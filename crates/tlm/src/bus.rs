//! The transaction observation channel.

use std::cell::RefCell;
use std::rc::Rc;

use abv_obs::{trace, TraceEvent};
use desim::{ComponentId, SimCtx};

use crate::transaction::Transaction;

/// The trace track (`tid`) carrying one instant per published transaction.
pub const TX_TRACE_TRACK: u64 = 1;

#[derive(Debug, Default)]
struct BusInner {
    observers: Vec<(ComponentId, u64)>,
    last: Option<Transaction>,
    published: u64,
}

/// Broadcast channel carrying transaction-end notifications from a TLM
/// model to its observers (checker wrappers, trace recorders).
///
/// The bus is a cheaply clonable handle (`Rc` internally — the kernel is
/// single-threaded); the model and every observer hold clones. When the
/// model calls [`publish`](TransactionBus::publish) at a transaction's end,
/// each subscribed observer is woken in the next delta cycle of the same
/// timestamp and can fetch the record with [`last`](TransactionBus::last).
///
/// ```
/// use tlmkit::TransactionBus;
///
/// let bus = TransactionBus::new();
/// assert_eq!(bus.published(), 0);
/// assert!(bus.last().is_none());
/// ```
#[derive(Debug, Clone, Default)]
pub struct TransactionBus {
    inner: Rc<RefCell<BusInner>>,
}

impl TransactionBus {
    /// An empty bus with no observers.
    #[must_use]
    pub fn new() -> TransactionBus {
        TransactionBus::default()
    }

    /// Registers `observer` to be woken with an event of the given `kind`
    /// at every published transaction.
    pub fn subscribe(&self, observer: ComponentId, kind: u64) {
        self.inner.borrow_mut().observers.push((observer, kind));
    }

    /// Publishes a completed transaction: stores it as
    /// [`last`](TransactionBus::last) and wakes every observer in the next
    /// delta cycle.
    ///
    /// Models must publish *after* writing their mirror signals in the same
    /// evaluate phase, so observers see the committed post-transaction
    /// state.
    pub fn publish(&self, ctx: &mut SimCtx<'_>, tx: Transaction) {
        trace!(
            ctx.tracer(),
            TraceEvent::instant("tx", 0, TX_TRACE_TRACK, tx.end_time.as_ns())
                .with_arg("kind", tx.kind.to_string())
                .with_arg("addr", tx.addr)
                .with_arg("data", tx.data)
        );
        let mut inner = self.inner.borrow_mut();
        inner.last = Some(tx);
        inner.published += 1;
        for &(observer, kind) in &inner.observers {
            ctx.notify(observer, kind);
        }
    }

    /// The most recently published transaction.
    #[must_use]
    pub fn last(&self) -> Option<Transaction> {
        self.inner.borrow().last
    }

    /// Total number of transactions published.
    #[must_use]
    pub fn published(&self) -> u64 {
        self.inner.borrow().published
    }

    /// Number of subscribed observers.
    #[must_use]
    pub fn observer_count(&self) -> usize {
        self.inner.borrow().observers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transaction::TxKind;
    use desim::{Component, Event, SimTime, Simulation};

    /// Publishes one write transaction when triggered.
    struct Publisher {
        bus: TransactionBus,
    }

    impl Component for Publisher {
        fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
            self.bus.publish(ctx, Transaction::write(0, 42, ev.time));
        }
    }

    /// Records the transactions it observes.
    struct Observer {
        bus: TransactionBus,
        seen: Vec<(u64, u64)>, // (time, data)
    }

    impl Component for Observer {
        fn handle(&mut self, ev: Event, _ctx: &mut SimCtx<'_>) {
            let tx = self.bus.last().expect("woken only after a publish");
            self.seen.push((ev.time.as_ns(), tx.data));
            assert_eq!(tx.kind, TxKind::Write);
        }
    }

    #[test]
    fn publish_wakes_observers_same_timestamp() {
        let mut sim = Simulation::new();
        let bus = TransactionBus::new();
        let publisher = sim.add_component(Publisher { bus: bus.clone() });
        let observer = sim.add_component(Observer {
            bus: bus.clone(),
            seen: Vec::new(),
        });
        bus.subscribe(observer, 7);
        sim.schedule(SimTime::from_ns(30), publisher, 0);
        sim.run_to_completion();
        let obs: &Observer = sim.component(observer).unwrap();
        assert_eq!(obs.seen, vec![(30, 42)]);
        assert_eq!(bus.published(), 1);
        assert_eq!(bus.observer_count(), 1);
    }

    #[test]
    fn multiple_observers_all_woken() {
        let mut sim = Simulation::new();
        let bus = TransactionBus::new();
        let publisher = sim.add_component(Publisher { bus: bus.clone() });
        let o1 = sim.add_component(Observer {
            bus: bus.clone(),
            seen: Vec::new(),
        });
        let o2 = sim.add_component(Observer {
            bus: bus.clone(),
            seen: Vec::new(),
        });
        bus.subscribe(o1, 1);
        bus.subscribe(o2, 2);
        sim.schedule(SimTime::from_ns(10), publisher, 0);
        sim.schedule(SimTime::from_ns(20), publisher, 0);
        sim.run_to_completion();
        assert_eq!(sim.component::<Observer>(o1).unwrap().seen.len(), 2);
        assert_eq!(sim.component::<Observer>(o2).unwrap().seen.len(), 2);
        assert_eq!(bus.published(), 2);
    }
}
