//! `tlmkit` — transaction-level modelling layer on top of [`desim`].
//!
//! Mirrors the subset of TLM the paper relies on:
//!
//! - [`Transaction`] records (`read`/`write`, address, data, completion
//!   time) — the TLM generic-payload stand-in;
//! - [`TransactionBus`]: the observation channel between a model and its
//!   verification environment. A model publishes a record when a
//!   transaction *ends*; every subscribed observer (checker wrapper, trace
//!   recorder) is woken in the next delta cycle with the record available.
//!   This realizes the paper's basic transaction context `T_b`, which
//!   "evaluates q at the end of every TLM transaction" (Def. III.2);
//! - [`TxTraceRecorder`]: builds a [`psl::Trace`] with one step per
//!   transaction end, sampling the model's mirror signals — the TLM
//!   counterpart of `rtlkit`'s waveform recorder;
//! - [`CodingStyle`]: the TLM coding styles of the paper's evaluation
//!   (cycle-accurate and approximately-timed, the latter in a *loose* and a
//!   *strict* timing-equivalence variant — see DESIGN.md §5b).
//!
//! Models keep a set of kernel signals mirroring their I/O interface
//! ("preserved signals" in the paper's terms); observers evaluate property
//! atoms against those mirrors at transaction boundaries.

mod bus;
mod recorder;
mod transaction;

pub use bus::{TransactionBus, TX_TRACE_TRACK};
pub use recorder::TxTraceRecorder;
pub use transaction::{CodingStyle, Transaction, TxKind};
