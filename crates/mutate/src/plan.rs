//! Declarative mutation plans.
//!
//! A [`MutationPlan`] names the slice of the mutation space to explore —
//! which designs, which abstraction levels, the workload size and the base
//! seed — and expands it into a full `(design × fault × level)` campaign
//! grid. Expansion is design-major, then fault, then level, so the kill
//! matrix folds back out of the campaign report by walking the same order.

use abv_campaign::{CampaignPlan, CellSpec, CheckerMode};
use designs::{AbsLevel, DesignKind, Fault};
use tinyrng::TinyRng;

/// Stream tag for deriving per-design bit-flip positions from the plan
/// seed (arbitrary constant; fixed so plans are reproducible).
const BIT_FLIP_STREAM: u64 = 0xB17_F11B;

/// Which slice of the mutation space a campaign explores.
///
/// ```
/// use abv_mutate::MutationPlan;
/// use designs::DesignKind;
///
/// let plan = MutationPlan::new().design(DesignKind::Fir).size(4);
/// assert_eq!(plan.mutants(DesignKind::Fir).len(), 6);
/// ```
#[derive(Debug, Clone)]
pub struct MutationPlan {
    /// Designs to mutate (default: all three IPs).
    pub designs: Vec<DesignKind>,
    /// Abstraction levels to run every mutant at (default: RTL, TLM-CA,
    /// TLM-AT).
    pub levels: Vec<AbsLevel>,
    /// Workload size per run (requests / pixels / samples).
    pub size: usize,
    /// Base seed: drives the workloads (via the campaign's per-run seed
    /// fork) and the seeded bit-flip positions.
    pub seed: u64,
}

impl Default for MutationPlan {
    fn default() -> MutationPlan {
        MutationPlan::new()
    }
}

impl MutationPlan {
    /// The full-catalogue plan: every IP, every shared level, workload
    /// size 8, seed 2015.
    #[must_use]
    pub fn new() -> MutationPlan {
        MutationPlan {
            designs: DesignKind::ALL.to_vec(),
            levels: AbsLevel::ALL.to_vec(),
            size: 8,
            seed: 2015,
        }
    }

    /// Restricts the plan to one design.
    #[must_use]
    pub fn design(mut self, design: DesignKind) -> MutationPlan {
        self.designs = vec![design];
        self
    }

    /// Restricts the plan to one abstraction level.
    #[must_use]
    pub fn level(mut self, level: AbsLevel) -> MutationPlan {
        self.levels = vec![level];
        self
    }

    /// Sets the workload size per run.
    #[must_use]
    pub fn size(mut self, size: usize) -> MutationPlan {
        self.size = size;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> MutationPlan {
        self.seed = seed;
        self
    }

    /// The mutants of `design` under this plan: the design's fault
    /// catalogue (baseline first) with bit-flip positions seeded from the
    /// plan seed, so two plans with the same seed flip the same bit.
    #[must_use]
    pub fn mutants(&self, design: DesignKind) -> Vec<Fault> {
        let stream = BIT_FLIP_STREAM ^ design as u64;
        let bit = (TinyRng::fork(self.seed, stream).next_u64() % 8) as u8;
        Fault::catalogue(design)
            .into_iter()
            .map(|fault| match fault {
                Fault::BitFlip { .. } => Fault::BitFlip { bit },
                other => other,
            })
            .collect()
    }

    /// Expands the plan into its campaign grid: one cell per
    /// `(design, fault, level)` triple, design-major then fault then
    /// level, each installing the expected-passing suite so every failure
    /// is a genuine detection.
    #[must_use]
    pub fn campaign_plan(&self) -> CampaignPlan {
        let mut plan = CampaignPlan::new("mutation")
            .runs(1)
            .size(self.size)
            .seed(self.seed);
        for &design in &self.designs {
            for fault in self.mutants(design) {
                for &level in &self.levels {
                    plan = plan.cell_spec(
                        CellSpec::new(design, level, CheckerMode::ExpectedPassing)
                            .with_fault(fault),
                    );
                }
            }
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_covers_the_full_catalogue() {
        let plan = MutationPlan::new();
        let campaign = plan.campaign_plan();
        let mutants: usize = DesignKind::ALL
            .iter()
            .map(|&d| Fault::catalogue(d).len())
            .sum();
        assert_eq!(campaign.cells.len(), mutants * AbsLevel::ALL.len());
        assert_eq!(campaign.runs_per_cell, 1);
        campaign.validate().expect("every catalogued cell builds");
    }

    #[test]
    fn expansion_is_design_major_then_fault_then_level() {
        let plan = MutationPlan::new();
        let cells = plan.campaign_plan().cells;
        assert_eq!(cells[0].design, DesignKind::Des56);
        assert_eq!(cells[0].fault, Fault::None);
        assert_eq!(cells[0].level, AbsLevel::Rtl);
        assert_eq!(cells[1].level, AbsLevel::TlmCa);
        assert_eq!(cells[2].level, AbsLevel::TlmAt);
        assert_eq!(cells[3].fault, Fault::LatencyShort);
        assert_eq!(cells[3].level, AbsLevel::Rtl);
    }

    #[test]
    fn bit_flip_positions_are_seeded_and_stable() {
        let a = MutationPlan::new().seed(42);
        let b = MutationPlan::new().seed(42);
        assert_eq!(a.mutants(DesignKind::Fir), b.mutants(DesignKind::Fir));
        let bit_of = |plan: &MutationPlan, design| {
            plan.mutants(design)
                .into_iter()
                .find_map(|f| match f {
                    Fault::BitFlip { bit } => Some(bit),
                    _ => None,
                })
                .expect("catalogue has a bit flip")
        };
        assert!(bit_of(&a, DesignKind::ColorConv) < 8);
        assert!(bit_of(&a, DesignKind::Fir) < 8);
    }

    #[test]
    fn narrowed_plan_expands_only_its_slice() {
        let plan = MutationPlan::new()
            .design(DesignKind::ColorConv)
            .level(AbsLevel::Rtl);
        let cells = plan.campaign_plan().cells;
        assert_eq!(cells.len(), Fault::catalogue(DesignKind::ColorConv).len());
        assert!(cells
            .iter()
            .all(|c| c.design == DesignKind::ColorConv && c.level == AbsLevel::Rtl));
    }
}
