//! Schema-stable JSON rendering of a [`KillMatrix`].
//!
//! Hand-rolled (the workspace is dependency-free) and deliberately built
//! only from scheduling-independent fields — no wall-clock, no worker
//! count — so the same plan renders **byte-identical** JSON at any worker
//! count. Consumers can rely on the `schema` tag for compatibility.

use std::fmt::Write as _;

use designs::Fault;

use crate::matrix::KillMatrix;

/// The schema tag emitted in every document.
pub const SCHEMA: &str = "rtl2tlm-kill-matrix-v1";

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl KillMatrix {
    /// Renders the matrix as a stable JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let o = &mut out;
        let _ = write!(o, "{{\"schema\":\"{SCHEMA}\"");
        let _ = write!(o, ",\"size\":{},\"seed\":{}", self.size, self.seed);
        let _ = write!(o, ",\"levels\":[");
        for (i, level) in self.levels.iter().enumerate() {
            let comma = if i > 0 { "," } else { "" };
            let _ = write!(o, "{comma}\"{}\"", level.label());
        }
        let _ = write!(o, "],\"designs\":[");
        for (di, dm) in self.designs.iter().enumerate() {
            let comma = if di > 0 { "," } else { "" };
            let _ = write!(o, "{comma}{{\"design\":\"{}\"", dm.design.label());
            let _ = write!(o, ",\"mutation_score\":{{");
            for (li, &level) in self.levels.iter().enumerate() {
                let comma = if li > 0 { "," } else { "" };
                let (killed, total) = dm.mutation_score(level);
                let _ = write!(
                    o,
                    "{comma}\"{}\":{{\"killed\":{killed},\"total\":{total}}}",
                    level.label()
                );
            }
            let _ = write!(o, "}},\"mutants\":[");
            for (mi, row) in dm.mutants.iter().enumerate() {
                let comma = if mi > 0 { "," } else { "" };
                let _ = write!(
                    o,
                    "{comma}{{\"fault\":\"{}\",\"baseline\":{},\"cells\":[",
                    escape(&row.fault.to_string()),
                    row.fault == Fault::None
                );
                for (ci, cell) in row.cells.iter().enumerate() {
                    let comma = if ci > 0 { "," } else { "" };
                    let _ = write!(
                        o,
                        "{comma}{{\"level\":\"{}\",\"killed\":{},\"failures\":{},\"timeout_fails\":{}",
                        cell.level.label(),
                        cell.killed,
                        cell.failures,
                        cell.timeout_fails
                    );
                    let _ = write!(o, ",\"failing_properties\":[");
                    for (fi, name) in cell.failing_properties().iter().enumerate() {
                        let comma = if fi > 0 { "," } else { "" };
                        let _ = write!(o, "{comma}\"{}\"", escape(name));
                    }
                    let _ = write!(o, "],\"verdicts\":{{");
                    for (vi, v) in cell.verdicts.iter().enumerate() {
                        let comma = if vi > 0 { "," } else { "" };
                        let _ = write!(
                            o,
                            "{comma}\"{}\":\"{}\"",
                            escape(&v.property),
                            if v.pass { "pass" } else { "fail" }
                        );
                    }
                    let _ = write!(o, "}}}}");
                }
                let _ = write!(o, "]}}");
            }
            let _ = write!(o, "]}}");
        }
        let _ = write!(o, "],\"baseline_clean\":{}", self.baseline_clean());
        for (key, diffs) in [
            ("regressions", self.detection_regressions()),
            ("gains", self.detection_gains()),
        ] {
            let _ = write!(o, ",\"{key}\":[");
            for (i, d) in diffs.iter().enumerate() {
                let comma = if i > 0 { "," } else { "" };
                let _ = write!(
                    o,
                    "{comma}{{\"design\":\"{}\",\"fault\":\"{}\",\"killed_at\":\"{}\",\"survives_at\":\"{}\"}}",
                    d.design.label(),
                    escape(&d.fault.to_string()),
                    d.killed_at.label(),
                    d.survives_at.label()
                );
            }
            let _ = write!(o, "]");
        }
        let _ = write!(o, "}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::run_mutation;
    use crate::plan::MutationPlan;
    use abv_campaign::TraceSettings;
    use designs::{AbsLevel, DesignKind};

    fn tiny_matrix() -> KillMatrix {
        let plan = MutationPlan::new()
            .design(DesignKind::Fir)
            .level(AbsLevel::Rtl)
            .size(3)
            .seed(11);
        run_mutation(&plan, 1, TraceSettings::off())
            .expect("valid plan")
            .matrix
    }

    #[test]
    fn json_is_schema_tagged_and_balanced() {
        let json = tiny_matrix().to_json();
        assert!(json.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "balanced braces"
        );
        assert!(json.contains("\"baseline_clean\":true"));
        assert!(json.contains("\"regressions\":[]"));
        assert!(json.contains("\"fault\":\"latency-short\""));
        assert!(json.contains("\"verdicts\":{"));
    }

    #[test]
    fn json_is_independent_of_worker_count() {
        let plan = MutationPlan::new()
            .design(DesignKind::ColorConv)
            .size(3)
            .seed(5);
        let solo = run_mutation(&plan, 1, TraceSettings::off()).expect("valid plan");
        let pooled = run_mutation(&plan, 8, TraceSettings::off()).expect("valid plan");
        assert_eq!(solo.matrix.to_json(), pooled.matrix.to_json());
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }
}
