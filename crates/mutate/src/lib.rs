//! `abv-mutate` — the mutation-testing subsystem.
//!
//! The paper validates its TLM checkers by injecting faults into the IPs
//! and confirming the reused assertions still fire (Section V, "faulty
//! designs"). This crate systematises that experiment:
//!
//! - **catalogue**: every IP exposes a design-independent fault catalogue
//!   ([`designs::Fault::catalogue`]) — latency shifts, payload
//!   corruption, dropped/duplicated transactions, stuck control signals,
//!   seeded bit flips.
//! - **plan** ([`MutationPlan`]): the slice of the mutation space to run
//!   — designs × levels × catalogue — expanded into a deterministic
//!   [`abv_campaign`] grid (expected-passing suites only, so every
//!   failure is a genuine detection).
//! - **kill matrix** ([`KillMatrix`], via [`run_mutation`]): per-property
//!   × per-mutant verdicts at every level, per-level mutation scores and
//!   the cross-level differential — mutants killed at RTL but escaping at
//!   TLM (detection power lost to abstraction) or vice versa. Under
//!   Theorem III.1 the AT-compatible suite should lose nothing; the
//!   differential is the empirical check.
//!
//! ```
//! use abv_campaign::TraceSettings;
//! use abv_mutate::{run_mutation, MutationPlan};
//! use designs::{AbsLevel, DesignKind};
//!
//! let plan = MutationPlan::new().design(DesignKind::Fir).size(4).seed(7);
//! let outcome = run_mutation(&plan, 2, TraceSettings::off()).unwrap();
//! assert!(outcome.matrix.baseline_clean());
//! let fir = outcome.matrix.design(DesignKind::Fir).unwrap();
//! assert_eq!(fir.mutation_score(AbsLevel::Rtl), (5, 5));
//! assert!(outcome.matrix.detection_regressions().is_empty());
//! ```

mod json;
mod matrix;
mod plan;

pub use json::SCHEMA;
pub use matrix::{
    run_mutation, DesignMatrix, Differential, KillMatrix, MutantCell, MutantRow, MutationOutcome,
    PropertyVerdict,
};
pub use plan::MutationPlan;
