//! The kill matrix: per-mutant × per-level verdicts and their
//! cross-level differential.
//!
//! Executing a [`MutationPlan`](crate::MutationPlan) runs every
//! `(design, fault, level)` cell through the campaign engine and folds the
//! per-cell check reports into a [`KillMatrix`]: which properties failed
//! against which mutant at which level, whether each mutant is *killed*
//! (any expected-passing property fails), the mutation score per level,
//! and the differential — mutants whose detection differs between RTL and
//! a TLM level, the abstraction-induced blind spots Theorem III.1 rules
//! out for AT-compatible properties.

use std::fmt;

use abv_campaign::{run_campaign_with, CampaignReport, CellReport, PlanError, TraceSettings};
use abv_obs::TraceEvent;
use designs::{AbsLevel, DesignKind, Fault};

use crate::plan::MutationPlan;

/// One property's verdict against one mutant at one level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyVerdict {
    /// Property display name.
    pub property: String,
    /// True if the property held over the whole run.
    pub pass: bool,
    /// Total failures of the property.
    pub failures: u64,
    /// Failures that were missed `next_ε^τ` deadlines.
    pub timeout_fails: u64,
}

/// One mutant's outcome at one abstraction level.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutantCell {
    /// The abstraction level the mutant ran at.
    pub level: AbsLevel,
    /// True if any expected-passing property failed.
    pub killed: bool,
    /// Total failures across the suite.
    pub failures: u64,
    /// Failures that were missed deadlines (the wrapper's timeout path).
    pub timeout_fails: u64,
    /// Per-property verdicts, in installation order.
    pub verdicts: Vec<PropertyVerdict>,
}

impl MutantCell {
    fn from_cell(cell: &CellReport) -> MutantCell {
        let verdicts: Vec<PropertyVerdict> = cell
            .report
            .properties
            .iter()
            .map(|p| PropertyVerdict {
                property: p.name.clone(),
                pass: p.failure_count == 0,
                failures: p.failure_count,
                timeout_fails: p.timeout_fails,
            })
            .collect();
        MutantCell {
            level: cell.spec.level,
            killed: cell.report.total_failures() > 0,
            failures: cell.report.total_failures(),
            timeout_fails: verdicts.iter().map(|v| v.timeout_fails).sum(),
            verdicts,
        }
    }

    /// Names of the properties that failed (the mutant's killers).
    #[must_use]
    pub fn failing_properties(&self) -> Vec<&str> {
        self.verdicts
            .iter()
            .filter(|v| !v.pass)
            .map(|v| v.property.as_str())
            .collect()
    }
}

/// One mutant's outcomes across all plan levels.
#[derive(Debug, Clone)]
pub struct MutantRow {
    /// The injected fault ([`Fault::None`] is the baseline row).
    pub fault: Fault,
    /// Per-level outcomes, in plan level order.
    pub cells: Vec<MutantCell>,
}

impl MutantRow {
    /// The outcome at `level`, if the plan ran it.
    #[must_use]
    pub fn cell(&self, level: AbsLevel) -> Option<&MutantCell> {
        self.cells.iter().find(|c| c.level == level)
    }

    /// True if the mutant was killed at every level it ran at.
    #[must_use]
    pub fn killed_everywhere(&self) -> bool {
        self.cells.iter().all(|c| c.killed)
    }
}

/// One design's slice of the kill matrix.
#[derive(Debug, Clone)]
pub struct DesignMatrix {
    /// The mutated IP.
    pub design: DesignKind,
    /// One row per catalogued fault, baseline first.
    pub mutants: Vec<MutantRow>,
}

impl DesignMatrix {
    /// The row of `fault`, if catalogued.
    #[must_use]
    pub fn mutant(&self, fault: Fault) -> Option<&MutantRow> {
        self.mutants.iter().find(|m| m.fault == fault)
    }

    /// The baseline ([`Fault::None`]) row.
    ///
    /// # Panics
    ///
    /// Panics if the matrix has no baseline row — every catalogue starts
    /// with one.
    #[must_use]
    pub fn baseline(&self) -> &MutantRow {
        self.mutant(Fault::None).expect("catalogue has a baseline")
    }

    /// `(killed, total)` over the non-baseline mutants at `level`.
    #[must_use]
    pub fn mutation_score(&self, level: AbsLevel) -> (usize, usize) {
        let rows = self.mutants.iter().filter(|m| m.fault != Fault::None);
        rows.filter_map(|m| m.cell(level))
            .fold((0, 0), |(killed, total), cell| {
                (killed + usize::from(cell.killed), total + 1)
            })
    }
}

/// A cross-level detection difference: a mutant killed at `killed_at` but
/// surviving at `survives_at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Differential {
    /// The mutated IP.
    pub design: DesignKind,
    /// The injected fault.
    pub fault: Fault,
    /// Level where the mutant is detected.
    pub killed_at: AbsLevel,
    /// Level where it escapes.
    pub survives_at: AbsLevel,
}

impl fmt::Display for Differential {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} killed at {} but survives at {}",
            self.design.label(),
            self.fault,
            self.killed_at.label(),
            self.survives_at.label()
        )
    }
}

/// The full `(design × fault × level)` verdict matrix of one mutation
/// campaign.
#[derive(Debug, Clone)]
pub struct KillMatrix {
    /// Workload size per run, echoed from the plan.
    pub size: usize,
    /// Base seed, echoed from the plan.
    pub seed: u64,
    /// Levels every mutant ran at, in plan order.
    pub levels: Vec<AbsLevel>,
    /// Per-design slices, in plan order.
    pub designs: Vec<DesignMatrix>,
}

impl KillMatrix {
    /// Folds a campaign report back into the matrix. `report` must come
    /// from executing `plan.campaign_plan()` — cells are consumed in the
    /// same design-major → fault → level order the plan emitted them.
    ///
    /// # Panics
    ///
    /// Panics if the report's cell grid does not match the plan's
    /// expansion.
    #[must_use]
    pub fn fold(plan: &MutationPlan, report: &CampaignReport) -> KillMatrix {
        let mut cells = report.cells.iter();
        let designs = plan
            .designs
            .iter()
            .map(|&design| DesignMatrix {
                design,
                mutants: plan
                    .mutants(design)
                    .into_iter()
                    .map(|fault| MutantRow {
                        fault,
                        cells: plan
                            .levels
                            .iter()
                            .map(|&level| {
                                let cell = cells.next().expect("report matches plan grid");
                                assert_eq!(
                                    (cell.spec.design, cell.spec.fault, cell.spec.level),
                                    (design, fault, level),
                                    "report cells follow plan expansion order"
                                );
                                MutantCell::from_cell(cell)
                            })
                            .collect(),
                    })
                    .collect(),
            })
            .collect();
        assert!(cells.next().is_none(), "report has no extra cells");
        KillMatrix {
            size: plan.size,
            seed: plan.seed,
            levels: plan.levels.clone(),
            designs,
        }
    }

    /// The slice of `design`, if the plan ran it.
    #[must_use]
    pub fn design(&self, design: DesignKind) -> Option<&DesignMatrix> {
        self.designs.iter().find(|d| d.design == design)
    }

    /// True if every baseline row is failure-free at every level — the
    /// precondition for reading kills as detections.
    #[must_use]
    pub fn baseline_clean(&self) -> bool {
        self.designs
            .iter()
            .all(|d| d.baseline().cells.iter().all(|c| c.failures == 0))
    }

    /// Mutants killed at RTL but escaping at some TLM level — detection
    /// power *lost* to abstraction.
    #[must_use]
    pub fn detection_regressions(&self) -> Vec<Differential> {
        self.differentials(|rtl, tlm| rtl.killed && !tlm.killed)
    }

    /// Mutants escaping at RTL but killed at some TLM level — detection
    /// power *gained* (rare; usually a sampling artefact worth review).
    #[must_use]
    pub fn detection_gains(&self) -> Vec<Differential> {
        self.differentials(|rtl, tlm| !rtl.killed && tlm.killed)
    }

    fn differentials(
        &self,
        select: impl Fn(&MutantCell, &MutantCell) -> bool,
    ) -> Vec<Differential> {
        let mut out = Vec::new();
        for dm in &self.designs {
            for row in dm.mutants.iter().filter(|m| m.fault != Fault::None) {
                let Some(rtl) = row.cell(AbsLevel::Rtl) else {
                    continue;
                };
                for tlm in row.cells.iter().filter(|c| c.level != AbsLevel::Rtl) {
                    if select(rtl, tlm) {
                        let (killed_at, survives_at) = if rtl.killed {
                            (rtl.level, tlm.level)
                        } else {
                            (tlm.level, rtl.level)
                        };
                        out.push(Differential {
                            design: dm.design,
                            fault: row.fault,
                            killed_at,
                            survives_at,
                        });
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for KillMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "kill matrix (workload size {}, seed {})",
            self.size, self.seed
        )?;
        for dm in &self.designs {
            writeln!(f)?;
            write!(f, "{:<24}", dm.design.label())?;
            for level in &self.levels {
                write!(f, " {:>12}", level.label())?;
            }
            writeln!(f)?;
            for row in &dm.mutants {
                write!(f, "  {:<22}", row.fault.to_string())?;
                for cell in &row.cells {
                    let text = if row.fault == Fault::None {
                        if cell.failures == 0 {
                            "clean".to_string()
                        } else {
                            format!("DIRTY({})", cell.failures)
                        }
                    } else if cell.killed {
                        format!("K({})", cell.failing_properties().len())
                    } else {
                        "survived".to_string()
                    };
                    write!(f, " {text:>12}")?;
                }
                writeln!(f)?;
            }
            write!(f, "  {:<22}", "mutation score")?;
            for &level in &self.levels {
                let (killed, total) = dm.mutation_score(level);
                write!(f, " {:>12}", format!("{killed}/{total}"))?;
            }
            writeln!(f)?;
        }
        writeln!(f)?;
        let regressions = self.detection_regressions();
        if regressions.is_empty() {
            writeln!(f, "cross-level differential: no detection regressions")?;
        } else {
            writeln!(
                f,
                "cross-level differential: {} regression(s)",
                regressions.len()
            )?;
            for d in &regressions {
                writeln!(f, "  REGRESSION: {d}")?;
            }
        }
        for d in self.detection_gains() {
            writeln!(f, "  gain: {d}")?;
        }
        Ok(())
    }
}

/// A mutation campaign's full result: the kill matrix plus the underlying
/// campaign report (wall-clock stats, merged traces).
#[derive(Debug, Clone)]
pub struct MutationOutcome {
    /// The folded verdict matrix.
    pub matrix: KillMatrix,
    /// The raw campaign report the matrix was folded from.
    pub campaign: CampaignReport,
}

/// Expands `plan` into its campaign grid, executes it on `workers`
/// threads and folds the kill matrix.
///
/// With tracing enabled, the outcome's campaign trace carries one run
/// span per `(mutant, level)` cell plus a `mutation:` counter track — one
/// series per `(design, level)` recording the cumulative kill count as the
/// catalogue advances.
///
/// # Errors
///
/// Returns a [`PlanError`] if the expanded campaign fails validation; no
/// work starts.
pub fn run_mutation(
    plan: &MutationPlan,
    workers: usize,
    settings: TraceSettings,
) -> Result<MutationOutcome, PlanError> {
    let campaign_plan = plan.campaign_plan();
    let mut campaign = run_campaign_with(&campaign_plan, workers, settings)?;
    let matrix = KillMatrix::fold(plan, &campaign);
    if settings.enabled {
        append_kill_counters(
            &matrix,
            campaign_plan.total_runs() as u64,
            &mut campaign.trace,
        );
    }
    Ok(MutationOutcome { matrix, campaign })
}

/// Appends the `mutation:` counter track: per `(design, level)` series of
/// cumulative kills, one sample per non-baseline mutant (timestamped by
/// catalogue position, so the track is deterministic).
fn append_kill_counters(matrix: &KillMatrix, pid: u64, trace: &mut Vec<TraceEvent>) {
    trace.push(TraceEvent::process_name(pid, "mutation"));
    for dm in &matrix.designs {
        for (li, level) in matrix.levels.iter().enumerate() {
            let series = format!("mutation:{}:{}", dm.design.label(), level.label());
            let mut killed = 0u64;
            for (mi, row) in dm
                .mutants
                .iter()
                .filter(|m| m.fault != Fault::None)
                .enumerate()
            {
                killed += u64::from(row.cells[li].killed);
                trace.push(
                    TraceEvent::counter(&series, pid, li as u64, mi as u64)
                        .with_arg("killed", killed),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_rtl_outcome() -> MutationOutcome {
        let plan = MutationPlan::new()
            .design(DesignKind::Fir)
            .level(AbsLevel::Rtl)
            .size(4)
            .seed(7);
        run_mutation(&plan, 1, TraceSettings::off()).expect("valid plan")
    }

    #[test]
    fn fir_rtl_slice_kills_every_mutant() {
        let outcome = fir_rtl_outcome();
        let dm = outcome.matrix.design(DesignKind::Fir).expect("FIR ran");
        assert!(outcome.matrix.baseline_clean());
        let (killed, total) = dm.mutation_score(AbsLevel::Rtl);
        assert_eq!((killed, total), (5, 5), "full RTL score");
        for row in dm.mutants.iter().filter(|m| m.fault != Fault::None) {
            assert!(row.killed_everywhere(), "{} survives", row.fault);
        }
    }

    #[test]
    fn verdicts_name_the_killing_properties() {
        let outcome = fir_rtl_outcome();
        let dm = outcome.matrix.design(DesignKind::Fir).expect("FIR ran");
        let row = dm.mutant(Fault::LatencyShort).expect("catalogued");
        let cell = row.cell(AbsLevel::Rtl).expect("RTL ran");
        assert!(cell.failing_properties().contains(&"f1"));
        assert!(
            cell.verdicts.iter().any(|v| v.pass),
            "not every property fails"
        );
    }

    #[test]
    fn trace_carries_the_mutation_counter_track() {
        let plan = MutationPlan::new()
            .design(DesignKind::Fir)
            .level(AbsLevel::Rtl)
            .size(3)
            .seed(7);
        let outcome = run_mutation(&plan, 1, TraceSettings::deterministic()).expect("valid plan");
        let counters: Vec<&TraceEvent> = outcome
            .campaign
            .trace
            .iter()
            .filter(|e| e.name.starts_with("mutation:FIR:RTL"))
            .collect();
        assert_eq!(counters.len(), 5, "one sample per non-baseline mutant");
        assert!(
            outcome.campaign.trace.iter().any(|e| e.name == "run"),
            "campaign run spans are preserved"
        );
    }

    #[test]
    fn differential_flags_an_rtl_only_kill() {
        // Synthesise a matrix where a mutant escapes at TLM-AT.
        let plan = MutationPlan::new().design(DesignKind::Fir).size(3).seed(7);
        let mut outcome = run_mutation(&plan, 2, TraceSettings::off()).expect("valid plan");
        assert!(outcome.matrix.detection_regressions().is_empty());
        let row = outcome.matrix.designs[0]
            .mutants
            .iter_mut()
            .find(|m| m.fault == Fault::CorruptData)
            .expect("catalogued");
        let at = row
            .cells
            .iter_mut()
            .find(|c| c.level == AbsLevel::TlmAt)
            .expect("AT ran");
        at.killed = false;
        let regressions = outcome.matrix.detection_regressions();
        assert_eq!(
            regressions,
            vec![Differential {
                design: DesignKind::Fir,
                fault: Fault::CorruptData,
                killed_at: AbsLevel::Rtl,
                survives_at: AbsLevel::TlmAt,
            }]
        );
        assert!(outcome.matrix.detection_gains().is_empty());
    }
}
