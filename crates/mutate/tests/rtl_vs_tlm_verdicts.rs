//! Randomized cross-level verdict differential.
//!
//! Draws 200 seeded `(design, fault, workload-seed)` triples and checks
//! that the per-property pass/fail verdicts of the expected-passing suite
//! agree between RTL and TLM-CA: the cycle-accurate TLM model shares the
//! RTL cycle core, so reused checkers must detect exactly the same
//! mutants through exactly the same properties. Fully deterministic — the
//! case stream is forked from a fixed seed.

use abv_checker::Checker;
use designs::{build, passing_properties_at, AbsLevel, DesignKind, Fault};
use tinyrng::TinyRng;

/// Per-property `(name, passed)` verdicts of one run.
fn verdicts(
    design: DesignKind,
    level: AbsLevel,
    size: usize,
    seed: u64,
    fault: Fault,
) -> Vec<(String, bool)> {
    let props = passing_properties_at(design, level);
    let mut built = build(design, level, size, seed, fault).expect("catalogued fault builds");
    let binding = built.binding();
    let checkers =
        Checker::attach_all(&mut built.sim, &props, binding).expect("suite attaches at its level");
    built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    report
        .properties
        .iter()
        .map(|p| (p.name.clone(), p.failure_count == 0))
        .collect()
}

#[test]
fn rtl_and_tlm_ca_verdicts_agree_on_200_seeded_mutants() {
    let mut rng = TinyRng::fork(0xD1FF_2015, 0);
    let mut kills = 0usize;
    for case in 0..200 {
        let design = DesignKind::ALL[(rng.next_u64() % 3) as usize];
        let catalogue = Fault::catalogue(design);
        let fault = match catalogue[(rng.next_u64() as usize) % catalogue.len()] {
            Fault::BitFlip { .. } => Fault::BitFlip {
                bit: (rng.next_u64() % 8) as u8,
            },
            fault => fault,
        };
        let size = 4 + (rng.next_u64() % 7) as usize;
        let seed = rng.next_u64();
        let rtl = verdicts(design, AbsLevel::Rtl, size, seed, fault);
        let ca = verdicts(design, AbsLevel::TlmCa, size, seed, fault);
        assert_eq!(
            rtl,
            ca,
            "case {case}: {} {fault} size {size} seed {seed:#018x}",
            design.label()
        );
        kills += usize::from(rtl.iter().any(|(_, pass)| !pass));
    }
    // The stream must actually exercise both sides of the verdict space.
    assert!(kills > 50, "only {kills} mutated cases detected");
    assert!(kills < 200, "no baseline case drawn");
}
