//! Atomic propositions: the boolean layer of the property language.
//!
//! An [`Atom`] is either a boolean signal referenced directly (`rdy`) or a
//! comparison between a signal and an integer literal (`indata == 0`).
//! Atoms are evaluated against a [`SignalEnv`], the read-only view of the
//! design-under-verification state at an evaluation instant.

use std::collections::HashMap;
use std::fmt;

/// Comparison operator of an [`Atom::Cmp`] atomic proposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Applies the comparison to two values.
    ///
    /// ```
    /// use psl::CmpOp;
    /// assert!(CmpOp::Le.apply(3, 3));
    /// assert!(!CmpOp::Gt.apply(3, 3));
    /// ```
    #[must_use]
    pub fn apply(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }

    /// The comparison holding exactly when `self` does not.
    ///
    /// Used by negation normal form to push `!` through comparisons:
    /// `!(a < b)` becomes `a >= b`.
    #[must_use]
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// The textual operator, as accepted by the parser.
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// An atomic proposition over design-under-verification signals.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// A boolean signal used directly as a proposition (true iff non-zero).
    Bool(String),
    /// A comparison between a signal and an integer literal.
    Cmp {
        /// Signal name on the left-hand side.
        signal: String,
        /// Comparison operator.
        op: CmpOp,
        /// Literal on the right-hand side.
        value: u64,
    },
}

impl Atom {
    /// A boolean-signal atom.
    #[must_use]
    pub fn bool(signal: impl Into<String>) -> Atom {
        Atom::Bool(signal.into())
    }

    /// A comparison atom `signal op value`.
    #[must_use]
    pub fn cmp(signal: impl Into<String>, op: CmpOp, value: u64) -> Atom {
        Atom::Cmp {
            signal: signal.into(),
            op,
            value,
        }
    }

    /// Name of the signal the atom observes.
    #[must_use]
    pub fn signal(&self) -> &str {
        match self {
            Atom::Bool(s) => s,
            Atom::Cmp { signal, .. } => signal,
        }
    }

    /// Evaluates the atom in `env`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingSignal`] if the observed signal is not present in the
    /// environment. This typically indicates a property referencing a signal
    /// that was removed by protocol abstraction without applying the signal
    /// abstraction rules first.
    pub fn eval(&self, env: &dyn SignalEnv) -> Result<bool, MissingSignal> {
        let name = self.signal();
        let raw = env.signal(name).ok_or_else(|| MissingSignal {
            signal: name.to_owned(),
        })?;
        Ok(match self {
            Atom::Bool(_) => raw != 0,
            Atom::Cmp { op, value, .. } => op.apply(raw, *value),
        })
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Bool(s) => f.write_str(s),
            Atom::Cmp { signal, op, value } => write!(f, "({signal} {op} {value})"),
        }
    }
}

/// Error returned when an atom observes a signal absent from the environment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingSignal {
    /// The absent signal's name.
    pub signal: String,
}

impl fmt::Display for MissingSignal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "signal `{}` is not defined in the evaluation environment",
            self.signal
        )
    }
}

impl std::error::Error for MissingSignal {}

/// Read-only view of the design state at a property evaluation instant.
///
/// Implemented by simulation traces, RTL signal stores and TLM transaction
/// snapshots. Boolean signals are encoded as `0` / non-zero.
pub trait SignalEnv {
    /// Current value of `name`, or `None` if the signal does not exist.
    fn signal(&self, name: &str) -> Option<u64>;
}

impl SignalEnv for HashMap<String, u64> {
    fn signal(&self, name: &str) -> Option<u64> {
        self.get(name).copied()
    }
}

impl SignalEnv for &[(&str, u64)] {
    fn signal(&self, name: &str) -> Option<u64> {
        self.iter().find(|(n, _)| *n == name).map(|(_, v)| *v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_apply_covers_all_operators() {
        assert!(CmpOp::Eq.apply(4, 4));
        assert!(!CmpOp::Eq.apply(4, 5));
        assert!(CmpOp::Ne.apply(4, 5));
        assert!(CmpOp::Lt.apply(4, 5));
        assert!(!CmpOp::Lt.apply(5, 5));
        assert!(CmpOp::Le.apply(5, 5));
        assert!(CmpOp::Gt.apply(6, 5));
        assert!(CmpOp::Ge.apply(5, 5));
    }

    #[test]
    fn negated_is_involutive_and_complementary() {
        for op in [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::Lt,
            CmpOp::Le,
            CmpOp::Gt,
            CmpOp::Ge,
        ] {
            assert_eq!(op.negated().negated(), op);
            for (a, b) in [(0u64, 0u64), (1, 2), (2, 1), (7, 7)] {
                assert_eq!(op.apply(a, b), !op.negated().apply(a, b), "{op} on {a},{b}");
            }
        }
    }

    #[test]
    fn bool_atom_reads_nonzero_as_true() {
        let env: &[(&str, u64)] = &[("rdy", 1), ("ds", 0)];
        assert!(Atom::bool("rdy").eval(&env).unwrap());
        assert!(!Atom::bool("ds").eval(&env).unwrap());
    }

    #[test]
    fn cmp_atom_evaluates_comparison() {
        let env: &[(&str, u64)] = &[("indata", 0), ("out", 42)];
        assert!(Atom::cmp("indata", CmpOp::Eq, 0).eval(&env).unwrap());
        assert!(Atom::cmp("out", CmpOp::Ne, 0).eval(&env).unwrap());
        assert!(!Atom::cmp("out", CmpOp::Lt, 42).eval(&env).unwrap());
    }

    #[test]
    fn missing_signal_is_an_error() {
        let env: &[(&str, u64)] = &[];
        let err = Atom::bool("ds").eval(&env).unwrap_err();
        assert_eq!(err.signal, "ds");
        assert!(err.to_string().contains("ds"));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::bool("rdy").to_string(), "rdy");
        assert_eq!(Atom::cmp("out", CmpOp::Ne, 0).to_string(), "(out != 0)");
    }
}
