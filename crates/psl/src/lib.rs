//! PSL/LTL property language frontend.
//!
//! This crate implements the property-language substrate of the DATE 2015
//! paper *"RTL property abstraction for TLM assertion-based verification"*:
//! the linear-temporal-logic subset of PSL (Def. II.1 of the paper) extended
//! with the paper's `next_ε^τ` operator (Def. III.3), clock contexts
//! (`@clk_pos`, …) and transaction contexts (`@T_b`).
//!
//! It provides:
//!
//! - an [`ast::Property`] tree with convenient builders,
//! - a concrete syntax with a [`parser`] and a round-trippable
//!   pretty-printer ([`std::fmt::Display`]),
//! - negation normal form ([`nnf`], Def. II.1),
//! - the *push-ahead* procedure ([`push_ahead`], Section III-A),
//! - finite-trace semantics ([`trace`]) used as the test oracle for
//!   checker synthesis and for validating Theorems III.1 / III.2,
//! - PSL simple-subset validation ([`subset`]).
//!
//! # Example
//!
//! ```
//! use psl::ClockedProperty;
//!
//! // Property p1 of the paper (Fig. 3), for a DES56 RTL model:
//! let p1: ClockedProperty =
//!     "always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos"
//!         .parse()?;
//! assert_eq!(p1.to_string(),
//!     "always ((!(ds && (indata == 0))) || (next[17] (out != 0))) @clk_pos");
//! # Ok::<(), psl::ParseError>(())
//! ```

pub mod ast;
pub mod atom;
pub mod context;
pub mod lexer;
pub mod nnf;
pub mod parser;
pub mod push_ahead;
pub mod subset;
pub mod trace;

mod display;

pub use ast::{ClockedProperty, Property};
pub use atom::{Atom, CmpOp, SignalEnv};
pub use context::{ClockEdge, EvalContext};
pub use parser::ParseError;
pub use trace::{EvalError, Step, Trace};
