//! Tokenizer for the property surface syntax.

use std::fmt;

/// A lexical token with its byte position in the source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// Byte offset of the token's first character.
    pub pos: usize,
}

/// Lexical tokens of the property language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// Identifier or keyword (`always`, `ds`, `clk_pos`, …).
    Ident(String),
    /// Unsigned integer literal (decimal or `0x…` hexadecimal).
    Int(u64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `!`
    Bang,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `->`
    Arrow,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `@`
    At,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "`{s}`"),
            Token::Int(v) => write!(f, "`{v}`"),
            Token::LParen => f.write_str("`(`"),
            Token::RParen => f.write_str("`)`"),
            Token::LBracket => f.write_str("`[`"),
            Token::RBracket => f.write_str("`]`"),
            Token::Comma => f.write_str("`,`"),
            Token::Bang => f.write_str("`!`"),
            Token::AndAnd => f.write_str("`&&`"),
            Token::OrOr => f.write_str("`||`"),
            Token::Arrow => f.write_str("`->`"),
            Token::EqEq => f.write_str("`==`"),
            Token::NotEq => f.write_str("`!=`"),
            Token::Lt => f.write_str("`<`"),
            Token::Le => f.write_str("`<=`"),
            Token::Gt => f.write_str("`>`"),
            Token::Ge => f.write_str("`>=`"),
            Token::At => f.write_str("`@`"),
        }
    }
}

/// Error produced when the source contains a character outside the lexicon.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// The offending character.
    pub found: char,
    /// Byte offset of the offending character.
    pub pos: usize,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unexpected character `{}` at byte {}",
            self.found, self.pos
        )
    }
}

impl std::error::Error for LexError {}

/// Splits `src` into tokens.
///
/// # Errors
///
/// Returns [`LexError`] on the first character that cannot start a token.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let bytes = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        let pos = i;
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                i += 1;
                continue;
            }
            '(' => {
                out.push(Spanned {
                    token: Token::LParen,
                    pos,
                });
                i += 1;
            }
            ')' => {
                out.push(Spanned {
                    token: Token::RParen,
                    pos,
                });
                i += 1;
            }
            '[' => {
                out.push(Spanned {
                    token: Token::LBracket,
                    pos,
                });
                i += 1;
            }
            ']' => {
                out.push(Spanned {
                    token: Token::RBracket,
                    pos,
                });
                i += 1;
            }
            ',' => {
                out.push(Spanned {
                    token: Token::Comma,
                    pos,
                });
                i += 1;
            }
            '@' => {
                out.push(Spanned {
                    token: Token::At,
                    pos,
                });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::NotEq,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Bang,
                        pos,
                    });
                    i += 1;
                }
            }
            '&' if bytes.get(i + 1) == Some(&b'&') => {
                out.push(Spanned {
                    token: Token::AndAnd,
                    pos,
                });
                i += 2;
            }
            '|' if bytes.get(i + 1) == Some(&b'|') => {
                out.push(Spanned {
                    token: Token::OrOr,
                    pos,
                });
                i += 2;
            }
            '-' if bytes.get(i + 1) == Some(&b'>') => {
                out.push(Spanned {
                    token: Token::Arrow,
                    pos,
                });
                i += 2;
            }
            '=' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Spanned {
                    token: Token::EqEq,
                    pos,
                });
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Le,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Lt,
                        pos,
                    });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Spanned {
                        token: Token::Ge,
                        pos,
                    });
                    i += 2;
                } else {
                    out.push(Spanned {
                        token: Token::Gt,
                        pos,
                    });
                    i += 1;
                }
            }
            '0'..='9' => {
                let (value, next) = lex_number(src, i);
                out.push(Spanned {
                    token: Token::Int(value),
                    pos,
                });
                i = next;
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                out.push(Spanned {
                    token: Token::Ident(src[start..i].to_owned()),
                    pos,
                });
            }
            other => return Err(LexError { found: other, pos }),
        }
    }
    Ok(out)
}

fn lex_number(src: &str, start: usize) -> (u64, usize) {
    let bytes = src.as_bytes();
    if bytes.get(start) == Some(&b'0') && matches!(bytes.get(start + 1), Some(&b'x') | Some(&b'X'))
    {
        let mut i = start + 2;
        let mut value: u64 = 0;
        while i < bytes.len() && (bytes[i] as char).is_ascii_hexdigit() {
            value = value.wrapping_mul(16)
                + u64::from((bytes[i] as char).to_digit(16).expect("hex digit"));
            i += 1;
        }
        (value, i)
    } else {
        let mut i = start;
        let mut value: u64 = 0;
        while i < bytes.len() && bytes[i].is_ascii_digit() {
            value = value.wrapping_mul(10) + u64::from(bytes[i] - b'0');
            i += 1;
        }
        (value, i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tokens(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn lexes_operators() {
        assert_eq!(
            tokens("! && || -> == != < <= > >= @ ( ) [ ] ,"),
            vec![
                Token::Bang,
                Token::AndAnd,
                Token::OrOr,
                Token::Arrow,
                Token::EqEq,
                Token::NotEq,
                Token::Lt,
                Token::Le,
                Token::Gt,
                Token::Ge,
                Token::At,
                Token::LParen,
                Token::RParen,
                Token::LBracket,
                Token::RBracket,
                Token::Comma,
            ]
        );
    }

    #[test]
    fn lexes_identifiers_and_numbers() {
        assert_eq!(
            tokens("next_et[1, 170] out != 0x2A"),
            vec![
                Token::Ident("next_et".into()),
                Token::LBracket,
                Token::Int(1),
                Token::Comma,
                Token::Int(170),
                Token::RBracket,
                Token::Ident("out".into()),
                Token::NotEq,
                Token::Int(42),
            ]
        );
    }

    #[test]
    fn not_equal_vs_bang() {
        assert_eq!(
            tokens("!a != 1"),
            vec![
                Token::Bang,
                Token::Ident("a".into()),
                Token::NotEq,
                Token::Int(1),
            ]
        );
    }

    #[test]
    fn underscore_identifiers() {
        assert_eq!(
            tokens("T_b rdy_next_cycle _x"),
            vec![
                Token::Ident("T_b".into()),
                Token::Ident("rdy_next_cycle".into()),
                Token::Ident("_x".into()),
            ]
        );
    }

    #[test]
    fn rejects_stray_characters() {
        let err = lex("a $ b").unwrap_err();
        assert_eq!(err.found, '$');
        assert_eq!(err.pos, 2);
    }

    #[test]
    fn positions_are_byte_offsets() {
        let toks = lex("ab  cd").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 4);
    }
}
