//! The LTL property tree (Def. II.1 of the paper) extended with `next_ε^τ`.

use crate::atom::Atom;
use crate::context::EvalContext;

/// An LTL property in the PSL-flavoured syntax used by the paper.
///
/// The grammar follows Def. II.1 (atoms, `!`, `&&`, `||`, `next`, `until`,
/// `release`) plus the standard derived operators `always`, `eventually`
/// and `->`, and the paper's TLM-oriented operator
/// [`NextEt`](Property::NextEt) (`next_ε^τ`, Def. III.3).
///
/// `Property` values are ordinary trees; transformation passes
/// ([`nnf`](crate::nnf), [`push_ahead`](crate::push_ahead), the abstraction
/// methodology in the `abv-core` crate) consume and produce them.
///
/// # Example
///
/// ```
/// use psl::Property;
///
/// let p = Property::always(
///     Property::not(Property::bool_signal("ds"))
///         .or(Property::next_n(17, Property::bool_signal("rdy"))),
/// );
/// assert_eq!(p.to_string(), "always ((!ds) || (next[17] rdy))");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Property {
    /// Constant truth value (`true` / `false`).
    Const(bool),
    /// An atomic proposition.
    Atom(Atom),
    /// Logical negation. In negation normal form it only wraps atoms.
    Not(Box<Property>),
    /// Conjunction.
    And(Box<Property>, Box<Property>),
    /// Disjunction.
    Or(Box<Property>, Box<Property>),
    /// Implication (sugar for `!lhs || rhs`, removed by NNF).
    Implies(Box<Property>, Box<Property>),
    /// `next[n] p`: `p` holds `n` evaluation events from now (`n >= 1`).
    /// `next p` is `next[1] p`.
    Next {
        /// Number of evaluation events to skip.
        n: u32,
        /// Operand.
        inner: Box<Property>,
    },
    /// The paper's `next_ε^τ` operator (Def. III.3): the operand must hold
    /// exactly `eps_ns` nanoseconds after the instant where this operator is
    /// reached; if the verification environment observes no event at that
    /// time, the property is false.
    NextEt {
        /// Positional index `τ` among `next_ε^τ` occurrences in the property
        /// (used by checker generation, Section IV).
        tau: u32,
        /// Required evaluation offset `ε` in nanoseconds.
        eps_ns: u64,
        /// Operand.
        inner: Box<Property>,
    },
    /// `lhs until rhs` (strong until).
    Until(Box<Property>, Box<Property>),
    /// `lhs release rhs`.
    Release(Box<Property>, Box<Property>),
    /// `always p` (≡ `false release p`).
    Always(Box<Property>),
    /// `eventually p` (≡ `true until p`).
    Eventually(Box<Property>),
}

impl Property {
    /// The constant `true`.
    #[must_use]
    pub fn t() -> Property {
        Property::Const(true)
    }

    /// The constant `false`.
    #[must_use]
    pub fn f() -> Property {
        Property::Const(false)
    }

    /// An atom wrapped as a property.
    #[must_use]
    pub fn atom(atom: Atom) -> Property {
        Property::Atom(atom)
    }

    /// A boolean-signal atom.
    #[must_use]
    pub fn bool_signal(name: impl Into<String>) -> Property {
        Property::Atom(Atom::bool(name))
    }

    /// A comparison atom `signal op value`.
    #[must_use]
    pub fn cmp(signal: impl Into<String>, op: crate::atom::CmpOp, value: u64) -> Property {
        Property::Atom(Atom::cmp(signal, op, value))
    }

    /// Logical negation. A static constructor like the other builders —
    /// not an `std::ops::Not` impl, which would suggest (wrongly) that
    /// `!p` computes a normal form.
    #[must_use]
    #[allow(clippy::should_implement_trait)]
    pub fn not(p: Property) -> Property {
        Property::Not(Box::new(p))
    }

    /// `self && rhs`.
    #[must_use]
    pub fn and(self, rhs: Property) -> Property {
        Property::And(Box::new(self), Box::new(rhs))
    }

    /// `self || rhs`.
    #[must_use]
    pub fn or(self, rhs: Property) -> Property {
        Property::Or(Box::new(self), Box::new(rhs))
    }

    /// `self -> rhs`.
    #[must_use]
    pub fn implies(self, rhs: Property) -> Property {
        Property::Implies(Box::new(self), Box::new(rhs))
    }

    /// `next p` (one evaluation event ahead).
    #[must_use]
    pub fn next(p: Property) -> Property {
        Property::next_n(1, p)
    }

    /// `next[n] p`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; `next[0]` is not part of the grammar (use the
    /// operand directly instead).
    #[must_use]
    pub fn next_n(n: u32, p: Property) -> Property {
        assert!(n >= 1, "next[n] requires n >= 1");
        Property::Next {
            n,
            inner: Box::new(p),
        }
    }

    /// The paper's `next_ε^τ` operator with position `tau` and offset
    /// `eps_ns` nanoseconds.
    #[must_use]
    pub fn next_et(tau: u32, eps_ns: u64, p: Property) -> Property {
        Property::NextEt {
            tau,
            eps_ns,
            inner: Box::new(p),
        }
    }

    /// `self until rhs`.
    #[must_use]
    pub fn until(self, rhs: Property) -> Property {
        Property::Until(Box::new(self), Box::new(rhs))
    }

    /// `self release rhs`.
    #[must_use]
    pub fn release(self, rhs: Property) -> Property {
        Property::Release(Box::new(self), Box::new(rhs))
    }

    /// `always p`.
    #[must_use]
    pub fn always(p: Property) -> Property {
        Property::Always(Box::new(p))
    }

    /// `eventually p`.
    #[must_use]
    pub fn eventually(p: Property) -> Property {
        Property::Eventually(Box::new(p))
    }

    /// True if the property is purely boolean (no temporal operators), i.e.
    /// it can serve as a context guard (Def. III.2's `var_expr`).
    #[must_use]
    pub fn is_boolean(&self) -> bool {
        match self {
            Property::Const(_) | Property::Atom(_) => true,
            Property::Not(p) => p.is_boolean(),
            Property::And(a, b) | Property::Or(a, b) | Property::Implies(a, b) => {
                a.is_boolean() && b.is_boolean()
            }
            Property::Next { .. }
            | Property::NextEt { .. }
            | Property::Until(..)
            | Property::Release(..)
            | Property::Always(_)
            | Property::Eventually(_) => false,
        }
    }

    /// True if the property is a *literal*: an atom, a negated atom, or a
    /// constant. Push-ahead (Section III-A) guarantees every `next` operand
    /// is a literal or another `next`.
    #[must_use]
    pub fn is_literal(&self) -> bool {
        match self {
            Property::Const(_) | Property::Atom(_) => true,
            Property::Not(p) => matches!(**p, Property::Atom(_)),
            _ => false,
        }
    }

    /// Signal names observed anywhere in the property, in syntactic order
    /// (duplicates preserved).
    #[must_use]
    pub fn signals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Property::Atom(a) = p {
                out.push(a.signal());
            }
        });
        out
    }

    /// Number of nodes in the property tree.
    #[must_use]
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Maximum count of stacked temporal events needed to fully evaluate the
    /// property when every `next[n]` counts events and `until`/`release`
    /// contribute one event per step: `None` when unbounded (contains
    /// `until`, `release`, `always` or `eventually`), otherwise the maximum
    /// over root-to-leaf paths of the summed `next` depths.
    ///
    /// Used by the TLM wrapper to size the checker-instance pool
    /// (Section IV, point 1).
    #[must_use]
    pub fn bounded_event_depth(&self) -> Option<u32> {
        match self {
            Property::Const(_) | Property::Atom(_) => Some(0),
            Property::Not(p) => p.bounded_event_depth(),
            Property::And(a, b) | Property::Or(a, b) | Property::Implies(a, b) => {
                Some(a.bounded_event_depth()?.max(b.bounded_event_depth()?))
            }
            Property::Next { n, inner } => Some(n + inner.bounded_event_depth()?),
            // next_ε^τ is synthesized as next[τ] from the checker generator's
            // point of view (Section IV), so it contributes one event level.
            Property::NextEt { inner, .. } => Some(1 + inner.bounded_event_depth()?),
            Property::Until(..)
            | Property::Release(..)
            | Property::Always(_)
            | Property::Eventually(_) => None,
        }
    }

    /// Maximum completion offset in nanoseconds: the largest sum of
    /// `next_ε^τ` offsets along any root-to-leaf path, i.e. the property's
    /// completion time `t_end - t_fire` (Section IV, point 1). `None` when
    /// the property contains unbounded operators.
    #[must_use]
    pub fn completion_bound_ns(&self) -> Option<u64> {
        match self {
            Property::Const(_) | Property::Atom(_) => Some(0),
            Property::Not(p) => p.completion_bound_ns(),
            Property::And(a, b) | Property::Or(a, b) | Property::Implies(a, b) => {
                Some(a.completion_bound_ns()?.max(b.completion_bound_ns()?))
            }
            // Plain `next` has no time meaning at TLM; bound unknown.
            Property::Next { .. } => None,
            Property::NextEt { eps_ns, inner, .. } => Some(eps_ns + inner.completion_bound_ns()?),
            Property::Until(..)
            | Property::Release(..)
            | Property::Always(_)
            | Property::Eventually(_) => None,
        }
    }

    /// Calls `f` on every node of the tree in pre-order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Property)) {
        f(self);
        match self {
            Property::Const(_) | Property::Atom(_) => {}
            Property::Not(p)
            | Property::Next { inner: p, .. }
            | Property::NextEt { inner: p, .. }
            | Property::Always(p)
            | Property::Eventually(p) => p.visit(f),
            Property::And(a, b)
            | Property::Or(a, b)
            | Property::Implies(a, b)
            | Property::Until(a, b)
            | Property::Release(a, b) => {
                a.visit(f);
                b.visit(f);
            }
        }
    }
}

impl From<Atom> for Property {
    fn from(atom: Atom) -> Property {
        Property::Atom(atom)
    }
}

/// A property together with the context stating *when* it is evaluated:
/// a clock context at RTL, a transaction context at TLM (Section III-A).
///
/// # Example
///
/// ```
/// use psl::{ClockedProperty, EvalContext};
///
/// let p: ClockedProperty = "always (!ds || next rdy) @clk_pos".parse()?;
/// assert!(matches!(p.context, EvalContext::Clock { .. }));
/// # Ok::<(), psl::ParseError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ClockedProperty {
    /// The temporal formula.
    pub property: Property,
    /// When the formula is sampled.
    pub context: EvalContext,
}

impl ClockedProperty {
    /// Pairs a property with its evaluation context.
    #[must_use]
    pub fn new(property: Property, context: EvalContext) -> ClockedProperty {
        ClockedProperty { property, context }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    fn p1_body() -> Property {
        Property::not(Property::bool_signal("ds").and(Property::cmp("indata", CmpOp::Eq, 0)))
            .or(Property::next_n(17, Property::cmp("out", CmpOp::Ne, 0)))
    }

    #[test]
    fn builders_compose() {
        let p = Property::always(p1_body());
        assert_eq!(p.size(), 8);
        assert_eq!(p.signals(), vec!["ds", "indata", "out"]);
    }

    #[test]
    fn is_boolean_accepts_guards_and_rejects_temporal() {
        assert!(Property::bool_signal("a")
            .and(Property::cmp("b", CmpOp::Lt, 3))
            .is_boolean());
        assert!(Property::not(Property::t()).is_boolean());
        assert!(!Property::next(Property::t()).is_boolean());
        assert!(!Property::always(Property::t()).is_boolean());
        assert!(!Property::t().until(Property::t()).is_boolean());
    }

    #[test]
    fn is_literal_classification() {
        assert!(Property::bool_signal("a").is_literal());
        assert!(Property::not(Property::bool_signal("a")).is_literal());
        assert!(Property::t().is_literal());
        assert!(!Property::not(Property::not(Property::bool_signal("a"))).is_literal());
        assert!(!Property::bool_signal("a").or(Property::f()).is_literal());
    }

    #[test]
    fn bounded_event_depth_sums_next_chains() {
        let p = Property::next_n(3, Property::next(Property::bool_signal("a")));
        assert_eq!(p.bounded_event_depth(), Some(4));
        let q = Property::next_n(2, Property::bool_signal("a"))
            .and(Property::next_n(5, Property::bool_signal("b")));
        assert_eq!(q.bounded_event_depth(), Some(5));
        assert_eq!(Property::always(Property::t()).bounded_event_depth(), None);
        assert_eq!(
            Property::bool_signal("a")
                .until(Property::bool_signal("b"))
                .bounded_event_depth(),
            None
        );
    }

    #[test]
    fn completion_bound_sums_next_et_offsets() {
        let q = Property::next_et(1, 170, Property::cmp("out", CmpOp::Ne, 0));
        assert_eq!(q.completion_bound_ns(), Some(170));
        let nested = Property::next_et(1, 100, Property::next_et(2, 50, Property::t()));
        assert_eq!(nested.completion_bound_ns(), Some(150));
        assert_eq!(Property::next(Property::t()).completion_bound_ns(), None);
    }

    #[test]
    #[should_panic(expected = "next[n] requires n >= 1")]
    fn next_zero_is_rejected() {
        let _ = Property::next_n(0, Property::t());
    }
}
