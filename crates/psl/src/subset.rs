//! PSL simple-subset validation.
//!
//! The *simple subset* of PSL (IEEE 1850, clause 4.4.4) restricts property
//! composition so that "time moves forward from left to right through a
//! property, as it does in a timing diagram", which is what makes checker
//! generation easy (Section II of the paper). For the LTL fragment used
//! here the relevant restrictions are:
//!
//! - negation applies only to boolean expressions;
//! - the left operand of `until` is boolean;
//! - the operands of `||` include at most one non-boolean property;
//! - the left operand of `->` is boolean (implication is removed by NNF
//!   before checking, so it is rejected here).
//!
//! The paper's push-ahead procedure may move `next` onto the left operand of
//! `until` (see property `q2` in Fig. 3), so [`validate`] accepts a *relaxed*
//! left operand: a boolean, or a `next`/`next_ε^τ` chain applied to a
//! literal. This matches what the paper's checker generator consumes.

use crate::ast::Property;

/// A violation of the (relaxed) PSL simple subset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleSubsetViolation {
    /// Negation applied to a non-boolean property.
    NonBooleanNegation {
        /// Printed form of the negated operand.
        operand: String,
    },
    /// `until` with a left operand that is neither boolean nor a
    /// `next`-chained literal.
    TemporalUntilLhs {
        /// Printed form of the offending operand.
        operand: String,
    },
    /// `||` with two non-boolean operands.
    TwoTemporalOrOperands {
        /// Printed form of the offending disjunction.
        operands: String,
    },
    /// Implication present (run NNF first).
    Implication,
}

impl std::fmt::Display for SimpleSubsetViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimpleSubsetViolation::NonBooleanNegation { operand } => {
                write!(f, "negation of non-boolean property `{operand}`")
            }
            SimpleSubsetViolation::TemporalUntilLhs { operand } => {
                write!(f, "left operand of `until` must be boolean or a next-chained literal, found `{operand}`")
            }
            SimpleSubsetViolation::TwoTemporalOrOperands { operands } => {
                write!(f, "`||` with two temporal operands `{operands}`")
            }
            SimpleSubsetViolation::Implication => {
                f.write_str("implication must be eliminated (apply negation normal form first)")
            }
        }
    }
}

impl std::error::Error for SimpleSubsetViolation {}

/// Checks that `p` lies in the (relaxed) PSL simple subset.
///
/// # Errors
///
/// Returns the first [`SimpleSubsetViolation`] found in a pre-order walk.
///
/// ```
/// use psl::{subset::validate, Property};
///
/// let ok: Property = "always (!ds || next[17] (out != 0))".parse()?;
/// assert!(validate(&ok).is_ok());
///
/// let bad: Property = "always ((eventually a) || (eventually b))".parse()?;
/// assert!(validate(&bad).is_err());
/// # Ok::<(), psl::ParseError>(())
/// ```
pub fn validate(p: &Property) -> Result<(), SimpleSubsetViolation> {
    match p {
        Property::Const(_) | Property::Atom(_) => Ok(()),
        Property::Not(inner) => {
            if inner.is_boolean() {
                Ok(())
            } else {
                Err(SimpleSubsetViolation::NonBooleanNegation {
                    operand: inner.to_string(),
                })
            }
        }
        Property::Implies(..) => Err(SimpleSubsetViolation::Implication),
        Property::And(a, b) => {
            validate(a)?;
            validate(b)
        }
        Property::Or(a, b) => {
            if !a.is_boolean() && !b.is_boolean() {
                return Err(SimpleSubsetViolation::TwoTemporalOrOperands {
                    operands: p.to_string(),
                });
            }
            validate(a)?;
            validate(b)
        }
        Property::Next { inner, .. } | Property::NextEt { inner, .. } => validate(inner),
        Property::Until(a, b) => {
            if !is_relaxed_until_lhs(a) {
                return Err(SimpleSubsetViolation::TemporalUntilLhs {
                    operand: a.to_string(),
                });
            }
            validate(a)?;
            validate(b)
        }
        Property::Release(a, b) => {
            // `release` in the simple subset is restricted symmetrically to
            // until; we apply the same relaxed left-operand rule.
            if !is_relaxed_until_lhs(a) {
                return Err(SimpleSubsetViolation::TemporalUntilLhs {
                    operand: a.to_string(),
                });
            }
            validate(a)?;
            validate(b)
        }
        Property::Always(inner) | Property::Eventually(inner) => validate(inner),
    }
}

/// Boolean, or a `next`/`next_ε^τ` chain over a literal.
fn is_relaxed_until_lhs(p: &Property) -> bool {
    match p {
        Property::Next { inner, .. } | Property::NextEt { inner, .. } => {
            is_relaxed_until_lhs(inner)
        }
        _ => p.is_boolean(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(src: &str) -> Result<(), SimpleSubsetViolation> {
        validate(&src.parse::<Property>().unwrap())
    }

    #[test]
    fn paper_properties_are_in_subset() {
        assert!(check("always (!(ds && indata == 0) || next[17](out != 0))").is_ok());
        assert!(check("always (!ds || (next(!ds) until next[2] rdy))").is_ok());
        assert!(check("always (!ds || (next_et[1,10](!ds) until next_et[2,20] rdy))").is_ok());
    }

    #[test]
    fn rejects_temporal_negation() {
        assert!(matches!(
            check("!(next a)"),
            Err(SimpleSubsetViolation::NonBooleanNegation { .. })
        ));
    }

    #[test]
    fn rejects_implication() {
        assert_eq!(check("a -> b"), Err(SimpleSubsetViolation::Implication));
    }

    #[test]
    fn rejects_temporal_until_lhs() {
        assert!(matches!(
            check("(a until b) until c"),
            Err(SimpleSubsetViolation::TemporalUntilLhs { .. })
        ));
        assert!(matches!(
            check("(always a) release c"),
            Err(SimpleSubsetViolation::TemporalUntilLhs { .. })
        ));
    }

    #[test]
    fn accepts_next_chain_until_lhs() {
        assert!(check("(next[3] (!a)) until b").is_ok());
        assert!(check("(next_et[1, 30] a) until b").is_ok());
    }

    #[test]
    fn rejects_double_temporal_or() {
        assert!(matches!(
            check("(eventually a) || (eventually b)"),
            Err(SimpleSubsetViolation::TwoTemporalOrOperands { .. })
        ));
        assert!(check("a || (eventually b)").is_ok());
        assert!(check("(next[2] a) || b").is_ok());
    }

    #[test]
    fn violations_display() {
        let err = check("!(next a)").unwrap_err();
        assert!(err.to_string().contains("negation"));
    }
}
