//! Pretty-printing of properties and contexts.
//!
//! The printer emits the same concrete syntax the [`parser`](crate::parser)
//! accepts, fully parenthesizing compound subterms so that
//! `parse(print(p)) == p` for every property (validated by property tests).

use std::fmt;

use crate::ast::{ClockedProperty, Property};
use crate::context::EvalContext;

/// Writes `p`, wrapping it in parentheses unless it is a leaf.
fn write_child(f: &mut fmt::Formatter<'_>, p: &Property) -> fmt::Result {
    match p {
        Property::Const(_) | Property::Atom(_) => write!(f, "{p}"),
        _ => write!(f, "({p})"),
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Property::Const(true) => f.write_str("true"),
            Property::Const(false) => f.write_str("false"),
            Property::Atom(a) => write!(f, "{a}"),
            Property::Not(p) => {
                f.write_str("!")?;
                write_child(f, p)
            }
            Property::And(a, b) => {
                write_child(f, a)?;
                f.write_str(" && ")?;
                write_child(f, b)
            }
            Property::Or(a, b) => {
                write_child(f, a)?;
                f.write_str(" || ")?;
                write_child(f, b)
            }
            Property::Implies(a, b) => {
                write_child(f, a)?;
                f.write_str(" -> ")?;
                write_child(f, b)
            }
            Property::Next { n: 1, inner } => {
                f.write_str("next ")?;
                write_child(f, inner)
            }
            Property::Next { n, inner } => {
                write!(f, "next[{n}] ")?;
                write_child(f, inner)
            }
            Property::NextEt { tau, eps_ns, inner } => {
                write!(f, "next_et[{tau}, {eps_ns}] ")?;
                write_child(f, inner)
            }
            Property::Until(a, b) => {
                write_child(f, a)?;
                f.write_str(" until ")?;
                write_child(f, b)
            }
            Property::Release(a, b) => {
                write_child(f, a)?;
                f.write_str(" release ")?;
                write_child(f, b)
            }
            Property::Always(p) => {
                f.write_str("always ")?;
                write_child(f, p)
            }
            Property::Eventually(p) => {
                f.write_str("eventually ")?;
                write_child(f, p)
            }
        }
    }
}

impl fmt::Display for EvalContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalContext::Clock { edge, guard: None } => write!(f, "@{}", edge.symbol()),
            EvalContext::Clock {
                edge,
                guard: Some(g),
            } => {
                write!(f, "@({} && ", edge.symbol())?;
                write_child(f, g)?;
                f.write_str(")")
            }
            EvalContext::Transaction { guard: None } => f.write_str("@T_b"),
            EvalContext::Transaction { guard: Some(g) } => {
                f.write_str("@(T_b && ")?;
                write_child(f, g)?;
                f.write_str(")")
            }
        }
    }
}

impl fmt::Display for ClockedProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.property, self.context)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;
    use crate::context::ClockEdge;

    #[test]
    fn leaf_forms() {
        assert_eq!(Property::t().to_string(), "true");
        assert_eq!(Property::f().to_string(), "false");
        assert_eq!(Property::bool_signal("rdy").to_string(), "rdy");
    }

    #[test]
    fn paper_p1_prints_in_full_parens() {
        let p1 = Property::always(
            Property::not(Property::bool_signal("ds").and(Property::cmp("indata", CmpOp::Eq, 0)))
                .or(Property::next_n(17, Property::cmp("out", CmpOp::Ne, 0))),
        );
        assert_eq!(
            p1.to_string(),
            "always ((!(ds && (indata == 0))) || (next[17] (out != 0)))"
        );
    }

    #[test]
    fn next_et_prints_tau_and_eps() {
        let q = Property::next_et(1, 170, Property::cmp("out", CmpOp::Ne, 0));
        assert_eq!(q.to_string(), "next_et[1, 170] (out != 0)");
    }

    #[test]
    fn contexts_print() {
        assert_eq!(EvalContext::clk_pos().to_string(), "@clk_pos");
        assert_eq!(EvalContext::clk_true().to_string(), "@true");
        assert_eq!(EvalContext::tb().to_string(), "@T_b");
        let g = Property::cmp("mode", CmpOp::Eq, 1);
        assert_eq!(
            EvalContext::clock_guarded(ClockEdge::Neg, g.clone()).to_string(),
            "@(clk_neg && (mode == 1))"
        );
        assert_eq!(
            EvalContext::tb_guarded(g).to_string(),
            "@(T_b && (mode == 1))"
        );
    }

    #[test]
    fn clocked_property_prints_with_context() {
        let p = ClockedProperty::new(Property::bool_signal("rdy"), EvalContext::clk_pos());
        assert_eq!(p.to_string(), "rdy @clk_pos");
    }
}
