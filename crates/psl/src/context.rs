//! Evaluation contexts: RTL clock contexts and TLM transaction contexts.
//!
//! At RTL a property's `@` expression selects the clock events where the
//! property is sampled. At TLM the clock is abstracted away and the property
//! is sampled at transaction boundaries instead; Def. III.2 of the paper
//! maps the former onto the latter (implemented in the `abv-core` crate).

use crate::ast::Property;

/// Which clock events sample the property at RTL.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ClockEdge {
    /// Base clock context `true`: the verification tool picks the
    /// granularity (we sample at every clock event, either edge).
    True,
    /// `@clk`: any clock event (both edges).
    Any,
    /// `@clk_pos`: rising edges.
    Pos,
    /// `@clk_neg`: falling edges.
    Neg,
}

impl ClockEdge {
    /// The context's surface syntax (empty for the base context).
    #[must_use]
    pub fn symbol(self) -> &'static str {
        match self {
            ClockEdge::True => "true",
            ClockEdge::Any => "clk",
            ClockEdge::Pos => "clk_pos",
            ClockEdge::Neg => "clk_neg",
        }
    }
}

/// The context stating when a property is evaluated.
///
/// Guards (`var_expr` in Def. III.2) are boolean-only properties; evaluation
/// instants where the guard is false are skipped entirely.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum EvalContext {
    /// An RTL clock context `@clock_expr` or `@(clock_expr && var_expr)`.
    Clock {
        /// Which clock events are observed.
        edge: ClockEdge,
        /// Optional boolean guard restricting the observed events.
        guard: Option<Box<Property>>,
    },
    /// A TLM transaction context: the basic context `T_b` evaluates the
    /// property at the end of every transaction (`@T_b`), optionally
    /// restricted by a boolean guard (`@(T_b && var_expr)`).
    Transaction {
        /// Optional boolean guard restricting the observed transactions.
        guard: Option<Box<Property>>,
    },
}

impl EvalContext {
    /// The RTL clock context `@clk_pos`.
    #[must_use]
    pub fn clk_pos() -> EvalContext {
        EvalContext::Clock {
            edge: ClockEdge::Pos,
            guard: None,
        }
    }

    /// The RTL clock context `@clk_neg`.
    #[must_use]
    pub fn clk_neg() -> EvalContext {
        EvalContext::Clock {
            edge: ClockEdge::Neg,
            guard: None,
        }
    }

    /// The RTL clock context `@clk` (any edge).
    #[must_use]
    pub fn clk_any() -> EvalContext {
        EvalContext::Clock {
            edge: ClockEdge::Any,
            guard: None,
        }
    }

    /// The base clock context (`true`).
    #[must_use]
    pub fn clk_true() -> EvalContext {
        EvalContext::Clock {
            edge: ClockEdge::True,
            guard: None,
        }
    }

    /// A guarded clock context `@(edge && guard)`.
    ///
    /// # Panics
    ///
    /// Panics if `guard` is not boolean-only (Def. III.2 requires
    /// `var_expr` to be a boolean expression over non-clock variables).
    #[must_use]
    pub fn clock_guarded(edge: ClockEdge, guard: Property) -> EvalContext {
        assert!(
            guard.is_boolean(),
            "context guard must be a boolean expression"
        );
        EvalContext::Clock {
            edge,
            guard: Some(Box::new(guard)),
        }
    }

    /// The basic transaction context `T_b` (Def. III.2).
    #[must_use]
    pub fn tb() -> EvalContext {
        EvalContext::Transaction { guard: None }
    }

    /// A guarded transaction context `@(T_b && guard)`.
    ///
    /// # Panics
    ///
    /// Panics if `guard` is not boolean-only.
    #[must_use]
    pub fn tb_guarded(guard: Property) -> EvalContext {
        assert!(
            guard.is_boolean(),
            "context guard must be a boolean expression"
        );
        EvalContext::Transaction {
            guard: Some(Box::new(guard)),
        }
    }

    /// The context's guard, if any.
    #[must_use]
    pub fn guard(&self) -> Option<&Property> {
        match self {
            EvalContext::Clock { guard, .. } | EvalContext::Transaction { guard } => {
                guard.as_deref()
            }
        }
    }

    /// True for RTL clock contexts.
    #[must_use]
    pub fn is_clock(&self) -> bool {
        matches!(self, EvalContext::Clock { .. })
    }

    /// True for TLM transaction contexts.
    #[must_use]
    pub fn is_transaction(&self) -> bool {
        matches!(self, EvalContext::Transaction { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::CmpOp;

    #[test]
    fn constructors_classify() {
        assert!(EvalContext::clk_pos().is_clock());
        assert!(!EvalContext::clk_pos().is_transaction());
        assert!(EvalContext::tb().is_transaction());
        assert!(EvalContext::tb().guard().is_none());
    }

    #[test]
    fn guarded_contexts_store_guard() {
        let g = Property::cmp("mode", CmpOp::Eq, 1);
        let c = EvalContext::clock_guarded(ClockEdge::Pos, g.clone());
        assert_eq!(c.guard(), Some(&g));
        let t = EvalContext::tb_guarded(g.clone());
        assert_eq!(t.guard(), Some(&g));
    }

    #[test]
    #[should_panic(expected = "boolean expression")]
    fn temporal_guard_is_rejected() {
        let _ = EvalContext::tb_guarded(Property::next(Property::t()));
    }

    #[test]
    fn edge_symbols() {
        assert_eq!(ClockEdge::Pos.symbol(), "clk_pos");
        assert_eq!(ClockEdge::Neg.symbol(), "clk_neg");
        assert_eq!(ClockEdge::Any.symbol(), "clk");
        assert_eq!(ClockEdge::True.symbol(), "true");
    }
}
