//! The *push-ahead* procedure (first phase of step 2 of Methodology III.1).
//!
//! Pushes `next` operators towards the leaves so that each `next` operand is
//! exclusively an atomic proposition, a negated atomic proposition, or
//! another `next`, using the paper's transformation rules (Section III-A):
//!
//! ```text
//! next(a || b)      == next(a) || next(b)
//! next(a && b)      == next(a) && next(b)
//! next(a until b)   == next(a) until next(b)
//! next(a release b) == next(a) release next(b)
//! ```
//!
//! plus the derived rules for the operators defined from `until`/`release`
//! (`always p == false release p`, `eventually p == true until p`):
//!
//! ```text
//! next(always p)     == always(next p)
//! next(eventually p) == eventually(next p)
//! ```
//!
//! Adjacent `next`s merge: `next(next[n] p) == next[n+1] p`. Constants are
//! treated as literals and stay under `next` (folding `next(const)` to
//! `const` would only be exact on infinite traces).

use crate::ast::Property;

/// Error returned when push-ahead encounters an operator it cannot
/// distribute `next` over.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PushAheadError {
    /// The property must be in negation normal form first (step 1 of
    /// Methodology III.1); implication is not supported.
    NotInNnf,
    /// A `next` was applied to a `next_ε^τ` operator; `next_ε^τ` is the
    /// *output* of the abstraction and must not occur in RTL input
    /// properties.
    NextOverNextEt,
}

impl std::fmt::Display for PushAheadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PushAheadError::NotInNnf => {
                f.write_str("property must be in negation normal form before push-ahead")
            }
            PushAheadError::NextOverNextEt => {
                f.write_str("`next` cannot be distributed over `next_et`; RTL input properties must not contain next_et")
            }
        }
    }
}

impl std::error::Error for PushAheadError {}

/// Pushes every `next` towards the leaves.
///
/// On success, [`is_pushed`] holds for the result: each `next` chain is
/// merged into a single `next[n]` applied to a literal.
///
/// # Errors
///
/// - [`PushAheadError::NotInNnf`] if the property contains `->` or a
///   non-literal negation (run [`crate::nnf::to_nnf`] first);
/// - [`PushAheadError::NextOverNextEt`] if a `next` is applied over a
///   `next_ε^τ` operator.
///
/// ```
/// use psl::{push_ahead::push_ahead, Property};
///
/// // Paper Section III-A example, from property p2:
/// let p: Property = "next ((!ds) until next rdy)".parse()?;
/// assert_eq!(push_ahead(&p)?.to_string(), "(next (!ds)) until (next[2] rdy)");
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn push_ahead(p: &Property) -> Result<Property, PushAheadError> {
    match p {
        Property::Const(_) | Property::Atom(_) => Ok(p.clone()),
        Property::Not(inner) => {
            if matches!(**inner, Property::Atom(_)) {
                Ok(p.clone())
            } else {
                Err(PushAheadError::NotInNnf)
            }
        }
        Property::Implies(..) => Err(PushAheadError::NotInNnf),
        Property::And(a, b) => Ok(push_ahead(a)?.and(push_ahead(b)?)),
        Property::Or(a, b) => Ok(push_ahead(a)?.or(push_ahead(b)?)),
        Property::Until(a, b) => Ok(push_ahead(a)?.until(push_ahead(b)?)),
        Property::Release(a, b) => Ok(push_ahead(a)?.release(push_ahead(b)?)),
        Property::Always(inner) => Ok(Property::always(push_ahead(inner)?)),
        Property::Eventually(inner) => Ok(Property::eventually(push_ahead(inner)?)),
        Property::NextEt { tau, eps_ns, inner } => {
            Ok(Property::next_et(*tau, *eps_ns, push_ahead(inner)?))
        }
        Property::Next { n, inner } => {
            let pushed = push_ahead(inner)?;
            Ok(distribute(*n, pushed)?)
        }
    }
}

/// Applies `next[n]` to an already-pushed property, distributing it down.
fn distribute(n: u32, p: Property) -> Result<Property, PushAheadError> {
    match p {
        // Constants are literals: keep them under `next`. Folding
        // `next(const)` to `const` would be exact only on infinite traces.
        Property::Const(_) | Property::Atom(_) | Property::Not(_) => Ok(Property::next_n(n, p)),
        Property::Next { n: m, inner } => Ok(Property::next_n(n + m, *inner)),
        Property::And(a, b) => Ok(distribute(n, *a)?.and(distribute(n, *b)?)),
        Property::Or(a, b) => Ok(distribute(n, *a)?.or(distribute(n, *b)?)),
        Property::Until(a, b) => Ok(distribute(n, *a)?.until(distribute(n, *b)?)),
        Property::Release(a, b) => Ok(distribute(n, *a)?.release(distribute(n, *b)?)),
        Property::Always(inner) => Ok(Property::always(distribute(n, *inner)?)),
        Property::Eventually(inner) => Ok(Property::eventually(distribute(n, *inner)?)),
        Property::NextEt { .. } => Err(PushAheadError::NextOverNextEt),
        Property::Implies(..) => Err(PushAheadError::NotInNnf),
    }
}

/// True if every `next` operand in `p` is a literal (atom, negated atom or
/// constant), i.e. push-ahead has been applied.
#[must_use]
pub fn is_pushed(p: &Property) -> bool {
    match p {
        Property::Const(_) | Property::Atom(_) | Property::Not(_) => true,
        Property::Implies(a, b)
        | Property::And(a, b)
        | Property::Or(a, b)
        | Property::Until(a, b)
        | Property::Release(a, b) => is_pushed(a) && is_pushed(b),
        Property::Always(inner) | Property::Eventually(inner) => is_pushed(inner),
        Property::NextEt { inner, .. } => is_pushed(inner),
        Property::Next { inner, .. } => inner.is_literal(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pushed(src: &str) -> String {
        push_ahead(&src.parse::<Property>().unwrap())
            .unwrap()
            .to_string()
    }

    #[test]
    fn distributes_over_boolean_connectives() {
        assert_eq!(pushed("next (a || b)"), "(next a) || (next b)");
        assert_eq!(pushed("next (a && b)"), "(next a) && (next b)");
    }

    #[test]
    fn distributes_over_until_and_release() {
        assert_eq!(pushed("next (a until b)"), "(next a) until (next b)");
        assert_eq!(pushed("next (a release b)"), "(next a) release (next b)");
    }

    #[test]
    fn distributes_over_derived_operators() {
        assert_eq!(pushed("next (always a)"), "always (next a)");
        assert_eq!(pushed("next (eventually a)"), "eventually (next a)");
    }

    #[test]
    fn merges_adjacent_nexts() {
        assert_eq!(pushed("next next next a"), "next[3] a");
        assert_eq!(pushed("next[5] next[2] a"), "next[7] a");
        assert_eq!(
            pushed("next (next a || next[2] b)"),
            "(next[2] a) || (next[3] b)"
        );
    }

    #[test]
    fn paper_p2_push_ahead() {
        // p2 body: !ds || next(!ds until next rdy)
        // becomes: !ds || (next !ds until next[2] rdy)
        assert_eq!(
            pushed("!ds || next ((!ds) until next rdy)"),
            "(!ds) || ((next (!ds)) until (next[2] rdy))"
        );
    }

    #[test]
    fn next_of_constant_stays() {
        assert_eq!(pushed("next true"), "next true");
        assert_eq!(pushed("next (a || false)"), "(next a) || (next false)");
    }

    #[test]
    fn negated_literals_stay_under_next() {
        assert_eq!(pushed("next !a"), "next (!a)");
    }

    #[test]
    fn result_is_pushed() {
        for src in [
            "next (a || (b until next (c && next d)))",
            "always next (a release next[3] (b || !c))",
            "next next (eventually (a && next b))",
        ] {
            let p: Property = src.parse().unwrap();
            let out = push_ahead(&p).unwrap();
            assert!(is_pushed(&out), "{src} -> {out}");
        }
    }

    #[test]
    fn rejects_implication() {
        let p: Property = "next (a -> b)".parse().unwrap();
        assert_eq!(push_ahead(&p), Err(PushAheadError::NotInNnf));
    }

    #[test]
    fn rejects_non_literal_negation() {
        let p: Property = "!(next a)".parse().unwrap();
        assert_eq!(push_ahead(&p), Err(PushAheadError::NotInNnf));
    }

    #[test]
    fn rejects_next_over_next_et() {
        let p: Property = "next (next_et[1, 10] a)".parse().unwrap();
        assert_eq!(push_ahead(&p), Err(PushAheadError::NextOverNextEt));
    }

    #[test]
    fn is_pushed_detects_unpushed() {
        let p: Property = "next (a || b)".parse().unwrap();
        assert!(!is_pushed(&p));
        let q: Property = "(next a) || (next b)".parse().unwrap();
        assert!(is_pushed(&q));
    }
}
