//! Finite-trace semantics: the reference oracle for checkers and for the
//! abstraction theorems.
//!
//! A [`Trace`] is the sequence of *evaluation instants* seen by a
//! verification environment: clock events at RTL, transaction boundaries at
//! TLM. Each [`Step`] records the simulation time (nanoseconds) and the
//! values of all observable signals at that instant.
//!
//! Semantics on finite traces follow the standard strong/weak convention
//! used by dynamic ABV:
//!
//! - `next[n] p` is **strong**: false if the trace ends before `n` more
//!   instants;
//! - `p until q` is **strong**: `q` must occur within the trace;
//! - `p release q`, `always p` are **weak**: vacuously satisfied at the end
//!   of the trace;
//! - `next_ε^τ p` (Def. III.3) is true iff some instant exists exactly
//!   `ε` nanoseconds after the current one *and* `p` holds there; if no
//!   instant is observable at that time the operator is false.

use std::collections::HashMap;
use std::fmt;

use crate::ast::{ClockedProperty, Property};
use crate::atom::{MissingSignal, SignalEnv};
use crate::context::EvalContext;

/// One evaluation instant of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Step {
    /// Simulation time of the instant, in nanoseconds.
    pub time_ns: u64,
    values: HashMap<String, u64>,
}

impl Step {
    /// Creates a step at `time_ns` with the given signal values.
    ///
    /// ```
    /// let s = psl::Step::new(10, [("ds", 1), ("rdy", 0)]);
    /// assert_eq!(s.time_ns, 10);
    /// ```
    #[must_use]
    pub fn new<N: Into<String>>(time_ns: u64, values: impl IntoIterator<Item = (N, u64)>) -> Step {
        Step {
            time_ns,
            values: values.into_iter().map(|(n, v)| (n.into(), v)).collect(),
        }
    }

    /// Sets (or overwrites) a signal value.
    pub fn set(&mut self, name: impl Into<String>, value: u64) {
        self.values.insert(name.into(), value);
    }

    /// Signal names defined at this step.
    pub fn signal_names(&self) -> impl Iterator<Item = &str> {
        self.values.keys().map(String::as_str)
    }
}

impl SignalEnv for Step {
    fn signal(&self, name: &str) -> Option<u64> {
        self.values.get(name).copied()
    }
}

/// A finite sequence of evaluation instants with strictly increasing times.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Trace {
    steps: Vec<Step>,
}

impl Trace {
    /// The empty trace.
    #[must_use]
    pub fn new() -> Trace {
        Trace::default()
    }

    /// Builds a trace from steps.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::NonMonotonicTime`] if times are not strictly
    /// increasing.
    pub fn from_steps(steps: impl IntoIterator<Item = Step>) -> Result<Trace, EvalError> {
        let mut t = Trace::new();
        for s in steps {
            t.push(s)?;
        }
        Ok(t)
    }

    /// Appends a step.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::NonMonotonicTime`] if the step's time is not
    /// strictly after the last step's time.
    pub fn push(&mut self, step: Step) -> Result<(), EvalError> {
        if let Some(last) = self.steps.last() {
            if step.time_ns <= last.time_ns {
                return Err(EvalError::NonMonotonicTime {
                    last: last.time_ns,
                    next: step.time_ns,
                });
            }
        }
        self.steps.push(step);
        Ok(())
    }

    /// Number of evaluation instants.
    #[must_use]
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True if the trace has no instants.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps, in order.
    #[must_use]
    pub fn steps(&self) -> &[Step] {
        &self.steps
    }

    /// Index of the instant at exactly `time_ns`, if one exists.
    #[must_use]
    pub fn position_at_time(&self, time_ns: u64) -> Option<usize> {
        self.steps
            .binary_search_by_key(&time_ns, |s| s.time_ns)
            .ok()
    }

    /// Evaluates `p` at instant `pos`.
    ///
    /// # Errors
    ///
    /// - [`EvalError::PositionOutOfRange`] if `pos >= len()`;
    /// - [`EvalError::MissingSignal`] if an atom observes an undefined
    ///   signal.
    pub fn eval(&self, p: &Property, pos: usize) -> Result<bool, EvalError> {
        if pos >= self.steps.len() {
            return Err(EvalError::PositionOutOfRange {
                pos,
                len: self.steps.len(),
            });
        }
        self.eval_inner(p, pos)
    }

    fn eval_inner(&self, p: &Property, pos: usize) -> Result<bool, EvalError> {
        debug_assert!(pos < self.steps.len());
        match p {
            Property::Const(b) => Ok(*b),
            Property::Atom(a) => Ok(a.eval(&self.steps[pos])?),
            Property::Not(inner) => Ok(!self.eval_inner(inner, pos)?),
            Property::And(a, b) => Ok(self.eval_inner(a, pos)? && self.eval_inner(b, pos)?),
            Property::Or(a, b) => Ok(self.eval_inner(a, pos)? || self.eval_inner(b, pos)?),
            Property::Implies(a, b) => Ok(!self.eval_inner(a, pos)? || self.eval_inner(b, pos)?),
            Property::Next { n, inner } => {
                let target = pos + *n as usize;
                if target < self.steps.len() {
                    self.eval_inner(inner, target)
                } else {
                    Ok(false) // strong next
                }
            }
            Property::NextEt { eps_ns, inner, .. } => {
                let deadline = self.steps[pos].time_ns + eps_ns;
                match self.position_at_time(deadline) {
                    Some(target) if target > pos => self.eval_inner(inner, target),
                    // No observable event at exactly t+eps: false (Def. III.3).
                    _ => Ok(false),
                }
            }
            Property::Until(a, b) => {
                for k in pos..self.steps.len() {
                    if self.eval_inner(b, k)? {
                        return Ok(true);
                    }
                    if !self.eval_inner(a, k)? {
                        return Ok(false);
                    }
                }
                Ok(false) // strong until: b never occurred
            }
            Property::Release(a, b) => {
                for k in pos..self.steps.len() {
                    if !self.eval_inner(b, k)? {
                        return Ok(false);
                    }
                    if self.eval_inner(a, k)? {
                        return Ok(true);
                    }
                }
                Ok(true) // weak at trace end
            }
            Property::Always(inner) => {
                for k in pos..self.steps.len() {
                    if !self.eval_inner(inner, k)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Property::Eventually(inner) => {
                for k in pos..self.steps.len() {
                    if self.eval_inner(inner, k)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
        }
    }

    /// Evaluates `p` at instant `pos` under the *weak view* of truncated
    /// LTL semantics: every temporal operator is weakened at the trace
    /// boundary (`next` past the end is true, `until` is satisfied when its
    /// left operand holds through the end, `eventually` is trivially
    /// satisfied on a truncated trace).
    ///
    /// The weak view is the semantics under which the paper's push-ahead
    /// distribution rules (Section III-A) are exact equivalences even on
    /// finite traces; [`eval`](Trace::eval) (the neutral view) agrees with
    /// it on any evaluation that completes before the trace ends.
    ///
    /// Negation is interpreted as plain complement, which coincides with
    /// the truncated-semantics weak view only when negations wrap boolean
    /// subformulas — the shape guaranteed by negation normal form.
    ///
    /// # Errors
    ///
    /// Same conditions as [`eval`](Trace::eval).
    pub fn eval_weak(&self, p: &Property, pos: usize) -> Result<bool, EvalError> {
        if pos >= self.steps.len() {
            return Err(EvalError::PositionOutOfRange {
                pos,
                len: self.steps.len(),
            });
        }
        self.eval_weak_inner(p, pos)
    }

    fn eval_weak_inner(&self, p: &Property, pos: usize) -> Result<bool, EvalError> {
        debug_assert!(pos < self.steps.len());
        match p {
            Property::Const(b) => Ok(*b),
            Property::Atom(a) => Ok(a.eval(&self.steps[pos])?),
            Property::Not(inner) => Ok(!self.eval_weak_inner(inner, pos)?),
            Property::And(a, b) => {
                Ok(self.eval_weak_inner(a, pos)? && self.eval_weak_inner(b, pos)?)
            }
            Property::Or(a, b) => {
                Ok(self.eval_weak_inner(a, pos)? || self.eval_weak_inner(b, pos)?)
            }
            Property::Implies(a, b) => {
                Ok(!self.eval_weak_inner(a, pos)? || self.eval_weak_inner(b, pos)?)
            }
            Property::Next { n, inner } => {
                let target = pos + *n as usize;
                if target < self.steps.len() {
                    self.eval_weak_inner(inner, target)
                } else {
                    Ok(true) // weak next
                }
            }
            Property::NextEt { eps_ns, inner, .. } => {
                let deadline = self.steps[pos].time_ns + eps_ns;
                let last = self.steps.last().expect("non-empty by pos check").time_ns;
                if deadline > last {
                    return Ok(true); // truncated before the deadline
                }
                match self.position_at_time(deadline) {
                    Some(target) if target > pos => self.eval_weak_inner(inner, target),
                    _ => Ok(false),
                }
            }
            Property::Until(a, b) => {
                for k in pos..self.steps.len() {
                    if self.eval_weak_inner(b, k)? {
                        return Ok(true);
                    }
                    if !self.eval_weak_inner(a, k)? {
                        return Ok(false);
                    }
                }
                Ok(true) // weak until: lhs held through the truncation point
            }
            Property::Release(a, b) => {
                for k in pos..self.steps.len() {
                    if !self.eval_weak_inner(b, k)? {
                        return Ok(false);
                    }
                    if self.eval_weak_inner(a, k)? {
                        return Ok(true);
                    }
                }
                Ok(true)
            }
            Property::Always(inner) => {
                for k in pos..self.steps.len() {
                    if !self.eval_weak_inner(inner, k)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Property::Eventually(inner) => {
                for k in pos..self.steps.len() {
                    if self.eval_weak_inner(inner, k)? {
                        return Ok(true);
                    }
                }
                Ok(true) // weak eventually: trivially satisfied on truncation
            }
        }
    }

    /// Restricts the trace to the instants where the context guard holds.
    ///
    /// Edge selection (pos/neg/any) is the responsibility of the trace
    /// producer: an RTL environment samples at the requested clock events
    /// and produces one step per event, so only the boolean guard remains to
    /// be applied here.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::MissingSignal`] if the guard observes an
    /// undefined signal.
    pub fn filter_by_context(&self, context: &EvalContext) -> Result<Trace, EvalError> {
        let Some(guard) = context.guard() else {
            return Ok(self.clone());
        };
        let mut out = Trace::new();
        for step in &self.steps {
            let keep = eval_boolean(guard, step)?;
            if keep {
                out.steps.push(step.clone());
            }
        }
        Ok(out)
    }

    /// Evaluates a clocked property on the trace: filters by the context
    /// guard, then evaluates at the first remaining instant.
    ///
    /// An empty (post-filter) trace satisfies every property vacuously.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::MissingSignal`] if an atom or guard observes an
    /// undefined signal.
    pub fn satisfies(&self, p: &ClockedProperty) -> Result<bool, EvalError> {
        let filtered = self.filter_by_context(&p.context)?;
        if filtered.is_empty() {
            return Ok(true);
        }
        filtered.eval(&p.property, 0)
    }
}

impl FromIterator<Step> for Trace {
    /// Builds a trace from steps.
    ///
    /// # Panics
    ///
    /// Panics if step times are not strictly increasing; use
    /// [`Trace::from_steps`] for a fallible variant.
    fn from_iter<I: IntoIterator<Item = Step>>(iter: I) -> Trace {
        Trace::from_steps(iter).expect("step times must be strictly increasing")
    }
}

impl Extend<Step> for Trace {
    /// Appends steps.
    ///
    /// # Panics
    ///
    /// Panics if step times are not strictly increasing.
    fn extend<I: IntoIterator<Item = Step>>(&mut self, iter: I) {
        for s in iter {
            self.push(s)
                .expect("step times must be strictly increasing");
        }
    }
}

/// Evaluates a boolean-only property against a single signal environment.
///
/// # Errors
///
/// Returns [`EvalError::MissingSignal`] for undefined signals, or
/// [`EvalError::NotBoolean`] if the property contains temporal operators.
pub fn eval_boolean(p: &Property, env: &dyn SignalEnv) -> Result<bool, EvalError> {
    match p {
        Property::Const(b) => Ok(*b),
        Property::Atom(a) => Ok(a.eval(env)?),
        Property::Not(inner) => Ok(!eval_boolean(inner, env)?),
        Property::And(a, b) => Ok(eval_boolean(a, env)? && eval_boolean(b, env)?),
        Property::Or(a, b) => Ok(eval_boolean(a, env)? || eval_boolean(b, env)?),
        Property::Implies(a, b) => Ok(!eval_boolean(a, env)? || eval_boolean(b, env)?),
        _ => Err(EvalError::NotBoolean {
            property: p.to_string(),
        }),
    }
}

/// Errors produced by trace construction and evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A step's time was not strictly after its predecessor's.
    NonMonotonicTime {
        /// Time of the previous step.
        last: u64,
        /// Offending time.
        next: u64,
    },
    /// Evaluation was requested at an instant beyond the trace.
    PositionOutOfRange {
        /// Requested instant index.
        pos: usize,
        /// Trace length.
        len: usize,
    },
    /// An atom observed a signal not defined at the instant.
    MissingSignal(MissingSignal),
    /// A temporal property was used where a boolean expression is required.
    NotBoolean {
        /// Printed form of the offending property.
        property: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::NonMonotonicTime { last, next } => {
                write!(
                    f,
                    "step time {next}ns is not after previous step time {last}ns"
                )
            }
            EvalError::PositionOutOfRange { pos, len } => {
                write!(
                    f,
                    "evaluation position {pos} out of range for trace of length {len}"
                )
            }
            EvalError::MissingSignal(e) => write!(f, "{e}"),
            EvalError::NotBoolean { property } => {
                write!(
                    f,
                    "expected a boolean expression, found temporal property `{property}`"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EvalError::MissingSignal(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MissingSignal> for EvalError {
    fn from(e: MissingSignal) -> EvalError {
        EvalError::MissingSignal(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Clock-tick trace (10ns period) from per-signal vectors.
    fn tick_trace(signals: &[(&str, &[u64])]) -> Trace {
        let len = signals[0].1.len();
        (0..len)
            .map(|i| {
                Step::new(
                    10 + 10 * i as u64,
                    signals.iter().map(|(n, vs)| (n.to_string(), vs[i])),
                )
            })
            .collect()
    }

    fn prop(src: &str) -> Property {
        src.parse().unwrap()
    }

    #[test]
    fn atoms_and_booleans() {
        let t = tick_trace(&[("a", &[1, 0]), ("x", &[5, 7])]);
        assert!(t.eval(&prop("a"), 0).unwrap());
        assert!(!t.eval(&prop("a"), 1).unwrap());
        assert!(t.eval(&prop("x == 5"), 0).unwrap());
        assert!(t.eval(&prop("a && x == 5"), 0).unwrap());
        assert!(t.eval(&prop("!a || x == 7"), 1).unwrap());
        assert!(t.eval(&prop("a -> x == 5"), 0).unwrap());
    }

    #[test]
    fn strong_next_fails_past_trace_end() {
        let t = tick_trace(&[("a", &[1, 1])]);
        assert!(t.eval(&prop("next a"), 0).unwrap());
        assert!(!t.eval(&prop("next a"), 1).unwrap());
        assert!(!t.eval(&prop("next[2] a"), 0).unwrap());
    }

    #[test]
    fn until_is_strong() {
        let t = tick_trace(&[("a", &[1, 1, 0]), ("b", &[0, 0, 1])]);
        assert!(t.eval(&prop("a until b"), 0).unwrap());
        let t2 = tick_trace(&[("a", &[1, 1, 1]), ("b", &[0, 0, 0])]);
        assert!(!t2.eval(&prop("a until b"), 0).unwrap());
        // a fails before b occurs
        let t3 = tick_trace(&[("a", &[1, 0, 0]), ("b", &[0, 0, 1])]);
        assert!(!t3.eval(&prop("a until b"), 0).unwrap());
        // b true immediately: a irrelevant
        let t4 = tick_trace(&[("a", &[0]), ("b", &[1])]);
        assert!(t4.eval(&prop("a until b"), 0).unwrap());
    }

    #[test]
    fn release_is_weak() {
        // b holds to the end, a never: satisfied.
        let t = tick_trace(&[("a", &[0, 0, 0]), ("b", &[1, 1, 1])]);
        assert!(t.eval(&prop("a release b"), 0).unwrap());
        // a releases at step 1; b may fail later.
        let t2 = tick_trace(&[("a", &[0, 1, 0]), ("b", &[1, 1, 0])]);
        assert!(t2.eval(&prop("a release b"), 0).unwrap());
        // b fails before a releases.
        let t3 = tick_trace(&[("a", &[0, 0, 1]), ("b", &[1, 0, 1])]);
        assert!(!t3.eval(&prop("a release b"), 0).unwrap());
    }

    #[test]
    fn always_and_eventually() {
        let t = tick_trace(&[("a", &[1, 1, 1]), ("b", &[0, 0, 1])]);
        assert!(t.eval(&prop("always a"), 0).unwrap());
        assert!(!t.eval(&prop("always b"), 0).unwrap());
        assert!(t.eval(&prop("eventually b"), 0).unwrap());
        assert!(t.eval(&prop("eventually x == 1"), 0).is_err());
    }

    #[test]
    fn next_et_requires_event_at_exact_time() {
        // Instants at 10, 20, 40 ns.
        let t: Trace = [
            Step::new(10, [("a", 0u64), ("b", 1)]),
            Step::new(20, [("a", 1), ("b", 0)]),
            Step::new(40, [("a", 1), ("b", 0)]),
        ]
        .into_iter()
        .collect();
        // From pos 0 (t=10): event at 10+10=20 exists and a holds there.
        assert!(t.eval(&prop("next_et[1, 10] a"), 0).unwrap());
        // From pos 0: 10+20=30 has no event -> false even though a holds later.
        assert!(!t.eval(&prop("next_et[1, 20] a"), 0).unwrap());
        // From pos 1 (t=20): 20+20=40 exists.
        assert!(t.eval(&prop("next_et[1, 20] a"), 1).unwrap());
        // eps pointing at the current instant itself (eps=0) is not a future
        // event: false.
        assert!(!t.eval(&prop("next_et[1, 0] b"), 0).unwrap());
    }

    #[test]
    fn nested_next_et_chains_absolute_times() {
        let t: Trace = [
            Step::new(10, [("a", 0u64)]),
            Step::new(20, [("a", 0)]),
            Step::new(30, [("a", 1)]),
        ]
        .into_iter()
        .collect();
        // 10 -> (+10) 20 -> (+10) 30 where a holds.
        assert!(t.eval(&prop("next_et[1, 10] next_et[2, 10] a"), 0).unwrap());
        // 10 -> (+20) 30 -> (+10) 40: no event at 40.
        assert!(!t.eval(&prop("next_et[1, 20] next_et[2, 10] a"), 0).unwrap());
    }

    #[test]
    fn monotonic_time_enforced() {
        let mut t = Trace::new();
        t.push(Step::new(10, [("a", 1u64)])).unwrap();
        let err = t.push(Step::new(10, [("a", 1u64)])).unwrap_err();
        assert_eq!(err, EvalError::NonMonotonicTime { last: 10, next: 10 });
    }

    #[test]
    fn position_out_of_range() {
        let t = tick_trace(&[("a", &[1])]);
        assert!(matches!(
            t.eval(&prop("a"), 1),
            Err(EvalError::PositionOutOfRange { pos: 1, len: 1 })
        ));
    }

    #[test]
    fn context_guard_filters_instants() {
        let t = tick_trace(&[("a", &[1, 0, 1, 0]), ("en", &[1, 0, 1, 1])]);
        let cp: ClockedProperty = "always a @(clk_pos && en)".parse().unwrap();
        // Guard keeps instants 0, 2, 3; a is 1, 1, 0 there -> violated.
        assert!(!t.satisfies(&cp).unwrap());
        let cp2: ClockedProperty = "always a @(clk_pos && en == 1)".parse().unwrap();
        assert!(!t.satisfies(&cp2).unwrap());
        // Guard keeping only instants where a holds.
        let cp3: ClockedProperty = "always a @(clk_pos && a)".parse().unwrap();
        assert!(t.satisfies(&cp3).unwrap());
    }

    #[test]
    fn empty_filtered_trace_is_vacuously_true() {
        let t = tick_trace(&[("a", &[0, 0]), ("en", &[0, 0])]);
        let cp: ClockedProperty = "always a @(clk_pos && en)".parse().unwrap();
        assert!(t.satisfies(&cp).unwrap());
    }

    #[test]
    fn eval_boolean_rejects_temporal() {
        let env: &[(&str, u64)] = &[("a", 1)];
        assert!(matches!(
            eval_boolean(&prop("next a"), &env),
            Err(EvalError::NotBoolean { .. })
        ));
        assert!(eval_boolean(&prop("a && true"), &env).unwrap());
    }

    #[test]
    fn paper_p1_holds_on_a_correct_des_trace() {
        // ds && indata == 0 at instant 0; out != 0 at instant 17.
        let mut steps = Vec::new();
        for i in 0..20u64 {
            let mut s = Step::new(10 + 10 * i, [("ds", 0u64), ("indata", 0), ("out", 0)]);
            if i == 0 {
                s.set("ds", 1);
            }
            if i == 17 {
                s.set("out", 0xDEAD);
            }
            steps.push(s);
        }
        let t: Trace = steps.into_iter().collect();
        let p1: ClockedProperty = "always (!(ds && indata == 0) || next[17](out != 0)) @clk_pos"
            .parse()
            .unwrap();
        assert!(t.satisfies(&p1).unwrap());
    }
}
