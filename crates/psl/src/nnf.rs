//! Negation normal form (step 1 of Methodology III.1).
//!
//! Def. II.1 of the paper defines the LTL grammar in negation normal form:
//! negation may only be applied to atomic propositions. [`to_nnf`] rewrites
//! an arbitrary property into that form using the classical dualities:
//!
//! ```text
//! !(p && q)      = !p || !q            !(p || q)      = !p && !q
//! !(next[n] p)   = next[n] !p          !(p until q)   = !p release !q
//! !(p release q) = !p until !q         !(always p)    = eventually !p
//! !(eventually p)= always !p           p -> q         = !p || q
//! ```
//!
//! Negated comparison atoms are folded into the complementary comparison
//! (`!(a < b)` becomes `a >= b`), so the only surviving negations wrap
//! boolean-signal atoms.

use crate::ast::Property;
use crate::atom::Atom;

/// Rewrites `p` into negation normal form.
///
/// The result contains no [`Property::Implies`] node and every
/// [`Property::Not`] wraps a boolean-signal atom. The transformation
/// preserves trace semantics (validated by property tests against
/// [`crate::trace`]).
///
/// ```
/// use psl::{nnf::to_nnf, Property};
///
/// let p: Property = "!(a && next b)".parse()?;
/// assert_eq!(to_nnf(&p).to_string(), "(!a) || (next (!b))");
/// # Ok::<(), psl::ParseError>(())
/// ```
#[must_use]
pub fn to_nnf(p: &Property) -> Property {
    rewrite(p, false)
}

/// True if `p` is in negation normal form: no implication and negation only
/// on atoms.
#[must_use]
pub fn is_nnf(p: &Property) -> bool {
    match p {
        Property::Const(_) | Property::Atom(_) => true,
        Property::Not(inner) => matches!(**inner, Property::Atom(_)),
        Property::Implies(..) => false,
        Property::Next { inner, .. }
        | Property::NextEt { inner, .. }
        | Property::Always(inner)
        | Property::Eventually(inner) => is_nnf(inner),
        Property::And(a, b)
        | Property::Or(a, b)
        | Property::Until(a, b)
        | Property::Release(a, b) => is_nnf(a) && is_nnf(b),
    }
}

/// Rewrites `p` under `negate` pending negations.
fn rewrite(p: &Property, negate: bool) -> Property {
    match p {
        Property::Const(b) => Property::Const(*b != negate),
        Property::Atom(a) => {
            if negate {
                negate_atom(a)
            } else {
                Property::Atom(a.clone())
            }
        }
        Property::Not(inner) => rewrite(inner, !negate),
        Property::And(a, b) => {
            let (l, r) = (rewrite(a, negate), rewrite(b, negate));
            if negate {
                l.or(r)
            } else {
                l.and(r)
            }
        }
        Property::Or(a, b) => {
            let (l, r) = (rewrite(a, negate), rewrite(b, negate));
            if negate {
                l.and(r)
            } else {
                l.or(r)
            }
        }
        Property::Implies(a, b) => {
            // p -> q == !p || q; under negation: p && !q.
            let (l, r) = (rewrite(a, !negate), rewrite(b, negate));
            if negate {
                l.and(r)
            } else {
                l.or(r)
            }
        }
        Property::Next { n, inner } => Property::next_n(*n, rewrite(inner, negate)),
        Property::NextEt { tau, eps_ns, inner } => {
            Property::next_et(*tau, *eps_ns, rewrite(inner, negate))
        }
        Property::Until(a, b) => {
            let (l, r) = (rewrite(a, negate), rewrite(b, negate));
            if negate {
                l.release(r)
            } else {
                l.until(r)
            }
        }
        Property::Release(a, b) => {
            let (l, r) = (rewrite(a, negate), rewrite(b, negate));
            if negate {
                l.until(r)
            } else {
                l.release(r)
            }
        }
        Property::Always(inner) => {
            let i = rewrite(inner, negate);
            if negate {
                Property::eventually(i)
            } else {
                Property::always(i)
            }
        }
        Property::Eventually(inner) => {
            let i = rewrite(inner, negate);
            if negate {
                Property::always(i)
            } else {
                Property::eventually(i)
            }
        }
    }
}

/// The negation of an atom as an NNF property: comparison atoms flip their
/// operator; boolean-signal atoms stay wrapped in `!`.
fn negate_atom(a: &Atom) -> Property {
    match a {
        Atom::Bool(_) => Property::not(Property::Atom(a.clone())),
        Atom::Cmp { signal, op, value } => {
            Property::Atom(Atom::cmp(signal.clone(), op.negated(), *value))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nnf(src: &str) -> String {
        to_nnf(&src.parse::<Property>().unwrap()).to_string()
    }

    #[test]
    fn pushes_negation_through_booleans() {
        assert_eq!(nnf("!(a && b)"), "(!a) || (!b)");
        assert_eq!(nnf("!(a || b)"), "(!a) && (!b)");
        assert_eq!(nnf("!!a"), "a");
    }

    #[test]
    fn eliminates_implication() {
        assert_eq!(nnf("a -> b"), "(!a) || b");
        assert_eq!(nnf("!(a -> b)"), "a && (!b)");
    }

    #[test]
    fn dualizes_temporal_operators() {
        assert_eq!(nnf("!(next[3] a)"), "next[3] (!a)");
        assert_eq!(nnf("!(a until b)"), "(!a) release (!b)");
        assert_eq!(nnf("!(a release b)"), "(!a) until (!b)");
        assert_eq!(nnf("!(always a)"), "eventually (!a)");
        assert_eq!(nnf("!(eventually a)"), "always (!a)");
    }

    #[test]
    fn folds_negated_comparisons() {
        assert_eq!(nnf("!(out == 0)"), "(out != 0)");
        assert_eq!(nnf("!(out < 4)"), "(out >= 4)");
    }

    #[test]
    fn negates_constants() {
        assert_eq!(nnf("!true"), "false");
        assert_eq!(nnf("!false"), "true");
    }

    #[test]
    fn nnf_output_is_nnf() {
        for src in [
            "!(a && (b -> next c))",
            "!(always (a until !(b release c)))",
            "!!!(a -> (b -> c))",
            "!(next_et[1, 10] a)",
        ] {
            let p: Property = src.parse().unwrap();
            let n = to_nnf(&p);
            assert!(is_nnf(&n), "{src} -> {n}");
        }
    }

    #[test]
    fn nnf_is_idempotent() {
        let p: Property = "!(a && (b -> next c)) until !(always d)".parse().unwrap();
        let once = to_nnf(&p);
        assert_eq!(to_nnf(&once), once);
    }

    #[test]
    fn already_nnf_is_unchanged() {
        let p: Property = "always ((!ds) || (next[17] (out != 0)))".parse().unwrap();
        assert!(is_nnf(&p));
        assert_eq!(to_nnf(&p), p);
    }
}
