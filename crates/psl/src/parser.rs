//! Recursive-descent parser for the property surface syntax.
//!
//! Grammar (lowest to highest precedence):
//!
//! ```text
//! clocked   := property ('@' context)?
//! property  := implies
//! implies   := untilrel ('->' implies)?                 (right-assoc)
//! untilrel  := or (('until' | 'release') or)*           (left-assoc)
//! or        := and ('||' and)*
//! and       := unary ('&&' unary)*
//! unary     := '!' unary
//!            | 'next' ('[' INT ']')? unary
//!            | 'next_et' '[' INT ',' INT ']' unary
//!            | 'always' unary
//!            | 'never' unary              (sugar: always !p)
//!            | 'eventually' unary
//!            | primary
//! primary   := 'true' | 'false' | '(' property ')' | atom
//! atom      := IDENT (('==' | '!=' | '<' | '<=' | '>' | '>=') INT)?
//! context   := 'clk' | 'clk_pos' | 'clk_neg' | 'true' | 'T_b'
//!            | '(' context_head '&&' property ')'
//! ```
//!
//! Boolean operators bind tighter than `until`/`release`, matching PSL.
//! Keywords cannot be used as signal names.

use std::fmt;
use std::str::FromStr;

use crate::ast::{ClockedProperty, Property};
use crate::atom::{Atom, CmpOp};
use crate::context::{ClockEdge, EvalContext};
use crate::lexer::{lex, LexError, Spanned, Token};

/// Keywords of the language; rejected as signal names.
const KEYWORDS: &[&str] = &[
    "always",
    "never",
    "eventually",
    "next",
    "next_et",
    "until",
    "release",
    "true",
    "false",
];

/// Error produced when a property fails to parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description of the failure.
    pub message: String,
    /// Byte offset in the source where the failure was detected.
    pub pos: usize,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.pos)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: format!("unexpected character `{}`", e.found),
            pos: e.pos,
        }
    }
}

/// Parses a bare property (no evaluation context).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
///
/// ```
/// let p = psl::parser::parse_property("!ds || next[17] (out != 0)")?;
/// assert_eq!(p.signals(), vec!["ds", "out"]);
/// # Ok::<(), psl::ParseError>(())
/// ```
pub fn parse_property(src: &str) -> Result<Property, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens: &tokens,
        idx: 0,
        len: src.len(),
    };
    let prop = p.property()?;
    p.expect_end()?;
    Ok(prop)
}

/// Parses a property followed by an optional `@` context (defaulting to the
/// base clock context `@true` when absent).
///
/// # Errors
///
/// Returns [`ParseError`] on malformed input or trailing tokens.
///
/// ```
/// let p = psl::parser::parse_clocked("always (!ds || next rdy) @clk_pos")?;
/// assert!(p.context.is_clock());
/// # Ok::<(), psl::ParseError>(())
/// ```
pub fn parse_clocked(src: &str) -> Result<ClockedProperty, ParseError> {
    let tokens = lex(src)?;
    let mut p = Parser {
        tokens: &tokens,
        idx: 0,
        len: src.len(),
    };
    let prop = p.property()?;
    let context = if p.eat(&Token::At) {
        p.context()?
    } else {
        EvalContext::clk_true()
    };
    p.expect_end()?;
    Ok(ClockedProperty::new(prop, context))
}

impl FromStr for Property {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<Property, ParseError> {
        parse_property(s)
    }
}

impl FromStr for ClockedProperty {
    type Err = ParseError;

    fn from_str(s: &str) -> Result<ClockedProperty, ParseError> {
        parse_clocked(s)
    }
}

struct Parser<'a> {
    tokens: &'a [Spanned],
    idx: usize,
    len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.idx).map(|s| &s.token)
    }

    fn pos(&self) -> usize {
        self.tokens.get(self.idx).map_or(self.len, |s| s.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.idx).map(|s| &s.token);
        if t.is_some() {
            self.idx += 1;
        }
        t
    }

    fn eat(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.idx += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.error(format!("expected {t}")))
        }
    }

    fn expect_end(&self) -> Result<(), ParseError> {
        match self.peek() {
            None => Ok(()),
            Some(t) => Err(self.error(format!("unexpected trailing {t}"))),
        }
    }

    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            pos: self.pos(),
        }
    }

    fn int(&mut self) -> Result<u64, ParseError> {
        match self.peek() {
            Some(&Token::Int(v)) => {
                self.idx += 1;
                Ok(v)
            }
            other => {
                let msg = match other {
                    Some(t) => format!("expected integer, found {t}"),
                    None => "expected integer, found end of input".to_owned(),
                };
                Err(self.error(msg))
            }
        }
    }

    fn property(&mut self) -> Result<Property, ParseError> {
        self.implies()
    }

    fn implies(&mut self) -> Result<Property, ParseError> {
        let lhs = self.until_release()?;
        if self.eat(&Token::Arrow) {
            let rhs = self.implies()?;
            Ok(lhs.implies(rhs))
        } else {
            Ok(lhs)
        }
    }

    fn until_release(&mut self) -> Result<Property, ParseError> {
        let mut lhs = self.or()?;
        loop {
            let is_until = matches!(self.peek(), Some(Token::Ident(k)) if k == "until");
            let is_release = matches!(self.peek(), Some(Token::Ident(k)) if k == "release");
            if is_until {
                self.idx += 1;
                let rhs = self.or()?;
                lhs = lhs.until(rhs);
            } else if is_release {
                self.idx += 1;
                let rhs = self.or()?;
                lhs = lhs.release(rhs);
            } else {
                return Ok(lhs);
            }
        }
    }

    fn or(&mut self) -> Result<Property, ParseError> {
        let mut lhs = self.and()?;
        while self.eat(&Token::OrOr) {
            let rhs = self.and()?;
            lhs = lhs.or(rhs);
        }
        Ok(lhs)
    }

    fn and(&mut self) -> Result<Property, ParseError> {
        let mut lhs = self.unary()?;
        while self.eat(&Token::AndAnd) {
            let rhs = self.unary()?;
            lhs = lhs.and(rhs);
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Property, ParseError> {
        if self.eat(&Token::Bang) {
            let p = self.unary()?;
            return Ok(Property::not(p));
        }
        if let Some(Token::Ident(k)) = self.peek() {
            match k.as_str() {
                "next" => {
                    self.idx += 1;
                    let n = if self.eat(&Token::LBracket) {
                        let n = self.int()?;
                        self.expect(&Token::RBracket)?;
                        u32::try_from(n)
                            .ok()
                            .filter(|&n| n >= 1)
                            .ok_or_else(|| self.error("next[n] requires 1 <= n <= u32::MAX"))?
                    } else {
                        1
                    };
                    let inner = self.unary()?;
                    return Ok(Property::next_n(n, inner));
                }
                "next_et" => {
                    self.idx += 1;
                    self.expect(&Token::LBracket)?;
                    let tau = self.int()?;
                    let tau =
                        u32::try_from(tau).map_err(|_| self.error("next_et tau out of range"))?;
                    self.expect(&Token::Comma)?;
                    let eps = self.int()?;
                    self.expect(&Token::RBracket)?;
                    let inner = self.unary()?;
                    return Ok(Property::next_et(tau, eps, inner));
                }
                "always" => {
                    self.idx += 1;
                    let inner = self.unary()?;
                    return Ok(Property::always(inner));
                }
                // PSL's `never p` is sugar for `always !p`.
                "never" => {
                    self.idx += 1;
                    let inner = self.unary()?;
                    return Ok(Property::always(Property::not(inner)));
                }
                "eventually" => {
                    self.idx += 1;
                    let inner = self.unary()?;
                    return Ok(Property::eventually(inner));
                }
                _ => {}
            }
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Property, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.idx += 1;
                let p = self.property()?;
                self.expect(&Token::RParen)?;
                Ok(p)
            }
            Some(Token::Ident(k)) if k == "true" => {
                self.idx += 1;
                Ok(Property::t())
            }
            Some(Token::Ident(k)) if k == "false" => {
                self.idx += 1;
                Ok(Property::f())
            }
            Some(Token::Ident(name)) => {
                if KEYWORDS.contains(&name.as_str()) {
                    return Err(self.error(format!("keyword `{name}` cannot start a term here")));
                }
                let name = name.clone();
                self.idx += 1;
                let op = match self.peek() {
                    Some(Token::EqEq) => Some(CmpOp::Eq),
                    Some(Token::NotEq) => Some(CmpOp::Ne),
                    Some(Token::Lt) => Some(CmpOp::Lt),
                    Some(Token::Le) => Some(CmpOp::Le),
                    Some(Token::Gt) => Some(CmpOp::Gt),
                    Some(Token::Ge) => Some(CmpOp::Ge),
                    _ => None,
                };
                if let Some(op) = op {
                    self.idx += 1;
                    let value = self.int()?;
                    Ok(Property::Atom(Atom::cmp(name, op, value)))
                } else {
                    Ok(Property::Atom(Atom::bool(name)))
                }
            }
            other => {
                let msg = match other {
                    Some(t) => format!("expected a property, found {t}"),
                    None => "expected a property, found end of input".to_owned(),
                };
                Err(self.error(msg))
            }
        }
    }

    fn context(&mut self) -> Result<EvalContext, ParseError> {
        if self.eat(&Token::LParen) {
            let head = self.context_head()?;
            self.expect(&Token::AndAnd)?;
            let guard = self.property()?;
            self.expect(&Token::RParen)?;
            if !guard.is_boolean() {
                return Err(self.error("context guard must be a boolean expression"));
            }
            Ok(match head {
                ContextHead::Clock(edge) => EvalContext::Clock {
                    edge,
                    guard: Some(Box::new(guard)),
                },
                ContextHead::Transaction => EvalContext::Transaction {
                    guard: Some(Box::new(guard)),
                },
            })
        } else {
            Ok(match self.context_head()? {
                ContextHead::Clock(edge) => EvalContext::Clock { edge, guard: None },
                ContextHead::Transaction => EvalContext::Transaction { guard: None },
            })
        }
    }

    fn context_head(&mut self) -> Result<ContextHead, ParseError> {
        match self.bump() {
            Some(Token::Ident(k)) => match k.as_str() {
                "clk" => Ok(ContextHead::Clock(ClockEdge::Any)),
                "clk_pos" => Ok(ContextHead::Clock(ClockEdge::Pos)),
                "clk_neg" => Ok(ContextHead::Clock(ClockEdge::Neg)),
                "true" => Ok(ContextHead::Clock(ClockEdge::True)),
                "T_b" => Ok(ContextHead::Transaction),
                other => {
                    let message = format!(
                        "unknown context `{other}` (expected clk, clk_pos, clk_neg, true or T_b)"
                    );
                    Err(ParseError {
                        message,
                        pos: self.pos(),
                    })
                }
            },
            _ => Err(self.error("expected a context after `@`")),
        }
    }
}

enum ContextHead {
    Clock(ClockEdge),
    Transaction,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_p1() {
        let p: Property = "always (!(ds && indata == 0) || next[17](out != 0))"
            .parse()
            .unwrap();
        let expected = Property::always(
            Property::not(Property::bool_signal("ds").and(Property::cmp("indata", CmpOp::Eq, 0)))
                .or(Property::next_n(17, Property::cmp("out", CmpOp::Ne, 0))),
        );
        assert_eq!(p, expected);
    }

    #[test]
    fn parses_paper_p2() {
        let p: ClockedProperty = "always (!ds || (next (!ds until next(rdy)))) @clk_pos"
            .parse()
            .unwrap();
        let expected = Property::always(
            Property::not(Property::bool_signal("ds")).or(Property::next(
                Property::not(Property::bool_signal("ds"))
                    .until(Property::next(Property::bool_signal("rdy"))),
            )),
        );
        assert_eq!(p.property, expected);
        assert_eq!(p.context, EvalContext::clk_pos());
    }

    #[test]
    fn parses_paper_q2_with_next_et() {
        let q: ClockedProperty =
            "always (!ds || (next_et[1,10](!ds) until next_et[2,20](rdy))) @T_b"
                .parse()
                .unwrap();
        let expected = Property::always(
            Property::not(Property::bool_signal("ds")).or(Property::next_et(
                1,
                10,
                Property::not(Property::bool_signal("ds")),
            )
            .until(Property::next_et(2, 20, Property::bool_signal("rdy")))),
        );
        assert_eq!(q.property, expected);
        assert_eq!(q.context, EvalContext::tb());
    }

    #[test]
    fn boolean_ops_bind_tighter_than_until() {
        let p: Property = "a || b until c && d".parse().unwrap();
        let expected = Property::bool_signal("a")
            .or(Property::bool_signal("b"))
            .until(Property::bool_signal("c").and(Property::bool_signal("d")));
        assert_eq!(p, expected);
    }

    #[test]
    fn implication_is_right_associative_and_lowest() {
        let p: Property = "a -> b -> c".parse().unwrap();
        let expected = Property::bool_signal("a")
            .implies(Property::bool_signal("b").implies(Property::bool_signal("c")));
        assert_eq!(p, expected);
    }

    #[test]
    fn until_is_left_associative() {
        let p: Property = "a until b until c".parse().unwrap();
        let expected = Property::bool_signal("a")
            .until(Property::bool_signal("b"))
            .until(Property::bool_signal("c"));
        assert_eq!(p, expected);
    }

    #[test]
    fn default_context_is_base_clock() {
        let p: ClockedProperty = "always rdy".parse().unwrap();
        assert_eq!(p.context, EvalContext::clk_true());
    }

    #[test]
    fn guarded_contexts() {
        let p: ClockedProperty = "rdy @(clk_pos && mode == 1)".parse().unwrap();
        assert_eq!(
            p.context,
            EvalContext::clock_guarded(ClockEdge::Pos, Property::cmp("mode", CmpOp::Eq, 1))
        );
        let q: ClockedProperty = "rdy @(T_b && mode == 1)".parse().unwrap();
        assert_eq!(
            q.context,
            EvalContext::tb_guarded(Property::cmp("mode", CmpOp::Eq, 1))
        );
    }

    #[test]
    fn rejects_temporal_guard() {
        let err = "rdy @(clk_pos && next rdy)"
            .parse::<ClockedProperty>()
            .unwrap_err();
        assert!(err.message.contains("boolean"), "{err}");
    }

    #[test]
    fn rejects_keyword_as_signal() {
        let err = "always && rdy".parse::<Property>().unwrap_err();
        assert!(
            err.message.contains("property") || err.message.contains("keyword"),
            "{err}"
        );
    }

    #[test]
    fn rejects_trailing_tokens() {
        let err = "rdy rdy".parse::<Property>().unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }

    #[test]
    fn rejects_next_zero() {
        let err = "next[0] rdy".parse::<Property>().unwrap_err();
        assert!(err.message.contains("next[n]"), "{err}");
    }

    #[test]
    fn rejects_unknown_context() {
        let err = "rdy @bogus".parse::<ClockedProperty>().unwrap_err();
        assert!(err.message.contains("unknown context"), "{err}");
    }

    #[test]
    fn hex_literals() {
        let p: Property = "out == 0xFF".parse().unwrap();
        assert_eq!(p, Property::cmp("out", CmpOp::Eq, 255));
    }

    #[test]
    fn never_desugars_to_always_not() {
        let p: Property = "never (rdy && ds)".parse().unwrap();
        let expected = Property::always(Property::not(
            Property::bool_signal("rdy").and(Property::bool_signal("ds")),
        ));
        assert_eq!(p, expected);
        // Round-trips through the desugared form.
        assert_eq!(p.to_string().parse::<Property>().unwrap(), p);
    }

    #[test]
    fn double_negation_parses() {
        let p: Property = "!!rdy".parse().unwrap();
        assert_eq!(
            p,
            Property::not(Property::not(Property::bool_signal("rdy")))
        );
    }
}
