//! Property-based tests: printer/parser round-trip, NNF soundness and
//! push-ahead soundness against the finite-trace oracle.

use proptest::prelude::*;
use psl::nnf::{is_nnf, to_nnf};
use psl::push_ahead::{is_pushed, push_ahead};
use psl::trace::{Step, Trace};
use psl::{Atom, CmpOp, Property};

/// Signals the generated formulas and traces talk about.
const SIGNALS: &[&str] = &["a", "b", "c", "d"];

fn arb_atom() -> impl Strategy<Value = Atom> {
    prop_oneof![
        prop::sample::select(SIGNALS).prop_map(Atom::bool),
        (
            prop::sample::select(SIGNALS),
            prop::sample::select(vec![
                CmpOp::Eq,
                CmpOp::Ne,
                CmpOp::Lt,
                CmpOp::Le,
                CmpOp::Gt,
                CmpOp::Ge
            ]),
            0u64..4
        )
            .prop_map(|(s, op, v)| Atom::cmp(s, op, v)),
    ]
}

fn arb_boolean() -> impl Strategy<Value = Property> {
    let leaf = prop_oneof![
        Just(Property::t()),
        Just(Property::f()),
        arb_atom().prop_map(Property::Atom),
    ];
    leaf.prop_recursive(3, 12, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Property::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner).prop_map(|(a, b)| a.implies(b)),
        ]
    })
}

/// Arbitrary properties over the full grammar (excluding `next_ε^τ`, which
/// never occurs in RTL input properties). Used for structural tests.
fn arb_any_property() -> impl Strategy<Value = Property> {
    let leaf = prop_oneof![
        Just(Property::t()),
        Just(Property::f()),
        arb_atom().prop_map(Property::Atom),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(Property::not),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (1u32..4, inner.clone()).prop_map(|(n, p)| Property::next_n(n, p)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.until(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.release(b)),
            inner.clone().prop_map(Property::always),
            inner.prop_map(Property::eventually),
        ]
    })
}

/// Simple-subset-style properties: negations and implication antecedents are
/// boolean-only. This is the realistic RTL-property input class (the PSL
/// simple subset imposes the same restriction) and the class on which NNF is
/// an exact equivalence even on finite traces.
fn arb_subset_property() -> impl Strategy<Value = Property> {
    let leaf = prop_oneof![
        Just(Property::t()),
        Just(Property::f()),
        arb_atom().prop_map(Property::Atom),
        arb_boolean(),
    ];
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
            (arb_boolean(), inner.clone()).prop_map(|(a, b)| a.implies(b)),
            (1u32..4, inner.clone()).prop_map(|(n, p)| Property::next_n(n, p)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.until(b)),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| a.release(b)),
            inner.clone().prop_map(Property::always),
            inner.prop_map(Property::eventually),
        ]
    })
}

/// Arbitrary NNF properties without implication, suitable for push-ahead.
fn arb_nnf_property() -> impl Strategy<Value = Property> {
    arb_subset_property().prop_map(|p| to_nnf(&p))
}

/// A clock-tick trace (10 ns period) with random values for all signals.
fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec(prop::collection::vec(0u64..4, SIGNALS.len()), 1..20).prop_map(
        |rows| {
            rows.into_iter()
                .enumerate()
                .map(|(i, row)| {
                    Step::new(
                        10 + 10 * i as u64,
                        SIGNALS.iter().zip(row).map(|(n, v)| ((*n).to_owned(), v)),
                    )
                })
                .collect()
        },
    )
}

proptest! {
    /// `parse(print(p)) == p` for every property.
    #[test]
    fn print_parse_roundtrip(p in arb_any_property()) {
        let printed = p.to_string();
        let reparsed: Property = printed.parse().expect("printed property must reparse");
        prop_assert_eq!(reparsed, p, "printed as {}", printed);
    }

    /// NNF output is in negation normal form, for the full grammar.
    #[test]
    fn nnf_output_is_nnf(p in arb_any_property()) {
        prop_assert!(is_nnf(&to_nnf(&p)));
    }

    /// NNF preserves finite-trace semantics at every position for
    /// simple-subset-style inputs (negations over booleans), in both the
    /// neutral and the weak view.
    #[test]
    fn nnf_preserves_semantics(p in arb_subset_property(), t in arb_trace()) {
        let n = to_nnf(&p);
        for pos in 0..t.len() {
            prop_assert_eq!(
                t.eval(&p, pos).unwrap(),
                t.eval(&n, pos).unwrap(),
                "neutral view, position {} of {} vs {}", pos, &p, &n
            );
            prop_assert_eq!(
                t.eval_weak(&p, pos).unwrap(),
                t.eval_weak(&n, pos).unwrap(),
                "weak view, position {} of {} vs {}", pos, &p, &n
            );
        }
    }

    /// Push-ahead output has all `next`s on literals.
    #[test]
    fn push_ahead_output_is_pushed(p in arb_nnf_property()) {
        let out = push_ahead(&p).expect("NNF properties always push");
        prop_assert!(is_pushed(&out), "{} -> {}", &p, &out);
    }

    /// Push-ahead preserves trace semantics: exactly, at every position,
    /// under the weak view (the view under which the distribution rules are
    /// equivalences on truncated traces).
    #[test]
    fn push_ahead_preserves_weak_semantics(p in arb_nnf_property(), t in arb_trace()) {
        let out = push_ahead(&p).expect("NNF properties always push");
        for pos in 0..t.len() {
            prop_assert_eq!(
                t.eval_weak(&p, pos).unwrap(),
                t.eval_weak(&out, pos).unwrap(),
                "position {} of {} vs {}", pos, &p, &out
            );
        }
    }

    /// Push-ahead preserves neutral-view semantics for *bounded* properties
    /// evaluated with enough trace left for every obligation to complete —
    /// the situation of a property that finishes before simulation ends.
    #[test]
    fn push_ahead_preserves_neutral_semantics_when_bounded(
        p in arb_nnf_property(),
        t in arb_trace(),
    ) {
        let out = push_ahead(&p).expect("NNF properties always push");
        if let (Some(d1), Some(d2)) = (p.bounded_event_depth(), out.bounded_event_depth()) {
            let depth = d1.max(d2) as usize;
            for pos in 0..t.len().saturating_sub(depth) {
                prop_assert_eq!(
                    t.eval(&p, pos).unwrap(),
                    t.eval(&out, pos).unwrap(),
                    "position {} of {} vs {}", pos, &p, &out
                );
            }
        }
    }

    /// NNF is idempotent.
    #[test]
    fn nnf_idempotent(p in arb_any_property()) {
        let once = to_nnf(&p);
        prop_assert_eq!(to_nnf(&once), once);
    }

    /// Push-ahead is idempotent.
    #[test]
    fn push_ahead_idempotent(p in arb_nnf_property()) {
        let once = push_ahead(&p).unwrap();
        prop_assert_eq!(push_ahead(&once).unwrap(), once);
    }

    /// The neutral and weak views agree on boolean formulas.
    #[test]
    fn views_agree_on_booleans(p in arb_boolean(), t in arb_trace()) {
        for pos in 0..t.len() {
            prop_assert_eq!(
                t.eval(&p, pos).unwrap(),
                t.eval_weak(&p, pos).unwrap(),
            );
        }
    }
}
