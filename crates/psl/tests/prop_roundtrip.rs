//! Randomized tests: printer/parser round-trip, NNF soundness and
//! push-ahead soundness against the finite-trace oracle.
//!
//! Formulas and traces are generated from a seeded [`TinyRng`] loop (the
//! offline substitute for `proptest`); failure messages carry the case
//! index for direct reproduction.

use psl::nnf::{is_nnf, to_nnf};
use psl::push_ahead::{is_pushed, push_ahead};
use psl::trace::{Step, Trace};
use psl::{Atom, CmpOp, Property};
use tinyrng::TinyRng;

const CASES: u64 = 400;

/// Signals the generated formulas and traces talk about.
const SIGNALS: &[&str] = &["a", "b", "c", "d"];

const CMP_OPS: &[CmpOp] = &[
    CmpOp::Eq,
    CmpOp::Ne,
    CmpOp::Lt,
    CmpOp::Le,
    CmpOp::Gt,
    CmpOp::Ge,
];

fn gen_atom(rng: &mut TinyRng) -> Atom {
    if rng.flip() {
        Atom::bool(*rng.pick(SIGNALS))
    } else {
        Atom::cmp(*rng.pick(SIGNALS), *rng.pick(CMP_OPS), rng.range_u64(0, 4))
    }
}

fn gen_leaf(rng: &mut TinyRng) -> Property {
    match rng.range_u32(0, 4) {
        0 => Property::t(),
        1 => Property::f(),
        _ => Property::Atom(gen_atom(rng)),
    }
}

/// Boolean formulas (no temporal operators).
fn gen_boolean(rng: &mut TinyRng, depth: u32) -> Property {
    if depth == 0 {
        return gen_leaf(rng);
    }
    match rng.range_u32(0, 5) {
        0 => Property::not(gen_boolean(rng, depth - 1)),
        1 => gen_boolean(rng, depth - 1).and(gen_boolean(rng, depth - 1)),
        2 => gen_boolean(rng, depth - 1).or(gen_boolean(rng, depth - 1)),
        3 => gen_boolean(rng, depth - 1).implies(gen_boolean(rng, depth - 1)),
        _ => gen_leaf(rng),
    }
}

/// Properties over the full grammar (excluding `next_ε^τ`, which never
/// occurs in RTL input properties). Used for structural tests.
fn gen_any(rng: &mut TinyRng, depth: u32) -> Property {
    if depth == 0 {
        return gen_leaf(rng);
    }
    match rng.range_u32(0, 10) {
        0 => Property::not(gen_any(rng, depth - 1)),
        1 => gen_any(rng, depth - 1).and(gen_any(rng, depth - 1)),
        2 => gen_any(rng, depth - 1).or(gen_any(rng, depth - 1)),
        3 => gen_any(rng, depth - 1).implies(gen_any(rng, depth - 1)),
        4 => Property::next_n(rng.range_u32(1, 4), gen_any(rng, depth - 1)),
        5 => gen_any(rng, depth - 1).until(gen_any(rng, depth - 1)),
        6 => gen_any(rng, depth - 1).release(gen_any(rng, depth - 1)),
        7 => Property::always(gen_any(rng, depth - 1)),
        8 => Property::eventually(gen_any(rng, depth - 1)),
        _ => gen_leaf(rng),
    }
}

/// Simple-subset-style properties: negations and implication antecedents
/// are boolean-only — the realistic RTL-property input class and the class
/// on which NNF is an exact equivalence even on finite traces.
fn gen_subset(rng: &mut TinyRng, depth: u32) -> Property {
    if depth == 0 {
        return gen_boolean(rng, 1);
    }
    match rng.range_u32(0, 9) {
        0 => gen_subset(rng, depth - 1).and(gen_subset(rng, depth - 1)),
        1 => gen_subset(rng, depth - 1).or(gen_subset(rng, depth - 1)),
        2 => gen_boolean(rng, 2).implies(gen_subset(rng, depth - 1)),
        3 => Property::next_n(rng.range_u32(1, 4), gen_subset(rng, depth - 1)),
        4 => gen_subset(rng, depth - 1).until(gen_subset(rng, depth - 1)),
        5 => gen_subset(rng, depth - 1).release(gen_subset(rng, depth - 1)),
        6 => Property::always(gen_subset(rng, depth - 1)),
        7 => Property::eventually(gen_subset(rng, depth - 1)),
        _ => gen_boolean(rng, 2),
    }
}

/// NNF properties without implication, suitable for push-ahead.
fn gen_nnf(rng: &mut TinyRng, depth: u32) -> Property {
    to_nnf(&gen_subset(rng, depth))
}

/// A clock-tick trace (10 ns period) with random values for all signals.
fn gen_trace(rng: &mut TinyRng) -> Trace {
    (0..rng.range_usize(1, 20))
        .map(|i| {
            Step::new(
                10 + 10 * i as u64,
                SIGNALS
                    .iter()
                    .map(|n| ((*n).to_owned(), rng.range_u64(0, 4))),
            )
        })
        .collect()
}

/// `parse(print(p)) == p` for every property.
#[test]
fn print_parse_roundtrip() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0001, case);
        let p = gen_any(&mut rng, 4);
        let printed = p.to_string();
        let reparsed: Property = printed.parse().expect("printed property must reparse");
        assert_eq!(reparsed, p, "case {case}: printed as {printed}");
    }
}

/// NNF output is in negation normal form, for the full grammar.
#[test]
fn nnf_output_is_nnf() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0002, case);
        let p = gen_any(&mut rng, 4);
        assert!(is_nnf(&to_nnf(&p)), "case {case}: {p}");
    }
}

/// NNF preserves finite-trace semantics at every position for
/// simple-subset-style inputs (negations over booleans), in both the
/// neutral and the weak view.
#[test]
fn nnf_preserves_semantics() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0003, case);
        let p = gen_subset(&mut rng, 4);
        let t = gen_trace(&mut rng);
        let n = to_nnf(&p);
        for pos in 0..t.len() {
            assert_eq!(
                t.eval(&p, pos).unwrap(),
                t.eval(&n, pos).unwrap(),
                "case {case}: neutral view, position {pos} of {p} vs {n}"
            );
            assert_eq!(
                t.eval_weak(&p, pos).unwrap(),
                t.eval_weak(&n, pos).unwrap(),
                "case {case}: weak view, position {pos} of {p} vs {n}"
            );
        }
    }
}

/// Push-ahead output has all `next`s on literals.
#[test]
fn push_ahead_output_is_pushed() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0004, case);
        let p = gen_nnf(&mut rng, 4);
        let out = push_ahead(&p).expect("NNF properties always push");
        assert!(is_pushed(&out), "case {case}: {p} -> {out}");
    }
}

/// Push-ahead preserves trace semantics: exactly, at every position, under
/// the weak view (the view under which the distribution rules are
/// equivalences on truncated traces).
#[test]
fn push_ahead_preserves_weak_semantics() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0005, case);
        let p = gen_nnf(&mut rng, 4);
        let t = gen_trace(&mut rng);
        let out = push_ahead(&p).expect("NNF properties always push");
        for pos in 0..t.len() {
            assert_eq!(
                t.eval_weak(&p, pos).unwrap(),
                t.eval_weak(&out, pos).unwrap(),
                "case {case}: position {pos} of {p} vs {out}"
            );
        }
    }
}

/// Push-ahead preserves neutral-view semantics for *bounded* properties
/// evaluated with enough trace left for every obligation to complete —
/// the situation of a property that finishes before simulation ends.
#[test]
fn push_ahead_preserves_neutral_semantics_when_bounded() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0006, case);
        let p = gen_nnf(&mut rng, 4);
        let t = gen_trace(&mut rng);
        let out = push_ahead(&p).expect("NNF properties always push");
        if let (Some(d1), Some(d2)) = (p.bounded_event_depth(), out.bounded_event_depth()) {
            let depth = d1.max(d2) as usize;
            for pos in 0..t.len().saturating_sub(depth) {
                assert_eq!(
                    t.eval(&p, pos).unwrap(),
                    t.eval(&out, pos).unwrap(),
                    "case {case}: position {pos} of {p} vs {out}"
                );
            }
        }
    }
}

/// NNF is idempotent.
#[test]
fn nnf_idempotent() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0007, case);
        let p = gen_any(&mut rng, 4);
        let once = to_nnf(&p);
        assert_eq!(to_nnf(&once), once, "case {case}");
    }
}

/// Push-ahead is idempotent.
#[test]
fn push_ahead_idempotent() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0008, case);
        let p = gen_nnf(&mut rng, 4);
        let once = push_ahead(&p).unwrap();
        assert_eq!(push_ahead(&once).unwrap(), once, "case {case}");
    }
}

/// Regression (ex-proptest shrink): `next (true && next (false || false))`
/// on a single-step trace — push-ahead must agree with the original under
/// the weak view even when every obligation falls off the trace end.
#[test]
fn push_ahead_regression_single_step_trace() {
    let p = Property::next_n(
        1,
        Property::t().and(Property::next_n(1, Property::f().or(Property::f()))),
    );
    let p = to_nnf(&p);
    let out = push_ahead(&p).expect("pushes");
    let t: Trace =
        std::iter::once(Step::new(10, SIGNALS.iter().map(|n| ((*n).to_owned(), 0)))).collect();
    assert_eq!(t.eval_weak(&p, 0).unwrap(), t.eval_weak(&out, 0).unwrap());
}

/// The neutral and weak views agree on boolean formulas.
#[test]
fn views_agree_on_booleans() {
    for case in 0..CASES {
        let mut rng = TinyRng::fork(0x9A11_0009, case);
        let p = gen_boolean(&mut rng, 3);
        let t = gen_trace(&mut rng);
        for pos in 0..t.len() {
            assert_eq!(
                t.eval(&p, pos).unwrap(),
                t.eval_weak(&p, pos).unwrap(),
                "case {case}: position {pos} of {p}"
            );
        }
    }
}
