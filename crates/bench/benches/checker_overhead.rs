//! Bench behind **Table I**: simulation time per
//! (design, abstraction level, checker count) cell — plus the progression
//! microbench comparing the interned-arena monitor core against the
//! retained `Rc`-tree reference implementation (ns per event at equal
//! verdicts).
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench checker_overhead`. The workload size is
//! overridable via `ABV_BENCH_SIZE` (default 120) and the per-benchmark
//! time budget via `ABV_BENCH_BUDGET_MS` (default 1000).

use std::collections::HashMap;
use std::hint::black_box;

use abv_bench::stopwatch::bench;
use abv_bench::{checker_counts, properties_for_level, run, Design, Level};
use abv_checker::{compile, compile_reference, PropertyChecker, ReferenceChecker};
use desim::{SignalId, Simulation};
use psl::ClockedProperty;
use tinyrng::TinyRng;

/// Workload size per iteration; small enough for repeated timing.
fn size() -> usize {
    std::env::var("ABV_BENCH_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(120)
}

/// A synthetic event stream over the suite's signals: one frame every
/// 10 ns with seeded pseudo-random values, shared by both monitor cores.
fn frames(sigs: &[SignalId], events: usize, seed: u64) -> Vec<(u64, HashMap<SignalId, u64>)> {
    let mut rng = TinyRng::new(seed);
    (1..=events)
        .map(|k| {
            (
                k as u64 * 10,
                sigs.iter().map(|&s| (s, rng.range_u64(0, 4))).collect(),
            )
        })
        .collect()
}

/// Registers every signal the suite references and compiles both monitor
/// implementations from the same [`ClockedProperty`] list.
fn compile_suites(
    suite: &[(String, ClockedProperty)],
) -> (Vec<SignalId>, Vec<PropertyChecker>, Vec<ReferenceChecker>) {
    let mut sim = Simulation::new();
    let mut sigs = Vec::new();
    for (_, clocked) in suite {
        let mut names = clocked.property.signals();
        if let Some(guard) = clocked.context.guard() {
            names.extend(guard.signals());
        }
        for name in names {
            if sim.signal_id(name).is_none() {
                sigs.push(sim.add_signal(name, 0));
            }
        }
    }
    let arena = suite
        .iter()
        .map(|(name, clocked)| compile(name, clocked, &sim).expect("compiles").0)
        .collect();
    let reference = suite
        .iter()
        .map(|(name, clocked)| compile_reference(name, clocked, &sim).expect("compiles").0)
        .collect();
    (sigs, arena, reference)
}

/// ns-per-event comparison of the two monitor cores on a design's TLM-CA
/// suite. Asserts both report identical verdicts on the shared stream.
/// Each timed pass replays the whole stream through every checker and
/// then finishes them, so the pool and evaluation table drain between
/// passes (report counters accumulate; verdicts stay per-pass identical).
fn progression_bench(design: Design) {
    let suite = properties_for_level(design, Level::TlmCa);
    let (sigs, mut arena_suite, mut reference_suite) = compile_suites(&suite);
    let events = size() * 20;
    let stream = frames(&sigs, events, 0xA0B1);
    let end = (events as u64 + 1) * 10;
    let per_pass = (events * suite.len()) as u32;

    println!(
        "progression/{} ({} properties, {events} events)",
        design.label(),
        suite.len()
    );
    let arena_samples = bench("arena monitor", || {
        for (t, frame) in &stream {
            let read = |sig: SignalId| frame[&sig];
            for checker in &mut arena_suite {
                checker.on_event(&read, *t);
            }
        }
        for checker in &mut arena_suite {
            checker.finish(end);
        }
    });
    let reference_samples = bench("reference (Rc tree)", || {
        for (t, frame) in &stream {
            let read = |sig: SignalId| frame[&sig];
            for checker in &mut reference_suite {
                checker.on_event(&read, *t);
            }
        }
        for checker in &mut reference_suite {
            checker.finish(end);
        }
    });

    for (arena, reference) in arena_suite.iter().zip(&reference_suite) {
        assert_eq!(
            arena.report().verdict(),
            reference.report().verdict(),
            "verdicts must agree for {}",
            arena.name()
        );
    }
    let arena_ns = arena_samples.min().as_nanos() as f64 / f64::from(per_pass);
    let reference_ns = reference_samples.min().as_nanos() as f64 / f64::from(per_pass);
    println!(
        "  per-event: arena {arena_ns:.1} ns vs reference {reference_ns:.1} ns ({:.2}x)",
        reference_ns / arena_ns
    );
}

fn main() {
    let size = size();
    for design in [Design::Des56, Design::ColorConv] {
        println!("table1/{}", design.label());
        for level in Level::ALL {
            for &n in &checker_counts(design) {
                bench(&format!("{}/{n}C", level.label()), || {
                    black_box(run(design, level, n, size, 7))
                });
            }
        }
    }
    for design in [Design::Des56, Design::ColorConv] {
        progression_bench(design);
    }
}
