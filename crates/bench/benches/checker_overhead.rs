//! Criterion bench behind **Table I**: simulation time per
//! (design, abstraction level, checker count) cell.

use abv_bench::{checker_counts, run, Design, Level};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Workload size per iteration; small enough for criterion's repetitions.
const SIZE: usize = 120;

fn bench_table1(c: &mut Criterion) {
    for design in [Design::Des56, Design::ColorConv] {
        let mut group = c.benchmark_group(format!("table1/{}", design.label()));
        for level in Level::ALL {
            for &n in &checker_counts(design) {
                let id = BenchmarkId::new(level.label(), format!("{n}C"));
                group.bench_with_input(id, &(level, n), |b, &(level, n)| {
                    b.iter(|| black_box(run(design, level, n, SIZE, 7)));
                });
            }
        }
        group.finish();
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
