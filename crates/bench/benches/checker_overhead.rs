//! Bench behind **Table I**: simulation time per
//! (design, abstraction level, checker count) cell.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench checker_overhead`.

use abv_bench::stopwatch::bench;
use abv_bench::{checker_counts, run, Design, Level};
use std::hint::black_box;

/// Workload size per iteration; small enough for repeated timing.
const SIZE: usize = 120;

fn main() {
    for design in [Design::Des56, Design::ColorConv] {
        println!("table1/{}", design.label());
        for level in Level::ALL {
            for &n in &checker_counts(design) {
                bench(&format!("{}/{n}C", level.label()), || {
                    black_box(run(design, level, n, SIZE, 7))
                });
            }
        }
    }
}
