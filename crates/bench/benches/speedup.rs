//! Criterion bench behind **Fig. 6**: per-level simulation time without
//! checkers and with the full suite, from which the RTL/TLM speedups (and
//! their change when checkers are added) follow.

use abv_bench::{properties_for_level, run, Design, Level};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SIZE: usize = 120;

fn bench_speedup(c: &mut Criterion) {
    for design in [Design::Des56, Design::ColorConv] {
        let mut group = c.benchmark_group(format!("fig6/{}", design.label()));
        for level in Level::ALL {
            let all = properties_for_level(design, level).len();
            group.bench_with_input(
                BenchmarkId::new(level.label(), "no-checkers"),
                &level,
                |b, &level| b.iter(|| black_box(run(design, level, 0, SIZE, 11))),
            );
            group.bench_with_input(
                BenchmarkId::new(level.label(), "all-checkers"),
                &level,
                |b, &level| b.iter(|| black_box(run(design, level, all, SIZE, 11))),
            );
        }
        group.finish();
    }
}

criterion_group!(benches, bench_speedup);
criterion_main!(benches);
