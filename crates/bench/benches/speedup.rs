//! Bench behind **Fig. 6**: per-level simulation time without checkers
//! and with the full suite, from which the RTL/TLM speedups (and their
//! change when checkers are added) follow.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench speedup`.

use abv_bench::stopwatch::bench;
use abv_bench::{properties_for_level, run, Design, Level};
use std::hint::black_box;

const SIZE: usize = 120;

fn main() {
    for design in [Design::Des56, Design::ColorConv] {
        println!("fig6/{}", design.label());
        for level in Level::ALL {
            let all = properties_for_level(design, level).len();
            bench(&format!("{}/no-checkers", level.label()), || {
                black_box(run(design, level, 0, SIZE, 11))
            });
            bench(&format!("{}/all-checkers", level.label()), || {
                black_box(run(design, level, all, SIZE, 11))
            });
        }
    }
}
