//! Tracing-overhead ablation: the same measured simulation loop with
//! (a) the default disabled tracer — the configuration behind every
//! Table I number, which must stay free, (b) an enabled tracer draining
//! into the no-op sink — the cost of the instrumentation call sites
//! alone, and (c) full in-memory recording — the price of `rtl2tlm
//! trace`.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench trace_overhead`.

use std::cell::RefCell;
use std::hint::black_box;
use std::rc::Rc;

use abv_bench::stopwatch::bench;
use abv_bench::{properties_for_level, Design, Level};
use abv_checker::Checker;
use abv_obs::{NullSink, Tracer};
use designs::Fault;

/// Workload size per iteration; small enough for repeated timing.
const SIZE: usize = 120;

/// One full simulation of `design` at `level` with its whole suite
/// attached, under `tracer` (`None` = the production default).
fn traced_run(design: Design, level: Level, tracer: Option<Tracer>) -> u64 {
    let props = properties_for_level(design, level);
    let mut built = designs::build(design, level, SIZE, 7, Fault::None).expect("level supported");
    if let Some(tracer) = tracer {
        built.set_tracer(tracer);
    }
    let binding = built.binding();
    let checkers = Checker::attach_all(&mut built.sim, &props, binding).expect("installs");
    let stats = built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    stats.events_processed + report.total_failures()
}

fn main() {
    for (design, level) in [
        (Design::Des56, Level::Rtl),
        (Design::Des56, Level::TlmAt),
        (Design::ColorConv, Level::TlmAt),
    ] {
        println!("trace_overhead/{}/{}", design.label(), level.label());
        bench("disabled tracer (default)", || {
            black_box(traced_run(design, level, None))
        });
        bench("enabled, null sink", || {
            let tracer = Tracer::to_sink(Rc::new(RefCell::new(NullSink)));
            black_box(traced_run(design, level, Some(tracer)))
        });
        bench("enabled, memory sink", || {
            let (tracer, sink) = Tracer::memory();
            let out = traced_run(design, level, Some(tracer));
            let recorded = sink.borrow().len();
            black_box((out, recorded))
        });
    }
}
