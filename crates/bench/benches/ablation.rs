//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. **Evaluation table vs step-everything** — the paper's wrapper only
//!    touches instances whose expected evaluation point is due
//!    (Section IV, point 2); disabling the table progresses every live
//!    instance at every transaction.
//! 2. **`next_ε^τ` vs naive transaction-count rescaling** — checker cost
//!    of the two abstractions of `p4` on the same TLM-AT model (the naive
//!    one is also *wrong* on strict models; see the `naive_scaling`
//!    integration tests).
//! 3. **Online monitors vs post-hoc trace oracle** — dynamic checking
//!    during simulation versus recording a trace and evaluating the
//!    property afterwards.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench ablation`.

use abv_bench::stopwatch::bench;
use abv_checker::{Binding, Checker};
use abv_core::{abstract_property, naive::naive_scale, AbstractionConfig};
use designs::des56::{self, DesMutation, DesWorkload};
use designs::CLOCK_PERIOD_NS;
use psl::{ClockedProperty, EvalContext};
use std::hint::black_box;
use tlmkit::{CodingStyle, TxTraceRecorder};

const SIZE: usize = 200;

fn q3() -> ClockedProperty {
    let suite = des56::suite();
    let p3 = &suite.iter().find(|e| e.name == "p3").expect("p3").rtl;
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(des56::ABSTRACTED_SIGNALS.iter().copied());
    abstract_property(p3, &cfg)
        .expect("abstracts")
        .into_property()
        .expect("kept")
}

/// Runs q3 on the TLM-CA model (dense event stream — where the table
/// optimization matters), optionally with the table disabled.
fn run_q3_ca(use_table: bool) -> u64 {
    let w = DesWorkload::mixed(SIZE, 3);
    let mut built = des56::build_tlm_ca(&w, DesMutation::None);
    let checker =
        Checker::attach(&mut built.sim, "q3", &q3(), Binding::bus(&built.bus)).expect("attaches");
    if !use_table {
        checker
            .checker_mut(&mut built.sim)
            .disable_evaluation_table();
    }
    built.run();
    built.sim.stats().events_processed
}

fn bench_evaluation_table() {
    println!("ablation/evaluation-table");
    bench("table", || black_box(run_q3_ca(true)));
    bench("step-everything", || black_box(run_q3_ca(false)));
}

fn bench_naive_vs_next_et() {
    let suite = des56::suite();
    let p4 = &suite.iter().find(|e| e.name == "p4").expect("p4").rtl;
    let pushed = psl::push_ahead::push_ahead(&psl::nnf::to_nnf(&p4.property)).expect("pushes");
    let naive = ClockedProperty::new(naive_scale(&pushed, 17).expect("scales"), EvalContext::tb());
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS);
    let next_et = abstract_property(p4, &cfg)
        .expect("abstracts")
        .into_property()
        .expect("kept");

    println!("ablation/abstraction-operator");
    for (name, property) in [("naive-next-m", naive), ("next-et", next_et)] {
        bench(name, || {
            let w = DesWorkload::mixed(SIZE, 5);
            let mut built =
                des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
            let _checker =
                Checker::attach(&mut built.sim, "p", &property, Binding::bus(&built.bus))
                    .expect("attaches");
            black_box(built.run())
        });
    }
}

fn bench_online_vs_trace_oracle() {
    println!("ablation/checking-style");
    bench("online-monitor", || {
        let w = DesWorkload::mixed(SIZE, 9);
        let mut built =
            des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
        let _checker = Checker::attach(&mut built.sim, "q3", &q3(), Binding::bus(&built.bus))
            .expect("attaches");
        black_box(built.run())
    });
    bench("record-then-evaluate", || {
        let w = DesWorkload::mixed(SIZE, 9);
        let mut built =
            des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
        let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, des56::TLM_AT_SIGNALS);
        built.run();
        let trace = TxTraceRecorder::take_trace(&built.sim, rec);
        black_box(trace.satisfies(&q3()).expect("evaluates"))
    });
}

fn main() {
    bench_evaluation_table();
    bench_naive_vs_next_et();
    bench_online_vs_trace_oracle();
}
