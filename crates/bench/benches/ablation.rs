//! Ablation benches for the design choices called out in DESIGN.md:
//!
//! 1. **Evaluation table vs step-everything** — the paper's wrapper only
//!    touches instances whose expected evaluation point is due
//!    (Section IV, point 2); disabling the table progresses every live
//!    instance at every transaction.
//! 2. **`next_ε^τ` vs naive transaction-count rescaling** — checker cost
//!    of the two abstractions of `p4` on the same TLM-AT model (the naive
//!    one is also *wrong* on strict models; see the `naive_scaling`
//!    integration tests).
//! 3. **Online monitors vs post-hoc trace oracle** — dynamic checking
//!    during simulation versus recording a trace and evaluating the
//!    property afterwards.

use abv_checker::{install_tx_checkers, TxCheckerHost};
use abv_core::{abstract_property, naive::naive_scale, AbstractionConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use designs::des56::{self, DesMutation, DesWorkload};
use designs::CLOCK_PERIOD_NS;
use psl::{ClockedProperty, EvalContext};
use std::hint::black_box;
use tlmkit::{CodingStyle, TxTraceRecorder};

const SIZE: usize = 200;

fn q3() -> ClockedProperty {
    let suite = des56::suite();
    let p3 = &suite.iter().find(|e| e.name == "p3").expect("p3").rtl;
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(des56::ABSTRACTED_SIGNALS.iter().copied());
    abstract_property(p3, &cfg).expect("abstracts").into_property().expect("kept")
}

/// Runs q3 on the TLM-CA model (dense event stream — where the table
/// optimization matters), optionally with the table disabled.
fn run_q3_ca(use_table: bool) -> u64 {
    let w = DesWorkload::mixed(SIZE, 3);
    let mut built = des56::build_tlm_ca(&w, DesMutation::None);
    let hosts = install_tx_checkers(&mut built.sim, &built.bus, &[("q3".to_owned(), q3())])
        .expect("installs");
    if !use_table {
        built
            .sim
            .component_mut::<TxCheckerHost>(hosts[0])
            .expect("host")
            .checker_mut()
            .disable_evaluation_table();
    }
    built.run();
    built.sim.stats().events_processed
}

fn bench_evaluation_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/evaluation-table");
    group.bench_function("table", |b| b.iter(|| black_box(run_q3_ca(true))));
    group.bench_function("step-everything", |b| b.iter(|| black_box(run_q3_ca(false))));
    group.finish();
}

fn bench_naive_vs_next_et(c: &mut Criterion) {
    let suite = des56::suite();
    let p4 = &suite.iter().find(|e| e.name == "p4").expect("p4").rtl;
    let pushed = psl::push_ahead::push_ahead(&psl::nnf::to_nnf(&p4.property)).expect("pushes");
    let naive = ClockedProperty::new(naive_scale(&pushed, 17).expect("scales"), EvalContext::tb());
    let cfg = AbstractionConfig::new(CLOCK_PERIOD_NS);
    let next_et = abstract_property(p4, &cfg).expect("abstracts").into_property().expect("kept");

    let mut group = c.benchmark_group("ablation/abstraction-operator");
    for (name, property) in [("naive-next-m", naive), ("next-et", next_et)] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let w = DesWorkload::mixed(SIZE, 5);
                let mut built =
                    des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
                let _hosts = install_tx_checkers(
                    &mut built.sim,
                    &built.bus,
                    &[("p".to_owned(), property.clone())],
                )
                .expect("installs");
                black_box(built.run())
            });
        });
    }
    group.finish();
}

fn bench_online_vs_trace_oracle(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation/checking-style");
    group.bench_function("online-monitor", |b| {
        b.iter(|| {
            let w = DesWorkload::mixed(SIZE, 9);
            let mut built =
                des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
            let _hosts = install_tx_checkers(&mut built.sim, &built.bus, &[("q3".to_owned(), q3())])
                .expect("installs");
            black_box(built.run())
        });
    });
    group.bench_function("record-then-evaluate", |b| {
        b.iter(|| {
            let w = DesWorkload::mixed(SIZE, 9);
            let mut built =
                des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
            let rec = TxTraceRecorder::install(&mut built.sim, &built.bus, des56::TLM_AT_SIGNALS);
            built.run();
            let trace = TxTraceRecorder::take_trace(&built.sim, rec);
            black_box(trace.satisfies(&q3()).expect("evaluates"))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_evaluation_table, bench_naive_vs_next_et, bench_online_vs_trace_oracle);
criterion_main!(benches);
