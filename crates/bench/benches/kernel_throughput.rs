//! Scheduler throughput bench: events/second of the two-tier kernel
//! (time wheel + delta staging) against the retained reference heap, on
//! the clock-dominated RTL workloads of all three IPs plus a synthetic
//! many-component stress mix.
//!
//! Every cell runs the *same* workload under both [`SchedulerKind`]s and
//! asserts the kernels report identical [`SimStats`] — the speedup is
//! meaningful only because the work is provably the same.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench kernel_throughput`. Knobs:
//!
//! - `ABV_BENCH_SIZE`: RTL workload size (default 120);
//! - `ABV_BENCH_BUDGET_MS`: per-cell time budget (default 1000);
//! - `ABV_BENCH_STRESS`: components in the synthetic mix (default 10000);
//! - `ABV_BENCH_JSON`: if set, write machine-readable results to this
//!   path (consumed by `scripts/bench.sh` → `BENCH_kernel.json`).

use std::time::{Duration, Instant};

use abv_bench::stopwatch::budget;
use abv_bench::{run, Design, Level};
use desim::{
    set_default_scheduler, Component, Event, SchedulerKind, SimCtx, SimStats, SimTime, Simulation,
};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// One measured cell: best-of wall time and the (scheduler-invariant)
/// kernel stats under each queue implementation.
struct Cell {
    label: String,
    events: u64,
    reference_eps: f64,
    two_tier_eps: f64,
}

impl Cell {
    fn speedup(&self) -> f64 {
        self.two_tier_eps / self.reference_eps
    }
}

/// Repeats `go(kind)` under the time budget and returns the fastest wall
/// time plus the stats, asserting every repetition does identical work.
fn best_of(
    kind: SchedulerKind,
    mut go: impl FnMut(SchedulerKind) -> (Duration, SimStats),
) -> (Duration, SimStats) {
    let (_, expect) = go(kind); // warm-up
    let budget = budget();
    let started = Instant::now();
    let mut best = Duration::MAX;
    let mut iters = 0;
    while iters < 3 || (started.elapsed() < budget && iters < 30) {
        let (wall, stats) = go(kind);
        assert_eq!(stats, expect, "run is not deterministic under {kind:?}");
        best = best.min(wall);
        iters += 1;
    }
    (best, expect)
}

/// Measures one workload under both schedulers and prints the comparison.
fn cell(label: &str, mut go: impl FnMut(SchedulerKind) -> (Duration, SimStats)) -> Cell {
    let (ref_wall, ref_stats) = best_of(SchedulerKind::Reference, &mut go);
    let (two_wall, two_stats) = best_of(SchedulerKind::TwoTier, &mut go);
    assert_eq!(
        two_stats, ref_stats,
        "{label}: schedulers disagree on kernel activity"
    );
    let events = ref_stats.events_processed;
    let eps = |wall: Duration| events as f64 / wall.as_secs_f64();
    let out = Cell {
        label: label.to_string(),
        events,
        reference_eps: eps(ref_wall),
        two_tier_eps: eps(two_wall),
    };
    println!(
        "  {label:<18} {events:>9} events  reference {:>10.0} ev/s  two-tier {:>10.0} ev/s  ({:.2}x)",
        out.reference_eps,
        out.two_tier_eps,
        out.speedup()
    );
    out
}

/// An edge-sensitive shift-register pipeline: the per-clock RTL consumer
/// of the farm cell, woken on both edges of its clock and doing one
/// register shift per rising edge.
struct Pipeline {
    clk: desim::SignalId,
    out: desim::SignalId,
    det: rtlkit::EdgeDetector,
    shreg: u64,
}

impl Component for Pipeline {
    fn handle(&mut self, _ev: Event, ctx: &mut SimCtx<'_>) {
        let v = ctx.read(self.clk);
        if self.det.is_rising(v) {
            self.shreg = self.shreg.rotate_left(1) ^ 1;
            ctx.write(self.out, self.shreg & 0xFF);
        }
    }
}

/// A farm of `n` independent clocked pipelines in one simulation — the
/// multi-IP SoC shape where the scheduler actually carries load: with `n`
/// clocks pending, every reference-heap operation pays `O(log n)` while
/// the wheel still inserts and drains in O(1).
fn farm_run(kind: SchedulerKind, n: usize, horizon_ns: u64) -> (Duration, SimStats) {
    set_default_scheduler(kind);
    let mut sim = Simulation::new();
    sim.reserve_signals(2 * n);
    for i in 0..n {
        let period = 6 + 2 * (i as u64 % 5); // 6..=14 ns, staggered
        let clk = rtlkit::Clock::install(&mut sim, &format!("clk{i}"), period);
        let out = sim.add_signal(&format!("q{i}"), 0);
        let pipe = sim.add_component(Pipeline {
            clk: clk.signal,
            out,
            det: rtlkit::EdgeDetector::new(),
            shreg: i as u64,
        });
        sim.subscribe(clk.signal, pipe, 0);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::from_ns(horizon_ns));
    (start.elapsed(), stats)
}

/// A synthetic stress component: toggles its own signal every `period` ns
/// (self-subscribed, so each toggle also produces a delta-staged commit
/// wake), exercising the wheel, the staging area and — for the sparse
/// long-period members — the overflow heap.
struct Ticker {
    sig: desim::SignalId,
    period: u64,
    level: u64,
}

impl Component for Ticker {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        if ev.kind == 0 {
            self.level ^= 1;
            ctx.write(self.sig, self.level);
            ctx.schedule_self(self.period, 0);
        }
    }
}

/// Builds and runs the many-component mix: short periods landing in the
/// wheel window, a sparse tail far enough out to spill into overflow.
fn stress_run(kind: SchedulerKind, components: usize, horizon_ns: u64) -> (Duration, SimStats) {
    set_default_scheduler(kind);
    let mut sim = Simulation::new();
    sim.reserve_signals(components);
    for i in 0..components {
        let sig = sim.add_signal(&format!("s{i}"), 0);
        let period = if i % 29 == 0 {
            1000 + (i as u64 % 7) * 100 // overflow-heap residents
        } else {
            1 + (i as u64 % 16) // wheel-window residents
        };
        let c = sim.add_component(Ticker {
            sig,
            period,
            level: 0,
        });
        sim.subscribe(sig, c, 1);
        sim.schedule(SimTime::from_ns(1 + (i as u64 % 11)), c, 0);
    }
    let start = Instant::now();
    let stats = sim.run_until(SimTime::from_ns(horizon_ns));
    (start.elapsed(), stats)
}

fn write_json(path: &str, cells: &[Cell]) {
    let mut out = String::from("{\n  \"bench\": \"kernel_throughput\",\n  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"events\": {}, \"reference_eps\": {:.1}, \"two_tier_eps\": {:.1}, \"speedup\": {:.3}}}{sep}\n",
            c.label, c.events, c.reference_eps, c.two_tier_eps, c.speedup()
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {path}");
}

fn main() {
    let size = env_usize("ABV_BENCH_SIZE", 120);
    let stress = env_usize("ABV_BENCH_STRESS", 10_000);
    let mut cells = Vec::new();

    println!("kernel_throughput (size {size}, stress {stress} components)");
    for design in [Design::Des56, Design::ColorConv, Design::Fir] {
        let label = format!("{}/rtl", design.label());
        cells.push(cell(&label, |kind| {
            set_default_scheduler(kind);
            let r = run(design, Level::Rtl, 0, size, 7);
            (r.wall, r.stats)
        }));
    }
    cells.push(cell("farm/rtl-64", |kind| farm_run(kind, 64, 4000)));
    cells.push(cell("stress/mix", |kind| stress_run(kind, stress, 400)));
    set_default_scheduler(SchedulerKind::TwoTier);

    if let Ok(path) = std::env::var("ABV_BENCH_JSON") {
        write_json(&path, &cells);
    }
}
