//! Mutation-campaign throughput bench: mutants/second of the full
//! kill-matrix campaign (all IPs × catalogue × RTL/TLM-CA/TLM-AT) at
//! 1, 2 and 8 workers.
//!
//! Every worker count executes the *same* plan and must produce a
//! byte-identical kill-matrix JSON — the scaling numbers are meaningful
//! only because the result provably does not depend on scheduling.
//!
//! Plain timing harness (`harness = false`); run with
//! `cargo bench --bench mutation_throughput`. Knobs:
//!
//! - `ABV_BENCH_SIZE`: workload size per run (default 8, the tier-1
//!   configuration);
//! - `ABV_BENCH_BUDGET_MS`: per-cell time budget (default 1000);
//! - `ABV_BENCH_JSON`: if set, write machine-readable results to this
//!   path (consumed by `scripts/bench.sh` → `BENCH_mutation.json`).

use std::time::{Duration, Instant};

use abv_bench::stopwatch::budget;
use abv_campaign::TraceSettings;
use abv_mutate::{run_mutation, MutationPlan};

fn env_usize(key: &str, default: usize) -> usize {
    std::env::var(key)
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

struct Cell {
    workers: usize,
    best: Duration,
    mutants_per_sec: f64,
}

fn write_json(path: &str, mutants: usize, runs: usize, size: usize, cells: &[Cell]) {
    let mut out = format!(
        "{{\n  \"bench\": \"mutation_throughput\",\n  \"mutants\": {mutants},\n  \
         \"runs\": {runs},\n  \"size\": {size},\n  \"cells\": [\n"
    );
    for (i, c) in cells.iter().enumerate() {
        let sep = if i + 1 == cells.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"workers\": {}, \"wall_ms\": {:.3}, \"mutants_per_sec\": {:.1}}}{sep}\n",
            c.workers,
            c.best.as_secs_f64() * 1e3,
            c.mutants_per_sec
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out).expect("write bench json");
    println!("wrote {path}");
}

fn main() {
    let size = env_usize("ABV_BENCH_SIZE", 8);
    let plan = MutationPlan::new().size(size).seed(2015);
    let mutants: usize = plan.designs.iter().map(|&d| plan.mutants(d).len()).sum();
    let runs = plan.campaign_plan().total_runs();
    println!("mutation_throughput ({mutants} mutants, {runs} runs, size {size})");

    let mut cells = Vec::new();
    let mut baseline_json: Option<String> = None;
    for workers in [1usize, 2, 8] {
        let go = || {
            let start = Instant::now();
            let outcome = run_mutation(&plan, workers, TraceSettings::off()).expect("valid plan");
            (start.elapsed(), outcome.matrix.to_json())
        };
        let (_, expect) = go(); // warm-up
        match &baseline_json {
            None => baseline_json = Some(expect.clone()),
            Some(b) => assert_eq!(b, &expect, "kill matrix depends on worker count"),
        }
        let budget = budget();
        let started = Instant::now();
        let mut best = Duration::MAX;
        let mut iters = 0;
        while iters < 3 || (started.elapsed() < budget && iters < 30) {
            let (wall, json) = go();
            assert_eq!(json, expect, "campaign is not deterministic");
            best = best.min(wall);
            iters += 1;
        }
        let mutants_per_sec = mutants as f64 / best.as_secs_f64();
        println!(
            "  workers {workers}  best {:>8.3} ms  {mutants_per_sec:>8.1} mutants/s",
            best.as_secs_f64() * 1e3
        );
        cells.push(Cell {
            workers,
            best,
            mutants_per_sec,
        });
    }

    if let Ok(path) = std::env::var("ABV_BENCH_JSON") {
        write_json(&path, mutants, runs, size, &cells);
    }
}
