//! `abv-bench` — the harness regenerating the paper's evaluation
//! (Section V): Table I simulation-time/overhead measurements and the
//! Fig. 6 RTL→TLM speedup comparison, plus ablation studies.
//!
//! Binaries:
//!
//! - `table1`: prints the Table I reproduction for both IPs;
//! - `fig6`: prints the Fig. 6 average-speedup reproduction;
//! - `fig3`: prints the Fig. 3 property-abstraction table.
//!
//! Criterion benches (`cargo bench`): `checker_overhead`, `speedup`,
//! `ablation`.
//!
//! Absolute times differ from the paper's testbed; the *shape* is what is
//! reproduced: overhead grows with checker count at every level, reusing
//! unabstracted checkers at TLM-CA costs more than at RTL, and abstracted
//! checkers at TLM-AT cost an order of magnitude less (see EXPERIMENTS.md).

use std::time::{Duration, Instant};

use abv_checker::{
    collect_clock_reports, collect_tx_reports, install_clock_checkers, install_tx_checkers,
    CheckReport,
};
use abv_core::{abstract_property, reuse_at_cycle_accurate, AbstractionConfig};
use designs::{colorconv, des56, SuiteEntry, CLOCK_PERIOD_NS};
use desim::SimStats;
use psl::ClockedProperty;
use tlmkit::CodingStyle;

/// Which IP to benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Design {
    /// DES56 (9 properties, latency 17).
    Des56,
    /// ColorConv (12 properties, latency 8).
    ColorConv,
}

impl Design {
    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Design::Des56 => "DES56",
            Design::ColorConv => "ColorConv",
        }
    }

    /// The IP's property suite.
    #[must_use]
    pub fn suite(self) -> Vec<SuiteEntry> {
        match self {
            Design::Des56 => des56::suite(),
            Design::ColorConv => colorconv::suite(),
        }
    }

    /// The abstraction configuration for this IP.
    #[must_use]
    pub fn config(self) -> AbstractionConfig {
        let base = AbstractionConfig::new(CLOCK_PERIOD_NS);
        match self {
            Design::Des56 => base.abstract_signals(des56::ABSTRACTED_SIGNALS.iter().copied()),
            Design::ColorConv => {
                base.abstract_signals(colorconv::ABSTRACTED_SIGNALS.iter().copied())
            }
        }
    }
}

/// Abstraction level of a measured run (Table I rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// RTL simulation with RTL checkers.
    Rtl,
    /// TLM cycle-accurate simulation; checkers synthesized from the
    /// *unabstracted* RTL properties (re-clocked to `T_b`).
    TlmCa,
    /// TLM approximately-timed simulation (paper's loose style); checkers
    /// synthesized from the *abstracted* properties.
    TlmAt,
}

impl Level {
    /// Display label matching the paper's table.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Level::Rtl => "RTL",
            Level::TlmCa => "TLM-CA",
            Level::TlmAt => "TLM-AT",
        }
    }

    /// All levels in Table I order.
    pub const ALL: [Level; 3] = [Level::Rtl, Level::TlmCa, Level::TlmAt];
}

/// Outcome of one measured simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock duration of the simulation loop (excludes model/checker
    /// construction).
    pub wall: Duration,
    /// Kernel activity counters.
    pub stats: SimStats,
    /// Checker reports (empty for a run without checkers).
    pub report: CheckReport,
}

/// The checker set sizes of Table I (`w/out c.`, `1 C`, `5 C`, `All C`).
#[must_use]
pub fn checker_counts(design: Design) -> [usize; 4] {
    match design {
        Design::Des56 => [0, 1, 5, 9],
        Design::ColorConv => [0, 1, 5, 12],
    }
}

/// The properties installed at `level`, in suite order.
///
/// - RTL: the original clock-context properties;
/// - TLM-CA: the originals re-clocked onto `T_b` (no abstraction);
/// - TLM-AT: the surviving results of Methodology III.1.
#[must_use]
pub fn properties_for_level(design: Design, level: Level) -> Vec<(String, ClockedProperty)> {
    let suite = design.suite();
    match level {
        Level::Rtl => suite.iter().map(SuiteEntry::named).collect(),
        Level::TlmCa => suite
            .iter()
            .map(|e| {
                (e.name.to_owned(), reuse_at_cycle_accurate(&e.rtl).expect("clock context"))
            })
            .collect(),
        Level::TlmAt => {
            let cfg = design.config();
            suite
                .iter()
                .filter_map(|e| {
                    abstract_property(&e.rtl, &cfg)
                        .expect("suite abstracts")
                        .into_property()
                        .map(|q| (e.name.to_owned(), q))
                })
                .collect()
        }
    }
}

/// Runs one measured simulation: `design` at `level` with the first
/// `n_checkers` properties installed, over a workload of `size` requests.
///
/// # Panics
///
/// Panics if checker installation fails (the suites are always
/// installable at their levels).
#[must_use]
pub fn run(design: Design, level: Level, n_checkers: usize, size: usize, seed: u64) -> RunResult {
    let props: Vec<(String, ClockedProperty)> =
        properties_for_level(design, level).into_iter().take(n_checkers).collect();
    match design {
        Design::Des56 => {
            let w = des56::DesWorkload::mixed(size, seed);
            match level {
                Level::Rtl => {
                    let mut built = des56::build_rtl(&w, des56::DesMutation::None);
                    let hosts =
                        install_clock_checkers(&mut built.sim, built.clk.signal, &props)
                            .expect("installs");
                    let start = Instant::now();
                    let stats = built.run();
                    let wall = start.elapsed();
                    let report = collect_clock_reports(&mut built.sim, &hosts, built.end_ns);
                    RunResult { wall, stats, report }
                }
                Level::TlmCa => {
                    let mut built = des56::build_tlm_ca(&w, des56::DesMutation::None);
                    let hosts = install_tx_checkers(&mut built.sim, &built.bus, &props)
                        .expect("installs");
                    let start = Instant::now();
                    let stats = built.run();
                    let wall = start.elapsed();
                    let report = collect_tx_reports(&mut built.sim, &hosts, built.end_ns);
                    RunResult { wall, stats, report }
                }
                Level::TlmAt => {
                    let mut built = des56::build_tlm_at(
                        &w,
                        des56::DesMutation::None,
                        CodingStyle::ApproximatelyTimedLoose,
                    );
                    let hosts = install_tx_checkers(&mut built.sim, &built.bus, &props)
                        .expect("installs");
                    let start = Instant::now();
                    let stats = built.run();
                    let wall = start.elapsed();
                    let report = collect_tx_reports(&mut built.sim, &hosts, built.end_ns);
                    RunResult { wall, stats, report }
                }
            }
        }
        Design::ColorConv => {
            let w = colorconv::ConvWorkload::mixed(size, seed);
            match level {
                Level::Rtl => {
                    let mut built = colorconv::build_rtl(&w, colorconv::ConvMutation::None);
                    let hosts =
                        install_clock_checkers(&mut built.sim, built.clk.signal, &props)
                            .expect("installs");
                    let start = Instant::now();
                    let stats = built.run();
                    let wall = start.elapsed();
                    let report = collect_clock_reports(&mut built.sim, &hosts, built.end_ns);
                    RunResult { wall, stats, report }
                }
                Level::TlmCa => {
                    let mut built = colorconv::build_tlm_ca(&w, colorconv::ConvMutation::None);
                    let hosts = install_tx_checkers(&mut built.sim, &built.bus, &props)
                        .expect("installs");
                    let start = Instant::now();
                    let stats = built.run();
                    let wall = start.elapsed();
                    let report = collect_tx_reports(&mut built.sim, &hosts, built.end_ns);
                    RunResult { wall, stats, report }
                }
                Level::TlmAt => {
                    let mut built = colorconv::build_tlm_at(
                        &w,
                        colorconv::ConvMutation::None,
                        CodingStyle::ApproximatelyTimedLoose,
                    );
                    let hosts = install_tx_checkers(&mut built.sim, &built.bus, &props)
                        .expect("installs");
                    let start = Instant::now();
                    let stats = built.run();
                    let wall = start.elapsed();
                    let report = collect_tx_reports(&mut built.sim, &hosts, built.end_ns);
                    RunResult { wall, stats, report }
                }
            }
        }
    }
}

/// Runs `reps` repetitions and returns the run with the fastest wall time
/// (the usual noise-robust estimator for a deterministic single-threaded
/// loop).
///
/// # Panics
///
/// Panics if `reps == 0`.
#[must_use]
pub fn run_best_of(
    design: Design,
    level: Level,
    n_checkers: usize,
    size: usize,
    reps: usize,
) -> RunResult {
    assert!(reps >= 1, "at least one repetition");
    let mut best: Option<RunResult> = None;
    for rep in 0..reps {
        let result = run(design, level, n_checkers, size, 0xBEEF + rep as u64);
        best = match best {
            Some(b) if b.wall <= result.wall => Some(b),
            _ => Some(result),
        };
    }
    best.expect("reps >= 1")
}

/// Workload size used by the table/fig binaries, overridable via the
/// `ABV_BENCH_SIZE` environment variable.
#[must_use]
pub fn default_size() -> usize {
    std::env::var("ABV_BENCH_SIZE").ok().and_then(|s| s.parse().ok()).unwrap_or(3000)
}

/// Repetitions used by the table/fig binaries, overridable via
/// `ABV_BENCH_REPS`.
#[must_use]
pub fn default_reps() -> usize {
    std::env::var("ABV_BENCH_REPS").ok().and_then(|s| s.parse().ok()).unwrap_or(3)
}

/// Percentage overhead of `with` over `base`.
#[must_use]
pub fn overhead_pct(base: Duration, with: Duration) -> f64 {
    (with.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_per_level_counts() {
        assert_eq!(properties_for_level(Design::Des56, Level::Rtl).len(), 9);
        assert_eq!(properties_for_level(Design::Des56, Level::TlmCa).len(), 9);
        // p8 is deleted by the abstraction.
        assert_eq!(properties_for_level(Design::Des56, Level::TlmAt).len(), 8);
        assert_eq!(properties_for_level(Design::ColorConv, Level::TlmAt).len(), 12);
    }

    #[test]
    fn run_produces_activity_and_reports() {
        let r = run(Design::Des56, Level::Rtl, 2, 4, 1);
        assert!(r.stats.events_processed > 0);
        assert_eq!(r.report.properties.len(), 2);
        let r = run(Design::ColorConv, Level::TlmAt, 3, 4, 1);
        assert_eq!(r.report.properties.len(), 3);
    }

    #[test]
    fn tlm_at_runs_far_fewer_events_than_rtl() {
        let rtl = run(Design::Des56, Level::Rtl, 0, 20, 2);
        let at = run(Design::Des56, Level::TlmAt, 0, 20, 2);
        assert!(
            at.stats.events_processed * 10 < rtl.stats.events_processed,
            "AT {} vs RTL {}",
            at.stats.events_processed,
            rtl.stats.events_processed
        );
    }

    #[test]
    fn all_checkers_pass_at_each_level() {
        for design in [Design::Des56, Design::ColorConv] {
            for level in [Level::Rtl, Level::TlmCa] {
                let n = properties_for_level(design, level).len();
                let r = run(design, level, n, 6, 3);
                assert!(r.report.all_pass(), "{} {}: {}", design.label(), level.label(), r.report);
            }
        }
    }

    #[test]
    fn overhead_pct_math() {
        let base = Duration::from_millis(100);
        let with = Duration::from_millis(163);
        assert!((overhead_pct(base, with) - 63.0).abs() < 1e-9);
    }
}
