//! `abv-bench` — the harness regenerating the paper's evaluation
//! (Section V): Table I simulation-time/overhead measurements and the
//! Fig. 6 RTL→TLM speedup comparison, plus ablation studies.
//!
//! Binaries:
//!
//! - `table1`: prints the Table I reproduction for both IPs;
//! - `fig6`: prints the Fig. 6 average-speedup reproduction;
//! - `fig3`: prints the Fig. 3 property-abstraction table.
//!
//! Timing benches (`cargo bench`): `checker_overhead`, `speedup`,
//! `ablation` — plain `harness = false` mains over [`stopwatch`].
//!
//! Measured runs are built through the design factory
//! ([`designs::build`]) and verified through the unified
//! [`Checker::attach`](abv_checker::Checker::attach) facade; the
//! multi-run campaigns behind the binaries ride on `abv-campaign`.
//!
//! Absolute times differ from the paper's testbed; the *shape* is what is
//! reproduced: overhead grows with checker count at every level, reusing
//! unabstracted checkers at TLM-CA costs more than at RTL, and abstracted
//! checkers at TLM-AT cost an order of magnitude less (see EXPERIMENTS.md).

pub mod stopwatch;

use std::time::{Duration, Instant};

use abv_campaign::{run_campaign, CampaignPlan, CellReport};
use abv_checker::{CheckReport, Checker};
use designs::Fault;
use desim::SimStats;
use psl::ClockedProperty;

pub use abv_campaign::CheckerMode;

/// Which IP to benchmark (re-exported from the design factory; the
/// benchmark binaries cover the paper's two IPs, `ALL` also has FIR).
pub use designs::DesignKind as Design;

/// Abstraction level of a measured run (Table I rows).
pub use designs::AbsLevel as Level;

/// Outcome of one measured simulation run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Wall-clock duration of the simulation loop (excludes model/checker
    /// construction).
    pub wall: Duration,
    /// Kernel activity counters.
    pub stats: SimStats,
    /// Checker reports (empty for a run without checkers).
    pub report: CheckReport,
}

/// The checker set sizes of Table I (`w/out c.`, `1 C`, `5 C`, `All C`).
#[must_use]
pub fn checker_counts(design: Design) -> [usize; 4] {
    [0, 1, 5, design.suite().len()]
}

/// The properties installed at `level`, in suite order (see
/// [`designs::properties_at`]).
#[must_use]
pub fn properties_for_level(design: Design, level: Level) -> Vec<(String, ClockedProperty)> {
    designs::properties_at(design, level)
}

/// Runs one measured simulation: `design` at `level` with the first
/// `n_checkers` properties installed, over a workload of `size` requests.
///
/// # Panics
///
/// Panics if the design has no model at `level` or checker attachment
/// fails (the suites are always attachable at their levels).
#[must_use]
pub fn run(design: Design, level: Level, n_checkers: usize, size: usize, seed: u64) -> RunResult {
    let props: Vec<(String, ClockedProperty)> = properties_for_level(design, level)
        .into_iter()
        .take(n_checkers)
        .collect();
    let mut built =
        designs::build(design, level, size, seed, Fault::None).expect("level supported");
    let binding = built.binding();
    let checkers = Checker::attach_all(&mut built.sim, &props, binding).expect("installs");
    let start = Instant::now();
    let stats = built.run();
    let wall = start.elapsed();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    RunResult {
        wall,
        stats,
        report,
    }
}

/// Runs `reps` repetitions and returns the run with the fastest wall time
/// (the usual noise-robust estimator for a deterministic single-threaded
/// loop).
///
/// # Panics
///
/// Panics if `reps == 0`.
#[must_use]
pub fn run_best_of(
    design: Design,
    level: Level,
    n_checkers: usize,
    size: usize,
    reps: usize,
) -> RunResult {
    assert!(reps >= 1, "at least one repetition");
    let mut best: Option<RunResult> = None;
    for rep in 0..reps {
        let result = run(design, level, n_checkers, size, 0xBEEF + rep as u64);
        best = match best {
            Some(b) if b.wall <= result.wall => Some(b),
            _ => Some(result),
        };
    }
    best.expect("reps >= 1")
}

/// Measures a grid of benchmark cells through the campaign engine: each
/// `(design, level, checkers)` triple becomes a campaign cell repeated
/// `reps` times on `workers` threads, and the per-cell aggregates come
/// back in input order ([`CellReport::wall_min`](abv_campaign::CellReport)
/// is the best-of-reps estimator the binaries print).
///
/// # Panics
///
/// Panics if a cell names a design/level pair without a model.
#[must_use]
pub fn measure(
    cells: &[(Design, Level, CheckerMode)],
    size: usize,
    reps: usize,
    workers: usize,
) -> Vec<CellReport> {
    let mut plan = CampaignPlan::new("bench")
        .runs(reps)
        .size(size)
        .seed(0xBEEF);
    for &(design, level, checkers) in cells {
        plan = plan.cell(design, level, checkers);
    }
    run_campaign(&plan, workers)
        .expect("benchmark plan must be executable")
        .cells
}

/// Worker threads used by the table/fig binaries: `ABV_BENCH_WORKERS` or
/// the machine's available parallelism.
#[must_use]
pub fn default_workers() -> usize {
    std::env::var("ABV_BENCH_WORKERS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Workload size used by the table/fig binaries, overridable via the
/// `ABV_BENCH_SIZE` environment variable.
#[must_use]
pub fn default_size() -> usize {
    std::env::var("ABV_BENCH_SIZE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3000)
}

/// Repetitions used by the table/fig binaries, overridable via
/// `ABV_BENCH_REPS`.
#[must_use]
pub fn default_reps() -> usize {
    std::env::var("ABV_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(3)
}

/// Percentage overhead of `with` over `base`.
#[must_use]
pub fn overhead_pct(base: Duration, with: Duration) -> f64 {
    (with.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn properties_per_level_counts() {
        assert_eq!(properties_for_level(Design::Des56, Level::Rtl).len(), 9);
        assert_eq!(properties_for_level(Design::Des56, Level::TlmCa).len(), 9);
        // p8 is deleted by the abstraction.
        assert_eq!(properties_for_level(Design::Des56, Level::TlmAt).len(), 8);
        assert_eq!(
            properties_for_level(Design::ColorConv, Level::TlmAt).len(),
            12
        );
    }

    #[test]
    fn checker_counts_track_suite_sizes() {
        assert_eq!(checker_counts(Design::Des56), [0, 1, 5, 9]);
        assert_eq!(checker_counts(Design::ColorConv), [0, 1, 5, 12]);
    }

    #[test]
    fn run_produces_activity_and_reports() {
        let r = run(Design::Des56, Level::Rtl, 2, 4, 1);
        assert!(r.stats.events_processed > 0);
        assert_eq!(r.report.properties.len(), 2);
        let r = run(Design::ColorConv, Level::TlmAt, 3, 4, 1);
        assert_eq!(r.report.properties.len(), 3);
    }

    #[test]
    fn tlm_at_runs_far_fewer_events_than_rtl() {
        let rtl = run(Design::Des56, Level::Rtl, 0, 20, 2);
        let at = run(Design::Des56, Level::TlmAt, 0, 20, 2);
        assert!(
            at.stats.events_processed * 10 < rtl.stats.events_processed,
            "AT {} vs RTL {}",
            at.stats.events_processed,
            rtl.stats.events_processed
        );
    }

    #[test]
    fn all_checkers_pass_at_each_level() {
        for design in [Design::Des56, Design::ColorConv] {
            for level in [Level::Rtl, Level::TlmCa] {
                let n = properties_for_level(design, level).len();
                let r = run(design, level, n, 6, 3);
                assert!(
                    r.report.all_pass(),
                    "{} {}: {}",
                    design.label(),
                    level.label(),
                    r.report
                );
            }
        }
    }

    #[test]
    fn measure_returns_cells_in_input_order() {
        let cells = [
            (Design::Des56, Level::Rtl, CheckerMode::None),
            (Design::Des56, Level::TlmAt, CheckerMode::All),
        ];
        let reports = measure(&cells, 5, 2, 2);
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].runs, 2);
        assert!(reports[0].report.properties.is_empty());
        assert_eq!(reports[1].report.properties.len(), 8);
        assert!(reports[0].stats.events_processed > reports[1].stats.events_processed);
    }

    #[test]
    fn overhead_pct_math() {
        let base = Duration::from_millis(100);
        let with = Duration::from_millis(163);
        assert!((overhead_pct(base, with) - 63.0).abs() < 1e-9);
    }
}
