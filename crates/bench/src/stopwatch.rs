//! Minimal timing harness for the `harness = false` benches: repeats a
//! closure under a small time budget and prints min/median/mean.
//!
//! This replaces the former criterion dependency, which cannot be
//! resolved in offline builds; the statistics are deliberately simple
//! (best-of is the meaningful estimator for a deterministic
//! single-threaded simulation loop).

use std::time::{Duration, Instant};

/// Per-benchmark wall-clock budget, overridable via `ABV_BENCH_BUDGET_MS`.
#[must_use]
pub fn budget() -> Duration {
    let ms = std::env::var("ABV_BENCH_BUDGET_MS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    Duration::from_millis(ms)
}

/// Timing samples of one benchmark, in nanoseconds.
#[derive(Debug, Clone)]
pub struct Samples {
    /// Per-iteration durations, sorted ascending.
    pub sorted: Vec<Duration>,
}

impl Samples {
    /// Fastest iteration.
    #[must_use]
    pub fn min(&self) -> Duration {
        self.sorted[0]
    }

    /// Median iteration.
    #[must_use]
    pub fn median(&self) -> Duration {
        self.sorted[self.sorted.len() / 2]
    }

    /// Mean iteration.
    #[must_use]
    pub fn mean(&self) -> Duration {
        self.sorted.iter().sum::<Duration>() / self.sorted.len() as u32
    }
}

/// Runs `f` repeatedly (one warm-up, then at least 3 and at most 50
/// samples within [`budget`]) and prints a `label: min/median/mean` line.
/// Returns the samples for callers that post-process.
pub fn bench<R>(label: &str, mut f: impl FnMut() -> R) -> Samples {
    let _ = f(); // warm-up
    let budget = budget();
    let started = Instant::now();
    let mut samples = Vec::new();
    while samples.len() < 3 || (started.elapsed() < budget && samples.len() < 50) {
        let t0 = Instant::now();
        let _ = f();
        samples.push(t0.elapsed());
    }
    samples.sort_unstable();
    let s = Samples { sorted: samples };
    println!(
        "  {label:<28} min {:>10.3?}  median {:>10.3?}  mean {:>10.3?}  ({} iters)",
        s.min(),
        s.median(),
        s.mean(),
        s.sorted.len()
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_are_ordered() {
        let s = Samples {
            sorted: vec![
                Duration::from_micros(1),
                Duration::from_micros(2),
                Duration::from_micros(9),
            ],
        };
        assert_eq!(s.min(), Duration::from_micros(1));
        assert_eq!(s.median(), Duration::from_micros(2));
        assert_eq!(s.mean(), Duration::from_micros(4));
    }
}
