//! Regenerates the paper's **Fig. 6** (RTL/TLM simulation average
//! speedup): the speedup of each TLM implementation over RTL, with and
//! without checkers.
//!
//! The "with checkers" bar averages the speedups measured at the 1 C, 5 C
//! and All C configurations, mirroring the paper's averaging across
//! checker amounts.
//!
//! ```text
//! cargo run --release -p abv-bench --bin fig6
//! ```

use abv_bench::{checker_counts, default_reps, default_size, run_best_of, Design, Level};

fn bar(label: &str, value: f64) {
    let blocks = (value * 4.0).round() as usize;
    println!("  {label:<22} {value:>6.2}x  {}", "#".repeat(blocks.min(120)));
}

fn main() {
    let size = default_size();
    let reps = default_reps();
    println!("FIG. 6 reproduction — RTL/TLM simulation average speedup");
    println!("(workload: {size} requests per IP, best of {reps} runs)\n");

    for design in [Design::Des56, Design::ColorConv] {
        println!("--- {} ---", design.label());
        let counts = checker_counts(design);
        let rtl_base = run_best_of(design, Level::Rtl, 0, size, reps).wall.as_secs_f64();
        let rtl_with: Vec<f64> = counts[1..]
            .iter()
            .map(|&n| run_best_of(design, Level::Rtl, n, size, reps).wall.as_secs_f64())
            .collect();

        for level in [Level::TlmCa, Level::TlmAt] {
            let tlm_base = run_best_of(design, level, 0, size, reps).wall.as_secs_f64();
            let speedup_wo = rtl_base / tlm_base;

            let mut speedups_with = Vec::new();
            for (i, &n) in counts[1..].iter().enumerate() {
                // At TLM-AT the suite may be smaller after deletion; clamp.
                let tlm = run_best_of(design, level, n, size, reps).wall.as_secs_f64();
                speedups_with.push(rtl_with[i] / tlm);
            }
            let speedup_with =
                speedups_with.iter().sum::<f64>() / speedups_with.len() as f64;

            bar(&format!("{} w/out checkers", level.label()), speedup_wo);
            bar(&format!("{} with checkers", level.label()), speedup_with);
        }
        println!();
    }

    println!("Expected shape (paper Fig. 6): adding checkers *decreases* the");
    println!("TLM-CA speedup (unabstracted cycle-accurate checkers drag the");
    println!("event-driven simulation) and *increases* the TLM-AT speedup");
    println!("(abstracted checkers barely touch the sparse event stream while");
    println!("the RTL checkers slow the RTL reference down).");
}
