//! Regenerates the paper's **Fig. 6** (RTL/TLM simulation average
//! speedup): the speedup of each TLM implementation over RTL, with and
//! without checkers.
//!
//! The "with checkers" bar averages the speedups measured at the 1 C, 5 C
//! and All C configurations, mirroring the paper's averaging across
//! checker amounts. All (level, count) cells of one IP are measured by a
//! single campaign sharded across `ABV_BENCH_WORKERS` threads.
//!
//! ```text
//! cargo run --release -p abv-bench --bin fig6
//! ```

use abv_bench::{
    checker_counts, default_reps, default_size, default_workers, measure, CheckerMode, Design,
    Level,
};

fn bar(label: &str, value: f64) {
    let blocks = (value * 4.0).round() as usize;
    println!(
        "  {label:<22} {value:>6.2}x  {}",
        "#".repeat(blocks.min(120))
    );
}

fn mode(n: usize) -> CheckerMode {
    if n == 0 {
        CheckerMode::None
    } else {
        CheckerMode::First(n)
    }
}

fn main() {
    let size = default_size();
    let reps = default_reps();
    let workers = default_workers();
    println!("FIG. 6 reproduction — RTL/TLM simulation average speedup");
    println!("(workload: {size} requests per IP, best of {reps} runs, {workers} worker(s))\n");

    let levels = [Level::Rtl, Level::TlmCa, Level::TlmAt];
    for design in [Design::Des56, Design::ColorConv] {
        println!("--- {} ---", design.label());
        let counts = checker_counts(design);
        let cells: Vec<_> = levels
            .into_iter()
            .flat_map(|level| counts.iter().map(move |&n| (design, level, mode(n))))
            .collect();
        let reports = measure(&cells, size, reps, workers);
        let wall = |level_idx: usize, count_idx: usize| {
            reports[level_idx * counts.len() + count_idx]
                .wall_min
                .as_secs_f64()
        };

        let rtl_base = wall(0, 0);
        for (ti, level) in [Level::TlmCa, Level::TlmAt].into_iter().enumerate() {
            let speedup_wo = rtl_base / wall(ti + 1, 0);
            let speedups_with: Vec<f64> = (1..counts.len())
                .map(|ci| wall(0, ci) / wall(ti + 1, ci))
                .collect();
            let speedup_with = speedups_with.iter().sum::<f64>() / speedups_with.len() as f64;

            bar(&format!("{} w/out checkers", level.label()), speedup_wo);
            bar(&format!("{} with checkers", level.label()), speedup_with);
        }
        println!();
    }

    println!("Expected shape (paper Fig. 6): adding checkers *decreases* the");
    println!("TLM-CA speedup (unabstracted cycle-accurate checkers drag the");
    println!("event-driven simulation) and *increases* the TLM-AT speedup");
    println!("(abstracted checkers barely touch the sparse event stream while");
    println!("the RTL checkers slow the RTL reference down).");
}
