//! Deviation D1 experiment: ColorConv TLM-AT checker overhead at the two
//! transaction granularities (see EXPERIMENTS.md).
//!
//! - **per-pixel** (the default reproduction models): one write/read pair
//!   per pixel keeps the abstracted per-pixel properties checkable, but
//!   the base simulation is almost pure kernel activity, so the checker
//!   overhead percentage is inflated;
//! - **bulk** (the paper's Section V description, "only one write
//!   transaction … and one read transaction"): the whole frame moves
//!   through two transactions, the base cost is dominated by the actual
//!   conversion work and the overhead of the surviving (frame-level)
//!   checkers collapses to the paper's single-digit percentages.
//!
//! Both granularities are campaign cells (the bulk model is the factory's
//! `TLM-AT-bulk` level), measured by one sharded campaign.
//!
//! ```text
//! cargo run --release -p abv-bench --bin bulk_at
//! ```

use abv_bench::{
    default_reps, default_size, default_workers, measure, overhead_pct, CheckerMode, Design, Level,
};

fn main() {
    let size = default_size() * 10; // bulk runs are cheap; use a bigger frame
    let reps = default_reps();
    let workers = default_workers();
    println!("ColorConv TLM-AT checker overhead vs transaction granularity");
    println!("(frame of {size} pixels, best of {reps} runs, {workers} worker(s))\n");

    let cells = [
        (Design::ColorConv, Level::TlmAt, CheckerMode::None),
        (Design::ColorConv, Level::TlmAt, CheckerMode::All),
        (Design::ColorConv, Level::TlmAtBulk, CheckerMode::None),
        (Design::ColorConv, Level::TlmAtBulk, CheckerMode::All),
    ];
    let reports = measure(&cells, size, reps, workers);
    let n_bulk = designs::properties_at(Design::ColorConv, Level::TlmAtBulk).len();

    let (base_pp, with_pp) = (reports[0].wall_min, reports[1].wall_min);
    println!(
        "per-pixel AT : base {:.4}s, all checkers {:.4}s, overhead {:>7.1}%",
        base_pp.as_secs_f64(),
        with_pp.as_secs_f64(),
        overhead_pct(base_pp, with_pp)
    );

    let (base_bulk, with_bulk) = (reports[2].wall_min, reports[3].wall_min);
    println!(
        "bulk AT      : base {:.4}s, {n_bulk} checkers    {:.4}s, overhead {:>7.1}%",
        base_bulk.as_secs_f64(),
        with_bulk.as_secs_f64(),
        overhead_pct(base_bulk, with_bulk)
    );

    println!("\nAt the bulk granularity of the paper's Section V models the");
    println!("overhead collapses into the paper's single-digit range — at the");
    println!("price of abstracting the per-pixel properties away entirely.");
}
