//! Deviation D1 experiment: ColorConv TLM-AT checker overhead at the two
//! transaction granularities (see EXPERIMENTS.md).
//!
//! - **per-pixel** (the default reproduction models): one write/read pair
//!   per pixel keeps the abstracted per-pixel properties checkable, but
//!   the base simulation is almost pure kernel activity, so the checker
//!   overhead percentage is inflated;
//! - **bulk** (the paper's Section V description, "only one write
//!   transaction … and one read transaction"): the whole frame moves
//!   through two transactions, the base cost is dominated by the actual
//!   conversion work and the overhead of the surviving (frame-level)
//!   checkers collapses to the paper's single-digit percentages.
//!
//! ```text
//! cargo run --release -p abv-bench --bin bulk_at
//! ```

use std::time::Instant;

use abv_bench::{default_reps, default_size, overhead_pct, properties_for_level, Design, Level};
use abv_checker::install_tx_checkers;
use designs::colorconv::{self, bulk_surviving_properties, ConvMutation, ConvWorkload};
use psl::ClockedProperty;
use tlmkit::CodingStyle;

fn time_per_pixel(size: usize, props: &[(String, ClockedProperty)]) -> f64 {
    let w = ConvWorkload::mixed(size, 0xD1);
    let mut built =
        colorconv::build_tlm_at(&w, ConvMutation::None, CodingStyle::ApproximatelyTimedLoose);
    let _hosts = install_tx_checkers(&mut built.sim, &built.bus, props).expect("installs");
    let start = Instant::now();
    built.run();
    start.elapsed().as_secs_f64()
}

fn time_bulk(size: usize, props: &[(String, ClockedProperty)]) -> f64 {
    let w = ConvWorkload::mixed(size, 0xD1);
    let mut built = colorconv::build_tlm_at_bulk(&w, ConvMutation::None);
    let _hosts = install_tx_checkers(&mut built.sim, &built.bus, props).expect("installs");
    let start = Instant::now();
    built.run();
    start.elapsed().as_secs_f64()
}

fn best_of(reps: usize, f: impl Fn() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let size = default_size() * 10; // bulk runs are cheap; use a bigger frame
    let reps = default_reps();
    println!("ColorConv TLM-AT checker overhead vs transaction granularity");
    println!("(frame of {size} pixels, best of {reps} runs)\n");

    let per_pixel_props = properties_for_level(Design::ColorConv, Level::TlmAt);
    let base_pp = best_of(reps, || time_per_pixel(size, &[]));
    let with_pp = best_of(reps, || time_per_pixel(size, &per_pixel_props));
    println!("per-pixel AT : base {base_pp:.4}s, all checkers {with_pp:.4}s, overhead {:>7.1}%",
        overhead_pct(std::time::Duration::from_secs_f64(base_pp),
                     std::time::Duration::from_secs_f64(with_pp)));

    let bulk_props = bulk_surviving_properties();
    let base_bulk = best_of(reps, || time_bulk(size, &[]));
    let with_bulk = best_of(reps, || time_bulk(size, &bulk_props));
    println!("bulk AT      : base {base_bulk:.4}s, {} checkers    {with_bulk:.4}s, overhead {:>7.1}%",
        bulk_props.len(),
        overhead_pct(std::time::Duration::from_secs_f64(base_bulk),
                     std::time::Duration::from_secs_f64(with_bulk)));

    println!("\nAt the bulk granularity of the paper's Section V models the");
    println!("overhead collapses into the paper's single-digit range — at the");
    println!("price of abstracting the per-pixel properties away entirely.");
}
