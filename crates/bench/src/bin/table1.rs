//! Regenerates the paper's **Table I** (simulation results): for each test
//! case and abstraction level, the simulation time without checkers and
//! with 1 / 5 / all checkers, plus the checker overhead percentage.
//!
//! ```text
//! cargo run --release -p abv-bench --bin table1
//! ABV_BENCH_SIZE=10000 cargo run --release -p abv-bench --bin table1
//! ```

use abv_bench::{checker_counts, default_reps, default_size, overhead_pct, run_best_of, Design,
    Level};

fn main() {
    let size = default_size();
    let reps = default_reps();
    println!("TABLE I reproduction — simulation results");
    println!("(workload: {size} requests per IP, best of {reps} runs; absolute times are");
    println!(" machine-specific, compare the overhead shape with the paper)\n");

    println!("Abstr. level   w/out c. (s)  with c. (s)   overhead   checkers");
    for design in [Design::Des56, Design::ColorConv] {
        println!("--- {} ---", design.label());
        for level in Level::ALL {
            let counts = checker_counts(design);
            let base = run_best_of(design, level, 0, size, reps);
            for &n in &counts[1..] {
                let with = run_best_of(design, level, n, size, reps);
                let label = if n == *counts.last().expect("non-empty") {
                    "All C".to_owned()
                } else {
                    format!("{n} C")
                };
                println!(
                    "{:<14} {:>12.3} {:>12.3} {:>9.1}%   {}",
                    format!("{} {}", level.label(), label),
                    base.wall.as_secs_f64(),
                    with.wall.as_secs_f64(),
                    overhead_pct(base.wall, with.wall),
                    label
                );
            }
        }
        println!();
    }

    println!("Expected shape (paper Table I):");
    println!(" - overhead grows with the number of checkers at every level;");
    println!(" - TLM-CA overhead (unabstracted checkers) exceeds the RTL overhead;");
    println!(" - TLM-AT overhead (abstracted checkers) is roughly an order of");
    println!("   magnitude below the RTL overhead.");
}
