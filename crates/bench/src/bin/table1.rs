//! Regenerates the paper's **Table I** (simulation results): for each test
//! case and abstraction level, the simulation time without checkers and
//! with 1 / 5 / all checkers, plus the checker overhead percentage.
//!
//! The measurement grid is one campaign per IP — every (level, checker
//! count) cell runs `ABV_BENCH_REPS` repetitions, sharded across
//! `ABV_BENCH_WORKERS` threads — and the per-cell best-of wall time is
//! what the table prints.
//!
//! ```text
//! cargo run --release -p abv-bench --bin table1
//! ABV_BENCH_SIZE=10000 cargo run --release -p abv-bench --bin table1
//! ```

use abv_bench::{
    checker_counts, default_reps, default_size, default_workers, measure, overhead_pct,
    CheckerMode, Design, Level,
};

fn mode(n: usize) -> CheckerMode {
    if n == 0 {
        CheckerMode::None
    } else {
        CheckerMode::First(n)
    }
}

fn main() {
    let size = default_size();
    let reps = default_reps();
    let workers = default_workers();
    println!("TABLE I reproduction — simulation results");
    println!("(workload: {size} requests per IP, best of {reps} runs, {workers} worker(s);");
    println!(" absolute times are machine-specific, compare the overhead shape)\n");

    println!("Abstr. level   w/out c. (s)  with c. (s)   overhead   checkers");
    for design in [Design::Des56, Design::ColorConv] {
        println!("--- {} ---", design.label());
        let counts = checker_counts(design);
        let cells: Vec<_> = Level::ALL
            .into_iter()
            .flat_map(|level| counts.iter().map(move |&n| (design, level, mode(n))))
            .collect();
        let reports = measure(&cells, size, reps, workers);
        for (li, level) in Level::ALL.into_iter().enumerate() {
            let base = reports[li * counts.len()].wall_min;
            for (ci, &n) in counts.iter().enumerate().skip(1) {
                let with = reports[li * counts.len() + ci].wall_min;
                let label = if n == *counts.last().expect("non-empty") {
                    "All C".to_owned()
                } else {
                    format!("{n} C")
                };
                println!(
                    "{:<14} {:>12.3} {:>12.3} {:>9.1}%   {}",
                    format!("{} {}", level.label(), label),
                    base.as_secs_f64(),
                    with.as_secs_f64(),
                    overhead_pct(base, with),
                    label
                );
            }
        }
        println!();
    }

    println!("Expected shape (paper Table I):");
    println!(" - overhead grows with the number of checkers at every level;");
    println!(" - TLM-CA overhead (unabstracted checkers) exceeds the RTL overhead;");
    println!(" - TLM-AT overhead (abstracted checkers) is roughly an order of");
    println!("   magnitude below the RTL overhead.");
}
