//! Structured simulation tracing for the RTL-to-TLM verification flow.
//!
//! The paper's checker wrapper (Section IV) is a temporal mechanism — a
//! bounded pool of checker instances, an evaluation table of
//! `(time → instance)` obligations, and failures raised when an expected
//! evaluation time passes without a transaction. This crate makes that
//! behaviour observable as structured events without perturbing it:
//!
//! * [`TraceEvent`] — one span boundary, instant, or counter sample, in the
//!   vocabulary of the Chrome trace-event format (`ph: B/E/i/C/M`).
//! * [`TraceSink`] — where events go: [`NullSink`] (drop), [`MemorySink`]
//!   (bounded ring buffer), or [`JsonStreamSink`] (streaming Chrome JSON).
//! * [`Tracer`] — the cheap, clonable handle instrumented code holds. A
//!   disabled tracer is a `None`; the [`trace!`] macro does not even
//!   construct the event then, so the default path costs one branch.
//! * [`Histogram`] — log₂-bucketed metric histogram with an associative
//!   [`merge`](Histogram::merge), matching the campaign engine's
//!   fold-in-work-list-order discipline.
//! * [`chrome_trace_json`] — render recorded events as a JSON array that
//!   `ui.perfetto.dev` and `chrome://tracing` load directly.
//!
//! All timestamps on trace events are **simulation time in nanoseconds**,
//! never wall clock, so traces are deterministic: the same seeded run
//! produces byte-identical JSON regardless of host speed or worker count.
//!
//! # Example
//!
//! ```
//! use abv_obs::{chrome_trace_json, MemorySink, TraceEvent, Tracer};
//!
//! let (tracer, sink) = Tracer::memory();
//! abv_obs::trace!(tracer, TraceEvent::span_begin("req", 0, 1, 10));
//! abv_obs::trace!(tracer, TraceEvent::span_end(0, 1, 25));
//! let events = sink.borrow_mut().take_events();
//! assert_eq!(events.len(), 2);
//! let json = chrome_trace_json(&events);
//! assert!(json.starts_with('['));
//! ```

mod event;
mod histogram;
mod sink;
mod tracer;

pub use event::{chrome_trace_json, ArgValue, Phase, TraceEvent};
pub use histogram::Histogram;
pub use sink::{JsonStreamSink, MemorySink, NullSink, TraceSink};
pub use tracer::{SharedSink, Tracer};

/// The checker-arena counter track: one sample per processed evaluation
/// event on the property's base track, carrying the `nodes` (arena size),
/// `memo_hits` and `memo_misses` series — the observability face of the
/// hash-consed monitor representation (interned formula count and
/// progression-cache effectiveness).
pub const ARENA_COUNTER_TRACK: &str = "checker-arena";

/// Records an event iff the tracer is enabled. The event expression is not
/// evaluated otherwise, so instrumentation sites cost a single branch when
/// tracing is off.
///
/// ```
/// # use abv_obs::{TraceEvent, Tracer};
/// let tracer = Tracer::disabled();
/// abv_obs::trace!(tracer, unreachable!("not evaluated when disabled"));
/// ```
#[macro_export]
macro_rules! trace {
    ($tracer:expr, $event:expr) => {
        if $tracer.is_enabled() {
            $tracer.record($event);
        }
    };
}
