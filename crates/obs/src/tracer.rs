//! The [`Tracer`] handle instrumented code holds.

use std::cell::RefCell;
use std::rc::Rc;

use crate::event::TraceEvent;
use crate::sink::{MemorySink, TraceSink};

/// A shared, dynamically-typed trace sink.
///
/// The kernel is single-threaded (`Rc`-based), so sinks are shared the same
/// way: each campaign worker owns its tracer and sinks never cross threads.
pub type SharedSink = Rc<RefCell<dyn TraceSink>>;

/// The cheap handle through which instrumented code records events.
///
/// A tracer is either disabled (the default — one `Option` branch per
/// instrumentation site, no allocation, no virtual call) or attached to a
/// shared [`TraceSink`]. Use the [`trace!`](crate::trace!) macro so the
/// event expression is only evaluated when enabled.
#[derive(Clone, Default)]
pub struct Tracer {
    sink: Option<SharedSink>,
}

impl Tracer {
    /// The disabled tracer: records nothing, costs one branch.
    #[must_use]
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// A tracer writing to `sink`.
    #[must_use]
    pub fn to_sink(sink: SharedSink) -> Tracer {
        Tracer { sink: Some(sink) }
    }

    /// A tracer backed by a fresh unbounded [`MemorySink`]; returns both so
    /// the caller can drain the events after the run.
    #[must_use]
    pub fn memory() -> (Tracer, Rc<RefCell<MemorySink>>) {
        let sink = Rc::new(RefCell::new(MemorySink::new()));
        let tracer = Tracer::to_sink(sink.clone());
        (tracer, sink)
    }

    /// True if events will be recorded.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Records `event` if enabled. Prefer [`trace!`](crate::trace!), which
    /// also skips constructing the event when disabled.
    #[inline]
    pub fn record(&self, event: TraceEvent) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().record(event);
        }
    }

    /// Flushes the underlying sink, if any.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            sink.borrow_mut().flush();
        }
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        tracer.record(TraceEvent::instant("x", 0, 0, 0));
        tracer.flush();
    }

    #[test]
    fn macro_skips_event_construction_when_disabled() {
        let tracer = Tracer::disabled();
        let mut built = false;
        crate::trace!(tracer, {
            built = true;
            TraceEvent::instant("x", 0, 0, 0)
        });
        assert!(!built);
    }

    #[test]
    fn memory_tracer_shares_one_sink_across_clones() {
        let (tracer, sink) = Tracer::memory();
        let clone = tracer.clone();
        crate::trace!(tracer, TraceEvent::instant("a", 0, 0, 1));
        crate::trace!(clone, TraceEvent::instant("b", 0, 0, 2));
        assert_eq!(sink.borrow_mut().take_events().len(), 2);
    }
}
