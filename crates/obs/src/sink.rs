//! Trace sinks: where recorded [`TraceEvent`]s go.

use std::io::Write;

use crate::event::TraceEvent;

/// A destination for trace events.
///
/// Sinks are driven through a [`Tracer`](crate::Tracer); instrumented code
/// never names a concrete sink type.
pub trait TraceSink {
    /// Accepts one event.
    fn record(&mut self, event: TraceEvent);

    /// Flushes buffered output (no-op for in-memory sinks).
    fn flush(&mut self) {}
}

/// Drops every event. Useful to measure the cost of an *enabled* tracer in
/// isolation; a disabled [`Tracer`](crate::Tracer) is cheaper still and is
/// the production default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _event: TraceEvent) {}
}

/// Collects events in memory, optionally as a bounded ring buffer.
///
/// With a capacity, the sink keeps the **latest** `capacity` events and
/// counts the rest in [`dropped`](MemorySink::dropped) — the tail of a
/// simulation is where failures surface, so it is the part worth keeping
/// when memory is bounded.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: std::collections::VecDeque<TraceEvent>,
    capacity: Option<usize>,
    dropped: u64,
}

impl MemorySink {
    /// An unbounded in-memory sink.
    #[must_use]
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// A ring buffer keeping the latest `capacity` events.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> MemorySink {
        MemorySink {
            events: std::collections::VecDeque::with_capacity(capacity.min(4096)),
            capacity: Some(capacity),
            dropped: 0,
        }
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True if no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events evicted by the ring bound.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Takes the recorded events out, oldest first, leaving the sink empty.
    #[must_use]
    pub fn take_events(&mut self) -> Vec<TraceEvent> {
        std::mem::take(&mut self.events).into()
    }

    /// Borrows the recorded events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }
}

impl TraceSink for MemorySink {
    fn record(&mut self, event: TraceEvent) {
        if let Some(cap) = self.capacity {
            if cap == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() == cap {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }
}

/// Streams events to a writer as they arrive, as a Chrome trace-event JSON
/// array. Call [`finish`](JsonStreamSink::finish) to emit the closing
/// bracket; dropping the sink finishes implicitly (ignoring write errors —
/// viewers tolerate an unterminated array, so a panic-path trace still
/// loads).
pub struct JsonStreamSink<W: Write> {
    writer: W,
    written: u64,
    finished: bool,
}

impl<W: Write> JsonStreamSink<W> {
    /// Starts the array on `writer`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the opening bracket cannot be written.
    pub fn new(mut writer: W) -> std::io::Result<JsonStreamSink<W>> {
        writer.write_all(b"[\n")?;
        Ok(JsonStreamSink {
            writer,
            written: 0,
            finished: false,
        })
    }

    /// Number of events written so far.
    #[must_use]
    pub fn written(&self) -> u64 {
        self.written
    }

    /// Closes the JSON array and flushes.
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the closing bracket cannot be written.
    pub fn finish(&mut self) -> std::io::Result<()> {
        if !self.finished {
            self.finished = true;
            self.writer.write_all(b"\n]\n")?;
            self.writer.flush()?;
        }
        Ok(())
    }
}

impl<W: Write> TraceSink for JsonStreamSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.finished {
            return;
        }
        if self.written > 0 {
            let _ = self.writer.write_all(b",\n");
        }
        let _ = self.writer.write_all(event.to_json().as_bytes());
        self.written += 1;
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

impl<W: Write> Drop for JsonStreamSink<W> {
    fn drop(&mut self) {
        let _ = self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(ts: u64) -> TraceEvent {
        TraceEvent::instant("e", 0, 0, ts)
    }

    #[test]
    fn memory_sink_keeps_order() {
        let mut sink = MemorySink::new();
        for t in 0..4 {
            sink.record(ev(t));
        }
        let events = sink.take_events();
        assert_eq!(events.len(), 4);
        assert!(events.windows(2).all(|w| w[0].ts_ns < w[1].ts_ns));
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_buffer_keeps_latest_and_counts_drops() {
        let mut sink = MemorySink::with_capacity(3);
        for t in 0..10 {
            sink.record(ev(t));
        }
        assert_eq!(sink.dropped(), 7);
        let kept: Vec<u64> = sink.take_events().iter().map(|e| e.ts_ns).collect();
        assert_eq!(kept, vec![7, 8, 9]);
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut sink = MemorySink::with_capacity(0);
        sink.record(ev(1));
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn json_stream_emits_valid_array() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonStreamSink::new(&mut buf).unwrap();
            sink.record(ev(1));
            sink.record(ev(2));
            sink.finish().unwrap();
        }
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("[\n"));
        assert!(text.ends_with("\n]\n"));
        assert_eq!(text.matches("{\"ph\"").count(), 2);
    }

    #[test]
    fn json_stream_finishes_on_drop() {
        let mut buf = Vec::new();
        {
            let mut sink = JsonStreamSink::new(&mut buf).unwrap();
            sink.record(ev(1));
        }
        assert!(String::from_utf8(buf).unwrap().ends_with("\n]\n"));
    }
}
