//! Trace events in the Chrome trace-event vocabulary and their JSON
//! rendering.
//!
//! The subset emitted here (`B`/`E` duration spans, `i` instants, `C`
//! counters, `M` metadata) is the stable core that both `chrome://tracing`
//! and `ui.perfetto.dev` load. Timestamps are carried in nanoseconds of
//! simulation time and rendered as fractional microseconds (`ts` is a
//! microsecond field in the format).

use std::fmt::Write as _;

/// The Chrome trace-event phase of a [`TraceEvent`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// `B` — begin of a duration span on a `(pid, tid)` track.
    Begin,
    /// `E` — end of the innermost open span on a `(pid, tid)` track.
    End,
    /// `i` — a point event (rendered with thread scope).
    Instant,
    /// `C` — a counter sample; each arg is one series of the track.
    Counter,
    /// `M` — metadata (`process_name` / `thread_name` labels).
    Meta,
}

impl Phase {
    fn code(self) -> char {
        match self {
            Phase::Begin => 'B',
            Phase::End => 'E',
            Phase::Instant => 'i',
            Phase::Counter => 'C',
            Phase::Meta => 'M',
        }
    }
}

/// A typed argument value attached to a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgValue {
    /// An unsigned integer (counter series, slot indices, deadlines…).
    U64(u64),
    /// A string (names, verdicts, reasons…).
    Str(String),
}

impl From<u64> for ArgValue {
    fn from(v: u64) -> ArgValue {
        ArgValue::U64(v)
    }
}

impl From<&str> for ArgValue {
    fn from(v: &str) -> ArgValue {
        ArgValue::Str(v.to_owned())
    }
}

impl From<String> for ArgValue {
    fn from(v: String) -> ArgValue {
        ArgValue::Str(v)
    }
}

/// One structured trace event.
///
/// `pid` groups tracks into a process row (one per design/run), `tid` is
/// the track within it (one per property, plus one per live checker
/// instance), and `ts_ns` is simulation time in nanoseconds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Chrome trace-event phase.
    pub phase: Phase,
    /// Event or span name (empty for `E` events).
    pub name: String,
    /// Process row: design / campaign run.
    pub pid: u64,
    /// Track within the process: property or checker instance.
    pub tid: u64,
    /// Simulation time in nanoseconds.
    pub ts_ns: u64,
    /// Typed key/value arguments.
    pub args: Vec<(String, ArgValue)>,
}

impl TraceEvent {
    fn new(phase: Phase, name: &str, pid: u64, tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent {
            phase,
            name: name.to_owned(),
            pid,
            tid,
            ts_ns,
            args: Vec::new(),
        }
    }

    /// Opens a duration span on `(pid, tid)`.
    #[must_use]
    pub fn span_begin(name: &str, pid: u64, tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent::new(Phase::Begin, name, pid, tid, ts_ns)
    }

    /// Closes the innermost open span on `(pid, tid)`.
    #[must_use]
    pub fn span_end(pid: u64, tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent::new(Phase::End, "", pid, tid, ts_ns)
    }

    /// A point event on `(pid, tid)`.
    #[must_use]
    pub fn instant(name: &str, pid: u64, tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent::new(Phase::Instant, name, pid, tid, ts_ns)
    }

    /// A counter sample; attach one arg per series.
    #[must_use]
    pub fn counter(name: &str, pid: u64, tid: u64, ts_ns: u64) -> TraceEvent {
        TraceEvent::new(Phase::Counter, name, pid, tid, ts_ns)
    }

    /// Labels process `pid` (`process_name` metadata).
    #[must_use]
    pub fn process_name(pid: u64, name: &str) -> TraceEvent {
        TraceEvent::new(Phase::Meta, "process_name", pid, 0, 0).with_arg("name", name)
    }

    /// Labels track `(pid, tid)` (`thread_name` metadata).
    #[must_use]
    pub fn thread_name(pid: u64, tid: u64, name: &str) -> TraceEvent {
        TraceEvent::new(Phase::Meta, "thread_name", pid, tid, 0).with_arg("name", name)
    }

    /// Attaches a typed argument (builder style).
    #[must_use]
    pub fn with_arg(mut self, key: &str, value: impl Into<ArgValue>) -> TraceEvent {
        self.args.push((key.to_owned(), value.into()));
        self
    }

    /// Renders this event as one Chrome trace-event JSON object.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"ph\":\"{}\",\"name\":{},\"pid\":{},\"tid\":{},\"ts\":{}",
            self.phase.code(),
            json_string(&self.name),
            self.pid,
            self.tid,
            MicroTs(self.ts_ns),
        );
        if self.phase == Phase::Instant {
            out.push_str(",\"s\":\"t\"");
        }
        if !self.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (key, value)) in self.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{}:", json_string(key));
                match value {
                    ArgValue::U64(v) => {
                        let _ = write!(out, "{v}");
                    }
                    ArgValue::Str(s) => out.push_str(&json_string(s)),
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// Nanoseconds rendered as the format's microsecond `ts` field, with
/// sub-microsecond precision kept as decimals (`1234` ns → `1.234`).
struct MicroTs(u64);

impl std::fmt::Display for MicroTs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let micros = self.0 / 1000;
        let frac = self.0 % 1000;
        if frac == 0 {
            write!(f, "{micros}")
        } else {
            write!(f, "{micros}.{frac:03}")
        }
    }
}

/// Escapes `s` as a JSON string literal (with quotes).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Renders `events` as a complete Chrome trace-event JSON array, loadable
/// in `ui.perfetto.dev` or `chrome://tracing`.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96 + 16);
    out.push_str("[\n");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push_str(",\n");
        }
        out.push_str(&event.to_json());
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_json_has_phase_ids_and_micro_ts() {
        let ev = TraceEvent::span_begin("p0", 2, 7, 1_234_567);
        assert_eq!(
            ev.to_json(),
            "{\"ph\":\"B\",\"name\":\"p0\",\"pid\":2,\"tid\":7,\"ts\":1234.567}"
        );
        let end = TraceEvent::span_end(2, 7, 2_000_000);
        assert_eq!(
            end.to_json(),
            "{\"ph\":\"E\",\"name\":\"\",\"pid\":2,\"tid\":7,\"ts\":2000}"
        );
    }

    #[test]
    fn instant_carries_thread_scope_and_args() {
        let ev = TraceEvent::instant("fail", 0, 1, 340)
            .with_arg("reason", "missed-deadline")
            .with_arg("deadline_ns", 340u64);
        assert_eq!(
            ev.to_json(),
            "{\"ph\":\"i\",\"name\":\"fail\",\"pid\":0,\"tid\":1,\"ts\":0.340,\
             \"s\":\"t\",\"args\":{\"reason\":\"missed-deadline\",\"deadline_ns\":340}}"
        );
    }

    #[test]
    fn counter_and_metadata_render() {
        let c = TraceEvent::counter("kernel", 0, 0, 10_000).with_arg("events", 42u64);
        assert!(c.to_json().contains("\"ph\":\"C\""));
        assert!(c.to_json().contains("\"events\":42"));
        let m = TraceEvent::process_name(3, "des56 tlm-at");
        assert_eq!(
            m.to_json(),
            "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":3,\"tid\":0,\"ts\":0,\
             \"args\":{\"name\":\"des56 tlm-at\"}}"
        );
    }

    #[test]
    fn strings_are_escaped() {
        let ev = TraceEvent::instant("a\"b\\c\n", 0, 0, 0);
        assert!(ev.to_json().contains("a\\\"b\\\\c\\n"));
    }

    #[test]
    fn array_is_well_formed() {
        let events = vec![
            TraceEvent::span_begin("x", 0, 0, 0),
            TraceEvent::span_end(0, 0, 5),
        ];
        let json = chrome_trace_json(&events);
        assert!(json.starts_with("[\n"));
        assert!(json.ends_with("\n]\n"));
        assert_eq!(json.matches("{\"ph\"").count(), 2);
        assert_eq!(chrome_trace_json(&[]), "[\n\n]\n");
    }
}
