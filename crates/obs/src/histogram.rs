//! A log₂-bucketed histogram with an associative merge.

/// Number of buckets: bucket `i` counts values `v` with `floor(log2(v)) == i-1`
/// (bucket 0 counts zeros), so the full `u64` range fits.
const BUCKETS: usize = 65;

/// A metric histogram over `u64` samples (latencies in ns or cycles,
/// occupancies…). Buckets are powers of two, which is plenty for the
/// order-of-magnitude questions Table I asks, and makes the merge exact:
/// `merge` is associative and commutative, so campaign shards can fold
/// histograms in work-list order and get a worker-count-independent result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Histogram {
        Histogram::default()
    }

    fn bucket_index(value: u64) -> usize {
        (64 - value.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Histogram::bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.max = self.max.max(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample seen, or 0 when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean sample, or `None` when empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// True if no samples were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Folds `other` into `self`. Associative and commutative.
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Iterates the non-empty buckets as `(lower_bound, upper_bound, count)`
    /// with inclusive bounds — `(0, 0, n)` for zeros, then `(2^i, 2^(i+1)-1,
    /// n)`.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| match i {
                0 => (0, 0, n),
                64 => (1 << 63, u64::MAX, n),
                i => (1 << (i - 1), (1 << i) - 1, n),
            })
    }
}

impl std::fmt::Display for Histogram {
    /// Compact one-line rendering: `count=…, mean=…, max=…`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            return write!(f, "empty");
        }
        write!(
            f,
            "count={} mean={:.1} max={}",
            self.count,
            self.mean().unwrap_or(0.0),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_log2_buckets() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 170, u64::MAX] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64, u64)> = h.nonzero_buckets().collect();
        assert_eq!(
            buckets,
            vec![
                (0, 0, 1),
                (1, 1, 1),
                (2, 3, 2),
                (4, 7, 1),
                (128, 255, 1),
                (1 << 63, u64::MAX, 1),
            ]
        );
        assert_eq!(h.count(), 7);
        assert_eq!(h.max(), u64::MAX);
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in [1, 17, 170] {
            a.record(v);
        }
        for v in [2, 34] {
            b.record(v);
        }
        c.record(340);

        // (a ⊔ b) ⊔ c == a ⊔ (b ⊔ c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        // a ⊔ b == b ⊔ a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.count(), 5);
        assert_eq!(ab.sum(), 1 + 17 + 170 + 2 + 34);
    }

    #[test]
    fn mean_and_display() {
        let mut h = Histogram::new();
        assert!(h.mean().is_none());
        assert_eq!(h.to_string(), "empty");
        h.record(10);
        h.record(20);
        assert_eq!(h.mean(), Some(15.0));
        assert_eq!(h.to_string(), "count=2 mean=15.0 max=20");
    }
}
