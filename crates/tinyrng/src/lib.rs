//! `tinyrng` — a zero-dependency deterministic pseudo-random number
//! generator.
//!
//! The repository runs in environments without access to a crate registry,
//! so workload generation and randomized tests cannot pull in `rand` or
//! `proptest`. This crate provides the small surface they actually need:
//! a seeded [SplitMix64](https://prng.di.unimi.it/splitmix64.c) generator
//! with helpers for ranges, booleans and choices.
//!
//! SplitMix64 passes BigCrush, is trivially seedable from any `u64`
//! (including 0) and produces identical sequences on every platform —
//! which is what campaign reproducibility relies on: a run is fully
//! described by its `(spec, seed)` pair.
//!
//! ```
//! use tinyrng::TinyRng;
//!
//! let mut a = TinyRng::new(42);
//! let mut b = TinyRng::new(42);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// A seeded SplitMix64 generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TinyRng {
    state: u64,
}

impl TinyRng {
    /// A generator seeded with `seed`. Every seed (including 0) yields a
    /// full-quality stream.
    #[must_use]
    pub fn new(seed: u64) -> TinyRng {
        TinyRng { state: seed }
    }

    /// The next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The next 32-bit value (upper half of [`next_u64`](Self::next_u64)).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniformly distributed `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        // Multiply-shift rejection-free mapping (Lemire); the bias for
        // spans far below 2^64 is negligible for test workloads.
        let span = hi - lo;
        lo + ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    /// A uniformly distributed `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniformly distributed `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A random byte.
    pub fn next_u8(&mut self) -> u8 {
        (self.next_u64() >> 56) as u8
    }

    /// A random `u16`.
    pub fn next_u16(&mut self) -> u16 {
        (self.next_u64() >> 48) as u16
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }

    /// A fair coin flip.
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// A uniformly chosen element of `items`.
    ///
    /// # Panics
    ///
    /// Panics if `items` is empty.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range_usize(0, items.len())]
    }

    /// A derived generator for stream `index`, independent of how many
    /// values this generator has produced: used to give each campaign run
    /// its own reproducible stream.
    #[must_use]
    pub fn fork(seed: u64, index: u64) -> TinyRng {
        // One scramble round separates neighbouring (seed, index) pairs.
        let mut rng = TinyRng::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));
        rng.next_u64();
        rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = (0..8).map(|_| TinyRng::new(7).next_u64()).collect();
        assert!(
            a.iter().all(|&v| v == a[0]),
            "fresh rng restarts the stream"
        );
        let mut x = TinyRng::new(7);
        let mut y = TinyRng::new(7);
        for _ in 0..100 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
        let mut z = TinyRng::new(8);
        assert_ne!(x.next_u64(), z.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TinyRng::new(1);
        for _ in 0..1000 {
            let v = rng.range_u64(5, 17);
            assert!((5..17).contains(&v));
            let u = rng.range_usize(0, 3);
            assert!(u < 3);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = TinyRng::new(2);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.range_usize(0, 4)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all of 0..4 hit in 200 draws");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = TinyRng::new(3);
        assert!((0..100).all(|_| !rng.chance(0.0)));
        assert!((0..100).all(|_| rng.chance(1.1)));
    }

    #[test]
    fn pick_selects_members() {
        let mut rng = TinyRng::new(4);
        let items = ["a", "b", "c"];
        for _ in 0..50 {
            assert!(items.contains(rng.pick(&items)));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut a = TinyRng::fork(9, 0);
        let mut b = TinyRng::fork(9, 1);
        assert_ne!(a.next_u64(), b.next_u64());
        let mut a2 = TinyRng::fork(9, 0);
        a2.next_u64();
        let _ = a2; // same stream as `a` regardless of construction order
    }

    #[test]
    fn zero_seed_is_fine() {
        let mut rng = TinyRng::new(0);
        let v: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        assert!(v.windows(2).all(|w| w[0] != w[1]));
    }
}
