//! The sharded campaign executor.
//!
//! [`run_campaign`] expands a plan into its work list and shards it across
//! a fixed pool of `std::thread` workers. Each worker claims the next run
//! off a shared atomic cursor, constructs a **fresh, fully isolated**
//! simulation inside its own thread (kernel state is `Rc`-based and never
//! crosses threads — only the `Send` outcome does), executes it, and sends
//! the indexed outcome back over a channel. The collector slots outcomes
//! by work-list index and folds them in plan order, so the merged report
//! is identical for any worker count.

use std::cell::RefCell;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;
use std::thread;
use std::time::Instant;

use abv_checker::Checker;
use abv_obs::{trace, MemorySink, TraceEvent, Tracer};

use crate::plan::{CampaignPlan, PlanError, RunSpec};
use crate::report::{CampaignReport, RunOutcome};

/// How campaign runs are traced.
///
/// Tracing is per run: each worker attaches a fresh in-memory sink to its
/// freshly built simulation (sinks are `Rc`-based and never cross threads;
/// only the recorded `Send` events do), and the collector merges the
/// per-run traces in work-list order — so the merged trace, like the
/// merged report, is independent of the worker count.
#[derive(Debug, Clone, Copy, Default)]
pub struct TraceSettings {
    /// Record trace events (default: off, the no-op path).
    pub enabled: bool,
    /// Omit wall-clock args from run spans, so the merged trace is
    /// byte-identical across worker counts.
    pub deterministic: bool,
}

impl TraceSettings {
    /// Tracing off — the zero-overhead default.
    #[must_use]
    pub fn off() -> TraceSettings {
        TraceSettings::default()
    }

    /// Tracing on, with wall-clock annotations on run spans.
    #[must_use]
    pub fn on() -> TraceSettings {
        TraceSettings {
            enabled: true,
            deterministic: false,
        }
    }

    /// Tracing on with wall-clock fields omitted (reproducible output).
    #[must_use]
    pub fn deterministic() -> TraceSettings {
        TraceSettings {
            enabled: true,
            deterministic: true,
        }
    }
}

/// Executes one run spec in the calling thread: build the design fresh
/// from `(cell, seed)`, attach the cell's checker selection, simulate,
/// finalize.
///
/// # Panics
///
/// Panics if the spec's cell is not buildable — campaign plans are
/// validated before expansion, so specs from [`CampaignPlan::run_specs`]
/// of a validated plan cannot hit this.
#[must_use]
pub fn execute_run(spec: &RunSpec) -> RunOutcome {
    execute_run_with(spec, TraceSettings::off())
}

/// [`execute_run`] with tracing: when enabled, the run's whole event
/// stream — kernel counters, transaction instants, checker-instance spans
/// and one `run` span covering the simulation — is captured into
/// [`RunOutcome::trace`].
///
/// # Panics
///
/// See [`execute_run`].
#[must_use]
pub fn execute_run_with(spec: &RunSpec, settings: TraceSettings) -> RunOutcome {
    let all = if matches!(
        spec.spec.checkers,
        crate::plan::CheckerMode::ExpectedPassing
    ) {
        designs::passing_properties_at(spec.spec.design, spec.spec.level)
    } else {
        designs::properties_at(spec.spec.design, spec.spec.level)
    };
    let props = spec.spec.checkers.select(all);
    let mut built = designs::build(
        spec.spec.design,
        spec.spec.level,
        spec.size,
        spec.seed,
        spec.spec.fault,
    )
    .expect("validated plan cell must build");
    let sink = settings
        .enabled
        .then(|| Rc::new(RefCell::new(MemorySink::new())));
    if let Some(sink) = &sink {
        // Attach before the checkers so their track metadata is recorded.
        built.sim.set_tracer(Tracer::to_sink(sink.clone()));
    }
    let binding = built.binding();
    let checkers =
        Checker::attach_all(&mut built.sim, &props, binding).expect("suite attaches at its level");
    let tracer = built.sim.tracer().clone();
    trace!(
        tracer,
        TraceEvent::span_begin("run", 0, 0, 0)
            .with_arg("cell", spec.cell as u64)
            .with_arg("rep", spec.rep as u64)
            .with_arg("seed", format!("{:#018x}", spec.seed))
    );
    let start = Instant::now();
    let stats = built.run();
    let wall = start.elapsed();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    trace!(tracer, {
        let end = TraceEvent::span_end(0, 0, built.end_ns);
        if settings.deterministic {
            end
        } else {
            end.with_arg("wall_us", wall.as_micros() as u64)
        }
    });
    let trace = sink
        .map(|sink| sink.borrow_mut().take_events())
        .unwrap_or_default();
    RunOutcome {
        wall,
        stats,
        report,
        trace,
    }
}

/// Runs `plan` on `workers` threads (clamped to `1..=total_runs`) and
/// merges the per-run results into a [`CampaignReport`].
///
/// The aggregate — everything except wall-clock fields — is a pure
/// function of the plan: seeds are derived from plan coordinates, work is
/// claimed from an atomic cursor but folded by work-list index, and each
/// run's simulation is freshly constructed inside its worker.
///
/// # Errors
///
/// Returns a [`PlanError`] if the plan fails validation; no work starts.
pub fn run_campaign(plan: &CampaignPlan, workers: usize) -> Result<CampaignReport, PlanError> {
    run_campaign_with(plan, workers, TraceSettings::off())
}

/// [`run_campaign`] with tracing: each worker records its runs' events into
/// per-run in-memory sinks, and the collector merges them in work-list
/// order into [`CampaignReport::trace`] with one trace process (`pid`) per
/// run. With [`TraceSettings::deterministic`], the merged trace is
/// byte-identical for any worker count.
///
/// # Errors
///
/// Returns a [`PlanError`] if the plan fails validation; no work starts.
pub fn run_campaign_with(
    plan: &CampaignPlan,
    workers: usize,
    settings: TraceSettings,
) -> Result<CampaignReport, PlanError> {
    plan.validate()?;
    let specs = plan.run_specs();
    let workers = workers.clamp(1, specs.len());
    let cursor = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, RunOutcome)>();
    let started = Instant::now();

    let outcomes = thread::scope(|scope| {
        for _ in 0..workers {
            let tx = tx.clone();
            let cursor = &cursor;
            let specs = &specs;
            scope.spawn(move || loop {
                let index = cursor.fetch_add(1, Ordering::Relaxed);
                let Some(spec) = specs.get(index) else { break };
                let outcome = execute_run_with(spec, settings);
                if tx.send((index, outcome)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut outcomes: Vec<Option<RunOutcome>> = vec![None; specs.len()];
        for (index, outcome) in rx {
            outcomes[index] = Some(outcome);
        }
        outcomes
    });

    Ok(CampaignReport::assemble(
        plan,
        workers,
        started.elapsed(),
        &specs,
        outcomes,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CheckerMode;
    use designs::{AbsLevel, DesignKind, Fault};

    #[test]
    fn invalid_plan_is_rejected_before_work_starts() {
        let err = run_campaign(&CampaignPlan::new("empty"), 4).unwrap_err();
        assert!(matches!(err, PlanError::NoCells));
    }

    #[test]
    fn single_run_campaign_matches_direct_execution() {
        let plan = CampaignPlan::new("one")
            .cell(DesignKind::Des56, AbsLevel::TlmCa, CheckerMode::All)
            .size(6)
            .seed(99);
        let report = run_campaign(&plan, 1).expect("valid plan");
        let direct = execute_run(&plan.run_specs()[0]);
        assert_eq!(report.cells[0].stats, direct.stats);
        assert_eq!(report.cells[0].report, direct.report);
        assert!(report.all_pass());
    }

    #[test]
    fn workers_share_the_work_and_merge_identically() {
        let plan = CampaignPlan::new("grid")
            .cell(DesignKind::Des56, AbsLevel::Rtl, CheckerMode::First(2))
            .cell(DesignKind::ColorConv, AbsLevel::TlmAt, CheckerMode::All)
            .runs(4)
            .size(5)
            .seed(0xFEED);
        let solo = run_campaign(&plan, 1).expect("valid plan");
        let pooled = run_campaign(&plan, 3).expect("valid plan");
        assert_eq!(solo.deterministic_summary(), pooled.deterministic_summary());
        assert_eq!(pooled.workers, 3);
        assert_eq!(pooled.cells[0].runs, 4);
        assert_eq!(pooled.cells[1].runs, 4);
    }

    #[test]
    fn injected_fault_is_captured_with_its_seed() {
        let plan = CampaignPlan::new("fault")
            .cell_spec(
                crate::plan::CellSpec::new(DesignKind::Des56, AbsLevel::TlmAt, CheckerMode::All)
                    .with_fault(Fault::LatencyShort),
            )
            .runs(2)
            .size(5)
            .seed(0xDEAD);
        let report = run_campaign(&plan, 2).expect("valid plan");
        assert!(!report.all_pass());
        let first = report.cells[0]
            .first_failure
            .as_ref()
            .expect("fault detected");
        assert_eq!(first.rep, 0, "earliest failing repetition wins");
        assert_eq!(first.seed, plan.run_specs()[0].seed);
    }

    #[test]
    fn expected_passing_mode_excludes_review_failures() {
        let cell = |mode| {
            CampaignPlan::new("passing")
                .cell(DesignKind::ColorConv, AbsLevel::TlmAt, mode)
                .size(5)
                .seed(0xBEEF)
        };
        // The full suite carries c9, a review-expected failure at TLM-AT;
        // the expected-passing selection drops it and runs clean.
        let all = run_campaign(&cell(CheckerMode::All), 1).expect("valid plan");
        assert!(!all.all_pass());
        let passing = run_campaign(&cell(CheckerMode::ExpectedPassing), 1).expect("valid plan");
        assert!(passing.all_pass());
    }

    #[test]
    fn oversized_worker_count_is_clamped() {
        let plan = CampaignPlan::new("clamp")
            .cell(DesignKind::Des56, AbsLevel::TlmAt, CheckerMode::None)
            .size(4);
        let report = run_campaign(&plan, 64).expect("valid plan");
        assert_eq!(report.workers, 1, "1 run cannot use 64 workers");
    }
}
