//! `abv-campaign` — the parallel verification-campaign engine.
//!
//! A verification campaign multiplies everything the paper's flow offers —
//! designs, abstraction levels, abstracted property suites, randomized
//! workloads — into a grid of independent simulation runs. This crate
//! expresses that grid declaratively and executes it on a worker pool:
//!
//! - **plan** ([`CampaignPlan`]): design × abstraction level × checker
//!   selection cells, a repetition count and a base seed. Per-run seeds
//!   are forked from plan coordinates alone, so the work list is fixed
//!   before any thread starts.
//! - **shard** ([`run_campaign`]): a fixed pool of `std::thread` workers
//!   claims runs off a shared cursor. Each run constructs its own
//!   isolated [`desim::Simulation`] inside the worker thread (kernel
//!   state is deliberately not `Send`; only results cross threads).
//! - **merge** ([`CampaignReport`]): per-run reports and kernel counters
//!   fold in work-list order into per-cell aggregates with wall-clock
//!   and event-throughput stats, first-failure capture (repetition,
//!   seed, property, violation) and a
//!   [`deterministic_summary`](CampaignReport::deterministic_summary)
//!   that is byte-identical across worker counts.
//!
//! ```
//! use abv_campaign::{run_campaign, CampaignPlan, CheckerMode};
//! use designs::{AbsLevel, DesignKind};
//!
//! let plan = CampaignPlan::new("smoke")
//!     .cell(DesignKind::ColorConv, AbsLevel::TlmCa, CheckerMode::All)
//!     .runs(4)
//!     .size(6)
//!     .seed(0xC0FFEE);
//! let report = run_campaign(&plan, 2).unwrap();
//! assert!(report.all_pass());
//! let summary = report.deterministic_summary();
//! assert_eq!(summary, run_campaign(&plan, 1).unwrap().deterministic_summary());
//! ```

mod engine;
mod plan;
mod report;

pub use engine::{execute_run, execute_run_with, run_campaign, run_campaign_with, TraceSettings};
pub use plan::{run_seed, CampaignPlan, CellSpec, CheckerMode, PlanError, RunSpec};
pub use report::{CampaignReport, CellReport, FirstFailure, RunOutcome};
