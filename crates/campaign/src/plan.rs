//! Declarative campaign plans.
//!
//! A [`CampaignPlan`] describes a verification campaign as data: a grid of
//! [`CellSpec`]s (design × abstraction level × checker selection), a
//! repetition count, a workload size and a base seed. Expanding the plan
//! yields one [`RunSpec`] per `(cell, repetition)` pair, each with a seed
//! derived *only* from `(base_seed, cell, rep)` — never from scheduling —
//! so a campaign's work list is identical no matter how many workers later
//! execute it.

use std::fmt;

use designs::{AbsLevel, BuildError, DesignKind, Fault};
use psl::ClockedProperty;
use tinyrng::TinyRng;

/// Which slice of a design's property suite a cell installs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckerMode {
    /// No checkers — the bare-simulation baseline (`w/out c.` in Table I).
    None,
    /// The first `n` properties of the suite, in suite order.
    First(usize),
    /// The whole suite available at the cell's level.
    All,
    /// The properties expected to *pass* at the cell's level — the suite
    /// minus review-expected-fail entries (see
    /// [`designs::passing_properties_at`]). Mutation campaigns use this so
    /// a kill is always a genuine detection, never a known false alarm.
    ExpectedPassing,
}

impl CheckerMode {
    /// Parses `"none"`/`"without"`, `"all"`/`"with"`,
    /// `"passing"`/`"expected-passing"`, or a number `n` (meaning the
    /// first `n` properties).
    #[must_use]
    pub fn parse(s: &str) -> Option<CheckerMode> {
        match s.to_ascii_lowercase().as_str() {
            "none" | "without" | "off" => Some(CheckerMode::None),
            "all" | "with" | "on" => Some(CheckerMode::All),
            "passing" | "expected-passing" => Some(CheckerMode::ExpectedPassing),
            n => n.parse().ok().map(|n| {
                if n == 0 {
                    CheckerMode::None
                } else {
                    CheckerMode::First(n)
                }
            }),
        }
    }

    /// Applies the selection to a suite's property list.
    #[must_use]
    pub fn select(self, all: Vec<(String, ClockedProperty)>) -> Vec<(String, ClockedProperty)> {
        match self {
            CheckerMode::None => Vec::new(),
            CheckerMode::First(n) => all.into_iter().take(n).collect(),
            CheckerMode::All | CheckerMode::ExpectedPassing => all,
        }
    }
}

impl fmt::Display for CheckerMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckerMode::None => f.write_str("no checkers"),
            CheckerMode::First(n) => write!(f, "{n} checker(s)"),
            CheckerMode::All => f.write_str("all checkers"),
            CheckerMode::ExpectedPassing => f.write_str("expected-passing checkers"),
        }
    }
}

/// One cell of the campaign grid: a design at an abstraction level with a
/// checker selection and an optional injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellSpec {
    /// Which IP to simulate.
    pub design: DesignKind,
    /// At which abstraction level.
    pub level: AbsLevel,
    /// Which properties to attach.
    pub checkers: CheckerMode,
    /// Design mutation to inject (fault-detection campaigns).
    pub fault: Fault,
}

impl CellSpec {
    /// A fault-free cell.
    #[must_use]
    pub fn new(design: DesignKind, level: AbsLevel, checkers: CheckerMode) -> CellSpec {
        CellSpec {
            design,
            level,
            checkers,
            fault: Fault::None,
        }
    }

    /// The same cell with `fault` injected into the design.
    #[must_use]
    pub fn with_fault(mut self, fault: Fault) -> CellSpec {
        self.fault = fault;
        self
    }
}

impl fmt::Display for CellSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @ {} [{}]",
            self.design.label(),
            self.level.label(),
            self.checkers
        )?;
        if self.fault != Fault::None {
            write!(f, " fault={:?}", self.fault)?;
        }
        Ok(())
    }
}

/// A fully described unit of work: cell `cell` of the plan, repetition
/// `rep`, with its derived workload seed. A run is reproducible from this
/// value alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSpec {
    /// Index of the cell in [`CampaignPlan::cells`].
    pub cell: usize,
    /// Repetition index within the cell, `0..runs_per_cell`.
    pub rep: usize,
    /// The cell being run.
    pub spec: CellSpec,
    /// Workload size (requests / frames / samples).
    pub size: usize,
    /// Derived workload seed (see [`run_seed`]).
    pub seed: u64,
}

/// The workload seed of repetition `rep` of cell `cell`, derived from the
/// plan's base seed only — execution order and worker count play no part.
#[must_use]
pub fn run_seed(base_seed: u64, cell: usize, rep: usize) -> u64 {
    TinyRng::fork(base_seed, ((cell as u64) << 32) | rep as u64).next_u64()
}

/// A declarative verification-campaign plan.
///
/// ```
/// use abv_campaign::{CampaignPlan, CheckerMode};
/// use designs::{AbsLevel, DesignKind};
///
/// let plan = CampaignPlan::new("nightly")
///     .cell(DesignKind::ColorConv, AbsLevel::TlmAt, CheckerMode::All)
///     .runs(100)
///     .size(40)
///     .seed(0xC0FFEE);
/// assert_eq!(plan.total_runs(), 100);
/// ```
#[derive(Debug, Clone)]
pub struct CampaignPlan {
    /// Display name of the campaign.
    pub name: String,
    /// The campaign grid.
    pub cells: Vec<CellSpec>,
    /// Repetitions per cell, each with its own derived seed.
    pub runs_per_cell: usize,
    /// Workload size per run.
    pub size: usize,
    /// Base seed the per-run seeds are forked from.
    pub base_seed: u64,
}

impl CampaignPlan {
    /// An empty plan named `name` with defaults: 1 run per cell, workload
    /// size 100, base seed 0xABC.
    #[must_use]
    pub fn new(name: impl Into<String>) -> CampaignPlan {
        CampaignPlan {
            name: name.into(),
            cells: Vec::new(),
            runs_per_cell: 1,
            size: 100,
            base_seed: 0xABC,
        }
    }

    /// Appends a fault-free cell.
    #[must_use]
    pub fn cell(self, design: DesignKind, level: AbsLevel, checkers: CheckerMode) -> CampaignPlan {
        self.cell_spec(CellSpec::new(design, level, checkers))
    }

    /// Appends an explicit cell spec.
    #[must_use]
    pub fn cell_spec(mut self, spec: CellSpec) -> CampaignPlan {
        self.cells.push(spec);
        self
    }

    /// Sets repetitions per cell.
    #[must_use]
    pub fn runs(mut self, runs: usize) -> CampaignPlan {
        self.runs_per_cell = runs;
        self
    }

    /// Sets the workload size per run.
    #[must_use]
    pub fn size(mut self, size: usize) -> CampaignPlan {
        self.size = size;
        self
    }

    /// Sets the base seed.
    #[must_use]
    pub fn seed(mut self, base_seed: u64) -> CampaignPlan {
        self.base_seed = base_seed;
        self
    }

    /// Total number of runs the plan expands to.
    #[must_use]
    pub fn total_runs(&self) -> usize {
        self.cells.len() * self.runs_per_cell
    }

    /// Checks the plan is executable: non-empty, positive run count and
    /// size, and every cell's design has a model at its level.
    ///
    /// # Errors
    ///
    /// Returns the first problem found.
    pub fn validate(&self) -> Result<(), PlanError> {
        if self.cells.is_empty() {
            return Err(PlanError::NoCells);
        }
        if self.runs_per_cell == 0 {
            return Err(PlanError::ZeroRuns);
        }
        if self.size == 0 {
            return Err(PlanError::ZeroSize);
        }
        for (index, cell) in self.cells.iter().enumerate() {
            // Probe-build a minimal instance so the supported-level rule
            // stays in one place (the design factory).
            designs::build(cell.design, cell.level, 1, 0, cell.fault)
                .map_err(|source| PlanError::BadCell { index, source })?;
        }
        Ok(())
    }

    /// Expands the plan into its work list, cell-major (`cell 0 rep 0`,
    /// `cell 0 rep 1`, …). The list — including every seed — depends only
    /// on the plan.
    #[must_use]
    pub fn run_specs(&self) -> Vec<RunSpec> {
        let mut specs = Vec::with_capacity(self.total_runs());
        for (cell, spec) in self.cells.iter().enumerate() {
            for rep in 0..self.runs_per_cell {
                specs.push(RunSpec {
                    cell,
                    rep,
                    spec: *spec,
                    size: self.size,
                    seed: run_seed(self.base_seed, cell, rep),
                });
            }
        }
        specs
    }
}

/// Why a plan cannot be executed.
#[derive(Debug)]
pub enum PlanError {
    /// The plan has no cells.
    NoCells,
    /// `runs_per_cell` is zero.
    ZeroRuns,
    /// `size` is zero.
    ZeroSize,
    /// A cell's design/level combination has no model.
    BadCell {
        /// Index of the offending cell.
        index: usize,
        /// The factory's rejection.
        source: BuildError,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::NoCells => f.write_str("campaign plan has no cells"),
            PlanError::ZeroRuns => f.write_str("campaign plan has zero runs per cell"),
            PlanError::ZeroSize => f.write_str("campaign plan has zero workload size"),
            PlanError::BadCell { index, source } => {
                write!(f, "cell {index} is not executable: {source}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::BadCell { source, .. } => Some(source),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_depend_only_on_plan_coordinates() {
        let a = run_seed(7, 3, 11);
        assert_eq!(a, run_seed(7, 3, 11));
        assert_ne!(a, run_seed(7, 3, 12));
        assert_ne!(a, run_seed(7, 4, 11));
        assert_ne!(a, run_seed(8, 3, 11));
    }

    #[test]
    fn expansion_is_cell_major_and_seeded() {
        let plan = CampaignPlan::new("t")
            .cell(DesignKind::Des56, AbsLevel::Rtl, CheckerMode::All)
            .cell(DesignKind::ColorConv, AbsLevel::TlmAt, CheckerMode::None)
            .runs(3)
            .size(10);
        let specs = plan.run_specs();
        assert_eq!(specs.len(), 6);
        assert_eq!((specs[0].cell, specs[0].rep), (0, 0));
        assert_eq!((specs[2].cell, specs[2].rep), (0, 2));
        assert_eq!((specs[3].cell, specs[3].rep), (1, 0));
        assert_eq!(specs[4].seed, run_seed(plan.base_seed, 1, 1));
    }

    #[test]
    fn validation_catches_empty_and_unsupported() {
        assert!(matches!(
            CampaignPlan::new("t").validate(),
            Err(PlanError::NoCells)
        ));
        let plan =
            CampaignPlan::new("t").cell(DesignKind::Des56, AbsLevel::TlmAtBulk, CheckerMode::None);
        assert!(matches!(
            plan.validate(),
            Err(PlanError::BadCell { index: 0, .. })
        ));
        let plan = CampaignPlan::new("t")
            .cell(DesignKind::Des56, AbsLevel::Rtl, CheckerMode::None)
            .runs(0);
        assert!(matches!(plan.validate(), Err(PlanError::ZeroRuns)));
    }

    #[test]
    fn checker_mode_parse_and_select() {
        assert_eq!(CheckerMode::parse("with"), Some(CheckerMode::All));
        assert_eq!(CheckerMode::parse("without"), Some(CheckerMode::None));
        assert_eq!(CheckerMode::parse("3"), Some(CheckerMode::First(3)));
        assert_eq!(CheckerMode::parse("0"), Some(CheckerMode::None));
        assert_eq!(
            CheckerMode::parse("passing"),
            Some(CheckerMode::ExpectedPassing)
        );
        assert_eq!(
            CheckerMode::parse("expected-passing"),
            Some(CheckerMode::ExpectedPassing)
        );
        assert_eq!(CheckerMode::parse("sideways"), None);
        let all = designs::properties_at(DesignKind::Des56, AbsLevel::Rtl);
        assert_eq!(CheckerMode::None.select(all.clone()).len(), 0);
        assert_eq!(CheckerMode::First(2).select(all.clone()).len(), 2);
        assert_eq!(CheckerMode::ExpectedPassing.select(all.clone()).len(), 9);
        assert_eq!(CheckerMode::All.select(all).len(), 9);
    }
}
