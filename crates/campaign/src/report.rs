//! Campaign result aggregation.
//!
//! Workers hand back one [`RunOutcome`] per [`RunSpec`]; the engine folds
//! them **in work-list order** into per-cell aggregates, so the merged
//! result is a pure function of the plan — the worker count and scheduling
//! interleavings only affect wall-clock fields. [`CampaignReport::deterministic_summary`]
//! renders exactly the scheduling-independent part, which campaigns use to
//! assert byte-identical results across worker counts.

use std::fmt;
use std::time::Duration;

use abv_checker::{CheckReport, Failure};
use abv_obs::TraceEvent;
use desim::SimStats;

use crate::plan::{CampaignPlan, CellSpec, RunSpec};

/// Everything one run produced.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Wall-clock duration of the simulation loop.
    pub wall: Duration,
    /// Kernel counters of this run.
    pub stats: SimStats,
    /// Suite report of this run (empty without checkers).
    pub report: CheckReport,
    /// Recorded trace events (empty unless tracing was enabled via
    /// [`TraceSettings`](crate::TraceSettings)).
    pub trace: Vec<TraceEvent>,
}

/// The earliest failing run of a cell (work-list order) with enough
/// context to reproduce it: the repetition index and its derived seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirstFailure {
    /// Repetition index within the cell.
    pub rep: usize,
    /// The failing run's workload seed.
    pub seed: u64,
    /// Name of the first failing property of that run.
    pub property: String,
    /// Its first recorded violation.
    pub failure: Failure,
}

impl fmt::Display for FirstFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "run {} (seed {:#018x}) {}: {}",
            self.rep, self.seed, self.property, self.failure
        )
    }
}

/// Aggregate of all repetitions of one cell.
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell that was run.
    pub spec: CellSpec,
    /// Number of repetitions folded in.
    pub runs: usize,
    /// Kernel counters summed over all repetitions.
    pub stats: SimStats,
    /// Suite report merged over all repetitions
    /// (see [`CheckReport::merge`]).
    pub report: CheckReport,
    /// Total simulation wall time across repetitions.
    pub wall_total: Duration,
    /// Fastest repetition.
    pub wall_min: Duration,
    /// Slowest repetition.
    pub wall_max: Duration,
    /// Earliest failing repetition, if any.
    pub first_failure: Option<FirstFailure>,
}

impl CellReport {
    fn new(spec: CellSpec) -> CellReport {
        CellReport {
            spec,
            runs: 0,
            stats: SimStats::new(),
            report: CheckReport::new(),
            wall_total: Duration::ZERO,
            wall_min: Duration::MAX,
            wall_max: Duration::ZERO,
            first_failure: None,
        }
    }

    fn fold(&mut self, spec: &RunSpec, outcome: &RunOutcome) {
        self.runs += 1;
        self.stats.merge(&outcome.stats);
        self.report.merge(&outcome.report);
        self.wall_total += outcome.wall;
        self.wall_min = self.wall_min.min(outcome.wall);
        self.wall_max = self.wall_max.max(outcome.wall);
        if self.first_failure.is_none() {
            if let Some(property) = outcome
                .report
                .properties
                .iter()
                .find(|p| p.failure_count > 0)
            {
                if let Some(failure) = property.failures.first() {
                    self.first_failure = Some(FirstFailure {
                        rep: spec.rep,
                        seed: spec.seed,
                        property: property.name.clone(),
                        failure: failure.clone(),
                    });
                }
            }
        }
    }

    /// True if every merged property passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.report.all_pass()
    }

    /// Kernel events processed per wall-clock second, over all
    /// repetitions.
    #[must_use]
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_total.is_zero() {
            return 0.0;
        }
        self.stats.events_processed as f64 / self.wall_total.as_secs_f64()
    }
}

/// The merged result of a whole campaign.
#[derive(Debug, Clone)]
pub struct CampaignReport {
    /// Plan name.
    pub name: String,
    /// Workers the campaign executed with (wall-clock context only).
    pub workers: usize,
    /// Per-cell aggregates, in plan order.
    pub cells: Vec<CellReport>,
    /// End-to-end campaign wall time (including scheduling).
    pub wall_total: Duration,
    /// Runs per cell, echoed from the plan.
    pub runs_per_cell: usize,
    /// Workload size, echoed from the plan.
    pub size: usize,
    /// Base seed, echoed from the plan.
    pub base_seed: u64,
    /// Merged trace: per-run event streams concatenated in work-list order,
    /// each run remapped to its own trace process (`pid` = work-list index)
    /// and labelled via `process_name` metadata. Empty without tracing.
    pub trace: Vec<TraceEvent>,
}

impl CampaignReport {
    /// Folds per-run outcomes (aligned with `specs`, which is the plan's
    /// work list in order) into per-cell aggregates.
    ///
    /// # Panics
    ///
    /// Panics if an outcome slot is missing — the engine guarantees one
    /// outcome per spec.
    #[must_use]
    pub fn assemble(
        plan: &CampaignPlan,
        workers: usize,
        wall_total: Duration,
        specs: &[RunSpec],
        outcomes: Vec<Option<RunOutcome>>,
    ) -> CampaignReport {
        let mut cells: Vec<CellReport> = plan
            .cells
            .iter()
            .map(|&spec| CellReport::new(spec))
            .collect();
        let mut trace = Vec::new();
        for (run_index, (spec, outcome)) in specs.iter().zip(&outcomes).enumerate() {
            let outcome = outcome.as_ref().expect("one outcome per run spec");
            cells[spec.cell].fold(spec, outcome);
            if !outcome.trace.is_empty() {
                let pid = run_index as u64;
                trace.push(TraceEvent::process_name(
                    pid,
                    &format!(
                        "run {run_index}: {} rep {} seed {:#018x}",
                        plan.cells[spec.cell], spec.rep, spec.seed
                    ),
                ));
                trace.extend(outcome.trace.iter().cloned().map(|mut ev| {
                    ev.pid = pid;
                    ev
                }));
            }
        }
        CampaignReport {
            name: plan.name.clone(),
            workers,
            cells,
            wall_total,
            runs_per_cell: plan.runs_per_cell,
            size: plan.size,
            base_seed: plan.base_seed,
            trace,
        }
    }

    /// True if every cell passed.
    #[must_use]
    pub fn all_pass(&self) -> bool {
        self.cells.iter().all(CellReport::all_pass)
    }

    /// Total failures across all cells.
    #[must_use]
    pub fn total_failures(&self) -> u64 {
        self.cells.iter().map(|c| c.report.total_failures()).sum()
    }

    /// The scheduling-independent rendering of the campaign result: plan
    /// echo, per-cell merged kernel counters, merged per-property reports
    /// and first failures. Wall-clock, throughput and worker count are
    /// deliberately excluded, so the same plan yields **byte-identical**
    /// summaries at any worker count.
    #[must_use]
    pub fn deterministic_summary(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "campaign {}: {} cell(s) x {} run(s), size {}, seed {:#x}",
            self.name,
            self.cells.len(),
            self.runs_per_cell,
            self.size,
            self.base_seed
        );
        for (i, cell) in self.cells.iter().enumerate() {
            let _ = writeln!(out, "cell {i}: {} -- {}", cell.spec, cell.stats);
            for p in &cell.report.properties {
                let _ = writeln!(out, "  {p}");
            }
            match &cell.first_failure {
                Some(first) => {
                    let _ = writeln!(out, "  first failure: {first}");
                }
                None => {
                    let _ = writeln!(out, "  no failures");
                }
            }
        }
        let _ = writeln!(
            out,
            "verdict: {}",
            if self.all_pass() { "PASS" } else { "FAIL" }
        );
        out
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.deterministic_summary())?;
        writeln!(
            f,
            "timing: {:.3}s total on {} worker(s)",
            self.wall_total.as_secs_f64(),
            self.workers
        )?;
        for (i, cell) in self.cells.iter().enumerate() {
            writeln!(
                f,
                "  cell {i}: sim {:.3}s (min {:.1}ms / max {:.1}ms per run), {:.0} events/s",
                cell.wall_total.as_secs_f64(),
                cell.wall_min.as_secs_f64() * 1e3,
                cell.wall_max.as_secs_f64() * 1e3,
                cell.events_per_sec()
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::CheckerMode;
    use abv_checker::PropertyReport;
    use designs::{AbsLevel, DesignKind};

    fn outcome(events: u64, wall_ms: u64, failures: u64) -> RunOutcome {
        let mut p = PropertyReport::new("p".into());
        p.activations = 1;
        for i in 0..failures {
            // Only reachable through the checker in production; emulate via
            // merge of a crafted report.
            let mut one = PropertyReport::new("p".into());
            one.failure_count = 1;
            one.failures = vec![Failure {
                fire_ns: i,
                fail_ns: i + 1,
                reason: abv_checker::FailReason::Violated,
                residual: String::new(),
            }];
            p.merge(&one);
        }
        RunOutcome {
            wall: Duration::from_millis(wall_ms),
            stats: SimStats {
                events_processed: events,
                ..SimStats::new()
            },
            report: [p].into_iter().collect(),
            trace: Vec::new(),
        }
    }

    fn tiny_plan() -> CampaignPlan {
        CampaignPlan::new("t")
            .cell(DesignKind::Des56, AbsLevel::Rtl, CheckerMode::First(1))
            .runs(2)
            .size(5)
    }

    #[test]
    fn assemble_merges_in_work_list_order() {
        let plan = tiny_plan();
        let specs = plan.run_specs();
        let outcomes = vec![Some(outcome(10, 4, 0)), Some(outcome(30, 2, 1))];
        let report = CampaignReport::assemble(&plan, 3, Duration::from_millis(9), &specs, outcomes);
        assert_eq!(report.cells.len(), 1);
        let cell = &report.cells[0];
        assert_eq!(cell.runs, 2);
        assert_eq!(cell.stats.events_processed, 40);
        assert_eq!(cell.wall_min, Duration::from_millis(2));
        assert_eq!(cell.wall_max, Duration::from_millis(4));
        assert_eq!(cell.report.properties[0].activations, 2);
        let first = cell.first_failure.as_ref().expect("failure captured");
        assert_eq!(first.rep, 1);
        assert_eq!(first.seed, specs[1].seed);
        assert_eq!(first.property, "p");
        assert!(!report.all_pass());
        assert_eq!(report.total_failures(), 1);
    }

    #[test]
    fn deterministic_summary_excludes_timing() {
        let plan = tiny_plan();
        let specs = plan.run_specs();
        let fast = CampaignReport::assemble(
            &plan,
            1,
            Duration::from_millis(1),
            &specs,
            vec![Some(outcome(10, 1, 0)), Some(outcome(10, 1, 0))],
        );
        let slow = CampaignReport::assemble(
            &plan,
            8,
            Duration::from_millis(999),
            &specs,
            vec![Some(outcome(10, 500, 0)), Some(outcome(10, 400, 0))],
        );
        assert_eq!(fast.deterministic_summary(), slow.deterministic_summary());
        assert!(fast.deterministic_summary().contains("verdict: PASS"));
        assert!(fast.to_string().contains("timing:"));
    }
}
