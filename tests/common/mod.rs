//! Shared helpers for the integration tests: configured abstractions and
//! fully-wired verification runs for both IPs at all abstraction levels.
//!
//! Each integration-test binary uses its own subset of these helpers.
#![allow(dead_code)]

use abv_checker::{Binding, CheckReport, Checker};
use abv_core::{abstract_property, reuse_at_cycle_accurate, AbstractionConfig};
use designs::{colorconv, des56, PropertyClass, SuiteEntry, CLOCK_PERIOD_NS};
use psl::ClockedProperty;
use tlmkit::CodingStyle;

/// The DES56 abstraction configuration (10 ns clock, prediction outputs
/// removed).
pub fn des_config() -> AbstractionConfig {
    AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(des56::ABSTRACTED_SIGNALS.iter().copied())
}

/// The ColorConv abstraction configuration.
pub fn conv_config() -> AbstractionConfig {
    AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(colorconv::ABSTRACTED_SIGNALS.iter().copied())
}

/// Abstracts a suite into named TLM properties, dropping deleted ones.
/// Panics on abstraction errors (suite properties are all abstractable).
pub fn abstract_suite_for_tlm(
    suite: &[SuiteEntry],
    cfg: &AbstractionConfig,
) -> Vec<(String, ClockedProperty, PropertyClass)> {
    suite
        .iter()
        .filter_map(|entry| {
            let a = abstract_property(&entry.rtl, cfg).expect("suite property abstracts");
            a.into_property()
                .map(|q| (entry.name.to_owned(), q, entry.class))
        })
        .collect()
}

/// Runs the full RTL verification of DES56 and returns the report.
pub fn verify_des_rtl(workload: &des56::DesWorkload, mutation: des56::DesMutation) -> CheckReport {
    let mut built = des56::build_rtl(workload, mutation);
    let props: Vec<(String, ClockedProperty)> =
        des56::suite().iter().map(SuiteEntry::named).collect();
    let checkers = Checker::attach_all(&mut built.sim, &props, Binding::clock(built.clk.signal))
        .expect("RTL properties install");
    built.run();
    Checker::collect(&mut built.sim, &checkers, built.end_ns)
}

/// Runs DES56 TLM-CA with the *unabstracted* RTL properties re-clocked to
/// the basic transaction context (the paper's TLM-CA experiment).
pub fn verify_des_tlm_ca_reused(
    workload: &des56::DesWorkload,
    mutation: des56::DesMutation,
) -> CheckReport {
    let mut built = des56::build_tlm_ca(workload, mutation);
    let props: Vec<(String, ClockedProperty)> = des56::suite()
        .iter()
        .map(|e| {
            (
                e.name.to_owned(),
                reuse_at_cycle_accurate(&e.rtl).expect("clock context"),
            )
        })
        .collect();
    let checkers = Checker::attach_all(&mut built.sim, &props, Binding::bus(&built.bus))
        .expect("CA properties install");
    built.run();
    Checker::collect(&mut built.sim, &checkers, built.end_ns)
}

/// Runs DES56 at a TLM level with the *abstracted* properties.
pub fn verify_des_tlm_abstracted(
    workload: &des56::DesWorkload,
    mutation: des56::DesMutation,
    style: CodingStyle,
) -> (CheckReport, Vec<(String, PropertyClass)>) {
    let mut built = match style {
        CodingStyle::CycleAccurate => des56::build_tlm_ca(workload, mutation),
        _ => des56::build_tlm_at(workload, mutation, style),
    };
    let abstracted = abstract_suite_for_tlm(&des56::suite(), &des_config());
    let classes: Vec<(String, PropertyClass)> =
        abstracted.iter().map(|(n, _, c)| (n.clone(), *c)).collect();
    let props: Vec<(String, ClockedProperty)> =
        abstracted.into_iter().map(|(n, q, _)| (n, q)).collect();
    let checkers = Checker::attach_all(&mut built.sim, &props, Binding::bus(&built.bus))
        .expect("TLM properties install");
    built.run();
    (
        Checker::collect(&mut built.sim, &checkers, built.end_ns),
        classes,
    )
}

/// Runs the full RTL verification of ColorConv.
pub fn verify_conv_rtl(
    workload: &colorconv::ConvWorkload,
    mutation: colorconv::ConvMutation,
) -> CheckReport {
    let mut built = colorconv::build_rtl(workload, mutation);
    let props: Vec<(String, ClockedProperty)> =
        colorconv::suite().iter().map(SuiteEntry::named).collect();
    let checkers = Checker::attach_all(&mut built.sim, &props, Binding::clock(built.clk.signal))
        .expect("RTL properties install");
    built.run();
    Checker::collect(&mut built.sim, &checkers, built.end_ns)
}

/// Runs ColorConv at a TLM level with the *abstracted* properties.
pub fn verify_conv_tlm_abstracted(
    workload: &colorconv::ConvWorkload,
    mutation: colorconv::ConvMutation,
    style: CodingStyle,
) -> (CheckReport, Vec<(String, PropertyClass)>) {
    let mut built = match style {
        CodingStyle::CycleAccurate => colorconv::build_tlm_ca(workload, mutation),
        _ => colorconv::build_tlm_at(workload, mutation, style),
    };
    let abstracted = abstract_suite_for_tlm(&colorconv::suite(), &conv_config());
    let classes: Vec<(String, PropertyClass)> =
        abstracted.iter().map(|(n, _, c)| (n.clone(), *c)).collect();
    let props: Vec<(String, ClockedProperty)> =
        abstracted.into_iter().map(|(n, q, _)| (n, q)).collect();
    let checkers = Checker::attach_all(&mut built.sim, &props, Binding::bus(&built.bus))
        .expect("TLM properties install");
    built.run();
    (
        Checker::collect(&mut built.sim, &checkers, built.end_ns),
        classes,
    )
}

/// Asserts that every property in `report` passes; includes the failing
/// property's diagnostics in the panic message.
#[track_caller]
pub fn assert_all_pass(report: &CheckReport) {
    for p in &report.properties {
        assert_eq!(
            p.failure_count,
            0,
            "property {} failed: {:?}",
            p.name,
            p.failures.first()
        );
    }
}
