//! Exact reproduction of the paper's Fig. 3: the three DES56 RTL
//! properties and the TLM properties the methodology generates from them.

mod common;

use abv_core::{abstract_property, Consequence};
use common::des_config;
use designs::des56;

fn abstracted(name: &str) -> (String, Consequence) {
    let suite = des56::suite();
    let entry = suite.iter().find(|e| e.name == name).expect("suite entry");
    let a = abstract_property(&entry.rtl, &des_config()).expect("abstracts");
    let consequence = a.consequence();
    let q = a
        .into_property()
        .map(|q| q.to_string())
        .unwrap_or_else(|| "(deleted)".to_owned());
    (q, consequence)
}

#[test]
fn p1_to_q1() {
    // Paper: q1 = always (!(ds && indata = 0) || (next^1_170(out != 0))) @T_b.
    // NNF distributes the negated conjunction; the timing is identical.
    let (q1, consequence) = abstracted("p1");
    assert_eq!(
        q1,
        "always (((!ds) || (indata != 0)) || (next_et[1, 170] (out != 0))) @T_b"
    );
    assert_eq!(consequence, Consequence::Equivalent);
}

#[test]
fn p2_to_q2() {
    // Paper: q2 = always (!ds || (next^1_10(!ds) until next^2_20(rdy))) @T_b.
    let (q2, consequence) = abstracted("p2");
    assert_eq!(
        q2,
        "always ((!ds) || ((next_et[1, 10] (!ds)) until (next_et[2, 20] rdy))) @T_b"
    );
    assert_eq!(consequence, Consequence::Equivalent);
}

#[test]
fn p3_to_q3() {
    // Paper: q3 = always (!ds || next^1_170(rdy)) @T_b — note τ = 1: the
    // deleted prediction conjuncts do not consume τ indices.
    let (q3, consequence) = abstracted("p3");
    assert_eq!(q3, "always ((!ds) || (next_et[1, 170] rdy)) @T_b");
    assert_eq!(consequence, Consequence::Weakened);
}

#[test]
fn intermediate_forms_of_p2_match_the_paper_walkthrough() {
    // Section III-A walks p2 through push-ahead and Algorithm III.1.
    let p2_body: psl::Property = "!ds || (next ((!ds) until next rdy))".parse().unwrap();
    let nnf = psl::nnf::to_nnf(&p2_body);
    let pushed = psl::push_ahead::push_ahead(&nnf).unwrap();
    assert_eq!(
        pushed.to_string(),
        "(!ds) || ((next (!ds)) until (next[2] rdy))"
    );
    let substituted = abv_core::algorithm::next_substitution(&pushed, 10).unwrap();
    assert_eq!(
        substituted.to_string(),
        "(!ds) || ((next_et[1, 10] (!ds)) until (next_et[2, 20] rdy))"
    );
}

#[test]
fn tau_epsilon_pairs_match_fig3() {
    let (q2, _) = abstracted("p2");
    // τ/ε exactly as printed in Fig. 3: next^1_10 and next^2_20.
    assert!(q2.contains("next_et[1, 10]"));
    assert!(q2.contains("next_et[2, 20]"));
    let (q1, _) = abstracted("p1");
    assert!(q1.contains("next_et[1, 170]"));
}
