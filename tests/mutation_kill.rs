//! Tier-1 mutation kill-matrix test (paper Section V, faulty designs).
//!
//! Runs the full fault catalogue of all three IPs at RTL, TLM-CA and
//! TLM-AT (workload size 8, seed 2015) and pins the kill matrix:
//!
//! - the unmutated baseline is failure-free everywhere (a kill is a
//!   detection, never a false alarm);
//! - every catalogued mutant is killed at every level — 100% mutation
//!   score for all three IPs at RTL, and **zero** RTL→TLM detection
//!   regressions, the empirical face of Theorem III.1;
//! - latency mutants are killed by the latency properties;
//! - the JSON report is byte-identical across worker counts.

use abv_campaign::TraceSettings;
use abv_mutate::{run_mutation, MutationOutcome, MutationPlan};
use designs::{AbsLevel, DesignKind, Fault};

fn full_outcome(workers: usize) -> MutationOutcome {
    run_mutation(&MutationPlan::new(), workers, TraceSettings::off()).expect("valid plan")
}

#[test]
fn baseline_survives_everywhere_with_zero_failures() {
    let outcome = full_outcome(2);
    assert!(outcome.matrix.baseline_clean());
    for dm in &outcome.matrix.designs {
        for cell in &dm.baseline().cells {
            assert_eq!(
                cell.failures,
                0,
                "{} baseline fails at {}",
                dm.design.label(),
                cell.level.label()
            );
            assert!(!cell.killed);
        }
    }
}

#[test]
fn every_mutant_is_killed_at_every_level() {
    let outcome = full_outcome(4);
    for dm in &outcome.matrix.designs {
        for row in dm.mutants.iter().filter(|m| m.fault != Fault::None) {
            for cell in &row.cells {
                assert!(
                    cell.killed,
                    "{} {} survives at {}",
                    dm.design.label(),
                    row.fault,
                    cell.level.label()
                );
            }
        }
    }
}

#[test]
fn rtl_mutation_score_is_total_for_all_three_ips() {
    let outcome = full_outcome(2);
    let expected = [
        (DesignKind::Des56, 7),
        (DesignKind::ColorConv, 7),
        (DesignKind::Fir, 5),
    ];
    for (design, mutants) in expected {
        let dm = outcome.matrix.design(design).expect("design ran");
        for &level in &[AbsLevel::Rtl, AbsLevel::TlmCa, AbsLevel::TlmAt] {
            assert_eq!(
                dm.mutation_score(level),
                (mutants, mutants),
                "{} @ {}",
                design.label(),
                level.label()
            );
        }
    }
}

#[test]
fn no_detection_power_is_lost_from_rtl_to_tlm() {
    let outcome = full_outcome(2);
    let regressions = outcome.matrix.detection_regressions();
    assert!(
        regressions.is_empty(),
        "RTL kills escape at TLM: {regressions:?}"
    );
    assert!(outcome.matrix.detection_gains().is_empty());
}

#[test]
fn latency_mutants_are_killed_by_latency_properties() {
    let outcome = full_outcome(2);
    let expected = [
        (DesignKind::Des56, "p4"),
        (DesignKind::ColorConv, "c1"),
        (DesignKind::Fir, "f1"),
    ];
    for (design, latency_property) in expected {
        let dm = outcome.matrix.design(design).expect("design ran");
        let row = dm.mutant(Fault::LatencyShort).expect("catalogued");
        for cell in &row.cells {
            assert!(
                cell.failing_properties().contains(&latency_property),
                "{} latency-short at {}: {:?}",
                design.label(),
                cell.level.label(),
                cell.failing_properties()
            );
        }
    }
}

#[test]
fn json_report_is_byte_identical_across_worker_counts() {
    let solo = full_outcome(1).matrix.to_json();
    let duo = full_outcome(2).matrix.to_json();
    let octo = full_outcome(8).matrix.to_json();
    assert_eq!(solo, duo);
    assert_eq!(solo, octo);
    assert!(solo.contains("\"schema\":\"rtl2tlm-kill-matrix-v1\""));
}
