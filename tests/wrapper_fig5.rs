//! The Fig. 5 wrapper scenario: checker instances for `q3` activated at
//! each transaction, reset/reused on completion, and a failure raised when
//! a transaction arrives past an unconsumed evaluation point (the paper's
//! "failure at time 350ns because checker instance C[3] was not executed
//! when expected at time 340ns").

use abv_checker::{Binding, Checker, FailReason};
use desim::{Component, Event, SignalId, SimCtx, SimTime, Simulation};
use psl::ClockedProperty;
use tlmkit::{Transaction, TransactionBus};

/// Replays a scripted sequence of `(time, ds, rdy)` transactions.
struct ScriptedModel {
    bus: TransactionBus,
    ds: SignalId,
    rdy: SignalId,
    script: Vec<(u64, u64, u64)>,
    next: usize,
}

impl Component for ScriptedModel {
    fn handle(&mut self, ev: Event, ctx: &mut SimCtx<'_>) {
        let (_, ds, rdy) = self.script[self.next];
        ctx.write(self.ds, ds);
        ctx.write(self.rdy, rdy);
        self.bus.publish(ctx, Transaction::write(0, 0, ev.time));
        self.next += 1;
        if let Some(&(t, _, _)) = self.script.get(self.next) {
            ctx.schedule_self(t - ev.time.as_ns(), 0);
        }
    }
}

fn run_script(script: Vec<(u64, u64, u64)>) -> abv_checker::PropertyReport {
    let mut sim = Simulation::new();
    let bus = TransactionBus::new();
    let ds = sim.add_signal("ds", 0);
    let rdy = sim.add_signal("rdy", 0);
    let first = script[0].0;
    let model = sim.add_component(ScriptedModel {
        bus: bus.clone(),
        ds,
        rdy,
        script,
        next: 0,
    });
    sim.schedule(SimTime::from_ns(first), model, 0);

    let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
    let checker = Checker::attach(&mut sim, "q3", &q3, Binding::bus(&bus)).unwrap();
    sim.run_to_completion();
    let end = sim.now().as_ns();
    checker.finalize(&mut sim, end)
}

#[test]
fn fig5_failure_when_expected_instant_is_skipped() {
    // A firing at 170ns expects rdy at 340ns. Transactions occur every
    // 10ns up to 330ns, then the next one only at 350ns.
    let mut script: Vec<(u64, u64, u64)> = Vec::new();
    for t in (170..=330).step_by(10) {
        script.push((t, u64::from(t == 170), 0));
    }
    script.push((350, 0, 1));
    let report = run_script(script);
    assert_eq!(report.failure_count, 1);
    let failure = &report.failures[0];
    assert_eq!(failure.fire_ns, 170);
    assert_eq!(failure.fail_ns, 350);
    assert_eq!(
        failure.reason,
        FailReason::MissedDeadline { deadline_ns: 340 }
    );
}

#[test]
fn fig5_instances_reset_and_reused_after_completion() {
    // Firings at every transaction (ds high throughout), rdy always high:
    // each instance completes exactly at +170ns and its slot is recycled.
    // With one transaction every 10ns, at most 17 instances are in flight
    // (the paper's array size for q3) plus the freshly activated one.
    let script: Vec<(u64, u64, u64)> = (1..=100).map(|k| (k * 10, 1, 1)).collect();
    let report = run_script(script);
    assert_eq!(report.failure_count, 0);
    assert!(report.completions > 60);
    assert!(
        (17..=18).contains(&report.max_live_instances),
        "instance pool bounded by the property lifetime, got {}",
        report.max_live_instances
    );
}

#[test]
fn fig5_trivially_true_activations_are_not_registered() {
    // ds low everywhere: every activation is trivially true, no instance
    // is ever allocated (Section IV, point 4).
    let script: Vec<(u64, u64, u64)> = (1..=20).map(|k| (k * 10, 0, 0)).collect();
    let report = run_script(script);
    assert_eq!(report.vacuous, 20);
    assert_eq!(report.max_live_instances, 0);
}

#[test]
fn drop_ready_mutant_times_out_with_a_fig5_trace_instant() {
    // The DropReady mutant of the DES56 TLM-AT model publishes no
    // completion transaction at all, so every q3 firing misses its exact
    // +170ns evaluation instant: the first deadline (190ns) is detected at
    // the next later event (the second request, 220ns), the second
    // (390ns) only at simulation end. Each miss is a `timeout_fails`
    // increment and a "timeout-fail" instant on the trace — Fig. 5's
    // failure case, reached through a real mutant.
    use abv_obs::Tracer;

    let mut built = designs::build(
        designs::DesignKind::Des56,
        designs::AbsLevel::TlmAt,
        2,
        2015,
        designs::Fault::DropReady,
    )
    .expect("DES56 supports drop-ready");
    // Tracer first, so the checker's track metadata and fail instants
    // land in the sink.
    let (tracer, sink) = Tracer::memory();
    built.set_tracer(tracer);
    let q3: ClockedProperty = "always (!ds || next_et[1, 170] rdy) @T_b".parse().unwrap();
    let binding = built.binding();
    let checker = Checker::attach(&mut built.sim, "q3", &q3, binding).unwrap();
    built.run();
    let end = built.end_ns;
    let report = checker.finalize(&mut built.sim, end);

    assert_eq!(report.failure_count, 2, "one miss per request");
    assert_eq!(report.timeout_fails, 2, "every failure is a timeout");
    for failure in &report.failures {
        assert!(
            matches!(failure.reason, FailReason::MissedDeadline { .. }),
            "{failure}"
        );
    }
    assert_eq!(
        report.failures[0].reason,
        FailReason::MissedDeadline { deadline_ns: 190 }
    );
    let events = sink.borrow_mut().take_events();
    let timeout_instants = events.iter().filter(|e| e.name == "timeout-fail").count();
    assert_eq!(timeout_instants, 2, "one trace instant per missed deadline");
}

#[test]
fn early_transactions_do_not_consume_the_evaluation_point() {
    // Transactions at t < ε are "not considered for the evaluation of
    // next_ε^τ(a)" (Section IV): many early transactions, then the exact
    // deadline — the instance completes.
    let mut script: Vec<(u64, u64, u64)> = vec![(100, 1, 0)];
    for t in [110, 125, 177, 203, 265] {
        script.push((t, 0, 0));
    }
    script.push((270, 0, 1)); // 100 + 170
    let report = run_script(script);
    assert_eq!(report.failure_count, 0);
    assert_eq!(report.completions, 1);
}
