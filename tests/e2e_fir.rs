//! End-to-end verification of the FIR extension IP: the abstraction flow
//! generalizes beyond the paper's two evaluation designs.

use abv_checker::{Binding, Checker};
use abv_core::{abstract_property, AbstractionConfig};
use designs::fir::{self, FirMutation, FirWorkload};
use designs::{PropertyClass, SuiteEntry, CLOCK_PERIOD_NS};
use psl::ClockedProperty;
use tlmkit::CodingStyle;

fn cfg() -> AbstractionConfig {
    AbstractionConfig::new(CLOCK_PERIOD_NS)
        .abstract_signals(fir::ABSTRACTED_SIGNALS.iter().copied())
}

#[test]
fn rtl_suite_passes() {
    let w = FirWorkload::random(10, 0xF1);
    let mut built = fir::build_rtl(&w, FirMutation::None);
    let props: Vec<(String, ClockedProperty)> =
        fir::suite().iter().map(SuiteEntry::named).collect();
    let checkers = Checker::attach_all(&mut built.sim, &props, Binding::clock(built.clk.signal))
        .expect("installs");
    built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    for p in &report.properties {
        assert_eq!(p.failure_count, 0, "{p}");
    }
    assert_eq!(report.property("f1").unwrap().completions, 10);
}

#[test]
fn abstraction_produces_expected_forms() {
    let suite = fir::suite();
    let f1 = abstract_property(&suite[0].rtl, &cfg()).unwrap();
    assert_eq!(
        f1.result().unwrap().to_string(),
        "always ((!in_valid) || (next_et[1, 50] out_valid)) @T_b"
    );
    // f3's prediction conjunct is dropped (weakened), τ renumbers to 1.
    let f3 = abstract_property(&suite[2].rtl, &cfg()).unwrap();
    assert_eq!(
        f3.result().unwrap().to_string(),
        "always ((!in_valid) || (next_et[1, 50] out_valid)) @T_b"
    );
    assert_eq!(f3.consequence(), abv_core::Consequence::Weakened);
}

#[test]
fn abstracted_suite_matches_classification_at_tlm_at() {
    let w = FirWorkload::random(10, 0xF2);
    let mut built = fir::build_tlm_at(&w, FirMutation::None, CodingStyle::ApproximatelyTimedLoose);
    let entries = fir::suite();
    let props: Vec<(String, ClockedProperty, PropertyClass)> = entries
        .iter()
        .filter_map(|e| {
            abstract_property(&e.rtl, &cfg())
                .unwrap()
                .into_property()
                .map(|q| (e.name.to_owned(), q, e.class))
        })
        .collect();
    let named: Vec<(String, ClockedProperty)> = props
        .iter()
        .map(|(n, q, _)| (n.clone(), q.clone()))
        .collect();
    let checkers =
        Checker::attach_all(&mut built.sim, &named, Binding::bus(&built.bus)).expect("installs");
    built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    for (name, _, class) in &props {
        let p = report.property(name).unwrap();
        match class {
            PropertyClass::AtCompatible => assert_eq!(p.failure_count, 0, "{p}"),
            PropertyClass::CaOnly | PropertyClass::ReviewExpectedFail => {
                assert!(p.failure_count > 0, "{p}");
            }
            PropertyClass::DeletedAtTlm => unreachable!(),
        }
    }
}

#[test]
fn latency_mutant_caught_by_abstracted_f1() {
    let w = FirWorkload::random(6, 0xF3);
    let mut built = fir::build_tlm_at(
        &w,
        FirMutation::LatencyShort,
        CodingStyle::ApproximatelyTimedLoose,
    );
    let suite = fir::suite();
    let q1 = abstract_property(&suite[0].rtl, &cfg())
        .unwrap()
        .into_property()
        .unwrap();
    let checkers = Checker::attach_all(
        &mut built.sim,
        &[("f1".to_owned(), q1)],
        Binding::bus(&built.bus),
    )
    .expect("installs");
    built.run();
    let report = Checker::collect(&mut built.sim, &checkers, built.end_ns);
    assert!(report.properties[0].failure_count > 0);
}
