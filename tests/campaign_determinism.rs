//! Campaign-engine determinism: the merged report of a seeded campaign is
//! a pure function of the plan — the worker count only changes wall-clock
//! fields, never the aggregate. This is what makes sharded campaigns
//! trustworthy: a failure found at `--workers 8` reproduces exactly at
//! `--workers 1` from the recorded seed.

use abv_campaign::{run_campaign, CampaignPlan, CellSpec, CheckerMode};
use designs::{AbsLevel, DesignKind, Fault};

/// A mixed grid worth more than 32 runs: every design/level family, with
/// and without checkers, plus a faulty cell that fails mid-campaign.
fn mixed_plan() -> CampaignPlan {
    CampaignPlan::new("determinism")
        .cell(DesignKind::Des56, AbsLevel::Rtl, CheckerMode::First(3))
        .cell(DesignKind::Des56, AbsLevel::TlmAt, CheckerMode::All)
        .cell(DesignKind::ColorConv, AbsLevel::TlmCa, CheckerMode::All)
        .cell(DesignKind::ColorConv, AbsLevel::TlmAtBulk, CheckerMode::All)
        .cell(DesignKind::Fir, AbsLevel::TlmAt, CheckerMode::None)
        .cell_spec(
            CellSpec::new(DesignKind::Des56, AbsLevel::TlmAt, CheckerMode::All)
                .with_fault(Fault::LatencyShort),
        )
        .runs(6) // 6 cells x 6 reps = 36 runs
        .size(5)
        .seed(0x5EED_2015)
}

#[test]
fn merged_report_is_byte_identical_at_1_2_and_8_workers() {
    let plan = mixed_plan();
    assert!(
        plan.total_runs() >= 32,
        "plan must exercise a real shard count"
    );
    let baseline = run_campaign(&plan, 1)
        .expect("valid plan")
        .deterministic_summary();
    for workers in [2, 8] {
        let sharded = run_campaign(&plan, workers).expect("valid plan");
        assert_eq!(
            sharded.deterministic_summary(),
            baseline,
            "worker count {workers} changed the merged report"
        );
        assert_eq!(sharded.workers, workers.min(plan.total_runs()));
    }
}

#[test]
fn merged_report_is_byte_identical_under_both_schedulers() {
    // The two-tier kernel must be observationally equivalent to the
    // retained reference heap end-to-end: the same campaign, run entirely
    // on either scheduler at several worker counts, merges to the same
    // report bytes.
    let plan = mixed_plan();
    let baseline = run_campaign(&plan, 1)
        .expect("valid plan")
        .deterministic_summary();
    desim::set_default_scheduler(desim::SchedulerKind::Reference);
    let result = std::panic::catch_unwind(|| {
        for workers in [1, 2, 8] {
            let on_reference = run_campaign(&plan, workers).expect("valid plan");
            assert_eq!(
                on_reference.deterministic_summary(),
                baseline,
                "reference scheduler at {workers} workers diverged from the two-tier report"
            );
        }
    });
    desim::set_default_scheduler(desim::SchedulerKind::TwoTier);
    result.expect("scheduler comparison failed");
}

#[test]
fn first_failure_seed_reproduces_the_failure_solo() {
    let plan = mixed_plan();
    let report = run_campaign(&plan, 8).expect("valid plan");
    let faulty = report
        .cells
        .iter()
        .find(|c| c.first_failure.is_some())
        .expect("the faulty cell must fail");
    let first = faulty.first_failure.as_ref().expect("checked above");

    // Re-run just that repetition from its recorded spec; the same
    // property must fail the same way.
    let spec = plan
        .run_specs()
        .into_iter()
        .find(|s| plan.cells[s.cell] == faulty.spec && s.rep == first.rep)
        .expect("the failing repetition is in the work list");
    assert_eq!(
        spec.seed, first.seed,
        "captured seed matches the spec's derived seed"
    );
    let solo = abv_campaign::execute_run(&spec);
    let property = solo
        .report
        .property(&first.property)
        .expect("property present");
    assert_eq!(property.failures.first(), Some(&first.failure));
}

#[test]
fn colorconv_at_campaign_merges_identically_across_worker_counts() {
    // The acceptance campaign: 100 ColorConv TLM-AT runs with the full
    // abstracted suite attached.
    let plan = CampaignPlan::new("colorconv-at")
        .cell(DesignKind::ColorConv, AbsLevel::TlmAt, CheckerMode::All)
        .runs(100)
        .size(6)
        .seed(2015);
    let solo = run_campaign(&plan, 1).expect("valid plan");
    let pooled = run_campaign(&plan, 4).expect("valid plan");
    assert_eq!(solo.deterministic_summary(), pooled.deterministic_summary());
    assert_eq!(pooled.cells[0].runs, 100);
    // The abstracted suite keeps checking at AT: activations accumulate
    // across all 100 runs and the review-expected-fail properties are
    // reported, with the earliest failing seed captured for replay.
    assert!(pooled.cells[0]
        .report
        .properties
        .iter()
        .any(|p| p.activations >= 100));
    assert!(pooled.cells[0].first_failure.is_some());
}
