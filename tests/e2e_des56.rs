//! End-to-end DES56 verification across abstraction levels:
//! RTL checkers pass on the correct design, unabstracted checkers reused
//! at TLM-CA pass, abstracted checkers behave per their classification at
//! TLM-CA and TLM-AT, and mutants are caught.

mod common;

use common::*;
use designs::des56::{DesMutation, DesWorkload};
use designs::PropertyClass;
use tlmkit::CodingStyle;

fn workload() -> DesWorkload {
    DesWorkload::mixed(12, 0xD5)
}

#[test]
fn rtl_suite_passes_on_correct_design() {
    let report = verify_des_rtl(&workload(), DesMutation::None);
    assert_eq!(report.properties.len(), 9);
    assert_all_pass(&report);
    // The timed properties actually fired (non-vacuous evidence).
    let p4 = report.property("p4").unwrap();
    assert_eq!(p4.completions, 12, "one completion per block");
    let p1 = report.property("p1").unwrap();
    assert!(p1.completions >= 1, "zero blocks exercise p1");
}

#[test]
fn rtl_until_property_p9_completes_once() {
    let report = verify_des_rtl(&workload(), DesMutation::None);
    let p9 = report.property("p9").unwrap();
    assert_eq!(p9.activations, 1);
    assert_eq!(p9.completions, 1);
}

#[test]
fn unabstracted_suite_reused_at_tlm_ca_passes() {
    let report = verify_des_tlm_ca_reused(&workload(), DesMutation::None);
    assert_eq!(report.properties.len(), 9);
    assert_all_pass(&report);
}

#[test]
fn abstracted_suite_at_tlm_ca_passes_entirely() {
    // Theorem III.2 on a cycle-equivalent event stream: every surviving
    // abstracted property (including q2 and the review-flagged ones that
    // merely weakened) must hold, except disjunct-dropped rewrites which
    // changed intent — DES56 has none that survive.
    let (report, classes) =
        verify_des_tlm_abstracted(&workload(), DesMutation::None, CodingStyle::CycleAccurate);
    assert_eq!(classes.len(), 8, "p8 is deleted by signal abstraction");
    assert_all_pass(&report);
}

#[test]
fn abstracted_suite_at_tlm_at_loose_matches_classification() {
    let (report, classes) = verify_des_tlm_abstracted(
        &workload(),
        DesMutation::None,
        CodingStyle::ApproximatelyTimedLoose,
    );
    for (name, class) in &classes {
        let p = report.property(name).unwrap();
        match class {
            PropertyClass::AtCompatible => {
                assert_eq!(
                    p.failure_count,
                    0,
                    "{name} must pass at TLM-AT: {:?}",
                    p.failures.first()
                );
            }
            PropertyClass::CaOnly => {
                assert!(
                    p.failure_count > 0,
                    "{name} references intermediate instants and must fail at loose TLM-AT"
                );
            }
            PropertyClass::ReviewExpectedFail => {
                assert!(
                    p.failure_count > 0,
                    "{name} was review-flagged and must fail"
                );
            }
            PropertyClass::DeletedAtTlm => panic!("deleted properties are not installed"),
        }
    }
    // The timed AT-compatible properties completed for every block.
    assert_eq!(report.property("p4").unwrap().completions, 12);
    assert_eq!(report.property("p3").unwrap().completions, 12);
}

#[test]
fn abstracted_suite_at_tlm_at_strict_same_verdicts() {
    // The strict Def. III.1 transactions (strobe release, ready clear) do
    // not break the AT-compatible properties…
    let (report, classes) = verify_des_tlm_abstracted(
        &workload(),
        DesMutation::None,
        CodingStyle::ApproximatelyTimedStrict,
    );
    for (name, class) in &classes {
        let p = report.property(name).unwrap();
        if *class == PropertyClass::AtCompatible {
            assert_eq!(p.failure_count, 0, "{name}: {:?}", p.failures.first());
        }
    }
}

#[test]
fn latency_mutants_caught_at_rtl() {
    for mutation in [DesMutation::LatencyShort, DesMutation::LatencyLong] {
        let report = verify_des_rtl(&workload(), mutation);
        let p4 = report.property("p4").unwrap();
        assert!(p4.failure_count > 0, "{mutation:?} must violate p4 at RTL");
    }
}

#[test]
fn latency_mutants_caught_by_abstracted_checkers_at_tlm_at() {
    for mutation in [DesMutation::LatencyShort, DesMutation::LatencyLong] {
        let (report, _) =
            verify_des_tlm_abstracted(&workload(), mutation, CodingStyle::ApproximatelyTimedLoose);
        let p4 = report.property("p4").unwrap();
        assert!(
            p4.failure_count > 0,
            "{mutation:?} must violate the abstracted p4 at TLM-AT"
        );
    }
}

#[test]
fn drop_ready_mutant_caught_everywhere() {
    let report = verify_des_rtl(&workload(), DesMutation::DropReady);
    assert!(report.property("p4").unwrap().failure_count > 0);

    let (report, _) = verify_des_tlm_abstracted(
        &workload(),
        DesMutation::DropReady,
        CodingStyle::ApproximatelyTimedLoose,
    );
    assert!(report.property("p4").unwrap().failure_count > 0);
    assert!(report.property("p3").unwrap().failure_count > 0);
}

#[test]
fn vacuity_is_tracked() {
    let report = verify_des_rtl(&workload(), DesMutation::None);
    let p1 = report.property("p1").unwrap();
    // p1 only fires on zero-data blocks; everything else is vacuous.
    assert!(p1.vacuous > p1.completions);
}
