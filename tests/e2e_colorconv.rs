//! End-to-end ColorConv verification across abstraction levels.

mod common;

use common::*;
use designs::colorconv::{ConvMutation, ConvWorkload};
use designs::PropertyClass;
use tlmkit::CodingStyle;

fn workload() -> ConvWorkload {
    ConvWorkload::mixed(18, 0xCC)
}

#[test]
fn rtl_suite_passes_on_correct_design() {
    let report = verify_conv_rtl(&workload(), ConvMutation::None);
    assert_eq!(report.properties.len(), 12);
    assert_all_pass(&report);
    assert_eq!(report.property("c1").unwrap().completions, 18);
    assert!(
        report.property("c2").unwrap().completions >= 1,
        "black pixels fire c2"
    );
    assert!(
        report.property("c3").unwrap().completions >= 1,
        "white pixels fire c3"
    );
    assert!(
        report.property("c12").unwrap().completions >= 1,
        "green pixels fire c12"
    );
}

#[test]
fn abstracted_suite_at_tlm_ca_matches_classification() {
    let (report, classes) =
        verify_conv_tlm_abstracted(&workload(), ConvMutation::None, CodingStyle::CycleAccurate);
    assert_eq!(classes.len(), 12, "no ColorConv property is fully deleted");
    for (name, class) in &classes {
        let p = report.property(name).unwrap();
        match class {
            // On a cycle-equivalent event stream every intent-preserving
            // abstraction holds (Theorem III.2), including the CA-only c10.
            PropertyClass::AtCompatible | PropertyClass::CaOnly => {
                assert_eq!(p.failure_count, 0, "{name}: {:?}", p.failures.first());
            }
            // c9's disjunct drop changed its meaning: `always next_et[1,10]
            // out_valid` is false on the real design — the paper's
            // "human investigation required" case.
            PropertyClass::ReviewExpectedFail => {
                assert!(
                    p.failure_count > 0,
                    "{name} must fail after the disjunct drop"
                );
            }
            PropertyClass::DeletedAtTlm => panic!("no deleted properties in this suite"),
        }
    }
}

#[test]
fn abstracted_suite_at_tlm_at_loose_matches_classification() {
    let (report, classes) = verify_conv_tlm_abstracted(
        &workload(),
        ConvMutation::None,
        CodingStyle::ApproximatelyTimedLoose,
    );
    for (name, class) in &classes {
        let p = report.property(name).unwrap();
        match class {
            PropertyClass::AtCompatible => {
                assert_eq!(p.failure_count, 0, "{name}: {:?}", p.failures.first());
            }
            PropertyClass::CaOnly | PropertyClass::ReviewExpectedFail => {
                assert!(p.failure_count > 0, "{name} must fail at loose TLM-AT");
            }
            PropertyClass::DeletedAtTlm => unreachable!(),
        }
    }
    assert_eq!(report.property("c1").unwrap().completions, 18);
    // c8's surviving conjunct (out_valid after 80 ns) completes per pixel.
    assert_eq!(report.property("c8").unwrap().completions, 18);
}

#[test]
fn corrupt_luma_mutant_caught_by_range_and_anchor_properties() {
    let report = verify_conv_rtl(&workload(), ConvMutation::CorruptLuma);
    assert!(
        report.property("c4").unwrap().failure_count > 0,
        "luma floor violated"
    );
    assert!(
        report.property("c2").unwrap().failure_count > 0,
        "black anchor violated"
    );

    let (report, _) = verify_conv_tlm_abstracted(
        &workload(),
        ConvMutation::CorruptLuma,
        CodingStyle::ApproximatelyTimedLoose,
    );
    assert!(report.property("c4").unwrap().failure_count > 0);
    assert!(report.property("c2").unwrap().failure_count > 0);
}

#[test]
fn latency_mutants_caught_at_tlm_at() {
    for mutation in [ConvMutation::LatencyShort, ConvMutation::LatencyLong] {
        let (report, _) =
            verify_conv_tlm_abstracted(&workload(), mutation, CodingStyle::ApproximatelyTimedLoose);
        assert!(
            report.property("c1").unwrap().failure_count > 0,
            "{mutation:?} must violate the abstracted c1"
        );
    }
}

#[test]
fn drop_valid_mutant_caught() {
    let report = verify_conv_rtl(&workload(), ConvMutation::DropValid);
    assert!(report.property("c1").unwrap().failure_count > 0);
    let (report, _) = verify_conv_tlm_abstracted(
        &workload(),
        ConvMutation::DropValid,
        CodingStyle::ApproximatelyTimedLoose,
    );
    assert!(report.property("c1").unwrap().failure_count > 0);
}

#[test]
fn weakened_c8_is_flagged_but_not_review() {
    use abv_core::{abstract_property, Consequence};
    let suite = designs::colorconv::suite();
    let c8 = suite.iter().find(|e| e.name == "c8").unwrap();
    let a = abstract_property(&c8.rtl, &conv_config()).unwrap();
    assert_eq!(a.consequence(), Consequence::Weakened);
    let c9 = suite.iter().find(|e| e.name == "c9").unwrap();
    let a9 = abstract_property(&c9.rtl, &conv_config()).unwrap();
    assert_eq!(a9.consequence(), Consequence::NeedsReview);
}
