//! Trace determinism: with [`TraceSettings::deterministic`], the merged
//! campaign trace is a pure function of the plan. Every timestamp in the
//! stream is simulation time, per-run events are remapped onto per-run
//! trace processes and concatenated in work-list order, and wall-clock
//! annotations are omitted — so the exact event sequence (not just the
//! summary) is byte-identical at any worker count.

use abv_campaign::{run_campaign_with, CampaignPlan, CellSpec, CheckerMode, TraceSettings};
use abv_obs::{chrome_trace_json, ArgValue, Phase, TraceEvent};
use designs::{AbsLevel, DesignKind, Fault};

/// A plan that exercises every event kind: spans and obligation instants
/// from passing checkers, timeout-fails from a faulty cell, transaction
/// instants from the TLM bus and kernel counter samples everywhere.
fn traced_plan() -> CampaignPlan {
    CampaignPlan::new("trace-determinism")
        .cell(DesignKind::Des56, AbsLevel::TlmAt, CheckerMode::All)
        .cell(
            DesignKind::ColorConv,
            AbsLevel::TlmCa,
            CheckerMode::First(2),
        )
        .cell_spec(
            CellSpec::new(DesignKind::Des56, AbsLevel::TlmAt, CheckerMode::All)
                .with_fault(Fault::LatencyShort),
        )
        .runs(3)
        .size(5)
        .seed(0x7ACE_2015)
}

#[test]
fn deterministic_trace_is_identical_at_1_and_4_workers() {
    let plan = traced_plan();
    let solo = run_campaign_with(&plan, 1, TraceSettings::deterministic()).expect("valid plan");
    let pooled = run_campaign_with(&plan, 4, TraceSettings::deterministic()).expect("valid plan");

    assert!(!solo.trace.is_empty(), "tracing was on");
    // Event-for-event equality of the merged streams, not just a summary.
    assert_eq!(solo.trace, pooled.trace);
    // And therefore of the exported JSON.
    assert_eq!(
        chrome_trace_json(&solo.trace),
        chrome_trace_json(&pooled.trace)
    );
}

#[test]
fn deterministic_trace_is_identical_under_both_schedulers() {
    // Byte-identical merged traces — including kernel counter samples,
    // whose timestamps and values depend on the exact delta-cycle walk —
    // pin the two-tier scheduler to the reference heap end-to-end.
    let plan = traced_plan();
    let two_tier = run_campaign_with(&plan, 2, TraceSettings::deterministic()).expect("valid plan");
    desim::set_default_scheduler(desim::SchedulerKind::Reference);
    let result = std::panic::catch_unwind(|| {
        for workers in [1, 4] {
            let on_reference = run_campaign_with(&plan, workers, TraceSettings::deterministic())
                .expect("valid plan");
            assert_eq!(
                on_reference.trace, two_tier.trace,
                "trace under the reference scheduler at {workers} workers diverged"
            );
        }
    });
    desim::set_default_scheduler(desim::SchedulerKind::TwoTier);
    result.expect("scheduler comparison failed");
    assert_eq!(
        chrome_trace_json(&two_tier.trace),
        chrome_trace_json(
            &run_campaign_with(&plan, 1, TraceSettings::deterministic())
                .expect("valid plan")
                .trace
        )
    );
}

#[test]
fn deterministic_trace_omits_wall_clock_fields() {
    let plan = traced_plan();
    let report = run_campaign_with(&plan, 2, TraceSettings::deterministic()).expect("valid plan");
    assert!(
        report
            .trace
            .iter()
            .all(|ev| ev.args.iter().all(|(key, _)| key != "wall_us")),
        "deterministic traces must not carry wall-clock args"
    );
    // The non-deterministic mode does annotate run spans with wall time.
    let timed = run_campaign_with(&plan, 2, TraceSettings::on()).expect("valid plan");
    assert!(timed
        .trace
        .iter()
        .any(|ev| ev.args.iter().any(|(key, _)| key == "wall_us")));
}

#[test]
fn merged_trace_structure_is_complete() {
    let plan = traced_plan();
    let report = run_campaign_with(&plan, 4, TraceSettings::deterministic()).expect("valid plan");
    let trace = &report.trace;

    // One labelled trace process per run, pids in work-list order.
    let run_labels: Vec<&TraceEvent> = trace
        .iter()
        .filter(|e| e.phase == Phase::Meta && e.name == "process_name")
        .collect();
    assert_eq!(run_labels.len(), plan.total_runs());
    let pids: Vec<u64> = run_labels.iter().map(|e| e.pid).collect();
    assert_eq!(pids, (0..plan.total_runs() as u64).collect::<Vec<_>>());
    assert!(matches!(
        &run_labels[0].args[0].1,
        ArgValue::Str(label) if label.contains("rep 0")
    ));

    // Every run contributes a closed `run` span plus kernel counters, and
    // span begins/ends balance per (pid, tid) track.
    for pid in 0..plan.total_runs() as u64 {
        let per_run: Vec<&TraceEvent> = trace.iter().filter(|e| e.pid == pid).collect();
        assert!(per_run
            .iter()
            .any(|e| e.phase == Phase::Begin && e.name == "run"));
        assert!(per_run.iter().any(|e| e.phase == Phase::Counter));
        let begins = per_run.iter().filter(|e| e.phase == Phase::Begin).count();
        let ends = per_run.iter().filter(|e| e.phase == Phase::End).count();
        assert_eq!(begins, ends, "unbalanced spans in run {pid}");
    }

    // The faulty cell produced timeout-fail instants somewhere.
    assert!(trace
        .iter()
        .any(|e| e.phase == Phase::Instant && e.name == "timeout-fail"));
}
