//! Validation of Theorems III.1 / III.2 through the independent
//! finite-trace oracle (no online checkers involved): if the RTL trace
//! satisfies a property, the corresponding TLM traces satisfy its
//! abstraction.

mod common;

use abv_core::abstract_property;
use common::{conv_config, des_config};
use designs::colorconv::{self, ConvMutation, ConvWorkload};
use designs::des56::{self, DesMutation, DesWorkload};
use designs::PropertyClass;
use psl::{ClockEdge, Trace};
use rtlkit::WaveRecorder;
use tlmkit::{CodingStyle, TxTraceRecorder};

struct DesTraces {
    rtl: Trace,
    ca: Trace,
    at: Trace,
}

fn des_traces(seed: u64) -> DesTraces {
    let w = DesWorkload::mixed(8, seed);
    let mut rtl_built = des56::build_rtl(&w, DesMutation::None);
    let rec = WaveRecorder::install(
        &mut rtl_built.sim,
        rtl_built.clk.signal,
        ClockEdge::Pos,
        des56::RTL_SIGNALS,
    );
    rtl_built.run();
    let rtl = WaveRecorder::take_trace(&rtl_built.sim, rec);

    let mut ca_built = des56::build_tlm_ca(&w, DesMutation::None);
    let rec = TxTraceRecorder::install(&mut ca_built.sim, &ca_built.bus, des56::TLM_CA_SIGNALS);
    ca_built.run();
    let ca = TxTraceRecorder::take_trace(&ca_built.sim, rec);

    let mut at_built =
        des56::build_tlm_at(&w, DesMutation::None, CodingStyle::ApproximatelyTimedLoose);
    let rec = TxTraceRecorder::install(&mut at_built.sim, &at_built.bus, des56::TLM_AT_SIGNALS);
    at_built.run();
    let at = TxTraceRecorder::take_trace(&at_built.sim, rec);

    DesTraces { rtl, ca, at }
}

#[test]
fn des56_rtl_traces_satisfy_the_rtl_suite() {
    for seed in [1u64, 2, 3] {
        let traces = des_traces(seed);
        for entry in des56::suite() {
            assert!(
                traces.rtl.satisfies(&entry.rtl).unwrap(),
                "seed {seed}: RTL trace must satisfy {}",
                entry.name
            );
        }
    }
}

#[test]
fn theorem_iii_2_holds_on_cycle_equivalent_streams() {
    // M_RTL |= p  =>  M_TLM-CA |= q, for every surviving abstraction that
    // did not change intent (everything except review-flagged drops).
    for seed in [4u64, 5] {
        let traces = des_traces(seed);
        for entry in des56::suite() {
            if entry.class == PropertyClass::ReviewExpectedFail {
                continue;
            }
            let a = abstract_property(&entry.rtl, &des_config()).unwrap();
            let Some(q) = a.into_property() else { continue };
            assert!(traces.rtl.satisfies(&entry.rtl).unwrap(), "{}", entry.name);
            assert!(
                traces.ca.satisfies(&q).unwrap(),
                "seed {seed}: TLM-CA trace must satisfy abstraction of {}",
                entry.name
            );
        }
    }
}

#[test]
fn at_compatible_abstractions_hold_on_at_traces() {
    for seed in [6u64, 7] {
        let traces = des_traces(seed);
        for entry in des56::suite() {
            if entry.class != PropertyClass::AtCompatible {
                continue;
            }
            let a = abstract_property(&entry.rtl, &des_config()).unwrap();
            let q = a.into_property().expect("AT-compatible properties survive");
            assert!(
                traces.at.satisfies(&q).unwrap(),
                "seed {seed}: TLM-AT trace must satisfy abstraction of {}",
                entry.name
            );
        }
    }
}

#[test]
fn ca_only_abstraction_fails_on_sparse_at_trace() {
    // The q2 phenomenon (DESIGN.md §5b), reproduced on the oracle path.
    let traces = des_traces(8);
    let suite = des56::suite();
    let p2 = suite.iter().find(|e| e.name == "p2").unwrap();
    let q2 = abstract_property(&p2.rtl, &des_config())
        .unwrap()
        .into_property()
        .unwrap();
    assert!(traces.ca.satisfies(&q2).unwrap(), "q2 holds at TLM-CA");
    assert!(
        !traces.at.satisfies(&q2).unwrap(),
        "q2 cannot hold at loose TLM-AT"
    );
}

#[test]
fn colorconv_theorems_on_the_oracle_path() {
    let w = ConvWorkload::mixed(10, 0xAB);
    let mut rtl_built = colorconv::build_rtl(&w, ConvMutation::None);
    let rec = WaveRecorder::install(
        &mut rtl_built.sim,
        rtl_built.clk.signal,
        ClockEdge::Pos,
        colorconv::RTL_SIGNALS,
    );
    rtl_built.run();
    let rtl = WaveRecorder::take_trace(&rtl_built.sim, rec);

    let mut ca_built = colorconv::build_tlm_ca(&w, ConvMutation::None);
    let rec = TxTraceRecorder::install(&mut ca_built.sim, &ca_built.bus, colorconv::TLM_CA_SIGNALS);
    ca_built.run();
    let ca = TxTraceRecorder::take_trace(&ca_built.sim, rec);

    for entry in colorconv::suite() {
        assert!(
            rtl.satisfies(&entry.rtl).unwrap(),
            "RTL trace satisfies {}",
            entry.name
        );
        if entry.class == PropertyClass::ReviewExpectedFail {
            continue;
        }
        let a = abstract_property(&entry.rtl, &conv_config()).unwrap();
        if let Some(q) = a.into_property() {
            assert!(
                ca.satisfies(&q).unwrap(),
                "TLM-CA trace satisfies abstraction of {}",
                entry.name
            );
        }
    }
}

#[test]
fn mutated_tlm_model_fails_the_abstraction_as_theorem_iii_2_contrapositive() {
    // If q fails at TLM on a timing-equivalent stimulus, the abstraction of
    // the design was wrong — here, an injected latency bug.
    let w = DesWorkload::mixed(6, 0xAC);
    let mut at_built = des56::build_tlm_at(
        &w,
        DesMutation::LatencyLong,
        CodingStyle::ApproximatelyTimedLoose,
    );
    let rec = TxTraceRecorder::install(&mut at_built.sim, &at_built.bus, des56::TLM_AT_SIGNALS);
    at_built.run();
    let at = TxTraceRecorder::take_trace(&at_built.sim, rec);

    let suite = des56::suite();
    let p4 = suite.iter().find(|e| e.name == "p4").unwrap();
    let q4 = abstract_property(&p4.rtl, &des_config())
        .unwrap()
        .into_property()
        .unwrap();
    assert!(
        !at.satisfies(&q4).unwrap(),
        "latency bug must violate q4 on the trace oracle too"
    );
}
